//! Sparse multivariate polynomials over exact rationals.
//!
//! Instance counts (`|V|`), hourglass widths (`W(k) = M-1-k`) and the
//! numerators/denominators of every derived bound are polynomials in the
//! program parameters. Representation: a sorted map from monomials to
//! non-zero rational coefficients.

use crate::vars::Var;
use iolb_numeric::Rational;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A monomial: sorted list of `(variable, exponent)` pairs, exponents > 0.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial(Vec<(Var, u32)>);

impl Monomial {
    /// The empty monomial (constant term).
    pub fn one() -> Monomial {
        Monomial(Vec::new())
    }

    /// A single variable to the given power.
    pub fn var_pow(v: Var, e: u32) -> Monomial {
        if e == 0 {
            Monomial::one()
        } else {
            Monomial(vec![(v, e)])
        }
    }

    /// Product of two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut out: Vec<(Var, u32)> = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].0.cmp(&other.0[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((self.0[i].0, self.0[i].1 + other.0[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        Monomial(out)
    }

    /// Exponent of `v` in this monomial.
    pub fn exponent(&self, v: Var) -> u32 {
        self.0
            .iter()
            .find(|(w, _)| *w == v)
            .map(|(_, e)| *e)
            .unwrap_or(0)
    }

    /// Total degree.
    pub fn total_degree(&self) -> u32 {
        self.0.iter().map(|(_, e)| e).sum()
    }

    /// The monomial with variable `v` removed.
    pub fn without(&self, v: Var) -> Monomial {
        Monomial(self.0.iter().copied().filter(|(w, _)| *w != v).collect())
    }

    /// Variables of this monomial.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.0.iter().map(|(v, _)| *v)
    }

    /// True when this monomial divides `other`.
    pub fn divides(&self, other: &Monomial) -> bool {
        self.0.iter().all(|(v, e)| other.exponent(*v) >= *e)
    }

    /// Quotient monomial `other / self` (requires divisibility).
    pub fn div_into(&self, other: &Monomial) -> Monomial {
        debug_assert!(self.divides(other));
        let mut out = Vec::new();
        for (v, e) in &other.0 {
            let d = e - self.exponent(*v);
            if d > 0 {
                out.push((*v, d));
            }
        }
        Monomial(out)
    }

    /// Graded-lexicographic comparison (a true monomial order: compatible
    /// with multiplication), used to pick leading terms in long division.
    pub fn cmp_grlex(&self, other: &Monomial) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match self.total_degree().cmp(&other.total_degree()) {
            Ordering::Equal => {}
            o => return o,
        }
        // Lexicographic on exponent vectors: larger exponent at the
        // earliest variable wins. Both lists are sorted by Var.
        let (mut i, mut j) = (0, 0);
        loop {
            match (self.0.get(i), other.0.get(j)) {
                (None, None) => return Ordering::Equal,
                (Some(_), None) => return Ordering::Greater,
                (None, Some(_)) => return Ordering::Less,
                (Some(&(va, ea)), Some(&(vb, eb))) => {
                    if va < vb {
                        return Ordering::Greater;
                    }
                    if va > vb {
                        return Ordering::Less;
                    }
                    if ea != eb {
                        return ea.cmp(&eb);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// Component-wise gcd (min of exponents).
    pub fn gcd(&self, other: &Monomial) -> Monomial {
        let mut out = Vec::new();
        for (v, e) in &self.0 {
            let m = (*e).min(other.exponent(*v));
            if m > 0 {
                out.push((*v, m));
            }
        }
        Monomial(out)
    }
}

/// A sparse multivariate polynomial with rational coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Poly {
    terms: BTreeMap<Monomial, Rational>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly::default()
    }

    /// The constant polynomial `1`.
    pub fn one() -> Poly {
        Poly::constant(Rational::ONE)
    }

    /// A constant polynomial.
    pub fn constant(c: Rational) -> Poly {
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(Monomial::one(), c);
        }
        Poly { terms }
    }

    /// An integer constant polynomial.
    pub fn int(n: i128) -> Poly {
        Poly::constant(Rational::int(n))
    }

    /// The polynomial `v`.
    pub fn var(v: Var) -> Poly {
        Poly::term(Rational::ONE, Monomial::var_pow(v, 1))
    }

    /// Parses nothing — builds `c * m` directly.
    pub fn term(c: Rational, m: Monomial) -> Poly {
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(m, c);
        }
        Poly { terms }
    }

    /// True iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// True iff this polynomial is a constant (possibly zero).
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
            || (self.terms.len() == 1 && self.terms.keys().next().unwrap().0.is_empty())
    }

    /// The constant value, if [`Poly::is_constant`].
    pub fn as_constant(&self) -> Option<Rational> {
        if self.terms.is_empty() {
            Some(Rational::ZERO)
        } else if self.is_constant() {
            Some(*self.terms.values().next().unwrap())
        } else {
            None
        }
    }

    /// Iterator over `(monomial, coefficient)` terms.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, &Rational)> {
        self.terms.iter()
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// All variables appearing in the polynomial.
    pub fn vars(&self) -> Vec<Var> {
        let mut vs: Vec<Var> = self
            .terms
            .keys()
            .flat_map(|m| m.vars().collect::<Vec<_>>())
            .collect();
        vs.sort();
        vs.dedup();
        vs
    }

    /// Degree in `v` (zero polynomial has degree 0 by convention here).
    pub fn degree_in(&self, v: Var) -> u32 {
        self.terms.keys().map(|m| m.exponent(v)).max().unwrap_or(0)
    }

    /// Total degree.
    pub fn total_degree(&self) -> u32 {
        self.terms
            .keys()
            .map(|m| m.total_degree())
            .max()
            .unwrap_or(0)
    }

    /// Coefficient of `v^d`, as a polynomial in the remaining variables.
    pub fn coeff_of(&self, v: Var, d: u32) -> Poly {
        let mut out = Poly::zero();
        for (m, c) in &self.terms {
            if m.exponent(v) == d {
                out.add_term(m.without(v), *c);
            }
        }
        out
    }

    fn add_term(&mut self, m: Monomial, c: Rational) {
        if c.is_zero() {
            return;
        }
        let entry = self.terms.entry(m);
        match entry {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(c);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let s = *e.get() + c;
                if s.is_zero() {
                    e.remove();
                } else {
                    *e.get_mut() = s;
                }
            }
        }
    }

    /// Scales the polynomial by a rational constant.
    pub fn scale(&self, c: Rational) -> Poly {
        if c.is_zero() {
            return Poly::zero();
        }
        Poly {
            terms: self
                .terms
                .iter()
                .map(|(m, k)| (m.clone(), *k * c))
                .collect(),
        }
    }

    /// Exact exponentiation.
    pub fn pow(&self, e: u32) -> Poly {
        let mut acc = Poly::one();
        for _ in 0..e {
            acc = &acc * self;
        }
        acc
    }

    /// Substitutes `v := value` (a polynomial) everywhere.
    pub fn subst(&self, v: Var, value: &Poly) -> Poly {
        let mut out = Poly::zero();
        // Group by exponent of v for Horner-free but simple evaluation.
        let deg = self.degree_in(v);
        let mut pow_cache: Vec<Poly> = Vec::with_capacity(deg as usize + 1);
        pow_cache.push(Poly::one());
        for d in 1..=deg {
            let next = &pow_cache[(d - 1) as usize] * value;
            pow_cache.push(next);
        }
        for (m, c) in &self.terms {
            let e = m.exponent(v);
            let rest = Poly::term(*c, m.without(v));
            out = &out + &(&rest * &pow_cache[e as usize]);
        }
        out
    }

    /// Exact evaluation with every variable bound through `env`.
    ///
    /// # Panics
    /// Panics if `env` returns `None` for a variable that occurs.
    pub fn eval(&self, env: &dyn Fn(Var) -> Option<Rational>) -> Rational {
        let mut acc = Rational::ZERO;
        for (m, c) in &self.terms {
            let mut t = *c;
            for (v, e) in &m.0 {
                let val = env(*v).unwrap_or_else(|| panic!("unbound variable {} in Poly::eval", v));
                t *= val.pow(*e as i32);
            }
            acc += t;
        }
        acc
    }

    /// Evaluation against a `(Var, i128)` environment slice.
    pub fn eval_ints(&self, env: &[(Var, i128)]) -> Rational {
        self.eval(&|v| {
            env.iter()
                .find(|(w, _)| *w == v)
                .map(|(_, x)| Rational::int(*x))
        })
    }

    /// Lossy `f64` evaluation (plots / quick comparisons only).
    pub fn eval_f64(&self, env: &dyn Fn(Var) -> Option<f64>) -> f64 {
        let mut acc = 0.0;
        for (m, c) in &self.terms {
            let mut t = c.to_f64();
            for (v, e) in &m.0 {
                let val =
                    env(*v).unwrap_or_else(|| panic!("unbound variable {} in Poly::eval_f64", v));
                t *= val.powi(*e as i32);
            }
            acc += t;
        }
        acc
    }

    /// Divides by `divisor` if the division is exact; `None` otherwise.
    ///
    /// Uses multivariate long division with respect to the monomial order;
    /// exactness means remainder 0.
    pub fn div_exact(&self, divisor: &Poly) -> Option<Poly> {
        assert!(!divisor.is_zero(), "division by zero polynomial");
        let mut rem = self.clone();
        let mut quot = Poly::zero();
        fn leading(p: &Poly) -> (Monomial, Rational) {
            p.terms
                .iter()
                .max_by(|(a, _), (b, _)| a.cmp_grlex(b))
                .map(|(m, c)| (m.clone(), *c))
                .expect("leading term of nonzero polynomial")
        }
        let (dm, dc) = leading(divisor);
        while !rem.is_zero() {
            let (rm, rc) = leading(&rem);
            if !dm.divides(&rm) {
                return None;
            }
            let qm = dm.div_into(&rm);
            let qc = rc / dc;
            let qt = Poly::term(qc, qm);
            quot = &quot + &qt;
            rem = &rem - &(&qt * divisor);
        }
        Some(quot)
    }

    /// Rational content (gcd of coefficients, sign-normalized) and monomial
    /// content (gcd of monomials) — used to lightly normalize [`RatFunc`](crate::RatFunc)s.
    pub fn content(&self) -> (Rational, Monomial) {
        if self.is_zero() {
            return (Rational::ZERO, Monomial::one());
        }
        let mut mono = self.terms.keys().next().unwrap().clone();
        let mut num_gcd: i128 = 0;
        let mut den_lcm: i128 = 1;
        for (m, c) in &self.terms {
            mono = mono.gcd(m);
            num_gcd = iolb_numeric::gcd_i128(num_gcd, c.num());
            let g = iolb_numeric::gcd_i128(den_lcm, c.den());
            den_lcm = (den_lcm / g)
                .checked_mul(c.den())
                .expect("content overflow");
        }
        let mut content = Rational::new(num_gcd, den_lcm);
        // Sign convention: leading coefficient positive after removing content.
        let lead = *self.terms.iter().next_back().unwrap().1;
        if lead.is_negative() {
            content = -content;
        }
        (content, mono)
    }
}

impl Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &rhs.terms {
            out.add_term(m.clone(), *c);
        }
        out
    }
}

impl Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &rhs.terms {
            out.add_term(m.clone(), -*c);
        }
        out
    }
}

impl Mul for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &rhs.terms {
                out.add_term(ma.mul(mb), *ca * *cb);
            }
        }
        out
    }
}

impl Neg for &Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        self.scale(-Rational::ONE)
    }
}

macro_rules! owned_ops {
    ($($trait:ident :: $m:ident),*) => {$(
        impl $trait for Poly {
            type Output = Poly;
            fn $m(self, rhs: Poly) -> Poly { $trait::$m(&self, &rhs) }
        }
    )*};
}
owned_ops!(Add::add, Sub::sub, Mul::mul);

impl Neg for Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        -&self
    }
}

impl AddAssign<&Poly> for Poly {
    fn add_assign(&mut self, rhs: &Poly) {
        for (m, c) in &rhs.terms {
            self.add_term(m.clone(), *c);
        }
    }
}

impl SubAssign<&Poly> for Poly {
    fn sub_assign(&mut self, rhs: &Poly) {
        for (m, c) in &rhs.terms {
            self.add_term(m.clone(), -*c);
        }
    }
}

impl MulAssign<&Poly> for Poly {
    fn mul_assign(&mut self, rhs: &Poly) {
        *self = &*self * rhs;
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        // Sort for display: total degree descending, then map order.
        let mut ts: Vec<(&Monomial, &Rational)> = self.terms.iter().collect();
        ts.sort_by(|(ma, _), (mb, _)| {
            mb.total_degree()
                .cmp(&ma.total_degree())
                .then_with(|| mb.cmp(ma))
        });
        for (i, (m, c)) in ts.iter().enumerate() {
            let neg = c.is_negative();
            let mag = c.abs();
            if i == 0 {
                if neg {
                    write!(f, "-")?;
                }
            } else if neg {
                write!(f, " - ")?;
            } else {
                write!(f, " + ")?;
            }
            let mono_str = {
                let parts: Vec<String> =
                    m.0.iter()
                        .map(|(v, e)| {
                            if *e == 1 {
                                format!("{v}")
                            } else {
                                format!("{v}^{e}")
                            }
                        })
                        .collect();
                parts.join("*")
            };
            if mono_str.is_empty() {
                write!(f, "{mag}")?;
            } else if mag.is_one() {
                write!(f, "{mono_str}")?;
            } else {
                write!(f, "{mag}*{mono_str}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::var;
    use iolb_numeric::rational::rat;
    use proptest::prelude::*;

    fn m() -> Var {
        var("pm")
    }
    fn n() -> Var {
        var("pn")
    }

    #[test]
    fn construction_and_display() {
        let p = Poly::var(m()) * Poly::var(m()) + Poly::int(2) * Poly::var(n()) - Poly::int(3);
        assert_eq!(format!("{p}"), "pm^2 + 2*pn - 3");
        assert_eq!(p.degree_in(m()), 2);
        assert_eq!(p.degree_in(n()), 1);
        assert_eq!(p.total_degree(), 2);
    }

    #[test]
    fn zero_normalization() {
        let p = Poly::var(m()) - Poly::var(m());
        assert!(p.is_zero());
        assert_eq!(format!("{p}"), "0");
        assert_eq!(p.num_terms(), 0);
    }

    #[test]
    fn eval_exact() {
        // (m+n)^2 at m=3, n=4 → 49
        let p = (Poly::var(m()) + Poly::var(n())).pow(2);
        assert_eq!(p.eval_ints(&[(m(), 3), (n(), 4)]), Rational::int(49));
    }

    #[test]
    fn subst_composition() {
        // p(m) = m^2 + 1; subst m := n - 1 → n^2 - 2n + 2
        let p = Poly::var(m()).pow(2) + Poly::one();
        let q = p.subst(m(), &(Poly::var(n()) - Poly::one()));
        let expect = Poly::var(n()).pow(2) - Poly::int(2) * Poly::var(n()) + Poly::int(2);
        assert_eq!(q, expect);
    }

    #[test]
    fn coeff_extraction() {
        // m^2*n + 3m^2 + n: coeff of m^2 is (n+3)
        let p = Poly::var(m()).pow(2) * Poly::var(n())
            + Poly::int(3) * Poly::var(m()).pow(2)
            + Poly::var(n());
        assert_eq!(p.coeff_of(m(), 2), Poly::var(n()) + Poly::int(3));
        assert_eq!(p.coeff_of(m(), 0), Poly::var(n()));
        assert_eq!(p.coeff_of(m(), 1), Poly::zero());
    }

    #[test]
    fn exact_division() {
        let a = Poly::var(m()).pow(2) - Poly::var(n()).pow(2);
        let b = Poly::var(m()) - Poly::var(n());
        let q = a.div_exact(&b).expect("divisible");
        assert_eq!(q, Poly::var(m()) + Poly::var(n()));
        // Non-exact division returns None.
        let c = Poly::var(m()) + Poly::one();
        assert!(a.div_exact(&c).is_none());
    }

    #[test]
    fn content_extraction() {
        // 4m^2n + 6mn → content 2, monomial mn
        let p = Poly::int(4) * Poly::var(m()).pow(2) * Poly::var(n())
            + Poly::int(6) * Poly::var(m()) * Poly::var(n());
        let (c, mono) = p.content();
        assert_eq!(c, rat(2, 1));
        assert_eq!(mono.exponent(m()), 1);
        assert_eq!(mono.exponent(n()), 1);
    }

    #[test]
    fn scale_and_neg() {
        let p = Poly::var(m()) + Poly::int(1);
        assert_eq!(p.scale(rat(1, 2)).eval_ints(&[(m(), 3)]), rat(2, 1));
        assert_eq!((-&p).eval_ints(&[(m(), 3)]), Rational::int(-4));
    }

    fn arb_poly(vs: [Var; 2]) -> impl Strategy<Value = Poly> {
        proptest::collection::vec((-4i128..=4, 0u32..=2, 0u32..=2), 0..5).prop_map(move |ts| {
            let mut p = Poly::zero();
            for (c, e0, e1) in ts {
                let mono = Monomial::var_pow(vs[0], e0).mul(&Monomial::var_pow(vs[1], e1));
                p = &p + &Poly::term(Rational::int(c), mono);
            }
            p
        })
    }

    proptest! {
        #[test]
        fn ring_axioms(a in arb_poly([var("pa"), var("pb")]),
                       b in arb_poly([var("pa"), var("pb")]),
                       c in arb_poly([var("pa"), var("pb")])) {
            prop_assert_eq!(&a + &b, &b + &a);
            prop_assert_eq!(&a * &b, &b * &a);
            prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
            prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
            prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
            prop_assert_eq!(&a - &a, Poly::zero());
        }

        #[test]
        fn eval_is_homomorphism(a in arb_poly([var("pa"), var("pb")]),
                                b in arb_poly([var("pa"), var("pb")]),
                                x in -5i128..5, y in -5i128..5) {
            let env = [(var("pa"), x), (var("pb"), y)];
            prop_assert_eq!((&a + &b).eval_ints(&env), a.eval_ints(&env) + b.eval_ints(&env));
            prop_assert_eq!((&a * &b).eval_ints(&env), a.eval_ints(&env) * b.eval_ints(&env));
        }

        #[test]
        fn div_exact_roundtrip(a in arb_poly([var("pa"), var("pb")]),
                               b in arb_poly([var("pa"), var("pb")])) {
            prop_assume!(!b.is_zero());
            let prod = &a * &b;
            let q = prod.div_exact(&b).expect("product is divisible");
            prop_assert_eq!(q, a);
        }

        #[test]
        fn subst_commutes_with_eval(a in arb_poly([var("pa"), var("pb")]),
                                    x in -4i128..4, y in -4i128..4) {
            // a[pa := pb+1] evaluated at pb=y equals a evaluated at pa=y+1, pb=y.
            let shifted = a.subst(var("pa"), &(Poly::var(var("pb")) + Poly::one()));
            let lhs = shifted.eval_ints(&[(var("pb"), y), (var("pa"), x)]);
            let rhs = a.eval_ints(&[(var("pa"), y + 1), (var("pb"), y)]);
            prop_assert_eq!(lhs, rhs);
        }
    }
}
