//! Globally interned symbolic variables.
//!
//! Bound formulas travel across crates (IR → derivation engine → bench
//! harness); a global interner keeps `Var("M")` identical everywhere without
//! threading a context object through every API.

use std::fmt;
use std::sync::{Mutex, OnceLock};

/// A symbolic variable (program parameter or summation index).
///
/// Two variables with the same name are the same variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

fn interner() -> &'static Mutex<Vec<String>> {
    static INTERNER: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(Vec::new()))
}

impl Var {
    /// Interns `name` and returns its variable.
    pub fn new(name: &str) -> Var {
        let mut table = interner().lock().expect("var interner poisoned");
        if let Some(i) = table.iter().position(|s| s == name) {
            Var(i as u32)
        } else {
            table.push(name.to_string());
            Var((table.len() - 1) as u32)
        }
    }

    /// The interned name.
    pub fn name(&self) -> String {
        interner().lock().expect("var interner poisoned")[self.0 as usize].clone()
    }

    /// Raw interner index (stable within a process).
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Convenience: interns `name`.
pub fn var(name: &str) -> Var {
    Var::new(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = Var::new("M__test_vars");
        let b = Var::new("M__test_vars");
        let c = Var::new("N__test_vars");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.name(), "M__test_vars");
        assert_eq!(c.name(), "N__test_vars");
    }

    #[test]
    fn display_uses_name() {
        let v = Var::new("S__test_vars");
        assert_eq!(format!("{v}"), "S__test_vars");
    }
}
