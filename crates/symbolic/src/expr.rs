//! Bound expression trees.
//!
//! Final I/O lower bounds mix polynomial algebra with operations that leave
//! the polynomial world: `√S` (classical K-partition bounds), `⌊|V|/U⌋`
//! (Theorem 1), and `max` (combining the large-S and small-S branches of
//! Theorem 5). [`Expr`] is a small closed-form expression language with
//! exact construction and `f64`/rational evaluation.

use crate::poly::Poly;
use crate::ratfunc::RatFunc;
use crate::vars::Var;
use iolb_numeric::Rational;
use std::fmt;
use std::sync::Arc;

/// A closed-form bound expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Exact rational constant.
    Const(Rational),
    /// A program parameter.
    Var(Var),
    /// Sum of sub-expressions.
    Add(Vec<Expr>),
    /// Product of sub-expressions.
    Mul(Vec<Expr>),
    /// Quotient.
    Div(Arc<Expr>, Arc<Expr>),
    /// Power with a rational exponent (`Pow(S, 1/2) = √S`).
    Pow(Arc<Expr>, Rational),
    /// Floor to an integer.
    Floor(Arc<Expr>),
    /// Maximum of sub-expressions.
    Max(Vec<Expr>),
    /// Minimum of sub-expressions.
    Min(Vec<Expr>),
}

impl Expr {
    /// Integer constant.
    pub fn int(n: i128) -> Expr {
        Expr::Const(Rational::int(n))
    }

    /// The zero expression.
    pub fn zero() -> Expr {
        Expr::int(0)
    }

    /// Parameter expression.
    pub fn var(v: Var) -> Expr {
        Expr::Var(v)
    }

    /// Lifts a polynomial into an expression.
    pub fn from_poly(p: &Poly) -> Expr {
        let mut sum = Vec::new();
        for (m, c) in p.terms() {
            let mut prod = Vec::new();
            if !c.is_one() || m.vars().next().is_none() {
                prod.push(Expr::Const(*c));
            }
            for v in m.vars() {
                let e = m.exponent(v);
                if e == 1 {
                    prod.push(Expr::Var(v));
                } else {
                    prod.push(Expr::Pow(Arc::new(Expr::Var(v)), Rational::int(e as i128)));
                }
            }
            sum.push(if prod.len() == 1 {
                prod.pop().unwrap()
            } else {
                Expr::Mul(prod)
            });
        }
        match sum.len() {
            0 => Expr::zero(),
            1 => sum.pop().unwrap(),
            _ => Expr::Add(sum),
        }
    }

    /// Lifts a rational function into an expression.
    pub fn from_ratfunc(f: &RatFunc) -> Expr {
        if let Some(p) = f.as_poly() {
            Expr::from_poly(p)
        } else {
            Expr::Div(
                Arc::new(Expr::from_poly(f.num())),
                Arc::new(Expr::from_poly(f.den())),
            )
        }
    }

    /// `self + other` with light constant folding.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        match (self, other) {
            (Expr::Const(a), Expr::Const(b)) => Expr::Const(a + b),
            (Expr::Const(z), e) | (e, Expr::Const(z)) if z.is_zero() => e,
            (Expr::Add(mut a), Expr::Add(b)) => {
                a.extend(b);
                Expr::Add(a)
            }
            (Expr::Add(mut a), e) => {
                a.push(e);
                Expr::Add(a)
            }
            (e, Expr::Add(mut b)) => {
                b.insert(0, e);
                Expr::Add(b)
            }
            (a, b) => Expr::Add(vec![a, b]),
        }
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        self.add(Expr::Const(-Rational::ONE).mul(other))
    }

    /// `self * other` with light constant folding.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        match (self, other) {
            (Expr::Const(a), Expr::Const(b)) => Expr::Const(a * b),
            (Expr::Const(z), _) | (_, Expr::Const(z)) if z.is_zero() => Expr::zero(),
            (Expr::Const(o), e) | (e, Expr::Const(o)) if o.is_one() => e,
            (Expr::Mul(mut a), Expr::Mul(b)) => {
                a.extend(b);
                Expr::Mul(a)
            }
            (Expr::Mul(mut a), e) => {
                a.push(e);
                Expr::Mul(a)
            }
            (e, Expr::Mul(mut b)) => {
                b.insert(0, e);
                Expr::Mul(b)
            }
            (a, b) => Expr::Mul(vec![a, b]),
        }
    }

    /// `self / other`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        Expr::Div(Arc::new(self), Arc::new(other))
    }

    /// `self ^ exp` for a rational exponent (folds rational constants with
    /// integer exponents, `x^1`, and `1^q`).
    pub fn pow(self, exp: Rational) -> Expr {
        if exp.is_one() {
            return self;
        }
        if let Expr::Const(c) = &self {
            if c.is_one() {
                return Expr::int(1);
            }
            if exp.is_integer() {
                return Expr::Const(c.pow(exp.to_integer() as i32));
            }
        }
        Expr::Pow(Arc::new(self), exp)
    }

    /// `√self`.
    pub fn sqrt(self) -> Expr {
        self.pow(Rational::new(1, 2))
    }

    /// `⌊self⌋`.
    pub fn floor(self) -> Expr {
        Expr::Floor(Arc::new(self))
    }

    /// `max(self, other)`.
    pub fn max(self, other: Expr) -> Expr {
        match (self, other) {
            (Expr::Max(mut a), Expr::Max(b)) => {
                a.extend(b);
                Expr::Max(a)
            }
            (Expr::Max(mut a), e) => {
                a.push(e);
                Expr::Max(a)
            }
            (a, b) => Expr::Max(vec![a, b]),
        }
    }

    /// Evaluates to `f64` with the given parameter environment.
    ///
    /// # Panics
    /// Panics on unbound variables.
    pub fn eval_f64(&self, env: &dyn Fn(Var) -> Option<f64>) -> f64 {
        match self {
            Expr::Const(c) => c.to_f64(),
            Expr::Var(v) => {
                env(*v).unwrap_or_else(|| panic!("unbound variable {v} in Expr::eval_f64"))
            }
            Expr::Add(es) => es.iter().map(|e| e.eval_f64(env)).sum(),
            Expr::Mul(es) => es.iter().map(|e| e.eval_f64(env)).product(),
            Expr::Div(a, b) => a.eval_f64(env) / b.eval_f64(env),
            Expr::Pow(a, e) => a.eval_f64(env).powf(e.to_f64()),
            Expr::Floor(a) => a.eval_f64(env).floor(),
            Expr::Max(es) => es
                .iter()
                .map(|e| e.eval_f64(env))
                .fold(f64::NEG_INFINITY, f64::max),
            Expr::Min(es) => es
                .iter()
                .map(|e| e.eval_f64(env))
                .fold(f64::INFINITY, f64::min),
        }
    }

    /// Evaluates over an integer environment slice.
    pub fn eval_ints_f64(&self, env: &[(Var, i128)]) -> f64 {
        self.eval_f64(&|v| env.iter().find(|(w, _)| *w == v).map(|(_, x)| *x as f64))
    }

    /// Exact rational evaluation; `None` when the expression uses a
    /// non-integer power (e.g. `√S`) or divides by zero.
    pub fn eval_exact(&self, env: &[(Var, Rational)]) -> Option<Rational> {
        match self {
            Expr::Const(c) => Some(*c),
            Expr::Var(v) => env.iter().find(|(w, _)| w == v).map(|(_, x)| *x),
            Expr::Add(es) => {
                let mut acc = Rational::ZERO;
                for e in es {
                    acc += e.eval_exact(env)?;
                }
                Some(acc)
            }
            Expr::Mul(es) => {
                let mut acc = Rational::ONE;
                for e in es {
                    acc *= e.eval_exact(env)?;
                }
                Some(acc)
            }
            Expr::Div(a, b) => {
                let d = b.eval_exact(env)?;
                if d.is_zero() {
                    return None;
                }
                Some(a.eval_exact(env)? / d)
            }
            Expr::Pow(a, e) => {
                if !e.is_integer() {
                    return None;
                }
                let base = a.eval_exact(env)?;
                let ei = e.to_integer();
                if ei < 0 && base.is_zero() {
                    return None;
                }
                Some(base.pow(ei as i32))
            }
            Expr::Floor(a) => Some(Rational::int(a.eval_exact(env)?.floor())),
            Expr::Max(es) => {
                let mut best: Option<Rational> = None;
                for e in es {
                    let v = e.eval_exact(env)?;
                    best = Some(match best {
                        None => v,
                        Some(b) => b.max(v),
                    });
                }
                best
            }
            Expr::Min(es) => {
                let mut best: Option<Rational> = None;
                for e in es {
                    let v = e.eval_exact(env)?;
                    best = Some(match best {
                        None => v,
                        Some(b) => b.min(v),
                    });
                }
                best
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn braced(e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match e {
                Expr::Const(_) | Expr::Var(_) | Expr::Floor(_) | Expr::Pow(_, _) => {
                    write!(f, "{e}")
                }
                _ => write!(f, "({e})"),
            }
        }
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Add(es) => {
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            Expr::Mul(es) => {
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, "·")?;
                    }
                    braced(e, f)?;
                }
                Ok(())
            }
            Expr::Div(a, b) => {
                braced(a, f)?;
                write!(f, " / ")?;
                braced(b, f)
            }
            Expr::Pow(a, e) => {
                if *e == Rational::new(1, 2) {
                    write!(f, "√")?;
                    return braced(a, f);
                }
                braced(a, f)?;
                write!(f, "^{e}")
            }
            Expr::Floor(a) => write!(f, "⌊{a}⌋"),
            Expr::Max(es) => {
                write!(f, "max(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Min(es) => {
                write!(f, "min(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::var;
    use iolb_numeric::rational::rat;

    #[test]
    fn mgs_bound_shape_evaluates() {
        // M²N(N-1) / (8(S+M)) at M=100, N=10, S=50
        let (m, n, s) = (var("em"), var("en"), var("es"));
        let num = Expr::var(m)
            .pow(Rational::TWO)
            .mul(Expr::var(n))
            .mul(Expr::var(n).sub(Expr::int(1)));
        let den = Expr::int(8).mul(Expr::var(s).add(Expr::var(m)));
        let bound = num.div(den);
        let v = bound.eval_ints_f64(&[(m, 100), (n, 10), (s, 50)]);
        assert!((v - (100.0f64 * 100.0 * 10.0 * 9.0) / (8.0 * 150.0)).abs() < 1e-9);
        let exact = bound
            .eval_exact(&[
                (m, Rational::int(100)),
                (n, Rational::int(10)),
                (s, Rational::int(50)),
            ])
            .unwrap();
        assert_eq!(exact, Rational::new(100 * 100 * 10 * 9, 8 * 150));
    }

    #[test]
    fn sqrt_bound_evaluates_f64_only() {
        let s = var("es2");
        let e = Expr::int(100).div(Expr::var(s).sqrt());
        assert!((e.eval_ints_f64(&[(s, 25)]) - 20.0).abs() < 1e-12);
        assert_eq!(e.eval_exact(&[(s, Rational::int(25))]), None);
    }

    #[test]
    fn floor_and_max() {
        let s = var("es3");
        let e = Expr::var(s).div(Expr::int(3)).floor();
        assert_eq!(
            e.eval_exact(&[(s, Rational::int(10))]),
            Some(Rational::int(3))
        );
        let mx = Expr::var(s).max(Expr::int(7));
        assert_eq!(
            mx.eval_exact(&[(s, Rational::int(3))]),
            Some(Rational::int(7))
        );
        assert_eq!(
            mx.eval_exact(&[(s, Rational::int(9))]),
            Some(Rational::int(9))
        );
    }

    #[test]
    fn from_poly_roundtrip() {
        let (m, n) = (var("em4"), var("en4"));
        let p = Poly::var(m).pow(2) * Poly::var(n) - Poly::int(3) * Poly::var(n) + Poly::int(7);
        let e = Expr::from_poly(&p);
        for mm in 1..5i128 {
            for nn in 1..5i128 {
                let pe = p.eval_ints(&[(m, mm), (n, nn)]);
                let ee = e
                    .eval_exact(&[(m, Rational::int(mm)), (n, Rational::int(nn))])
                    .unwrap();
                assert_eq!(pe, ee);
            }
        }
    }

    #[test]
    fn from_ratfunc_roundtrip() {
        let k = var("ek5");
        let f = RatFunc::new(
            Poly::var(k).pow(2) + Poly::int(2) * Poly::var(k),
            Poly::var(k) + Poly::one(),
        );
        let e = Expr::from_ratfunc(&f);
        for kk in 1..10i128 {
            assert_eq!(
                e.eval_exact(&[(k, Rational::int(kk))]).unwrap(),
                f.eval_ints(&[(k, kk)]).unwrap()
            );
        }
    }

    #[test]
    fn folding_rules() {
        assert_eq!(Expr::int(2).add(Expr::int(3)), Expr::int(5));
        assert_eq!(Expr::int(2).mul(Expr::int(3)), Expr::int(6));
        let v = Expr::var(var("ef6"));
        assert_eq!(Expr::int(0).add(v.clone()), v);
        assert_eq!(Expr::int(1).mul(v.clone()), v);
        assert_eq!(Expr::int(0).mul(v.clone()), Expr::zero());
        assert_eq!(
            Expr::Const(rat(1, 2)).add(Expr::Const(rat(1, 2))),
            Expr::int(1)
        );
    }

    #[test]
    fn display_readable() {
        let (m, s) = (var("em7"), var("es7"));
        let e = Expr::var(m)
            .pow(Rational::TWO)
            .div(Expr::var(s).sqrt())
            .floor();
        assert_eq!(format!("{e}"), "⌊em7^2 / √es7⌋");
    }
}
