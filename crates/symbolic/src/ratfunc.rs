//! Rational functions (quotients of polynomials).
//!
//! Hourglass bounds have shapes like `U(K) = K²/W + 2K` and the wrapped
//! bound `(K-S)·|V| / U(K)`: rational functions of the parameters. Full
//! multivariate GCD simplification is overkill; we normalize by rational /
//! monomial content and by exact divisibility, which keeps every formula in
//! this workspace in its natural reduced form.

use crate::poly::Poly;
use crate::vars::Var;
use iolb_numeric::Rational;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A rational function `num / den` with `den ≠ 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatFunc {
    num: Poly,
    den: Poly,
}

impl RatFunc {
    /// Builds `num / den`, normalizing contents and exact common factors.
    ///
    /// # Panics
    /// Panics if `den` is the zero polynomial.
    pub fn new(num: Poly, den: Poly) -> RatFunc {
        assert!(!den.is_zero(), "rational function with zero denominator");
        let mut rf = RatFunc { num, den };
        rf.normalize();
        rf
    }

    /// The polynomial `p / 1`.
    pub fn from_poly(p: Poly) -> RatFunc {
        RatFunc {
            num: p,
            den: Poly::one(),
        }
    }

    /// Constant rational function.
    pub fn constant(c: Rational) -> RatFunc {
        RatFunc::from_poly(Poly::constant(c))
    }

    /// The zero function.
    pub fn zero() -> RatFunc {
        RatFunc::from_poly(Poly::zero())
    }

    /// The one function.
    pub fn one() -> RatFunc {
        RatFunc::from_poly(Poly::one())
    }

    /// Single-variable rational function `v`.
    pub fn var(v: Var) -> RatFunc {
        RatFunc::from_poly(Poly::var(v))
    }

    /// Numerator after normalization.
    pub fn num(&self) -> &Poly {
        &self.num
    }

    /// Denominator after normalization.
    pub fn den(&self) -> &Poly {
        &self.den
    }

    /// True iff the function is identically zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns the numerator if the denominator is 1.
    pub fn as_poly(&self) -> Option<&Poly> {
        if self.den == Poly::one() {
            Some(&self.num)
        } else {
            None
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on the zero function.
    pub fn recip(&self) -> RatFunc {
        assert!(!self.is_zero(), "reciprocal of zero rational function");
        RatFunc::new(self.den.clone(), self.num.clone())
    }

    /// Substitutes `v := value` (a polynomial) in numerator and denominator.
    pub fn subst(&self, v: Var, value: &Poly) -> RatFunc {
        RatFunc::new(self.num.subst(v, value), self.den.subst(v, value))
    }

    /// Exact evaluation; `None` when the denominator vanishes.
    pub fn eval_ints(&self, env: &[(Var, i128)]) -> Option<Rational> {
        let d = self.den.eval_ints(env);
        if d.is_zero() {
            return None;
        }
        Some(self.num.eval_ints(env) / d)
    }

    /// Lossy `f64` evaluation.
    pub fn eval_f64(&self, env: &dyn Fn(Var) -> Option<f64>) -> f64 {
        self.num.eval_f64(env) / self.den.eval_f64(env)
    }

    fn normalize(&mut self) {
        if self.num.is_zero() {
            self.den = Poly::one();
            return;
        }
        // Cancel exact polynomial divisibility (covers all cases this
        // workspace generates: common factors like (M-N), S, K...).
        if let Some(q) = self.num.div_exact(&self.den) {
            self.num = q;
            self.den = Poly::one();
        } else if let Some(q) = self.den.div_exact(&self.num) {
            // num/den = 1 / (den/num)
            self.den = q;
            self.num = Poly::one();
        }
        // Cancel rational and monomial content.
        let (cn, mn) = self.num.content();
        let (cd, md) = self.den.content();
        let mono = mn.gcd(&md);
        let scale = cd / cn; // multiply num by 1/cn*cd⁻¹… handled below
        let _ = scale;
        // Divide both by content monomial.
        let mono_poly = Poly::term(Rational::ONE, mono);
        if let (Some(n2), Some(d2)) = (
            self.num.div_exact(&mono_poly),
            self.den.div_exact(&mono_poly),
        ) {
            self.num = n2;
            self.den = d2;
        }
        // Normalize rational content of the denominator to make it monic-ish
        // (leading coefficient content 1): divide both by cd.
        let (cd, _) = self.den.content();
        if !cd.is_zero() && !cd.is_one() {
            self.num = self.num.scale(cd.recip());
            self.den = self.den.scale(cd.recip());
        }
    }
}

impl Add for &RatFunc {
    type Output = RatFunc;
    fn add(self, rhs: &RatFunc) -> RatFunc {
        RatFunc::new(
            &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Sub for &RatFunc {
    type Output = RatFunc;
    fn sub(self, rhs: &RatFunc) -> RatFunc {
        self + &(-rhs)
    }
}

impl Mul for &RatFunc {
    type Output = RatFunc;
    fn mul(self, rhs: &RatFunc) -> RatFunc {
        RatFunc::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &RatFunc {
    type Output = RatFunc;
    // Division via the multiplicative inverse is the intended arithmetic.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: &RatFunc) -> RatFunc {
        self * &rhs.recip()
    }
}

impl Neg for &RatFunc {
    type Output = RatFunc;
    fn neg(self) -> RatFunc {
        RatFunc {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

macro_rules! owned_ops {
    ($($trait:ident :: $m:ident),*) => {$(
        impl $trait for RatFunc {
            type Output = RatFunc;
            fn $m(self, rhs: RatFunc) -> RatFunc { $trait::$m(&self, &rhs) }
        }
    )*};
}
owned_ops!(Add::add, Sub::sub, Mul::mul, Div::div);

impl Neg for RatFunc {
    type Output = RatFunc;
    fn neg(self) -> RatFunc {
        -&self
    }
}

impl fmt::Display for RatFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == Poly::one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "({}) / ({})", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::var;
    use proptest::prelude::*;

    fn k() -> Var {
        var("rk")
    }
    fn w() -> Var {
        var("rw")
    }

    #[test]
    fn hourglass_u_of_k() {
        // U(K) = K²/W + 2K = (K² + 2KW) / W = K(K + 2W)/W
        let u = RatFunc::new(Poly::var(k()).pow(2), Poly::var(w()))
            + RatFunc::from_poly(Poly::int(2) * Poly::var(k()));
        assert_eq!(u.eval_ints(&[(k(), 10), (w(), 5)]), Some(Rational::int(40)));
        // 100/5 + 20 = 40
    }

    #[test]
    fn exact_cancellation() {
        // (K² - W²)/(K - W) = K + W
        let f = RatFunc::new(
            Poly::var(k()).pow(2) - Poly::var(w()).pow(2),
            Poly::var(k()) - Poly::var(w()),
        );
        assert_eq!(f.as_poly(), Some(&(Poly::var(k()) + Poly::var(w()))));
    }

    #[test]
    fn monomial_content_cancellation() {
        // (2K²W)/(4KW²) = K/(2W)
        let f = RatFunc::new(
            Poly::int(2) * Poly::var(k()).pow(2) * Poly::var(w()),
            Poly::int(4) * Poly::var(k()) * Poly::var(w()).pow(2),
        );
        assert_eq!(f.eval_ints(&[(k(), 6), (w(), 3)]), Some(Rational::int(1)));
        assert_eq!(f.num().total_degree(), 1);
        assert_eq!(f.den().total_degree(), 1);
    }

    #[test]
    fn zero_denominator_eval_is_none() {
        let f = RatFunc::new(Poly::one(), Poly::var(k()) - Poly::int(3));
        assert_eq!(f.eval_ints(&[(k(), 3)]), None);
        assert_eq!(f.eval_ints(&[(k(), 4)]), Some(Rational::ONE));
    }

    #[test]
    fn display_forms() {
        let f = RatFunc::new(Poly::var(k()), Poly::var(w()) + Poly::one());
        assert_eq!(format!("{f}"), "(rk) / (rw + 1)");
        let g = RatFunc::from_poly(Poly::var(k()));
        assert_eq!(format!("{g}"), "rk");
    }

    fn arb_rf() -> impl Strategy<Value = RatFunc> {
        (
            proptest::collection::vec((-3i128..=3, 0u32..=2), 1..3),
            proptest::collection::vec((-3i128..=3, 0u32..=2), 1..3),
        )
            .prop_filter_map("nonzero denominator", |(ns, ds)| {
                let build = |ts: &[(i128, u32)]| {
                    let mut p = Poly::zero();
                    for &(c, e) in ts {
                        p = &p + &(Poly::int(c) * Poly::var(var("rp")).pow(e));
                    }
                    p
                };
                let den = build(&ds);
                if den.is_zero() {
                    None
                } else {
                    Some(RatFunc::new(build(&ns), den))
                }
            })
    }

    proptest! {
        #[test]
        fn field_ops_consistent_with_eval(a in arb_rf(), b in arb_rf(), x in 4i128..20) {
            let env = [(var("rp"), x)];
            let (ea, eb) = (a.eval_ints(&env), b.eval_ints(&env));
            prop_assume!(ea.is_some() && eb.is_some());
            let (ea, eb) = (ea.unwrap(), eb.unwrap());
            if let Some(v) = (&a + &b).eval_ints(&env) {
                prop_assert_eq!(v, ea + eb);
            }
            if let Some(v) = (&a * &b).eval_ints(&env) {
                prop_assert_eq!(v, ea * eb);
            }
            if !b.is_zero() && !eb.is_zero() {
                if let Some(v) = (&a / &b).eval_ints(&env) {
                    prop_assert_eq!(v, ea / eb);
                }
            }
        }
    }
}
