//! Faulhaber-style symbolic summation.
//!
//! Counting statement instances over affine loop nests — the job barvinok
//! does for IOLB — reduces, for the kernel class in the paper, to iterated
//! closed-form summation of polynomials with polynomial bounds:
//!
//! `|{(k,j,i) : 0≤k<N, k<j<N, 0≤i<M}| = Σ_k Σ_j Σ_i 1 = M·N(N-1)/2`.
//!
//! [`power_sum`] builds the classical Faulhaber polynomials
//! `S_p(n) = Σ_{t=0}^{n} t^p`; [`sum_over`] sums an arbitrary polynomial
//! over an inclusive polynomial range.
//!
//! **Validity caveat** (standard in polyhedral counting): the closed form
//! agrees with the concrete sum whenever `hi ≥ lo - 1` (empty ranges sum to
//! zero); callers must ensure parameter regimes keep inner ranges
//! non-degenerate, which the tests cross-check by brute force.

use crate::poly::Poly;
use crate::vars::Var;
use iolb_numeric::{binomial, Rational};

/// Returns `S_p(n) = Σ_{t=0}^{n} t^p` as a polynomial in the variable `n`.
///
/// Computed from the telescoping identity
/// `(n+1)^{p+1} = Σ_{k=0}^{p} C(p+1,k) · S_k(n)`, solved iteratively — no
/// precomputed Bernoulli table needed, exact for any `p`.
pub fn power_sum(p: u32, n: Var) -> Poly {
    let mut sums: Vec<Poly> = Vec::with_capacity(p as usize + 1);
    let np1 = Poly::var(n) + Poly::one();
    for q in 0..=p {
        // S_q = [ (n+1)^{q+1} - Σ_{k<q} C(q+1,k) S_k ] / (q+1)
        let mut rhs = np1.pow(q + 1);
        for (k, sk) in sums.iter().enumerate() {
            let c = Rational::int(binomial(q + 1, k as u32));
            rhs = &rhs - &sk.scale(c);
        }
        sums.push(rhs.scale(Rational::new(1, (q + 1) as i128)));
    }
    sums.pop().expect("at least one power sum computed")
}

/// Symbolic `Σ_{v = lo}^{hi} p` (inclusive bounds).
///
/// `lo` and `hi` must not involve `v`. The result is exact whenever
/// `hi ≥ lo - 1` at evaluation time.
pub fn sum_over(p: &Poly, v: Var, lo: &Poly, hi: &Poly) -> Poly {
    assert_eq!(lo.degree_in(v), 0, "lower bound must not involve {v}");
    assert_eq!(hi.degree_in(v), 0, "upper bound must not involve {v}");
    let mut out = Poly::zero();
    let deg = p.degree_in(v);
    // Fresh internal variable for the Faulhaber polynomials.
    let t = Var::new("__faulhaber_n");
    let lo_m1 = lo - &Poly::one();
    for d in 0..=deg {
        let coeff = p.coeff_of(v, d);
        if coeff.is_zero() {
            continue;
        }
        let s = power_sum(d, t);
        let upper = s.subst(t, hi);
        let lower = s.subst(t, &lo_m1);
        out = &out + &(&coeff * &(&upper - &lower));
    }
    out
}

/// Symbolic `Σ_{v = lo}^{hi - 1} p` (half-open upper bound), matching the
/// `for (v = lo; v < hi; v++)` loops of the paper's kernels.
pub fn sum_half_open(p: &Poly, v: Var, lo: &Poly, hi_exclusive: &Poly) -> Poly {
    sum_over(p, v, lo, &(hi_exclusive - &Poly::one()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::var;
    use proptest::prelude::*;

    #[test]
    fn classical_faulhaber_forms() {
        let n = var("fn");
        // S_0(n) = n + 1 (t = 0..=n)
        assert_eq!(power_sum(0, n), Poly::var(n) + Poly::one());
        // S_1(n) = n(n+1)/2
        let s1 = power_sum(1, n);
        let expect = (Poly::var(n) * (Poly::var(n) + Poly::one())).scale(Rational::new(1, 2));
        assert_eq!(s1, expect);
        // S_2(n) = n(n+1)(2n+1)/6
        let s2 = power_sum(2, n);
        let expect = (Poly::var(n)
            * (Poly::var(n) + Poly::one())
            * (Poly::int(2) * Poly::var(n) + Poly::one()))
        .scale(Rational::new(1, 6));
        assert_eq!(s2, expect);
        // S_3(n) = (n(n+1)/2)^2
        let s3 = power_sum(3, n);
        assert_eq!(s3, s1.pow(2));
    }

    #[test]
    fn sum_of_constant_over_range() {
        // Σ_{i=a}^{b} 1 = b - a + 1
        let i = var("fi");
        let a = Poly::var(var("fa"));
        let b = Poly::var(var("fb"));
        let s = sum_over(&Poly::one(), i, &a, &b);
        assert_eq!(s, &(&b - &a) + &Poly::one());
    }

    #[test]
    fn mgs_su_instance_count() {
        // |{(k,j,i) : 0 ≤ k < N, k+1 ≤ j < N, 0 ≤ i < M}| = M·N(N-1)/2.
        let (k, j, i) = (var("fk"), var("fj"), var("fi"));
        let (mm, nn) = (var("fM"), var("fN"));
        let inner = sum_half_open(&Poly::one(), i, &Poly::zero(), &Poly::var(mm));
        let mid = sum_half_open(&inner, j, &(Poly::var(k) + Poly::one()), &Poly::var(nn));
        let outer = sum_half_open(&mid, k, &Poly::zero(), &Poly::var(nn));
        let expect = (Poly::var(mm) * Poly::var(nn) * (Poly::var(nn) - Poly::one()))
            .scale(Rational::new(1, 2));
        assert_eq!(outer, expect);
    }

    #[test]
    fn a2v_su_instance_count() {
        // Σ_{k=0}^{N-1} (N-1-k)(M-1-k) = N(N-1)(3M-N-1)/6 (verified
        // against the closed form computed in the derivation notes).
        let k = var("fk2");
        let (mm, nn) = (var("fM2"), var("fN2"));
        let term = (Poly::var(nn) - Poly::one() - Poly::var(k))
            * (Poly::var(mm) - Poly::one() - Poly::var(k));
        let s = sum_half_open(&term, k, &Poly::zero(), &Poly::var(nn));
        let expect = (Poly::var(nn)
            * (Poly::var(nn) - Poly::one())
            * (Poly::int(3) * Poly::var(mm) - Poly::var(nn) - Poly::one()))
        .scale(Rational::new(1, 6));
        assert_eq!(s, expect);
    }

    #[test]
    fn empty_range_evaluates_to_zero() {
        // Σ_{i=5}^{4} 1 = 0: formula gives b - a + 1 = 0 exactly at hi = lo-1.
        let i = var("fi3");
        let s = sum_over(&Poly::one(), i, &Poly::int(5), &Poly::int(4));
        assert_eq!(s.eval_ints(&[]), Rational::ZERO);
    }

    proptest! {
        #[test]
        fn faulhaber_matches_bruteforce(p in 0u32..=6, n in 0i128..40) {
            let v = var("fbf");
            let s = power_sum(p, v);
            let symbolic = s.eval_ints(&[(v, n)]);
            let brute: i128 = (0..=n).map(|t| t.pow(p)).sum();
            prop_assert_eq!(symbolic, Rational::int(brute));
        }

        #[test]
        fn sum_over_matches_bruteforce(
            coeffs in proptest::collection::vec(-3i128..=3, 1..4),
            lo in -5i128..5,
            len in 0i128..12,
        ) {
            let v = var("fso");
            let mut p = Poly::zero();
            for (d, &c) in coeffs.iter().enumerate() {
                p = &p + &(Poly::int(c) * Poly::var(v).pow(d as u32));
            }
            let hi = lo + len - 1; // possibly empty when len = 0
            let s = sum_over(&p, v, &Poly::int(lo), &Poly::int(hi));
            let symbolic = s.eval_ints(&[]);
            let brute: Rational = (lo..=hi)
                .map(|t| p.eval_ints(&[(v, t)]))
                .fold(Rational::ZERO, |a, b| a + b);
            prop_assert_eq!(symbolic, brute);
        }

        #[test]
        fn nested_triangular_counts(nn in 1i128..15, mm in 1i128..15) {
            // Σ_{k<N} Σ_{j=k+1..N} Σ_{i<M} 1 computed symbolically equals
            // brute-force enumeration.
            let (k, j, i) = (var("fk4"), var("fj4"), var("fi4"));
            let (vm, vn) = (var("fM4"), var("fN4"));
            let inner = sum_half_open(&Poly::one(), i, &Poly::zero(), &Poly::var(vm));
            let mid = sum_half_open(&inner, j, &(Poly::var(k) + Poly::one()), &Poly::var(vn));
            let outer = sum_half_open(&mid, k, &Poly::zero(), &Poly::var(vn));
            let symbolic = outer.eval_ints(&[(vm, mm), (vn, nn)]);
            let mut brute = 0i128;
            for kk in 0..nn {
                for _jj in kk + 1..nn {
                    brute += mm;
                }
            }
            prop_assert_eq!(symbolic, Rational::int(brute));
        }
    }
}
