//! Symbolic machinery for parametric I/O bounds.
//!
//! IOLB derives bounds that are *functions of the program parameters*
//! (matrix sizes `M`, `N`, cache size `S`…). This crate provides the pieces
//! needed to manipulate such formulas exactly:
//!
//! * [`Var`] — globally interned symbolic variables,
//! * [`Poly`] — sparse multivariate polynomials over exact rationals,
//! * [`summation`] — Faulhaber-based symbolic summation `Σ_{v=lo..=hi} p(v)`,
//!   the workspace's replacement for barvinok-style parametric counting,
//! * [`RatFunc`] — quotients of polynomials (bounds like `K²/W + 2K`),
//! * [`Expr`] — bound expression trees with `√`, `⌊·⌋`, `max`: the final
//!   shape of a derived lower bound such as `S·⌊|V|/U(2S)⌋`.

pub mod expr;
pub mod poly;
pub mod ratfunc;
pub mod summation;
pub mod vars;

pub use expr::Expr;
pub use poly::Poly;
pub use ratfunc::RatFunc;
pub use summation::{power_sum, sum_over};
pub use vars::Var;

pub use iolb_numeric::Rational;
