//! Property tests on derived bounds: shape invariants that must hold for
//! any sensible I/O lower bound.

use iolb_core::report::analyze_kernel;
use iolb_core::s_var;
use iolb_symbolic::Var;
use proptest::prelude::*;

fn mgs_report() -> iolb_core::report::KernelReport {
    analyze_kernel(&iolb_kernels::mgs::program(), "MGS", "SU").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bounds weaken (decrease) as the fast memory grows.
    #[test]
    fn bounds_decrease_in_s(mexp in 8u32..14, nshift in 1u32..4, sexp in 4u32..10) {
        let report = mgs_report();
        let m = 1i128 << mexp;
        let n = m >> nshift;
        let s1 = 1i128 << sexp;
        let s2 = s1 * 2;
        let env = |s: i128| vec![(Var::new("M"), m), (Var::new("N"), n), (s_var(), s)];
        let at = |s: i128| report.new.main_tool.eval_ints_f64(&env(s));
        prop_assert!(at(s2) <= at(s1) + 1e-6);
        let old = |s: i128| report.old.expr.eval_ints_f64(&env(s));
        prop_assert!(old(s2) <= old(s1) + 1e-6);
    }

    /// Bounds grow with the problem size (more work moves more data).
    #[test]
    fn bounds_increase_in_problem_size(mexp in 8u32..13, sexp in 4u32..8) {
        let report = mgs_report();
        let s = 1i128 << sexp;
        let at = |m: i128, n: i128| {
            report.new.main_tool.eval_ints_f64(&[
                (Var::new("M"), m),
                (Var::new("N"), n),
                (s_var(), s),
            ])
        };
        let m = 1i128 << mexp;
        prop_assert!(at(2 * m, m / 4) >= at(m, m / 4));
        prop_assert!(at(m, m / 2) >= at(m, m / 4));
    }

    /// The floored Theorem-1 evaluation never exceeds the closed formula,
    /// and the hourglass bound beats the classical one whenever both are
    /// meaningful (S well below the dominant term's validity edge).
    #[test]
    fn floored_versions_are_conservative(mexp in 8u32..12, sexp in 5u32..9) {
        let report = mgs_report();
        let m = 1i128 << mexp;
        let n = m / 4;
        let s = 1i128 << sexp;
        let env = [(Var::new("M"), m), (Var::new("N"), n)];
        let fl = report.new.eval_floor(&env, s);
        let formula = report.new.combined.eval_ints_f64(&[
            (Var::new("M"), m),
            (Var::new("N"), n),
            (s_var(), s),
        ]);
        prop_assert!(fl <= formula + 1e-6);
        let fl_old = report.old.eval_floor(&env, s);
        let formula_old = report.old.expr.eval_ints_f64(&[
            (Var::new("M"), m),
            (Var::new("N"), n),
            (s_var(), s),
        ]);
        prop_assert!(fl_old <= formula_old + 1e-6);
    }
}
