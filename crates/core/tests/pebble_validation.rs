//! Model-level validation: every derived lower bound must sit at or below
//! the loads of a *legal* red-white pebble game play on the exact CDAG.
//!
//! A violation here would mean the derivation (or its transcription) is
//! unsound — this is the reproduction's ground-truth check, run for every
//! kernel across a grid of (problem size, S).

use iolb_cdag::{build_cdag, PebbleGame};
use iolb_core::hourglass::SplitChoice;
use iolb_core::{hourglass, theorems, Analysis};
use iolb_symbolic::Var;

struct Case {
    name: &'static str,
    program: iolb_ir::Program,
    hourglass_stmt: Option<&'static str>,
    params: Vec<i64>,
    env: Vec<(Var, i128)>,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "MGS",
            program: iolb_kernels::mgs::program(),
            hourglass_stmt: Some("SU"),
            params: vec![12, 6],
            env: vec![(Var::new("M"), 12), (Var::new("N"), 6)],
        },
        Case {
            name: "QR HH A2V",
            program: iolb_kernels::householder::a2v_program(),
            hourglass_stmt: Some("SU"),
            params: vec![14, 6],
            env: vec![(Var::new("M"), 14), (Var::new("N"), 6)],
        },
        Case {
            name: "QR HH V2Q",
            program: iolb_kernels::householder::v2q_program(),
            hourglass_stmt: Some("SU"),
            params: vec![14, 6],
            env: vec![(Var::new("M"), 14), (Var::new("N"), 6)],
        },
        Case {
            name: "GEBD2",
            program: iolb_kernels::gebd2::program(),
            hourglass_stmt: Some("SU"),
            params: vec![12, 6],
            env: vec![(Var::new("M"), 12), (Var::new("N"), 6)],
        },
        Case {
            name: "GEHD2",
            program: iolb_kernels::gehd2::program(),
            hourglass_stmt: Some("SU1"),
            params: vec![11],
            env: vec![(Var::new("N"), 11), (theorems::split_var(), 5)],
        },
        Case {
            name: "GEMM",
            program: iolb_kernels::gemm::program(),
            hourglass_stmt: None,
            params: vec![8, 8, 8],
            env: vec![(Var::new("M"), 8), (Var::new("N"), 8), (Var::new("K"), 8)],
        },
    ]
}

#[test]
fn bounds_never_exceed_pebble_plays() {
    let mut nontrivial = 0usize;
    for case in cases() {
        let analysis = Analysis::run(&case.program, std::slice::from_ref(&case.params)).unwrap();
        let stmt_name = case.hourglass_stmt.unwrap_or("SU");
        let stmt = case.program.stmt_id(stmt_name).unwrap();
        let classical = analysis.classical_bound(stmt);
        let hg = analysis.detect_hourglass(stmt).map(|pat| {
            let split = if case.name == "GEHD2" {
                SplitChoice::At(iolb_symbolic::Poly::var(theorems::split_var()))
            } else {
                SplitChoice::None
            };
            hourglass::derive(&case.program, &pat, &split)
        });
        assert_eq!(
            hg.is_some(),
            case.hourglass_stmt.is_some(),
            "{}: hourglass detection mismatch",
            case.name
        );

        let cdag = build_cdag(&case.program, &case.params);
        let min_s = cdag.max_in_degree() + 1;
        for s in [min_s, min_s + 2, min_s + 6, min_s + 14, min_s + 30] {
            let game = PebbleGame::new(&cdag, s);
            let play = game
                .best_play()
                .unwrap_or_else(|e| panic!("{}: pebble play failed at S={s}: {e}", case.name));
            let lb_classical = classical.eval_floor(&case.env, s as i128);
            let lb_hourglass = hg
                .as_ref()
                .map(|b| b.eval_floor(&case.env, s as i128))
                .unwrap_or(0.0);
            let lb = lb_classical.max(lb_hourglass);
            assert!(
                lb <= play.loads as f64 + 1e-9,
                "{}: S={s}: bound {lb} exceeds pebble loads {} (classical {lb_classical}, hourglass {lb_hourglass})",
                case.name,
                play.loads
            );
            if lb > 0.0 {
                nontrivial += 1;
            }
        }
    }
    assert!(
        nontrivial >= 10,
        "validation must exercise non-trivial bounds (got {nontrivial})"
    );
}

#[test]
fn hourglass_certification_passes_for_all_kernels() {
    for case in cases() {
        let Some(stmt_name) = case.hourglass_stmt else {
            continue;
        };
        let analysis = Analysis::run(&case.program, std::slice::from_ref(&case.params)).unwrap();
        let stmt = case.program.stmt_id(stmt_name).unwrap();
        let pat = analysis
            .detect_hourglass(stmt)
            .unwrap_or_else(|| panic!("{}: no pattern", case.name));
        let checked = hourglass::certify(&case.program, &pat, &case.params)
            .unwrap_or_else(|e| panic!("{}: certification failed: {e}", case.name));
        assert!(checked > 0, "{}", case.name);
    }
}

#[test]
fn tiled_mgs_play_beats_program_order_at_matching_cache() {
    // The tiled schedule (Fig. 8) exists precisely to reduce I/O; its pebble
    // play must use fewer loads than the untiled right-looking order once S
    // holds a block of columns.
    let (m, n): (i64, i64) = (16, 8);
    let s = 3 * m as usize + 4; // fits B+1 ≈ 2–3 columns
    let block = iolb_kernels::mgs::a1_block_size(m as usize, s) as i64;
    let untiled = build_cdag(&iolb_kernels::mgs::program(), &[m, n]);
    let tiled = build_cdag(&iolb_kernels::mgs::tiled_program(), &[m, n, block]);
    let u = PebbleGame::new(&untiled, s).best_play().unwrap();
    let t = PebbleGame::new(&tiled, s).best_play().unwrap();
    assert!(
        t.loads < u.loads,
        "tiled loads {} < untiled loads {}",
        t.loads,
        u.loads
    );
}
