//! End-to-end engine runs on the paper's five kernels: detection,
//! certification, and parity of the derived bounds with the published
//! formulas (Figure 5 rows, Theorems 5–9).

use iolb_core::report::{analyze_kernel, fig5_parity};
use iolb_core::{s_var, theorems};
use iolb_numeric::Rational;
use iolb_symbolic::Var;

fn env(m: i128, n: i128, s: i128) -> Vec<(Var, i128)> {
    vec![
        (Var::new("M"), m),
        (Var::new("N"), n),
        (s_var(), s),
        (theorems::split_var(), n / 2 - 1),
    ]
}

#[test]
fn mgs_engine_matches_fig5_exactly() {
    let p = iolb_kernels::mgs::program();
    let r = analyze_kernel(&p, "MGS", "SU").unwrap();
    assert_eq!(r.old.sigma, iolb_numeric::Rational::new(3, 2));
    assert_eq!(r.old.m, Rational::int(3));
    assert!(!r.split);
    // Dominant term of Fig 5's MGS new row: M²(N−1)(N−2)/(8(M+S)).
    let e = env(2048, 512, 256);
    let got = r.new.main_tool.eval_ints_f64(&e);
    let expect = (2048.0f64 * 2048.0 * 511.0 * 510.0) / (8.0 * (2048.0 + 256.0));
    assert!(
        (got / expect - 1.0).abs() < 1e-12,
        "got {got} expect {expect}"
    );
    // Old bound dominant: M(N−1)(N−2)/√S.
    let got_old = r.old.expr.eval_ints_f64(&e);
    let expect_old = 2048.0 * 511.0 * 510.0 / 16.0;
    assert!((got_old / expect_old - 1.0).abs() < 1e-12);
}

#[test]
fn a2v_engine_matches_fig5_dominant() {
    let p = iolb_kernels::householder::a2v_program();
    let r = analyze_kernel(&p, "QR HH A2V", "SU").unwrap();
    // Width shrinks to M−N at k = N−1.
    let w = iolb_ir::count::eval_params(&r.new.w_min, &[("M", 100), ("N", 30)]);
    assert_eq!(w, iolb_numeric::Rational::int(70));
    // Engine new == a2v_num·(M−N)/(24(S+M−N)) exactly.
    let (m, n, s) = (3000i128, 900i128, 400i128);
    let got = r.new.main_tool.eval_ints_f64(&env(m, n, s));
    let (mf, nf, sf) = (m as f64, n as f64, s as f64);
    let num = 3.0 * mf * nf * nf - nf * nf * nf - 9.0 * mf * nf + 6.0 * mf + 7.0 * nf - 6.0;
    let expect = num * (mf - nf) / (24.0 * (sf + mf - nf));
    assert!(
        (got / expect - 1.0).abs() < 1e-12,
        "got {got} expect {expect}"
    );
}

#[test]
fn v2q_engine_matches_fig5_dominant() {
    let p = iolb_kernels::householder::v2q_program();
    let r = analyze_kernel(&p, "QR HH V2Q", "SU").unwrap();
    let (m, n, s) = (3000i128, 900i128, 400i128);
    let got = r.new.main_tool.eval_ints_f64(&env(m, n, s));
    let (mf, nf, sf) = (m as f64, n as f64, s as f64);
    let num = 3.0 * mf * nf * nf - nf * nf * nf - 9.0 * mf * nf + 6.0 * mf + 7.0 * nf - 6.0;
    let expect = num * (mf - nf) / (24.0 * (sf + mf - nf));
    assert!(
        (got / expect - 1.0).abs() < 1e-12,
        "got {got} expect {expect}"
    );
}

#[test]
fn gebd2_engine_matches_theorem8_shape() {
    let p = iolb_kernels::gebd2::program();
    let r = analyze_kernel(&p, "GEBD2", "SU").unwrap();
    // Our transcription materializes the reflector's unit coefficient
    // explicitly, so W = M−N (the paper's LAPACK-style count gives M−N+1);
    // the bounds agree up to that lower-order shift.
    let (m, n, s) = (4000i128, 1000i128, 500i128);
    let got = r.new.main_tool.eval_ints_f64(&env(m, n, s));
    let thm8 = theorems::thm8_gebd2().eval_ints_f64(&env(m, n, s));
    // Theorem 8 uses the full volume and W = M−N+1; the engine drops the
    // first iteration and uses W = M−N: same leading behaviour, ~9% lower
    // (strictly sound) at this parameter point.
    assert!(
        got <= thm8 * 1.001 && got > thm8 * 0.85,
        "engine {got} vs theorem8 {thm8}"
    );
}

#[test]
fn gehd2_engine_splits_and_matches_fig5() {
    let p = iolb_kernels::gehd2::program();
    let r = analyze_kernel(&p, "GEHD2", "SU1").unwrap();
    assert!(r.split, "GEHD2 needs §5.3 loop splitting");
    // Engine new (tool volume) == (N−1)(N−2)(N−3)(N−Ms−1)/(12(N−Ms−1+S)).
    let (n, s) = (512i128, 64i128);
    let ms = n / 2 - 1;
    let got = r.new.main_tool.eval_ints_f64(&env(0, n, s));
    let (nf, sf, msf) = (n as f64, s as f64, ms as f64);
    let w = nf - msf - 1.0;
    let expect = (nf - 1.0) * (nf - 2.0) * (nf - 3.0) * w / (12.0 * (w + sf));
    assert!(
        (got / expect - 1.0).abs() < 1e-9,
        "got {got} expect {expect}"
    );
    // And that instantiation tracks Theorem 9's N⁴/(12(N+2S)).
    let thm9 = theorems::thm9_gehd2().eval_ints_f64(&env(0, n, s));
    assert!((got / thm9 - 1.0).abs() < 0.05, "got {got} thm9 {thm9}");
}

#[test]
fn gemm_has_no_hourglass_but_classical_bound() {
    let p = iolb_kernels::gemm::program();
    let analysis = iolb_core::Analysis::run(&p, &[vec![5, 6, 4]]).unwrap();
    let su = p.stmt_id("SU").unwrap();
    assert!(analysis.detect_hourglass(su).is_none());
    let b = analysis.classical_bound(su);
    assert_eq!(b.sigma, iolb_numeric::Rational::new(3, 2));
    assert_eq!(b.m, Rational::int(3));
}

#[test]
fn fig5_parity_within_tolerance_at_scale() {
    let kernels: Vec<(iolb_ir::Program, &str, &str)> = vec![
        (iolb_kernels::mgs::program(), "MGS", "SU"),
        (iolb_kernels::householder::a2v_program(), "QR HH A2V", "SU"),
        (iolb_kernels::householder::v2q_program(), "QR HH V2Q", "SU"),
        (iolb_kernels::gebd2::program(), "GEBD2", "SU"),
        (iolb_kernels::gehd2::program(), "GEHD2", "SU1"),
    ];
    let reports: Vec<_> = kernels
        .iter()
        .map(|(p, name, stmt)| analyze_kernel(p, name, stmt).unwrap())
        .collect();
    for parity in fig5_parity(&reports, 16384, 4096, 1024) {
        let new_ratio = parity.engine_new / parity.paper_new;
        assert!(
            (new_ratio - 1.0).abs() < 0.05,
            "{}: engine new {} vs paper new {} (ratio {new_ratio})",
            parity.kernel,
            parity.engine_new,
            parity.paper_new
        );
        // Old bounds: dominant-term parity for the four QR-family kernels;
        // GEHD2's old row aggregates both update statements in IOLB, so we
        // only require the same order of magnitude there.
        let old_ratio = parity.engine_old / parity.paper_old;
        let tol = if parity.kernel == "GEHD2" { 0.7 } else { 0.05 };
        assert!(
            (old_ratio - 1.0).abs() < tol,
            "{}: engine old {} vs paper old {} (ratio {old_ratio})",
            parity.kernel,
            parity.engine_old,
            parity.paper_old
        );
    }
}

#[test]
fn new_bounds_beat_old_bounds_parametrically() {
    // Figure 4's message: the hourglass improves every kernel by a
    // parametric factor. Check the ratio grows with S (for fixed M/N).
    let kernels: Vec<(iolb_ir::Program, &str, &str)> = vec![
        (iolb_kernels::mgs::program(), "MGS", "SU"),
        (iolb_kernels::householder::a2v_program(), "QR HH A2V", "SU"),
        (iolb_kernels::gebd2::program(), "GEBD2", "SU"),
    ];
    for (p, name, stmt) in &kernels {
        let r = analyze_kernel(p, name, stmt).unwrap();
        let mut prev_ratio = 0.0;
        for s in [256i128, 1024, 4096] {
            let e = env(1 << 14, 1 << 12, s);
            let ratio = r.new.main_tool.eval_ints_f64(&e) / r.old.expr.eval_ints_f64(&e);
            assert!(
                ratio > 1.0,
                "{name}: new must beat old at S={s}, got {ratio}"
            );
            assert!(ratio > prev_ratio, "{name}: improvement grows with S");
            prev_ratio = ratio;
        }
    }
}
