//! Regression tests for the exact-arithmetic floored bound evaluators.
//!
//! The pre-fix implementations evaluated `|V|`, `W`, and `U` in `f64`
//! *before* flooring. Beyond 2^53 the mantissa rounds the volume, so the
//! floor can land on the wrong integer — in the overshoot direction that
//! breaks the "bound never above a legal play" soundness contract. These
//! tests replicate the old `f64` pipeline verbatim and pin concrete
//! parameter points where it disagrees with the exact path.

use iolb_core::{s_var, Analysis};
use iolb_numeric::Rational;
use iolb_symbolic::{Poly, Var};

/// The MGS-shaped triangular update statement (classical σ = 3/2, m = 3;
/// hourglass W = M, R = 1) — the same miniature core the unit tests use.
fn mini_mgs() -> iolb_ir::Program {
    let mut b = iolb_ir::ProgramBuilder::new("exact_eval_mgs", &["M", "N"]);
    let a = b.array("A", &[b.p("M"), b.p("N")]);
    let r = b.array("R", &[b.p("N"), b.p("N")]);
    let k = b.open("k", b.c(0), b.p("N"));
    let j = b.open("j", b.d(k) + 1, b.p("N"));
    let w_r = iolb_ir::Access::new(r, vec![b.d(k), b.d(j)]);
    b.stmt("S0", vec![], vec![w_r.clone()], move |c| {
        c.wr(r, &[c.v(0), c.v(1)], 0.0)
    });
    let i1 = b.open("i", b.c(0), b.p("M"));
    let rd_aik = iolb_ir::Access::new(a, vec![b.d(i1), b.d(k)]);
    let rd_aij = iolb_ir::Access::new(a, vec![b.d(i1), b.d(j)]);
    b.stmt(
        "SR",
        vec![rd_aik, rd_aij, w_r.clone()],
        vec![w_r.clone()],
        move |c| {
            let (k, j, i) = (c.v(0), c.v(1), c.v(2));
            let v = c.rd(a, &[i, k]) * c.rd(a, &[i, j]) + c.rd(r, &[k, j]);
            c.wr(r, &[k, j], v);
        },
    );
    b.close();
    let i2 = b.open("i", b.c(0), b.p("M"));
    let rd_aik2 = iolb_ir::Access::new(a, vec![b.d(i2), b.d(k)]);
    let rw_aij2 = iolb_ir::Access::new(a, vec![b.d(i2), b.d(j)]);
    b.stmt(
        "SU",
        vec![rd_aik2, rw_aij2.clone(), w_r.clone()],
        vec![rw_aij2],
        move |c| {
            let (k, j, i) = (c.v(0), c.v(1), c.v(2));
            let v = c.rd(a, &[i, j]) - c.rd(a, &[i, k]) * c.rd(r, &[k, j]);
            c.wr(a, &[i, j], v);
        },
    );
    b.close();
    b.close();
    b.close();
    b.finish()
}

/// The old (buggy) f64 pipeline of `HourglassBound::eval_floor`, verbatim.
fn hourglass_eval_floor_f64(b: &iolb_core::HourglassBound, env: &[(Var, i128)], s: i128) -> f64 {
    let ev = |p: &Poly| -> f64 {
        p.eval(&|v| {
            env.iter()
                .find(|(w, _)| *w == v)
                .map(|(_, x)| Rational::int(*x))
        })
        .to_f64()
    };
    let (w, r, vol, vol_nd) = (
        ev(&b.w_min),
        ev(&b.r_factor),
        ev(&b.volume),
        ev(&b.volume_nodrop),
    );
    let sf = s as f64;
    let mut best = 0.0f64;
    if w > 0.0 && vol > 0.0 {
        let u = (2.0 * sf) * (2.0 * sf) / w + 2.0 * r * (2.0 * sf);
        best = best.max(sf * (vol / u).floor());
    }
    if w > sf && vol_nd > 0.0 {
        best = best.max((w - sf) * (vol_nd / (2.0 * w)).floor());
    }
    best
}

/// The old (buggy) f64 pipeline of `ClassicalBound::eval_floor`, verbatim.
fn classical_eval_floor_f64(b: &iolb_core::ClassicalBound, env: &[(Var, i128)], s: i128) -> f64 {
    let vol = b
        .volume
        .eval(&|v| {
            env.iter()
                .find(|(w, _)| *w == v)
                .map(|(_, x)| Rational::int(*x))
        })
        .to_f64();
    if vol <= 0.0 {
        return 0.0;
    }
    let sigma = b.sigma.to_f64();
    let m = b.m.to_f64();
    let mut best = 0.0f64;
    let opt = if sigma > 1.0 {
        sigma / (sigma - 1.0) * s as f64
    } else {
        4.0 * s as f64
    };
    let mut candidates: Vec<i128> = vec![s + 1, 2 * s, 3 * s, 4 * s, 8 * s];
    candidates.push(opt.round() as i128);
    candidates.push((opt * 0.75).round() as i128);
    candidates.push((opt * 1.5).round() as i128);
    for k in candidates {
        if k <= s {
            continue;
        }
        let t = (k - s) as f64;
        let u = (k as f64 / m).powf(sigma);
        let sets = (vol / u).floor();
        best = best.max(t * sets);
    }
    best
}

/// Exact rational evaluation of the classical floored form at one `K`
/// grid — the ground truth the fixed implementation must match:
/// `T·max{t : t^q·K^p ≤ |V|^q·m^p}` maximized over the same candidates.
fn classical_ground_truth(b: &iolb_core::ClassicalBound, env: &[(Var, i128)], s: i128) -> f64 {
    // The fixed implementation *is* the exact computation; this helper only
    // exists to make the test's intent explicit at the call sites.
    b.eval_floor(env, s)
}

#[test]
fn hourglass_f64_path_disagrees_beyond_2_53() {
    let p = mini_mgs();
    let analysis = Analysis::run(&p, &[vec![7, 5]]).unwrap();
    let su = p.stmt_id("SU").unwrap();
    let pat = analysis.detect_hourglass(su).unwrap();
    let b = analysis.hourglass_bound(&pat);

    // Regime where the K = 2S branch dominates (S = 7M/8 kills the K = W
    // branch) with a huge set count: |V| ≈ 2^76, U(2S) ≈ 105M/16, so
    // ⌊|V|/U⌋ ≈ 2^53 and the f64 volume rounding shifts the quotient by
    // whole units — the floor lands on the wrong integer for a dense set
    // of N values. Scan a small window to pin one.
    let m: i128 = 1 << 20;
    let s: i128 = 7 * m / 8;
    let mut witness = None;
    let mut any_disagreement = 0usize;
    for n in 300_000_001i128..300_000_001 + 200 {
        let env = [(Var::new("M"), m), (Var::new("N"), n)];
        let exact = b.eval_floor_exact(&env, s);
        let old = hourglass_eval_floor_f64(&b, &env, s);
        if old != exact.to_f64() {
            any_disagreement += 1;
            if old > exact.to_f64() {
                witness = Some((n, old, exact));
                break;
            }
        }
    }
    assert!(
        any_disagreement > 0,
        "f64 and exact hourglass paths never disagreed in the window"
    );
    let (n, old, exact) =
        witness.expect("an overshoot point (old f64 bound above the exact bound) must exist");
    // Pin the witness so the regression stays concrete and reproducible.
    let env = [(Var::new("M"), m), (Var::new("N"), n)];
    assert_eq!(b.eval_floor(&env, s), exact.to_f64());
    assert!(
        old > exact.to_f64(),
        "old f64 path must overshoot at the pinned point M={m}, N={n}, S={s}"
    );
    // The overshoot is at least one whole floor step times S — a material
    // violation of the "never above the real bound" contract.
    assert!(
        old - exact.to_f64() >= s as f64,
        "overshoot must be a whole floor step: old {old} exact {exact}"
    );
}

#[test]
fn classical_f64_path_overshoots_beyond_2_53() {
    let p = mini_mgs();
    let analysis = Analysis::run(&p, &[vec![7, 5]]).unwrap();
    let su = p.stmt_id("SU").unwrap();
    let b = analysis.classical_bound(su);
    assert_eq!(b.sigma, Rational::new(3, 2));

    // |V| ≈ 2^61: the set count per K is ≈ 2^45, so the f64 ratio carries
    // an absolute error of ≈ 2^45·2^-53 ≈ 2^-8 units — scanning a few
    // hundred S values must cross a floor boundary in the overshoot
    // direction (bound strictly above the exact Theorem-1 value: the
    // soundness-contract break).
    let m: i128 = (1 << 31) - 1;
    let n: i128 = (1 << 16) + 3;
    let env = [(Var::new("M"), m), (Var::new("N"), n)];
    let mut overshoot = None;
    let mut any_disagreement = 0usize;
    for s in 1024i128..1024 + 2048 {
        let exact = classical_ground_truth(&b, &env, s);
        let old = classical_eval_floor_f64(&b, &env, s);
        if old != exact {
            any_disagreement += 1;
            if old > exact {
                overshoot = Some((s, old, exact));
                break;
            }
        }
    }
    assert!(
        any_disagreement > 0,
        "f64 and exact classical paths never disagreed in the window"
    );
    let (s, old, exact) =
        overshoot.expect("an overshoot (old f64 bound above the exact bound) must exist");
    assert!(
        old > exact,
        "pinned point M={m}, N={n}, S={s} must overshoot: old {old} vs exact {exact}"
    );
}

#[test]
fn exact_and_f64_paths_agree_at_small_parameters() {
    // Below 2^53 nothing rounds: the fix must be behaviour-preserving on
    // the whole existing validation regime.
    let p = mini_mgs();
    let analysis = Analysis::run(&p, &[vec![7, 5]]).unwrap();
    let su = p.stmt_id("SU").unwrap();
    let pat = analysis.detect_hourglass(su).unwrap();
    let hb = analysis.hourglass_bound(&pat);
    let cb = analysis.classical_bound(su);
    for (m, n) in [(12i128, 6i128), (64, 32), (1024, 256), (65536, 1024)] {
        let env = [(Var::new("M"), m), (Var::new("N"), n)];
        for s in [8i128, 32, 128, 1024] {
            assert_eq!(
                hb.eval_floor(&env, s),
                hourglass_eval_floor_f64(&hb, &env, s),
                "hourglass M={m} N={n} S={s}"
            );
            assert_eq!(
                cb.eval_floor(&env, s),
                classical_eval_floor_f64(&cb, &env, s),
                "classical M={m} N={n} S={s}"
            );
        }
    }
    let _ = s_var();
}
