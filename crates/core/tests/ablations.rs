//! Ablation studies for the design choices DESIGN.md calls out:
//! the K = 2S choice, the disjoint-inset refinement, the uniform vs
//! refined width variants, and the Theorem 5 small-S branch crossover.

use iolb_core::{hourglass, s_var, Analysis};
use iolb_numeric::Rational;
use iolb_symbolic::Var;

fn mgs_bound() -> (iolb_ir::Program, iolb_core::HourglassBound) {
    let p = iolb_kernels::mgs::program();
    let analysis = Analysis::run(&p, &[vec![9, 6]]).unwrap();
    let su = p.stmt_id("SU").unwrap();
    let pat = analysis.detect_hourglass(su).unwrap();
    let b = hourglass::derive(&p, &pat, &hourglass::SplitChoice::None);
    (p, b)
}

/// The paper picks `K = 2S` in §4.4. Sweeping `K` numerically over the
/// wrapped bound `(K−S)·|V|/U(K)` shows the choice is near-optimal: the
/// true optimum (at `K = S + √(S² + SW)` for `U = K²/W + 2K`) never beats
/// `K = 2S` by more than ~25% in the relevant regimes.
#[test]
fn k_equals_2s_is_near_optimal() {
    let (_, b) = mgs_bound();
    let (m, n) = (4096i128, 512i128);
    let envp = [("M", m as i64), ("N", n as i64)];
    let w = iolb_ir::count::eval_params(&b.w_min, &envp).to_f64();
    let vol = iolb_ir::count::eval_params(&b.volume_tool, &envp).to_f64();
    // In the S ≳ W regime the paper targets, K = 2S is near-optimal.
    for s in [2048i128, 8192, 32768] {
        let sf = s as f64;
        let wrapped = |k: f64| (k - sf) * vol / (k * k / w + 2.0 * k);
        let at_2s = wrapped(2.0 * sf);
        // Grid search for the optimum.
        let best = (11..400)
            .map(|t| wrapped(sf * t as f64 / 10.0))
            .fold(0.0f64, f64::max);
        assert!(at_2s <= best + 1e-9);
        assert!(
            at_2s >= 0.75 * best,
            "S={s}: K=2S gives {at_2s:.3e}, optimum {best:.3e}"
        );
    }
    // For S ≪ W the K-sweep beats K = 2S, but the combined bound's small-S
    // branch (K = W, |E| ≤ 2K) covers the gap — the reason Theorem 5 has
    // two branches.
    let s = 128f64;
    let wrapped = |k: f64| (k - s) * vol / (k * k / w + 2.0 * k);
    let best = (11..400)
        .map(|t| wrapped(s * t as f64 / 10.0))
        .fold(0.0f64, f64::max);
    let vol_nodrop = iolb_ir::count::eval_params(&b.volume_nodrop, &envp).to_f64();
    let small_branch = (w - s) * vol_nodrop / (2.0 * w);
    assert!(
        wrapped(2.0 * s) < 0.75 * best,
        "K=2S alone is loose at S ≪ W"
    );
    assert!(
        small_branch > best,
        "…but the small-S branch dominates there"
    );
}

/// The disjoint-inset refinement multiplies the classical bound by
/// `m^σ = 3^{3/2} ≈ 5.196` for the 3-projection kernels — without it the
/// MGS old bound's leading constant would be ~0.19 instead of 1.
#[test]
fn disjointness_refinement_factor() {
    let p = iolb_kernels::mgs::program();
    let analysis = Analysis::run(&p, &[vec![9, 6]]).unwrap();
    let su = p.stmt_id("SU").unwrap();
    let b = analysis.classical_bound(su);
    assert_eq!(b.m, Rational::int(3));
    // Reconstruct the m = 1 (no refinement) value and compare.
    let env = [
        (Var::new("M"), 4096i128),
        (Var::new("N"), 512),
        (s_var(), 1024),
    ];
    let with = b.expr.eval_ints_f64(&env);
    let vol = iolb_ir::count::eval_params(&b.volume, &[("M", 4096), ("N", 512)]).to_f64();
    // c(σ, 1)·|V|·S^{1−σ} with σ = 3/2: (1/2)^{1/2}·(2/3)^{3/2}·…
    let sigma = 1.5f64;
    let c1 = (1.0f64 * (sigma - 1.0) / sigma).powf(sigma) / (sigma - 1.0);
    let without = c1 * vol * (1024f64).powf(1.0 - sigma);
    let factor = with / without;
    assert!(
        (factor - 3f64.powf(1.5)).abs() < 1e-9,
        "refinement factor {factor} vs 3^(3/2)"
    );
}

/// Uniform (`K²/W_min`) vs refined (`W_max·K²/W_min²`) hourglass variants:
/// identical when the width is constant (MGS), and the refined variant is
/// the smaller (safer) of the two when the width varies (A2V).
#[test]
fn width_variant_ordering() {
    let (_, mgs) = mgs_bound();
    let env = [
        (Var::new("M"), 4096i128),
        (Var::new("N"), 512),
        (s_var(), 1024),
    ];
    let u = mgs.main_tool.eval_ints_f64(&env);
    let r = mgs.refined.eval_ints_f64(&env);
    assert!(
        (u / r - 1.0).abs() < 1e-12,
        "constant width: variants agree"
    );

    let p = iolb_kernels::householder::a2v_program();
    let analysis = Analysis::run(&p, &[vec![9, 6]]).unwrap();
    let su = p.stmt_id("SU").unwrap();
    let pat = analysis.detect_hourglass(su).unwrap();
    let b = hourglass::derive(&p, &pat, &hourglass::SplitChoice::None);
    let u = b.main_tool.eval_ints_f64(&env);
    let r = b.refined.eval_ints_f64(&env);
    assert!(r < u, "varying width: refined ({r}) < uniform ({u})");
    assert!(r > 0.5 * u, "but within a constant factor here");
}

/// Theorem 5's two branches: the small-S branch `(M−S)N(N−1)/4` dominates
/// for S ≪ M and hands over to the main branch as S grows past ~M.
#[test]
fn small_s_branch_crossover() {
    let (_, b) = mgs_bound();
    let (m, n) = (1024i128, 256i128);
    let value = |e: &iolb_symbolic::Expr, s: i128| {
        e.eval_ints_f64(&[(Var::new("M"), m), (Var::new("N"), n), (s_var(), s)])
    };
    // Far below M: small-S branch wins.
    assert!(value(&b.small_s, 32) > value(&b.main, 32));
    // Far above M: main branch wins (small-S is negative there).
    assert!(value(&b.main, 8192) > value(&b.small_s, 8192));
    assert!(value(&b.small_s, 8192) < 0.0);
    // The combined bound is the max of the two everywhere.
    for s in [32i128, 256, 1024, 8192] {
        let c = value(&b.combined, s);
        assert!((c - value(&b.main, s).max(value(&b.small_s, s))).abs() < 1e-9);
    }
}

/// §5.3 split-point ablation for GEHD2: Theorem 9 instantiates `Ms = N/2−1`
/// (large S) and `Ms = N−S−2` (small S); the bound at each instantiation
/// must dominate in its own regime.
#[test]
fn gehd2_split_point_ablation() {
    let p = iolb_kernels::gehd2::program();
    let analysis = Analysis::run(&p, &[vec![9]]).unwrap();
    let su = p.stmt_id("SU1").unwrap();
    let pat = analysis.detect_hourglass(su).unwrap();
    let b = hourglass::derive(
        &p,
        &pat,
        &hourglass::SplitChoice::At(iolb_symbolic::Poly::var(iolb_core::theorems::split_var())),
    );
    let n = 4096i128;
    // The sound (split-restricted volume) bound exposes the tradeoff: a
    // larger split point keeps more statement instances but shrinks the
    // residual width. The optimum is interior — both extremes lose.
    let value = |s: i128, ms: i128| {
        b.main.eval_ints_f64(&[
            (Var::new("N"), n),
            (s_var(), s),
            (iolb_core::theorems::split_var(), ms),
        ])
    };
    for s in [64i128, n] {
        let mid = value(s, n / 2 - 1);
        assert!(
            mid > value(s, 8),
            "S={s}: tiny split keeps too few instances"
        );
        assert!(mid > value(s, n - 3), "S={s}: late split leaves no width");
    }
    // And the Theorem-9 instantiation Ms = N/2 − 1 tracks N⁴/(12(N+2S)):
    // the tool-volume variant equals it exactly (tested in kernel_bounds);
    // the sound variant stays within a constant factor below it.
    let s = 512i128;
    let thm9 = iolb_core::theorems::thm9_gehd2().eval_ints_f64(&[(Var::new("N"), n), (s_var(), s)]);
    let sound = value(s, n / 2 - 1);
    assert!(
        sound <= thm9 && sound > 0.5 * thm9,
        "sound {sound} vs thm9 {thm9}"
    );
}
