//! Temporary debugging helper: print detected patterns for each kernel.
fn main() {
    for (p, name, stmt) in [
        (iolb_kernels::mgs::program(), "MGS", "SU"),
        (iolb_kernels::householder::a2v_program(), "A2V", "SU"),
        (iolb_kernels::householder::v2q_program(), "V2Q", "SU"),
        (iolb_kernels::gebd2::program(), "GEBD2", "SU"),
        (iolb_kernels::gehd2::program(), "GEHD2", "SU1"),
    ] {
        let observe: Vec<Vec<i64>> = match p.params.len() {
            1 => vec![vec![8], vec![9]],
            _ => vec![vec![9, 6], vec![8, 5]],
        };
        let analysis = match iolb_core::Analysis::run(&p, &observe) {
            Ok(a) => a,
            Err(e) => {
                println!("{name}: analysis error: {e}");
                continue;
            }
        };
        let sid = p.stmt_id(stmt).unwrap();
        let dimname = |d: &iolb_ir::DimId| format!("{}#{}", p.loop_info(*d).name, d.0);
        match analysis.detect_hourglass(sid) {
            None => println!("{name}: no hourglass"),
            Some(pat) => {
                let b = iolb_core::hourglass::derive(
                    &p,
                    &pat,
                    &iolb_core::hourglass::SplitChoice::None,
                );
                println!(
                    "{name}: temporal={:?} neutral={:?} rb={:?} bread={} ({}) Z={} | W=[{}, {}] R={} vol_tool={}",
                    pat.temporal.iter().map(dimname).collect::<Vec<_>>(),
                    pat.neutral.iter().map(dimname).collect::<Vec<_>>(),
                    pat.rb.iter().map(dimname).collect::<Vec<_>>(),
                    pat.broadcast_read,
                    p.arrays[p.stmt(sid).reads[pat.broadcast_read].array.0 as usize].name,
                    p.stmt(pat.reduction_stmt).name,
                    b.w_min, b.w_max, b.r_factor, b.volume_tool,
                );
            }
        }
    }
}
