//! The unified graph-level bound-engine API.
//!
//! The symbolic σ/hourglass derivation is per-statement and refuses every
//! kernel outside its affine class. The engines behind [`BoundEngine`]
//! instead work on the raw CDAG at a concrete fast-memory size `S`, so
//! every kernel that builds a graph gets *some* sound lower bound. The
//! [`EngineRegistry`] holds the engine set a request selected; report rows
//! carry the max over all applicable engines, tagged with the winning
//! [`BoundProvenance`].
//!
//! Engine math lives in [`iolb_cdag::bound`]; this module owns the typed
//! API: provenance, trait, registry, selection parsing, and batch
//! evaluation over an S grid.

use iolb_cdag::bound::{input_floor, SpectralProfile, VisitProfile};
use iolb_cdag::Cdag;

/// Where a reported lower bound came from. Serialized stably (snake_case
/// via [`BoundProvenance::as_str`]) in pebble-sweep/v5 rows — replaces the
/// stringly-typed bound naming older schemas implied by column position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BoundProvenance {
    /// Symbolic K-partition σ-bound (§2 of the paper).
    Classical,
    /// Symbolic hourglass bound (§3–§4 of the paper).
    Hourglass,
    /// Graph-level: every consumed input is loaded at least once.
    InputFloor,
    /// Graph-level: DAG-visit segment/partition accounting.
    Visit,
    /// Graph-level: certified spectral boundary bound.
    Spectral,
}

impl BoundProvenance {
    /// Stable serialization name (snake_case, never changes meaning
    /// across schema generations).
    pub fn as_str(self) -> &'static str {
        match self {
            BoundProvenance::Classical => "classical",
            BoundProvenance::Hourglass => "hourglass",
            BoundProvenance::InputFloor => "input_floor",
            BoundProvenance::Visit => "visit",
            BoundProvenance::Spectral => "spectral",
        }
    }

    /// Inverse of [`as_str`](BoundProvenance::as_str).
    pub fn parse(s: &str) -> Option<BoundProvenance> {
        Some(match s {
            "classical" => BoundProvenance::Classical,
            "hourglass" => BoundProvenance::Hourglass,
            "input_floor" => BoundProvenance::InputFloor,
            "visit" => BoundProvenance::Visit,
            "spectral" => BoundProvenance::Spectral,
            _ => return None,
        })
    }
}

impl std::fmt::Display for BoundProvenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A graph-level lower-bound engine over `(Cdag, S)`.
///
/// Implementations must be *sound*: `bound(g, s)` is a lower bound on the
/// loads of every complete execution of `g` with fast-memory capacity
/// `s`, in the red-white cost model (read misses only, no recomputation).
/// The differential fuzz oracle enforces `bound ≤ OPT(S)` at every swept
/// `S` on random kernels, including kernels the symbolic path refuses.
pub trait BoundEngine: Send + Sync {
    /// Stable selection name (the `--engines` vocabulary).
    fn name(&self) -> &'static str;

    /// Provenance tag reported for bounds this engine wins.
    fn provenance(&self) -> BoundProvenance;

    /// Lower bound on loads at capacity `s`, or `None` when the engine
    /// does not apply to this graph (e.g. above a size cap).
    fn bound(&self, cdag: &Cdag, s: usize) -> Option<u64>;

    /// Batch evaluation over an S grid; engines override this to share
    /// per-graph preparation across the grid.
    fn bounds(&self, cdag: &Cdag, s_values: &[usize]) -> Vec<Option<u64>> {
        s_values.iter().map(|&s| self.bound(cdag, s)).collect()
    }
}

/// [`BoundProvenance::InputFloor`] engine: `S`-independent, always
/// applicable, exact count of consumed inputs.
pub struct InputFloorEngine;

impl BoundEngine for InputFloorEngine {
    fn name(&self) -> &'static str {
        "input-floor"
    }

    fn provenance(&self) -> BoundProvenance {
        BoundProvenance::InputFloor
    }

    fn bound(&self, cdag: &Cdag, _s: usize) -> Option<u64> {
        Some(input_floor(cdag))
    }

    fn bounds(&self, cdag: &Cdag, s_values: &[usize]) -> Vec<Option<u64>> {
        let floor = input_floor(cdag);
        vec![Some(floor); s_values.len()]
    }
}

/// [`BoundProvenance::Visit`] engine: DAG-visit segment partitioning with
/// degree-counting in-set accounting. Always applicable.
pub struct VisitEngine;

impl BoundEngine for VisitEngine {
    fn name(&self) -> &'static str {
        "visit"
    }

    fn provenance(&self) -> BoundProvenance {
        BoundProvenance::Visit
    }

    fn bound(&self, cdag: &Cdag, s: usize) -> Option<u64> {
        Some(VisitProfile::new(cdag).bound(s))
    }

    fn bounds(&self, cdag: &Cdag, s_values: &[usize]) -> Vec<Option<u64>> {
        let profile = VisitProfile::new(cdag);
        s_values.iter().map(|&s| Some(profile.bound(s))).collect()
    }
}

/// [`BoundProvenance::Spectral`] engine: certified `λ₂` boundary bound.
/// Inapplicable (`None`) above [`iolb_cdag::SPECTRAL_NODE_CAP`] nodes or
/// on edgeless graphs.
pub struct SpectralEngine;

impl BoundEngine for SpectralEngine {
    fn name(&self) -> &'static str {
        "spectral"
    }

    fn provenance(&self) -> BoundProvenance {
        BoundProvenance::Spectral
    }

    fn bound(&self, cdag: &Cdag, s: usize) -> Option<u64> {
        SpectralProfile::new(cdag).map(|p| p.bound(s))
    }

    fn bounds(&self, cdag: &Cdag, s_values: &[usize]) -> Vec<Option<u64>> {
        match SpectralProfile::new(cdag) {
            Some(profile) => s_values.iter().map(|&s| Some(profile.bound(s))).collect(),
            None => vec![None; s_values.len()],
        }
    }
}

/// One engine's bounds over an S grid, tagged with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineCurve {
    /// Which engine produced the curve.
    pub provenance: BoundProvenance,
    /// `bounds[i]` is the bound at `s_values[i]`; `None` = inapplicable.
    pub bounds: Vec<Option<u64>>,
}

impl EngineCurve {
    /// The bound at grid index `i` (`None` when inapplicable).
    pub fn at(&self, i: usize) -> Option<u64> {
        self.bounds.get(i).copied().flatten()
    }
}

/// The engine set one request selected. Construction is by name list, so
/// the CLI flag, the daemon query/body option, and the options
/// fingerprint all share one vocabulary.
pub struct EngineRegistry {
    engines: Vec<Box<dyn BoundEngine>>,
}

/// Canonical selection-name order (also the evaluation order).
const ENGINE_NAMES: [&str; 3] = ["input-floor", "visit", "spectral"];

fn engine_by_name(name: &str) -> Option<Box<dyn BoundEngine>> {
    Some(match name {
        "input-floor" => Box::new(InputFloorEngine),
        "visit" => Box::new(VisitEngine),
        "spectral" => Box::new(SpectralEngine),
        _ => return None,
    })
}

impl Default for EngineRegistry {
    fn default() -> Self {
        EngineRegistry::all()
    }
}

impl EngineRegistry {
    /// Every built-in engine, in canonical order.
    pub fn all() -> EngineRegistry {
        EngineRegistry {
            engines: ENGINE_NAMES
                .iter()
                .map(|n| engine_by_name(n).expect("built-in engine"))
                .collect(),
        }
    }

    /// The empty registry (graph-level bounds disabled).
    pub fn none() -> EngineRegistry {
        EngineRegistry {
            engines: Vec::new(),
        }
    }

    /// Parses a selection spec: `all`, `none`, or a comma-separated list
    /// of engine names (deduplicated, canonical order).
    ///
    /// # Errors
    /// Human-readable diagnostic naming the unknown engine and the valid
    /// vocabulary.
    pub fn select(spec: &str) -> Result<EngineRegistry, String> {
        match spec.trim() {
            "all" | "" => return Ok(EngineRegistry::all()),
            "none" => return Ok(EngineRegistry::none()),
            _ => {}
        }
        let mut wanted = Vec::new();
        for raw in spec.split(',') {
            let name = raw.trim();
            if !ENGINE_NAMES.contains(&name) {
                return Err(format!(
                    "unknown bound engine `{name}` (want all, none, or a list of {})",
                    ENGINE_NAMES.join(", ")
                ));
            }
            if !wanted.contains(&name) {
                wanted.push(name);
            }
        }
        let engines = ENGINE_NAMES
            .iter()
            .filter(|n| wanted.contains(n))
            .map(|n| engine_by_name(n).expect("built-in engine"))
            .collect();
        Ok(EngineRegistry { engines })
    }

    /// Selected engine names, canonical order.
    pub fn names(&self) -> Vec<&'static str> {
        self.engines.iter().map(|e| e.name()).collect()
    }

    /// Canonical spec string (`none` for the empty registry, `all` for
    /// the full one) — the options-fingerprint component.
    pub fn fingerprint(&self) -> String {
        if self.engines.is_empty() {
            "none".to_string()
        } else if self.engines.len() == ENGINE_NAMES.len() {
            "all".to_string()
        } else {
            self.names().join(",")
        }
    }

    /// Whether no engine is selected.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// Evaluates every selected engine over the S grid.
    pub fn evaluate(&self, cdag: &Cdag, s_values: &[usize]) -> Vec<EngineCurve> {
        self.engines
            .iter()
            .map(|e| EngineCurve {
                provenance: e.provenance(),
                bounds: e.bounds(cdag, s_values),
            })
            .collect()
    }
}

/// Best engine bound at grid index `i`: the maximum over applicable
/// engines, with the winning provenance (ties keep the earlier engine in
/// canonical order, so the choice is deterministic).
pub fn best_engine_bound(curves: &[EngineCurve], i: usize) -> Option<(u64, BoundProvenance)> {
    let mut best: Option<(u64, BoundProvenance)> = None;
    for c in curves {
        if let Some(b) = c.at(i) {
            if best.is_none_or(|(v, _)| b > v) {
                best = Some((b, c.provenance));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test-only assertions
    use super::*;
    use iolb_cdag::NodeSpec;
    use iolb_ir::{ArrayId, StmtId};

    fn tiny_graph() -> Cdag {
        // Two inputs feeding one compute feeding another.
        let kinds = vec![
            NodeSpec::Input {
                array: ArrayId(0),
                flat: 0,
            },
            NodeSpec::Input {
                array: ArrayId(0),
                flat: 1,
            },
            NodeSpec::Compute {
                stmt: StmtId(0),
                iv: Box::new([0]),
            },
            NodeSpec::Compute {
                stmt: StmtId(0),
                iv: Box::new([1]),
            },
        ];
        Cdag::from_edges(kinds, vec![(0, 2), (1, 2), (2, 3)])
    }

    #[test]
    fn provenance_round_trips_stably() {
        for p in [
            BoundProvenance::Classical,
            BoundProvenance::Hourglass,
            BoundProvenance::InputFloor,
            BoundProvenance::Visit,
            BoundProvenance::Spectral,
        ] {
            assert_eq!(BoundProvenance::parse(p.as_str()), Some(p));
        }
        assert_eq!(BoundProvenance::parse("bogus"), None);
        // The serialized names are frozen: renaming one breaks every
        // consumer of pebble-sweep/v5.
        assert_eq!(BoundProvenance::InputFloor.as_str(), "input_floor");
    }

    #[test]
    fn selection_parses_and_fingerprints_canonically() {
        assert_eq!(EngineRegistry::all().fingerprint(), "all");
        assert_eq!(EngineRegistry::none().fingerprint(), "none");
        assert_eq!(EngineRegistry::select("").unwrap().fingerprint(), "all");
        let sel = EngineRegistry::select("spectral, input-floor").unwrap();
        assert_eq!(sel.fingerprint(), "input-floor,spectral");
        assert_eq!(sel.names(), vec!["input-floor", "spectral"]);
        // Duplicates collapse; order is canonical.
        let dup = EngineRegistry::select("visit,visit").unwrap();
        assert_eq!(dup.fingerprint(), "visit");
        assert!(EngineRegistry::select("frobnicate").is_err());
        assert!(EngineRegistry::select("all")
            .unwrap()
            .names()
            .contains(&"visit"));
    }

    #[test]
    fn registry_evaluates_and_best_bound_tags_provenance() {
        let g = tiny_graph();
        let s_values = [1usize, 2, 4];
        let curves = EngineRegistry::all().evaluate(&g, &s_values);
        assert_eq!(curves.len(), 3);
        // The input floor is 2 at every S.
        let floor = curves
            .iter()
            .find(|c| c.provenance == BoundProvenance::InputFloor)
            .unwrap();
        assert_eq!(floor.bounds, vec![Some(2); 3]);
        let (best, who) = best_engine_bound(&curves, 0).unwrap();
        assert!(best >= 2);
        assert!(matches!(
            who,
            BoundProvenance::InputFloor | BoundProvenance::Visit | BoundProvenance::Spectral
        ));
        // Empty registry yields no bound.
        let none = EngineRegistry::none().evaluate(&g, &s_values);
        assert!(best_engine_bound(&none, 0).is_none());
    }

    #[test]
    fn batch_and_single_evaluation_agree() {
        let g = tiny_graph();
        let s_values = [1usize, 3, 8];
        for engine in [
            Box::new(InputFloorEngine) as Box<dyn BoundEngine>,
            Box::new(VisitEngine),
            Box::new(SpectralEngine),
        ] {
            let batch = engine.bounds(&g, &s_values);
            for (i, &s) in s_values.iter().enumerate() {
                assert_eq!(batch[i], engine.bound(&g, s), "{} S={s}", engine.name());
            }
        }
    }
}
