//! Classical K-partitioning bound (§2), the "old bound" baseline.
//!
//! For a statement with projection set `Φ`, the Brascamp–Lieb application
//! bounds any convex K-bounded set by `|E| ≤ Π |φ_j(E)|^{s_j} ≤ K^σ`. When
//! the `m` projections target pairwise-disjoint in-set regions (distinct
//! arrays / access functions), `Σ_j |φ_j(E)| ≤ K` sharpens this to
//! `|E| ≤ (K/m)^σ` at the balanced point — IOLB's disjointness refinement,
//! which this module reproduces (it is what makes the MGS old bound
//! `M(N-1)(N-2)/√S` come out with leading constant 1, i.e. `2|V|/√S`).
//!
//! Wrapping through Theorem 1 at the optimal `K = σS/(σ−1)` yields
//!
//! `Q ≥ (σ−1)^{σ−1}·σ^{−σ}·m^σ·|V|·S^{1−σ}`.

use crate::phi::PhiSet;
use crate::s_var;
use iolb_ir::count::{dim_var, instance_count_with};
use iolb_ir::{Program, StmtId};
use iolb_numeric::Rational;
use iolb_symbolic::{Expr, Poly};

/// A derived classical bound.
#[derive(Debug, Clone)]
pub struct ClassicalBound {
    /// Statement whose sub-CDAG the bound covers.
    pub stmt: StmtId,
    /// Brascamp–Lieb exponent `σ = Σ s_j`.
    pub sigma: Rational,
    /// Optimal exponents per projection.
    pub exponents: Vec<Rational>,
    /// In-set refinement divisor `m = σ/w_max` over disjoint regions
    /// (the region count when weights are equal — the paper's integer
    /// `m`; rational in general, see [`PhiSet::refinement_divisor`]).
    pub m: Rational,
    /// `|V|`: instances of the statement, first outer-loop iteration
    /// dropped (IOLB's counting convention).
    pub volume: Poly,
    /// The asymptotic bound expression in the program parameters and `S`.
    pub expr: Expr,
}

/// Derives the classical bound for `stmt`.
///
/// # Panics
/// Panics when the projection set cannot cover the iteration space (no
/// bound derivable) — the kernels in this workspace always can.
pub fn derive(program: &Program, stmt: StmtId, phi: &PhiSet) -> ClassicalBound {
    try_derive(program, stmt, phi)
        .expect("projections must cover the iteration space (no classical bound derivable)")
}

/// Like [`derive()`](fn@derive), but returns `None` when no classical bound exists for
/// the statement: the projections do not cover the iteration space (a time
/// loop every access drops, as in stencils) or the subgroup condition
/// fails. Arbitrary DSL workloads go through this path so the pipeline
/// degrades to "no classical bound" instead of aborting.
pub fn try_derive(program: &Program, stmt: StmtId, phi: &PhiSet) -> Option<ClassicalBound> {
    if !iolb_ir::count::countable_nest(program, stmt) {
        return None; // strided / multi-bound nests have no closed-form |V|
    }
    let (sigma, exponents) = phi.bl_exponents()?;
    if !phi.check_subgroups(&exponents) {
        return None;
    }
    let m = phi.refinement_divisor(&exponents);
    // |V| with the first outer iteration dropped (matches IOLB's tables).
    let outer = *program.stmt(stmt).dims.first()?;
    let outer_lo = {
        let info = program.loop_info(outer);
        if info.lo.len() != 1 {
            return None; // multi-bound outer loops have no closed-form count
        }
        iolb_ir::count::aff_to_poly(program, &info.lo[0])
    };
    let volume = instance_count_with(program, stmt, &[(outer, &outer_lo + &Poly::one())]);
    let _ = dim_var(program, outer); // dimension variables are summed away
    let expr = wrap_expr(&volume, sigma, m);
    Some(ClassicalBound {
        stmt,
        sigma,
        exponents,
        m,
        volume,
        expr,
    })
}

/// Builds `c(σ, m) · |V| · S^{1−σ}` with
/// `c = (σ−1)^{σ−1} σ^{−σ} m^σ = (m(σ−1)/σ)^σ / (σ−1)`.
fn wrap_expr(volume: &Poly, sigma: Rational, m: Rational) -> Expr {
    let s = Expr::var(s_var());
    let vol = Expr::from_poly(volume);
    if sigma <= Rational::ONE {
        // Degenerate: |E| ≤ K/m gives Q ≥ m·|V| in the K → ∞ limit.
        return Expr::Const(m).mul(vol);
    }
    let sm1 = sigma - Rational::ONE;
    let base = m * sm1 / sigma;
    let c = Expr::Const(base).pow(sigma).div(Expr::Const(sm1));
    c.mul(vol).mul(s.pow(Rational::ONE - sigma))
}

impl ClassicalBound {
    /// Exact (floored) Theorem-1 evaluation at concrete parameters: maximize
    /// `T·⌊|V| / (K/m)^σ⌋` over a grid of `K = S + T`. This is the form to
    /// compare against pebble-game plays — never above the real bound.
    ///
    /// The set count `⌊|V| / (K/m)^σ⌋` is computed exactly: with
    /// `σ = p/q`, it is the largest `t ≥ 0` with `t^q·K^p ≤ |V|^q·m^p`,
    /// found by binary search over checked `i128` products (the fractional
    /// power itself is irrational; its *floor comparison* is pure integer
    /// arithmetic). An `f64` pipeline rounds `|V|` before flooring and can
    /// overshoot the true bound beyond 2^53. Product overflow at
    /// astronomically large parameters resolves conservatively — see
    /// `floored_set_count`.
    pub fn eval_floor(&self, env: &[(iolb_symbolic::Var, i128)], s: i128) -> f64 {
        let vol = self.volume.eval(&|v| {
            env.iter()
                .find(|(w, _)| *w == v)
                .map(|(_, x)| Rational::int(*x))
        });
        if !vol.is_positive() {
            return 0.0;
        }
        let m = self.m;
        let mut best = 0.0f64;
        // Scan candidate K around the analytic optimum and a coarse grid.
        let opt = if self.sigma > Rational::ONE {
            (self.sigma / (self.sigma - Rational::ONE)).to_f64() * s as f64
        } else {
            4.0 * s as f64
        };
        let mut candidates: Vec<i128> = vec![s + 1, 2 * s, 3 * s, 4 * s, 8 * s];
        candidates.push(opt.round() as i128);
        candidates.push((opt * 0.75).round() as i128);
        candidates.push((opt * 1.5).round() as i128);
        for k in candidates {
            if k <= s {
                continue;
            }
            let t = (k - s) as f64;
            let sets = floored_set_count(vol, k, m, self.sigma);
            best = best.max(t * sets as f64);
        }
        best
    }
}

/// Exact `⌊|V| / (K/m)^σ⌋` for `σ = p/q > 0` and rational `m = mᵃ/mᵇ`:
/// the largest `t ≥ 0` with `t^q·K^p·b^q·(mᵇ)^p ≤ a^q·(mᵃ)^p` where
/// `|V| = a/b`. Binary search with checked `i128` products. When one side
/// overflows `i128`, the comparison is still decided soundly: an
/// overflowing side exceeds every representable value, so `lhs` overflow
/// ⇒ not-fits and `rhs` overflow (with finite `lhs`) ⇒ fits; only when
/// *both* overflow does the search give up and answer not-fits —
/// conservative (a smaller floored count), never an overshoot.
fn floored_set_count(vol: Rational, k: i128, m: Rational, sigma: Rational) -> i128 {
    let (p, q) = (sigma.num() as u32, sigma.den() as u32);
    let (a, b) = (vol.num(), vol.den());
    let (ma, mb) = (m.num(), m.den());
    let fits = |t: i128| -> bool {
        let lhs = checked_pow(t, q)
            .and_then(|x| x.checked_mul(checked_pow(k, p)?))
            .and_then(|x| x.checked_mul(checked_pow(b, q)?))
            .and_then(|x| x.checked_mul(checked_pow(mb, p)?));
        let rhs = checked_pow(a, q).and_then(|x| x.checked_mul(checked_pow(ma, p)?));
        match (lhs, rhs) {
            (Some(l), Some(r)) => l <= r,
            (None, Some(_)) => false, // lhs > i128::MAX ≥ rhs
            (Some(_), None) => true,  // rhs > i128::MAX ≥ lhs
            (None, None) => false,    // undecidable: round the count down
        }
    };
    if !fits(0) {
        return 0;
    }
    // Grow an upper bracket, then binary-search the boundary.
    let mut hi: i128 = 1;
    while fits(hi) {
        match hi.checked_mul(2) {
            Some(next) => hi = next,
            None => return hi, // beyond any physical set count
        }
    }
    let mut lo: i128 = hi / 2; // fits(lo) holds
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// `x^e` with overflow checking (`None` on overflow).
fn checked_pow(x: i128, e: u32) -> Option<i128> {
    let mut acc: i128 = 1;
    for _ in 0..e {
        acc = acc.checked_mul(x)?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_numeric::rational::rat;
    use iolb_symbolic::Var;

    /// MGS-shaped triangular statement with the ij/ik/kj projections.
    fn mgs_like() -> (iolb_ir::Program, StmtId) {
        let mut b = iolb_ir::ProgramBuilder::new("classical_mgs_like", &["M", "N"]);
        let a = b.array("A", &[b.p("M"), b.p("N")]);
        let q = b.array("Q", &[b.p("M"), b.p("N")]);
        let r = b.array("R", &[b.p("N"), b.p("N")]);
        let k = b.open("k", b.c(0), b.p("N"));
        let j = b.open("j", b.d(k) + 1, b.p("N"));
        let i = b.open("i", b.c(0), b.p("M"));
        let ra = iolb_ir::Access::new(a, vec![b.d(i), b.d(j)]);
        let rq = iolb_ir::Access::new(q, vec![b.d(i), b.d(k)]);
        let rr = iolb_ir::Access::new(r, vec![b.d(k), b.d(j)]);
        b.stmt("SU", vec![ra.clone(), rq, rr], vec![ra], move |c| {
            let (k, j, i) = (c.v(0), c.v(1), c.v(2));
            let v = c.rd(a, &[i, j]) - c.rd(q, &[i, k]) * c.rd(r, &[k, j]);
            c.wr(a, &[i, j], v);
        });
        b.close();
        b.close();
        b.close();
        let p = b.finish();
        let su = p.stmt_id("SU").unwrap();
        (p, su)
    }

    #[test]
    fn mgs_classical_shape() {
        let (p, su) = mgs_like();
        let analysis = crate::Analysis::run(&p, &[vec![7, 5]]).unwrap();
        let b = analysis.classical_bound(su);
        assert_eq!(b.sigma, rat(3, 2));
        assert_eq!(b.m, Rational::int(3));
        // Bound = 2·|V|/√S with |V| = M(N-1)(N-2)/2 → M(N-1)(N-2)/√S.
        let (m, n, s) = (1000i128, 100i128, 400i128);
        let got =
            b.expr
                .eval_ints_f64(&[(Var::new("M"), m), (Var::new("N"), n), (crate::s_var(), s)]);
        let expect = (m * (n - 1) * (n - 2)) as f64 / (s as f64).sqrt();
        assert!(
            (got / expect - 1.0).abs() < 1e-9,
            "got {got}, expect {expect}"
        );
    }

    #[test]
    fn floored_eval_is_below_asymptotic() {
        let (p, su) = mgs_like();
        let analysis = crate::Analysis::run(&p, &[vec![7, 5]]).unwrap();
        let b = analysis.classical_bound(su);
        for (m, n, s) in [(64i128, 16i128, 32i128), (128, 32, 64)] {
            let env = [(Var::new("M"), m), (Var::new("N"), n)];
            let floored = b.eval_floor(&env, s);
            let asym = b.expr.eval_ints_f64(&[
                (Var::new("M"), m),
                (Var::new("N"), n),
                (crate::s_var(), s),
            ]);
            assert!(floored <= asym * 1.0 + 1e-9, "floored {floored} vs {asym}");
            assert!(floored > 0.0);
        }
    }

    #[test]
    fn floored_eval_survives_i128_overflow_conservatively() {
        // |V| ≈ 2^64: |V|² overflows i128, so the q-th-root comparison loses
        // one side (or both) — the count must round *down*, keeping the
        // bound sound (≤ the unfloored asymptotic form), not panic.
        let (p, su) = mgs_like();
        let analysis = crate::Analysis::run(&p, &[vec![7, 5]]).unwrap();
        let b = analysis.classical_bound(su);
        let (m, n, s) = ((1i128 << 31) - 1, 1i128 << 17, 1i128 << 12);
        let env = [(Var::new("M"), m), (Var::new("N"), n)];
        let floored = b.eval_floor(&env, s);
        let asym =
            b.expr
                .eval_ints_f64(&[(Var::new("M"), m), (Var::new("N"), n), (crate::s_var(), s)]);
        assert!(floored > 0.0);
        assert!(
            floored <= asym * (1.0 + 1e-9),
            "floored {floored} vs {asym}"
        );
    }

    #[test]
    fn volume_uses_drop_first_convention() {
        let (p, su) = mgs_like();
        let analysis = crate::Analysis::run(&p, &[vec![7, 5]]).unwrap();
        let b = analysis.classical_bound(su);
        let v = iolb_ir::count::eval_params(&b.volume, &[("M", 10), ("N", 6)]);
        // Σ_{k=1}^{5} 10·(6-1-k) = 10·(4+3+2+1+0) = 100.
        assert_eq!(v, Rational::int(100));
    }
}
