//! The projection set `Φ` of a statement and the Brascamp–Lieb exponent
//! optimization.
//!
//! For coordinate projections (which is what dependence-path analysis
//! produces for this kernel class) the Brascamp–Lieb subgroup condition
//! `rank(H) ≤ Σ_j s_j·rank(φ_j(H))` reduces to a covering LP: for every
//! dimension `d`, `Σ_{j : d ∈ supp(φ_j)} s_j ≥ 1` — summing the singleton
//! conditions recovers every subgroup condition. [`PhiSet::check_subgroups`]
//! nevertheless verifies the full condition on all coordinate subspaces with
//! exact rank computations, as a soundness cross-check of the reduction.

use iolb_ir::{deps::ReadProjection, DimId, Program, StmtId};
use iolb_numeric::{LinearProgram, Objective, QMatrix, Rational};
use std::collections::BTreeSet;

/// One projection: the consumer dims its image distinguishes, plus the
/// identity of the in-set region it targets (for the disjointness
/// refinement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Projection {
    /// Consumer dims in the projection support.
    pub support: BTreeSet<DimId>,
    /// Region key: (array, rendered index function) — distinct keys map to
    /// disjoint in-set regions.
    pub region: (u32, String),
}

/// The set `Φ` of projections of one statement.
#[derive(Debug, Clone)]
pub struct PhiSet {
    /// Statement the set belongs to.
    pub stmt: StmtId,
    /// The statement's dims (outermost first).
    pub dims: Vec<DimId>,
    /// Projections, one per read access.
    pub projections: Vec<Projection>,
}

impl PhiSet {
    /// Builds Φ from the analyzed read projections.
    ///
    /// Read families observed *pointwise aliasing* (one instance touching
    /// the same cell through two declared accesses — `B[i]` vs
    /// `B[N-1-i]` at the midpoint, a triangular update's `A[i][k]` vs
    /// `A[j][k]` on the diagonal) are assigned one shared region key:
    /// their in-sets provably overlap, so counting them as disjoint
    /// regions would inflate the `m` refinement above what a real
    /// execution must load.
    pub fn for_statement(program: &Program, stmt: StmtId, reads: &[ReadProjection]) -> PhiSet {
        let s = program.stmt(stmt);
        let mut projections = Vec::new();
        let mut read_idxs: Vec<usize> = Vec::new();
        let mut alias_pairs: Vec<(usize, usize)> = Vec::new();
        for rp in reads.iter().filter(|r| r.stmt == stmt) {
            let access = &s.reads[rp.read_idx];
            let rendered = access
                .idx
                .iter()
                .map(|a| {
                    a.display_with(&|d| format!("d{}", d.0), &|p| {
                        program.params[p.0 as usize].clone()
                    })
                })
                .collect::<Vec<_>>()
                .join(",");
            read_idxs.push(rp.read_idx);
            for &other in &rp.aliased {
                alias_pairs.push((rp.read_idx, other));
            }
            projections.push(Projection {
                support: rp.support.clone(),
                region: (rp.array.0, rendered),
            });
        }
        // Merge aliasing families' region keys to a shared representative
        // (iterated to a fixpoint for transitive chains).
        loop {
            let mut changed = false;
            for &(a, b) in &alias_pairs {
                let (Some(ia), Some(ib)) = (
                    read_idxs.iter().position(|&r| r == a),
                    read_idxs.iter().position(|&r| r == b),
                ) else {
                    continue;
                };
                let min = projections[ia]
                    .region
                    .clone()
                    .min(projections[ib].region.clone());
                for i in [ia, ib] {
                    if projections[i].region != min {
                        projections[i].region = min.clone();
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        PhiSet {
            stmt,
            dims: s.dims.clone(),
            projections,
        }
    }

    /// Number of pairwise-disjoint in-set regions (distinct region keys).
    pub fn disjoint_regions(&self) -> usize {
        let keys: BTreeSet<&(u32, String)> = self.projections.iter().map(|p| &p.region).collect();
        keys.len()
    }

    /// The sound in-set refinement divisor `m = σ / w_max`, given the
    /// optimal BL exponents.
    ///
    /// With the in-set split into disjoint regions `R_r` of total size
    /// `K` and region weights `w_r = Σ s_j` over the region's
    /// projections, weighted AM–GM gives
    /// `|E| ≤ Π_r |R_r|^{w_r} ≤ (Σ_r (w_r/σ)·|R_r|)^σ ≤ (w_max·K/σ)^σ`,
    /// i.e. `(K/m)^σ` with `m = σ/w_max` — a rational in general. For
    /// regions of equal weight this is exactly the region count (the
    /// paper's integer `m`); zero-weight regions drop out (a scalar
    /// operand must not "reserve" `K/m` cells), and unequal weights get
    /// the exact sound divisor instead of the even split, which would
    /// overstate the bound.
    pub fn refinement_divisor(&self, s: &[Rational]) -> Rational {
        assert_eq!(s.len(), self.projections.len());
        let mut weights: std::collections::BTreeMap<&(u32, String), Rational> =
            std::collections::BTreeMap::new();
        let mut sigma = Rational::ZERO;
        for (p, sj) in self.projections.iter().zip(s) {
            *weights.entry(&p.region).or_insert(Rational::ZERO) += *sj;
            sigma += *sj;
        }
        let w_max = weights.values().copied().max().unwrap_or(Rational::ZERO);
        if !w_max.is_positive() || !sigma.is_positive() {
            return Rational::ONE;
        }
        sigma / w_max
    }

    /// Solves the Brascamp–Lieb exponent LP: minimize `σ = Σ s_j` subject to
    /// the dimension-covering constraints, `0 ≤ s_j ≤ 1`.
    ///
    /// Returns `(σ, s)`; `None` when some dimension is covered by no
    /// projection (the LP is infeasible — the set size is then unbounded by
    /// these projections alone).
    pub fn bl_exponents(&self) -> Option<(Rational, Vec<Rational>)> {
        let n = self.projections.len();
        if n == 0 {
            return None;
        }
        let mut lp = LinearProgram::new(n, vec![Rational::ONE; n], Objective::Minimize);
        for d in &self.dims {
            let row: Vec<Rational> = self
                .projections
                .iter()
                .map(|p| {
                    if p.support.contains(d) {
                        Rational::ONE
                    } else {
                        Rational::ZERO
                    }
                })
                .collect();
            if row.iter().all(|c| c.is_zero()) {
                return None;
            }
            lp.constrain(row, iolb_numeric::simplex::Cmp::Ge, Rational::ONE);
        }
        lp.upper_bound_all(Rational::ONE);
        match lp.solve() {
            iolb_numeric::LpOutcome::Optimal { value, x } => Some((value, x)),
            _ => None,
        }
    }

    /// Verifies the Brascamp–Lieb subgroup condition
    /// `rank(H) ≤ Σ_j s_j·rank(φ_j(H))` for every coordinate subspace `H`
    /// of the statement's iteration space, with exact rank arithmetic.
    pub fn check_subgroups(&self, s: &[Rational]) -> bool {
        assert_eq!(s.len(), self.projections.len());
        let d = self.dims.len();
        // Enumerate all non-empty subsets of dims.
        for mask in 1u32..(1 << d) {
            let subset: Vec<DimId> = (0..d)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| self.dims[i])
                .collect();
            // H = span of the chosen coordinate axes: rank(H) = |subset|;
            // rank(φ_j(H)) = |subset ∩ supp(φ_j)| (computed through an
            // explicit matrix rank to exercise the exact linear algebra).
            let rank_h = subset.len() as i128;
            let mut rhs = Rational::ZERO;
            for (p, sj) in self.projections.iter().zip(s) {
                if sj.is_zero() {
                    continue;
                }
                let mut m = QMatrix::zeros(0, 0);
                for dim in &subset {
                    // Basis vector of `dim` projected on supp(φ): a row with
                    // a 1 in the kept coordinates.
                    let row: Vec<Rational> = self
                        .dims
                        .iter()
                        .map(|x| {
                            if x == dim && p.support.contains(x) {
                                Rational::ONE
                            } else {
                                Rational::ZERO
                            }
                        })
                        .collect();
                    m.push_row(&row);
                }
                rhs += *sj * Rational::int(m.rank() as i128);
            }
            if Rational::int(rank_h) > rhs {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_numeric::rational::rat;

    fn phi(dims: &[u32], supports: &[&[u32]]) -> PhiSet {
        PhiSet {
            stmt: StmtId(0),
            dims: dims.iter().map(|&d| DimId(d)).collect(),
            projections: supports
                .iter()
                .enumerate()
                .map(|(i, sup)| Projection {
                    support: sup.iter().map(|&d| DimId(d)).collect(),
                    region: (i as u32, format!("r{i}")),
                })
                .collect(),
        }
    }

    #[test]
    fn mgs_exponents_are_three_halves() {
        // Φ = {ij, ik, kj} over (k, j, i).
        let p = phi(&[0, 1, 2], &[&[2, 1], &[2, 0], &[0, 1]]);
        let (sigma, s) = p.bl_exponents().unwrap();
        assert_eq!(sigma, rat(3, 2));
        assert!(s.iter().all(|x| *x == rat(1, 2)));
        assert!(p.check_subgroups(&s));
        assert_eq!(p.disjoint_regions(), 3);
    }

    #[test]
    fn one_d_projections_give_sigma_three() {
        let p = phi(&[0, 1, 2], &[&[0], &[1], &[2]]);
        let (sigma, s) = p.bl_exponents().unwrap();
        assert_eq!(sigma, Rational::int(3));
        assert!(p.check_subgroups(&s));
    }

    #[test]
    fn uncovered_dimension_is_infeasible() {
        let p = phi(&[0, 1, 2], &[&[0, 1]]);
        assert!(p.bl_exponents().is_none());
    }

    #[test]
    fn subgroup_check_rejects_bad_exponents() {
        let p = phi(&[0, 1, 2], &[&[2, 1], &[2, 0], &[0, 1]]);
        // s = (1/4, 1/4, 1/4) violates coverage: each dim covered by 2
        // projections → sum 1/2 < 1.
        let bad = vec![rat(1, 4); 3];
        assert!(!p.check_subgroups(&bad));
    }

    #[test]
    fn full_support_projection_needs_exponent_one() {
        let p = phi(&[0, 1], &[&[0, 1]]);
        let (sigma, s) = p.bl_exponents().unwrap();
        assert_eq!(sigma, Rational::ONE);
        assert!(p.check_subgroups(&s));
    }

    #[test]
    fn duplicate_regions_counted_once() {
        let mut p = phi(&[0, 1], &[&[0], &[1]]);
        p.projections[1].region = p.projections[0].region.clone();
        assert_eq!(p.disjoint_regions(), 1);
    }

    #[test]
    fn refinement_divisor_equals_region_count_for_equal_weights() {
        // MGS shape: three regions, each with exponent 1/2 → m = 3.
        let p = phi(&[0, 1, 2], &[&[2, 1], &[2, 0], &[0, 1]]);
        let s = vec![rat(1, 2); 3];
        assert_eq!(p.refinement_divisor(&s), Rational::int(3));
    }

    #[test]
    fn refinement_divisor_drops_zero_weight_regions() {
        // A scalar operand region with exponent 0 must not "reserve" K/2:
        // only the weight-1 region constrains the split → m = 1.
        let p = phi(&[0, 1], &[&[0, 1], &[]]);
        assert_eq!(
            p.refinement_divisor(&[Rational::ONE, Rational::ZERO]),
            Rational::ONE
        );
        // No positive weight at all → no refinement.
        assert_eq!(
            p.refinement_divisor(&[Rational::ZERO, Rational::ZERO]),
            Rational::ONE
        );
    }

    #[test]
    fn refinement_divisor_is_weighted_for_unequal_regions() {
        // Weights (1, 1/2): σ = 3/2, w_max = 1 → m = 3/2 (the AM-GM
        // divisor), not the unsound even split m = 2.
        let p = phi(&[0, 1, 2], &[&[0, 1, 2], &[0, 1]]);
        let s = vec![Rational::ONE, rat(1, 2)];
        assert_eq!(p.refinement_divisor(&s), rat(3, 2));
    }

    #[test]
    fn merged_regions_pool_their_weights() {
        // Two projections sharing one region pool to weight 1; a third
        // separate region at 1/2 → σ = 3/2, w_max = 1 → m = 3/2.
        let mut p = phi(&[0, 1, 2], &[&[0, 1], &[1, 2], &[0, 2]]);
        p.projections[1].region = p.projections[0].region.clone();
        let s = vec![rat(1, 2); 3];
        assert_eq!(p.refinement_divisor(&s), rat(3, 2));
    }
}
