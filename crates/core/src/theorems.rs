//! The paper's closed-form bounds, pinned as expressions.
//!
//! Theorems 5–9 and the Figure 5 rows are encoded verbatim (including the
//! lower-order correction terms of the IOLB output) so parity tests and the
//! table generators can compare the engine's derivations against the
//! published formulas at any concrete parameters.

use crate::s_var;
use iolb_symbolic::{Expr, Rational, Var};

fn m() -> Expr {
    Expr::var(Var::new("M"))
}
fn n() -> Expr {
    Expr::var(Var::new("N"))
}
fn s() -> Expr {
    Expr::var(s_var())
}
/// The GEHD2 split parameter of §5.3 (called `M` in the paper's Figure 5).
pub fn split_var() -> Var {
    Var::new("Ms")
}
fn ms() -> Expr {
    Expr::var(split_var())
}
fn c(v: i128) -> Expr {
    Expr::int(v)
}

/// Theorem 5, first bound: `M²N(N−1) / (8(S+M))`.
pub fn thm5_mgs() -> Expr {
    m().pow(Rational::TWO)
        .mul(n())
        .mul(n().sub(c(1)))
        .div(c(8).mul(s().add(m())))
}

/// Theorem 5, second bound (`S ≤ M`): `(M−S)·N(N−1)/4`.
pub fn thm5_mgs_small_s() -> Expr {
    m().sub(s()).mul(n()).mul(n().sub(c(1))).div(c(4))
}

/// §5.1 regimes: `MN²/8` when `S ≤ M/2`; `M²N²/24S` when `M/2 ≤ S`.
pub fn mgs_regime_small_s() -> Expr {
    m().mul(n().pow(Rational::TWO)).div(c(8))
}

/// §5.1: `M²N²/(24S)` for `M/2 ≤ S`.
pub fn mgs_regime_large_s() -> Expr {
    m().pow(Rational::TWO)
        .mul(n().pow(Rational::TWO))
        .div(c(24).mul(s()))
}

/// Theorem 6 (A2V): `(3M−N)·N²·(M−N)² / (24(MS+(M−N)²))`.
pub fn thm6_a2v() -> Expr {
    let mn = m().sub(n());
    c(3).mul(m())
        .sub(n())
        .mul(n().pow(Rational::TWO))
        .mul(mn.clone().pow(Rational::TWO))
        .div(c(24).mul(m().mul(s()).add(mn.pow(Rational::TWO))))
}

/// Theorem 7 (V2Q): `N(N−1)(3M−N−1)(M−N)² / (24((M−N)²+SM))`.
pub fn thm7_v2q() -> Expr {
    let mn = m().sub(n());
    n().mul(n().sub(c(1)))
        .mul(c(3).mul(m()).sub(n()).sub(c(1)))
        .mul(mn.clone().pow(Rational::TWO))
        .div(c(24).mul(mn.pow(Rational::TWO).add(s().mul(m()))))
}

/// Theorems 6/7 in the `M ≫ N` regime: `M²N(N−1)/(8(S+M))`.
pub fn thm67_mggn() -> Expr {
    thm5_mgs()
}

/// Theorem 8 (GEBD2): `MN²(M−N+1) / (8(S+M−N+1))`.
pub fn thm8_gebd2() -> Expr {
    let w = m().sub(n()).add(c(1));
    m().mul(n().pow(Rational::TWO))
        .mul(w.clone())
        .div(c(8).mul(s().add(w)))
}

/// Theorem 9 (GEHD2): `N⁴ / (12(N+2S))`.
pub fn thm9_gehd2() -> Expr {
    n().pow(Rational::int(4))
        .div(c(12).mul(n().add(c(2).mul(s()))))
}

/// Theorem 9, `N ≫ S` regime: `N³/24`.
pub fn thm9_gehd2_small_s() -> Expr {
    n().pow(Rational::int(3)).div(c(24))
}

/// One row of Figure 5.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Kernel name.
    pub kernel: &'static str,
    /// Old (classical) full bound with constants.
    pub old: Expr,
    /// New (hourglass) full bound with constants.
    pub new: Expr,
}

/// All rows of Figure 5, transcribed from the paper.
///
/// GEHD2's new bound references the split parameter [`split_var`].
pub fn fig5_rows() -> Vec<Fig5Row> {
    let sqrt_s = || s().sqrt();
    let mgs_corr = || {
        c(5).mul(m())
            .sub(m().mul(n()))
            .add(c(7).mul(n()))
            .sub(n().pow(Rational::TWO).div(c(2)))
            .sub(s())
            .sub(c(6))
    };
    let a2v_corr = || {
        c(5).mul(m())
            .sub(m().mul(n()))
            .add(c(5).mul(n()))
            .sub(s())
            .sub(c(13))
    };
    let v2q_corr = || {
        c(2).mul(m())
            .add(c(3).mul(n()))
            .sub(n().pow(Rational::TWO).div(c(2)))
            .sub(s())
            .sub(c(4))
    };
    // Numerators shared between old (over 3√S) and new (over 24(1+S/W)).
    let a2v_num = || {
        c(3).mul(m())
            .mul(n().pow(Rational::TWO))
            .sub(n().pow(Rational::int(3)))
            .sub(c(9).mul(m()).mul(n()))
            .add(c(6).mul(m()))
            .add(c(7).mul(n()))
            .sub(c(6))
    };
    vec![
        Fig5Row {
            kernel: "MGS",
            // M(N−1)(N−2)/√S + corrections.
            old: m()
                .mul(n().sub(c(1)))
                .mul(n().sub(c(2)))
                .div(sqrt_s())
                .add(mgs_corr()),
            // M²(N−1)(N−2)/(8(M+S)) + corrections.
            new: m()
                .pow(Rational::TWO)
                .mul(n().sub(c(1)))
                .mul(n().sub(c(2)))
                .div(c(8).mul(m().add(s())))
                .add(mgs_corr()),
        },
        Fig5Row {
            kernel: "QR HH A2V",
            old: a2v_num().div(c(3).mul(sqrt_s())).add(a2v_corr()),
            // numer / (24(1 + S/(M−N))) + corrections.
            new: a2v_num()
                .div(c(24).mul(c(1).add(s().div(m().sub(n())))))
                .add(a2v_corr()),
        },
        Fig5Row {
            kernel: "QR HH V2Q",
            old: a2v_num().div(c(3).mul(sqrt_s())).add(v2q_corr()),
            new: a2v_num()
                .div(c(24).mul(c(1).add(s().div(m().sub(n())))))
                .add(v2q_corr()),
        },
        Fig5Row {
            kernel: "GEBD2",
            old: a2v_num().div(c(3).mul(sqrt_s())).add(
                c(5).mul(n())
                    .add(c(5).mul(m()))
                    .sub(m().mul(n()))
                    .sub(s())
                    .sub(c(13)),
            ),
            // (3MN²−N³+3N²−15MN+4N+18M−12)/(24(1+S/(1+M−N))) + corrections.
            new: c(3)
                .mul(m())
                .mul(n().pow(Rational::TWO))
                .sub(n().pow(Rational::int(3)))
                .add(c(3).mul(n().pow(Rational::TWO)))
                .sub(c(15).mul(m()).mul(n()))
                .add(c(4).mul(n()))
                .add(c(18).mul(m()))
                .sub(c(12))
                .div(c(24).mul(c(1).add(s().div(c(1).add(m()).sub(n())))))
                .add(
                    c(5).mul(n())
                        .add(c(7).mul(m()))
                        .sub(m().mul(n()))
                        .sub(s())
                        .sub(c(18)),
                ),
        },
        Fig5Row {
            kernel: "GEHD2",
            // (5N³−30N²+55N−30)/(3√S) + 69N − 9N²/2 − 3S − 56.
            old: c(5)
                .mul(n().pow(Rational::int(3)))
                .sub(c(30).mul(n().pow(Rational::TWO)))
                .add(c(55).mul(n()))
                .sub(c(30))
                .div(c(3).mul(sqrt_s()))
                .add(
                    c(69)
                        .mul(n())
                        .sub(c(9).mul(n().pow(Rational::TWO)).div(c(2)))
                        .sub(c(3).mul(s()))
                        .sub(c(56)),
                ),
            // (N³−6N²+11N−6)/(12(1+S/(N−Ms−1))) − N² + 12N − S − 19.
            new: n()
                .pow(Rational::int(3))
                .sub(c(6).mul(n().pow(Rational::TWO)))
                .add(c(11).mul(n()))
                .sub(c(6))
                .div(c(12).mul(c(1).add(s().div(n().sub(ms()).sub(c(1))))))
                .add(
                    c(12)
                        .mul(n())
                        .sub(n().pow(Rational::TWO))
                        .sub(s())
                        .sub(c(19)),
                ),
        },
    ]
}

/// One row of Figure 4 (asymptotic summary), as display strings.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Kernel name.
    pub kernel: &'static str,
    /// Old asymptotic bound.
    pub old: &'static str,
    /// New asymptotic bound.
    pub new: &'static str,
}

/// The rows of Figure 4, as printed in the paper.
pub fn fig4_rows() -> Vec<Fig4Row> {
    vec![
        Fig4Row {
            kernel: "MGS",
            old: "Ω(MN²/√S)",
            new: "Ω(M²N(N−1)/(S+M))",
        },
        Fig4Row {
            kernel: "QR HH A2V",
            old: "Ω(MN²/√S)",
            new: "Ω(MN²(N−M)/(N−M−S))",
        },
        Fig4Row {
            kernel: "QR HH V2Q",
            old: "Ω(MN²/√S)",
            new: "Ω(MN²(N−M)/(N−M−S))",
        },
        Fig4Row {
            kernel: "GEBD2",
            old: "Ω(MN²/√S)",
            new: "Ω(MN²(M−N+1)/(8(S+M−N+1)))",
        },
        Fig4Row {
            kernel: "GEHD2",
            old: "Ω(N³/√S)",
            new: "Ω(N⁴/(N+2S))",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(e: &Expr, m_: i128, n_: i128, s_: i128) -> f64 {
        e.eval_ints_f64(&[
            (Var::new("M"), m_),
            (Var::new("N"), n_),
            (s_var(), s_),
            (split_var(), n_ / 2 - 1),
        ])
    }

    #[test]
    fn theorem5_values() {
        // M=100, N=10, S=50: 100²·10·9/(8·150) = 750.
        assert!((ev(&thm5_mgs(), 100, 10, 50) - 750.0).abs() < 1e-9);
        // (100−50)·10·9/4 = 1125.
        assert!((ev(&thm5_mgs_small_s(), 100, 10, 50) - 1125.0).abs() < 1e-9);
    }

    #[test]
    fn theorem9_matches_split_instantiation() {
        // N⁴/(12(N+2S)) at N=64, S=32: 64⁴/(12·128).
        let expect = 64.0f64.powi(4) / (12.0 * 128.0);
        assert!((ev(&thm9_gehd2(), 0, 64, 32) - expect).abs() < 1e-6);
    }

    #[test]
    fn mgs_new_dominates_old_when_s_small_relative() {
        // The improvement ratio is Θ(√S) for S ≤ M (§5.1).
        for s_ in [256i128, 1024, 4096] {
            let m_ = 1 << 14;
            let n_ = 1 << 10;
            let rows = fig5_rows();
            let mgs = &rows[0];
            let old = ev(&mgs.old, m_, n_, s_);
            let new = ev(&mgs.new, m_, n_, s_);
            assert!(new > old, "hourglass must win at M={m_},N={n_},S={s_}");
            let ratio = new / old;
            let expect = (s_ as f64).sqrt() / 8.0; // up to constants
            assert!(
                ratio > expect * 0.2 && ratio < expect * 20.0,
                "ratio {ratio} vs Θ(√S) ≈ {expect}"
            );
        }
    }

    #[test]
    fn fig5_rows_all_evaluate() {
        for row in fig5_rows() {
            let old = ev(&row.old, 4096, 1024, 256);
            let new = ev(&row.new, 4096, 1024, 256);
            assert!(old.is_finite() && new.is_finite(), "{}", row.kernel);
            assert!(old > 0.0 && new > 0.0, "{}", row.kernel);
        }
    }

    #[test]
    fn fig4_has_five_kernels() {
        assert_eq!(fig4_rows().len(), 5);
    }
}
