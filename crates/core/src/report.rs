//! End-to-end per-kernel derivation reports and the Figure 4/5 table
//! generators.

use crate::hourglass::{self, SplitChoice};
use crate::{theorems, Analysis, ClassicalBound, HourglassBound};
use iolb_ir::parse::ParamExpr;
use iolb_ir::Program;
use iolb_numeric::Rational;
use iolb_symbolic::{Expr, Poly, Var};

/// Per-kernel binding of a symbolic split variable (§5.3) to a value
/// computed from the concrete parameters — carried as data on
/// [`KernelReport`] so dynamically parsed kernels evaluate correctly
/// instead of every kernel sharing a hardcoded `Ms = N/2 − 1` injection.
#[derive(Debug, Clone)]
pub struct SplitBinding {
    /// The symbolic split variable (the paper's `Ms`).
    pub var: Var,
    /// Its value as a rational-affine function of the named parameters,
    /// floored at evaluation.
    pub expr: ParamExpr,
}

impl SplitBinding {
    /// Evaluates the binding against named parameter values.
    pub fn eval(&self, params: &[(String, i64)]) -> i128 {
        self.expr.eval_floor(params)
    }
}

/// One measured (lower bound, upper bound) pair at a concrete fast-memory
/// size `S` — the tightness comparison the paper's evaluation methodology
/// builds on (lower bounds vs the I/O of a concrete blocked execution).
///
/// Produced by the upper-bound schedule engine in `iolb-bench`: one
/// point of the winning schedule's exact Belady-MIN *miss curve*
/// (`iolb-memsim`'s one-pass stack-distance profile of the schedule's
/// element-granularity trace — the loads of the best possible demand
/// replacement for that execution order). Carried here as plain data so
/// every report surface (CLI, JSON, tables) shares one row type.
///
/// Two orderings are invariants of the measurement (the harness rejects
/// their violation as an engine bug): `upper_loads ≤
/// program_order_loads`, and `upper_loads ≤ trace_lru_loads`. The
/// pre-curve schema v1 reported a `trace_min_loads` side column that
/// could land *above* the pebble-play upper bound, because the old
/// simulator lacked the write-kill rule and was not exactly optimal;
/// that column is gone — the optimal trace measurement *is* the bound.
#[derive(Debug, Clone)]
pub struct TightnessPoint {
    /// Fast-memory budget.
    pub s: usize,
    /// Classical K-partition bound at `S` (0 when none derives).
    pub lb_classical: f64,
    /// Hourglass bound at `S` (0 when the kernel has no pattern).
    pub lb_hourglass: f64,
    /// Trivial input floor: every distinct input read by the CDAG costs at
    /// least one load under any schedule.
    pub lb_inputs: f64,
    /// Loads of the best measured schedule at `S`: its optimal-replacement
    /// (Belady) miss-curve point.
    pub upper_loads: u64,
    /// Description of the winning schedule (`"program-order"` or a
    /// `tile i=8 j=8` string).
    pub upper_schedule: String,
    /// The untransformed program-order curve at `S` (the tuner's
    /// baseline).
    pub program_order_loads: u64,
    /// The winning schedule's trace under plain LRU — what demand paging
    /// without future knowledge pays for the same execution order.
    pub trace_lru_loads: u64,
}

impl TightnessPoint {
    /// The best derived lower bound at this `S` (≥ 1 so ratios stay
    /// finite even for kernels outside both bounding techniques).
    pub fn lower_bound(&self) -> f64 {
        self.lb_classical
            .max(self.lb_hourglass)
            .max(self.lb_inputs)
            .max(1.0)
    }

    /// Tightness ratio: measured upper bound over derived lower bound
    /// (finite and ≥ 1 whenever the bounds are sound).
    pub fn ratio(&self) -> f64 {
        self.upper_loads as f64 / self.lower_bound()
    }

    /// Upper bound over the hourglass bound alone; `None` when the kernel
    /// has no hourglass pattern — the paper's headline tightness metric.
    pub fn hourglass_ratio(&self) -> Option<f64> {
        (self.lb_hourglass > 0.0).then(|| self.upper_loads as f64 / self.lb_hourglass)
    }
}

/// Renders tightness points as an aligned per-kernel table block.
pub fn render_tightness_points(name: &str, points: &[TightnessPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "   tightness {name}: {:>6} {:>12} {:>12} {:>7} {:<20}\n",
        "S", "LB", "upper", "ratio", "schedule"
    ));
    for t in points {
        out.push_str(&format!(
            "   {:>16} {:>6} {:>12.0} {:>12} {:>7.2} {:<20}\n",
            "",
            t.s,
            t.lower_bound(),
            t.upper_loads,
            t.ratio(),
            t.upper_schedule
        ));
    }
    out
}

/// A complete derivation for one kernel: the classical ("old") bound and
/// the hourglass-tightened ("new") bound.
pub struct KernelReport {
    /// Kernel display name.
    pub name: String,
    /// Classical K-partitioning bound on the hourglass statement.
    pub old: ClassicalBound,
    /// Hourglass bound (§4).
    pub new: HourglassBound,
    /// True when §5.3 loop splitting was applied (GEHD2).
    pub split: bool,
    /// The split-variable binding when splitting was applied.
    pub split_binding: Option<SplitBinding>,
}

/// Derives both bounds for a kernel program.
///
/// `hourglass_stmt` names the broadcast statement; observation sizes are
/// chosen from the parameter count. When the detected width collapses to a
/// constant (GEHD2), §5.3 loop splitting at the symbolic point
/// [`theorems::split_var`] is applied automatically.
///
/// # Errors
/// Propagates dependence-analysis, detection or certification failures.
pub fn analyze_kernel(
    program: &Program,
    name: &str,
    hourglass_stmt: &str,
) -> Result<KernelReport, String> {
    analyze_kernel_with(program, name, hourglass_stmt, None)
}

/// [`analyze_kernel`] with an explicit split-variable binding (the DSL's
/// `split Ms = …;` directive). Without one, a kernel that needs §5.3
/// splitting gets the temporal-loop midpoint `⌊(lo + hi)/2⌋` — which is
/// exactly the paper's `Ms = N/2 − 1` for GEHD2's `j ∈ [0, N−2)`.
///
/// # Errors
/// Propagates dependence-analysis, detection or certification failures.
pub fn analyze_kernel_with(
    program: &Program,
    name: &str,
    hourglass_stmt: &str,
    split_override: Option<SplitBinding>,
) -> Result<KernelReport, String> {
    let observe: Vec<Vec<i64>> = match program.params.len() {
        1 => vec![vec![8], vec![9]],
        2 => vec![vec![9, 6], vec![8, 5]],
        _ => vec![vec![5, 6, 4]],
    };
    let analysis = Analysis::run(program, &observe)?;
    let stmt = program
        .stmt_id(hourglass_stmt)
        .ok_or_else(|| format!("no statement {hourglass_stmt} in {name}"))?;
    let old = analysis.classical_bound(stmt);
    let pattern = analysis
        .detect_hourglass(stmt)
        .ok_or_else(|| format!("no hourglass pattern detected on {name}.{hourglass_stmt}"))?;
    hourglass::certify(program, &pattern, &observe[0])?;
    let (new, split_binding) = derive_with_split(program, &pattern, split_override)?;
    Ok(KernelReport {
        name: name.to_string(),
        old,
        new,
        split: split_binding.is_some(),
        split_binding,
    })
}

/// Derives the hourglass bound, applying §5.3 loop splitting when the
/// plain minimal width collapses to a constant. Returns the bound plus the
/// binding that was applied — the override first, the temporal-loop
/// midpoint otherwise, `None` when no splitting was needed. Every consumer
/// (the report pipeline, the validation sweep, the `iolb` CLI) shares this
/// one decision point.
///
/// # Errors
/// Propagates [`midpoint_split_binding`] failures.
pub fn derive_with_split(
    program: &Program,
    pattern: &crate::HourglassPattern,
    split_override: Option<SplitBinding>,
) -> Result<(HourglassBound, Option<SplitBinding>), String> {
    let plain = hourglass::derive(program, pattern, &SplitChoice::None);
    if plain.w_min.is_constant() && !plain.w_max.is_constant() {
        let binding = match split_override {
            Some(b) => b,
            None => midpoint_split_binding(program, pattern.temporal[0])?,
        };
        let split = SplitChoice::At(Poly::var(binding.var));
        Ok((hourglass::derive(program, pattern, &split), Some(binding)))
    } else {
        Ok((plain, None))
    }
}

/// Observation size vectors for analyzing a kernel at concrete validation
/// parameters: the parameters themselves plus a slightly smaller sibling —
/// unifying projections across two sizes rejects coincidental producers.
pub fn observation_sizes(params: &[i64]) -> Vec<Vec<i64>> {
    let a = params.to_vec();
    let b: Vec<i64> = params
        .iter()
        .map(|&v| if v > 3 { v - 1 } else { v })
        .collect();
    if a == b {
        vec![a]
    } else {
        vec![a, b]
    }
}

/// The default split point: the midpoint of the temporal loop's parametric
/// range, as a rational-affine function of the parameters (GEHD2's
/// `j ∈ [0, N−2)` resolves to the paper's `Ms = N/2 − 1`).
///
/// # Errors
/// Reports temporal loops whose bounds are not single parameter-only
/// affine expressions.
pub fn midpoint_split_binding(
    program: &Program,
    temporal: iolb_ir::DimId,
) -> Result<SplitBinding, String> {
    let info = program.loop_info(temporal);
    if info.lo.len() != 1 || info.hi.len() != 1 {
        return Err("split binding needs single-bound temporal loop".to_string());
    }
    let mut terms: Vec<(String, Rational)> = Vec::new();
    let mut cst = Rational::ZERO;
    for a in [&info.lo[0], &info.hi[0]] {
        if !a.is_dim_free() {
            return Err("split binding needs parameter-only temporal bounds".to_string());
        }
        cst += Rational::new(a.cst() as i128, 2);
        for (p, c) in a.param_terms() {
            let name = program.params[p.0 as usize].clone();
            let coeff = Rational::new(*c as i128, 2);
            match terms.iter_mut().find(|(n, _)| *n == name) {
                Some((_, acc)) => *acc += coeff,
                None => terms.push((name, coeff)),
            }
        }
    }
    terms.retain(|(_, c)| !c.is_zero());
    Ok(SplitBinding {
        var: theorems::split_var(),
        expr: ParamExpr { terms, cst },
    })
}

/// Improvement ratio new/old at concrete parameters. `None` when the old
/// bound is zero or either bound is non-finite at the evaluation point
/// (degenerate parameters) — previously those produced `inf`/`NaN` that
/// silently flowed into tables.
pub fn improvement_ratio(report: &KernelReport, env: &[(Var, i128)]) -> Option<f64> {
    let new = report.new.main_tool.eval_ints_f64(env);
    let old = report.old.expr.eval_ints_f64(env);
    if !new.is_finite() || !old.is_finite() || old == 0.0 {
        return None;
    }
    Some(new / old)
}

fn render_expr(e: &Expr) -> String {
    format!("{e}")
}

/// Renders the Figure-4 style table: paper rows plus the engine-derived
/// formulas, one block per kernel.
pub fn fig4_table(reports: &[KernelReport]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 4 — asymptotic data-movement lower bounds (paper) vs engine derivations\n",
    );
    out.push_str(&"=".repeat(96));
    out.push('\n');
    let paper = theorems::fig4_rows();
    for report in reports {
        let row = paper.iter().find(|r| r.kernel == report.name);
        out.push_str(&format!("kernel: {}\n", report.name));
        if let Some(row) = row {
            out.push_str(&format!("  paper old : {}\n", row.old));
            out.push_str(&format!("  paper new : {}\n", row.new));
        }
        out.push_str(&format!(
            "  engine old: σ={} m={} → {}\n",
            report.old.sigma,
            report.old.m,
            render_expr(&report.old.expr)
        ));
        out.push_str(&format!(
            "  engine new: W∈[{}, {}] → {}\n",
            report.new.w_min,
            report.new.w_max,
            render_expr(&report.new.main_tool)
        ));
        if report.split {
            out.push_str("  (loop split at symbolic Ms per §5.3)\n");
        }
        out.push('\n');
    }
    out
}

/// A numeric Figure-5 parity row: paper formula vs engine formula at one
/// parameter point.
#[derive(Debug, Clone)]
pub struct Fig5Parity {
    /// Kernel name.
    pub kernel: String,
    /// Paper's old bound value.
    pub paper_old: f64,
    /// Engine's old bound value.
    pub engine_old: f64,
    /// Paper's new bound value.
    pub paper_new: f64,
    /// Engine's new bound value.
    pub engine_new: f64,
}

/// Evaluates Figure 5 parity at `(M, N, S)`. A kernel that needed §5.3
/// splitting contributes its own [`SplitBinding`] (GEHD2's resolves to the
/// paper's `Ms = N/2 − 1`) instead of a global hardcoded injection.
pub fn fig5_parity(reports: &[KernelReport], m: i128, n: i128, s: i128) -> Vec<Fig5Parity> {
    let rows = theorems::fig5_rows();
    reports
        .iter()
        .filter_map(|r| {
            let paper = rows.iter().find(|p| p.kernel == r.name)?;
            let mut env = vec![(Var::new("M"), m), (Var::new("N"), n), (crate::s_var(), s)];
            if let Some(binding) = &r.split_binding {
                let named = [("M".to_string(), m as i64), ("N".to_string(), n as i64)];
                env.push((binding.var, binding.eval(&named)));
            }
            Some(Fig5Parity {
                kernel: r.name.clone(),
                paper_old: paper.old.eval_ints_f64(&env),
                engine_old: r.old.expr.eval_ints_f64(&env),
                paper_new: paper.new.eval_ints_f64(&env),
                engine_new: r.new.main_tool.eval_ints_f64(&env),
            })
        })
        .collect()
}

/// Renders the Figure-5 parity table across a default grid.
pub fn fig5_table(reports: &[KernelReport]) -> String {
    let mut out = String::new();
    out.push_str("Figure 5 — full parametric bounds: paper formula vs engine derivation\n");
    out.push_str(&"=".repeat(96));
    out.push('\n');
    out.push_str(&format!(
        "{:<12} {:>8} {:>8} {:>8} | {:>14} {:>14} {:>6} | {:>14} {:>14} {:>6}\n",
        "kernel",
        "M",
        "N",
        "S",
        "old(paper)",
        "old(engine)",
        "ratio",
        "new(paper)",
        "new(engine)",
        "ratio"
    ));
    for (m, n, s) in [
        (1024i128, 256i128, 128i128),
        (4096, 1024, 512),
        (16384, 4096, 2048),
    ] {
        for p in fig5_parity(reports, m, n, s) {
            out.push_str(&format!(
                "{:<12} {:>8} {:>8} {:>8} | {:>14.3e} {:>14.3e} {:>6.3} | {:>14.3e} {:>14.3e} {:>6.3}\n",
                p.kernel,
                m,
                n,
                s,
                p.paper_old,
                p.engine_old,
                p.engine_old / p.paper_old,
                p.paper_new,
                p.engine_new,
                p.engine_new / p.paper_new,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The report plumbing on the miniature MGS core: tables render and the
    /// improvement ratio behaves like Θ(√S)·const for S ≤ M.
    #[test]
    fn tables_render_for_a_report() {
        let mut b = iolb_ir::ProgramBuilder::new("report_mini", &["M", "N"]);
        let a = b.array("A", &[b.p("M"), b.p("N")]);
        let r = b.array("R", &[b.p("N"), b.p("N")]);
        let k = b.open("k", b.c(0), b.p("N"));
        let j = b.open("j", b.d(k) + 1, b.p("N"));
        let w_r = iolb_ir::Access::new(r, vec![b.d(k), b.d(j)]);
        b.stmt("S0", vec![], vec![w_r.clone()], move |c| {
            c.wr(r, &[c.v(0), c.v(1)], 0.0)
        });
        let i1 = b.open("i", b.c(0), b.p("M"));
        let rd_aik = iolb_ir::Access::new(a, vec![b.d(i1), b.d(k)]);
        let rd_aij = iolb_ir::Access::new(a, vec![b.d(i1), b.d(j)]);
        b.stmt(
            "SR",
            vec![rd_aik, rd_aij, w_r.clone()],
            vec![w_r.clone()],
            move |c| {
                let (k, j, i) = (c.v(0), c.v(1), c.v(2));
                let v = c.rd(a, &[i, k]) * c.rd(a, &[i, j]) + c.rd(r, &[k, j]);
                c.wr(r, &[k, j], v);
            },
        );
        b.close();
        let i2 = b.open("i", b.c(0), b.p("M"));
        let rd_aik2 = iolb_ir::Access::new(a, vec![b.d(i2), b.d(k)]);
        let rw_aij2 = iolb_ir::Access::new(a, vec![b.d(i2), b.d(j)]);
        b.stmt(
            "SU",
            vec![rd_aik2, rw_aij2.clone(), w_r.clone()],
            vec![rw_aij2],
            move |c| {
                let (k, j, i) = (c.v(0), c.v(1), c.v(2));
                let v = c.rd(a, &[i, j]) - c.rd(a, &[i, k]) * c.rd(r, &[k, j]);
                c.wr(a, &[i, j], v);
            },
        );
        b.close();
        b.close();
        b.close();
        let p = b.finish();
        let report = analyze_kernel(&p, "MGS", "SU").expect("derivation");
        let fig4 = fig4_table(std::slice::from_ref(&report));
        assert!(fig4.contains("MGS") && fig4.contains("engine new"));
        let fig5 = fig5_table(std::slice::from_ref(&report));
        assert!(fig5.contains("MGS"));
        let env = [
            (Var::new("M"), 1 << 16),
            (Var::new("N"), 1 << 10),
            (crate::s_var(), 1 << 10),
        ];
        let ratio = improvement_ratio(&report, &env).expect("finite ratio");
        // √S/8 = 4 up to the drop-first convention constants.
        assert!(ratio > 2.0 && ratio < 8.0, "ratio {ratio}");

        // Degenerate parameters (N = 1 empties the iteration space, so the
        // old bound is 0): the ratio must be None, not inf/NaN.
        let degenerate = [
            (Var::new("M"), 16),
            (Var::new("N"), 1),
            (crate::s_var(), 64),
        ];
        assert_eq!(improvement_ratio(&report, &degenerate), None);
    }

    #[test]
    fn unknown_statement_is_an_error() {
        let p = iolb_ir::ProgramBuilder::new("empty_report", &["N"]).finish();
        assert!(analyze_kernel(&p, "none", "SU").is_err());
    }
}
