//! `iolb-core` — the paper's contribution: automatic I/O lower-bound
//! derivation with the hourglass pattern.
//!
//! Pipeline (mirroring IOLB extended with §3–§4 of the paper):
//!
//! 1. [`phi`] — dependence-path projections `Φ` of a statement, the
//!    Brascamp–Lieb exponent LP and its subgroup-condition soundness check,
//! 2. [`classical`] — the state-of-the-art K-partitioning bound (§2):
//!    `|E| ≤ (K/m)^σ` with the disjoint-inset refinement, wrapped through
//!    Theorem 1 at the optimal `K = σS/(σ−1)`,
//! 3. [`hourglass`] — detection of the hourglass pattern (§3.2), empirical
//!    certification of the dependency-chain property on exact CDAGs, and
//!    the tightened derivation of §4 (`U(K) = K²/W + 2K`, `K = 2S`,
//!    plus the small-S branch and §5.3's loop splitting),
//! 4. [`theorems`] — the paper's closed forms (Theorems 5–9, Figure 4,
//!    Figure 5) pinned as expressions for parity tests and table
//!    regeneration,
//! 5. [`report`] — table generators for Figures 4 and 5.

pub mod classical;
pub mod hourglass;
pub mod phi;
pub mod report;
pub mod theorems;

pub use classical::ClassicalBound;
pub use hourglass::{HourglassBound, HourglassPattern};
pub use phi::PhiSet;

use iolb_ir::{deps, Program, StmtId};

/// Symbolic variable of the fast-memory size.
pub fn s_var() -> iolb_symbolic::Var {
    iolb_symbolic::Var::new("S")
}

/// An analyzed program: dependence projections certified at the given
/// observation sizes.
pub struct Analysis<'p> {
    /// The program under analysis.
    pub program: &'p Program,
    /// Per-read merged projections.
    pub projections: Vec<deps::ReadProjection>,
}

impl<'p> Analysis<'p> {
    /// Observes producers at each parameter vector, unifies, and returns the
    /// certified analysis.
    ///
    /// # Errors
    /// Fails when an observed dependence cannot be explained structurally.
    pub fn run(program: &'p Program, observe_at: &[Vec<i64>]) -> Result<Analysis<'p>, String> {
        let projections = deps::read_projections(program, observe_at)?;
        Ok(Analysis {
            program,
            projections,
        })
    }

    /// The projection set Φ of one statement.
    pub fn phi(&self, stmt: StmtId) -> PhiSet {
        PhiSet::for_statement(self.program, stmt, &self.projections)
    }

    /// Classical K-partitioning bound for the sub-CDAG of `stmt`.
    pub fn classical_bound(&self, stmt: StmtId) -> ClassicalBound {
        classical::derive(self.program, stmt, &self.phi(stmt))
    }

    /// Classical bound, or `None` when the projections cannot cover the
    /// iteration space (stencil-like statements) — the non-panicking path
    /// arbitrary DSL workloads go through.
    pub fn try_classical_bound(&self, stmt: StmtId) -> Option<ClassicalBound> {
        classical::try_derive(self.program, stmt, &self.phi(stmt))
    }

    /// Detects the hourglass pattern on `stmt` (§3.2), if present.
    pub fn detect_hourglass(&self, stmt: StmtId) -> Option<HourglassPattern> {
        hourglass::detect(self.program, stmt, &self.projections)
    }

    /// Hourglass-tightened bound (§4) for a detected pattern.
    pub fn hourglass_bound(&self, pattern: &HourglassPattern) -> HourglassBound {
        hourglass::derive(self.program, pattern, &hourglass::SplitChoice::None)
    }
}
