//! `iolb-core` — the paper's contribution: automatic I/O lower-bound
//! derivation with the hourglass pattern.
//!
//! Pipeline (mirroring IOLB extended with §3–§4 of the paper):
//!
//! 1. [`phi`] — dependence-path projections `Φ` of a statement, the
//!    Brascamp–Lieb exponent LP and its subgroup-condition soundness check,
//! 2. [`classical`] — the state-of-the-art K-partitioning bound (§2):
//!    `|E| ≤ (K/m)^σ` with the disjoint-inset refinement, wrapped through
//!    Theorem 1 at the optimal `K = σS/(σ−1)`,
//! 3. [`hourglass`] — detection of the hourglass pattern (§3.2), empirical
//!    certification of the dependency-chain property on exact CDAGs, and
//!    the tightened derivation of §4 (`U(K) = K²/W + 2K`, `K = 2S`,
//!    plus the small-S branch and §5.3's loop splitting),
//! 4. [`theorems`] — the paper's closed forms (Theorems 5–9, Figure 4,
//!    Figure 5) pinned as expressions for parity tests and table
//!    regeneration,
//! 5. [`report`] — table generators for Figures 4 and 5.

pub mod classical;
pub mod engine;
pub mod hourglass;
pub mod phi;
pub mod report;
pub mod theorems;

/// Resource governance (budgets, cancellation, typed errors, fault
/// injection) — the service-core substrate, re-exported so consumers can
/// write `iolb_core::govern::Budget` without depending on the governance
/// crate directly.
pub use iolb_govern as govern;

pub use classical::ClassicalBound;
pub use engine::{best_engine_bound, BoundEngine, BoundProvenance, EngineCurve, EngineRegistry};
pub use hourglass::{HourglassBound, HourglassPattern};
pub use phi::PhiSet;

use iolb_ir::{deps, Program, StmtId};
use std::collections::BTreeSet;

/// Symbolic variable of the fast-memory size.
pub fn s_var() -> iolb_symbolic::Var {
    iolb_symbolic::Var::new("S")
}

/// Load-bearing support of a boundary-crossing flow edge: common dims the
/// producer shares identically, plus the consumer dims its pinned axes
/// map through — except axes reached by a self-referencing non-identity
/// map (shift / reflection), which behave like translations and are
/// dropped.
fn crossing_support(e: &deps::FlowEdge, common: &[iolb_ir::DimId]) -> BTreeSet<iolb_ir::DimId> {
    let mut out: BTreeSet<iolb_ir::DimId> = common
        .iter()
        .copied()
        .filter(|d| !e.determined.contains_key(d) && !e.translated.contains(d))
        .collect();
    for (dp, expr) in &e.determined {
        let uses: BTreeSet<iolb_ir::DimId> = expr.dims_used().collect();
        if common.contains(dp) && *expr != iolb_ir::Aff::dim(*dp) && uses.contains(dp) {
            continue; // shift/reflection along dp: translation-like
        }
        out.extend(uses);
    }
    out
}

/// An analyzed program: dependence projections certified at the given
/// observation sizes.
pub struct Analysis<'p> {
    /// The program under analysis.
    pub program: &'p Program,
    /// Per-read merged projections.
    pub projections: Vec<deps::ReadProjection>,
}

impl<'p> Analysis<'p> {
    /// Observes producers at each parameter vector, unifies, and returns the
    /// certified analysis.
    ///
    /// # Errors
    /// Fails when an observed dependence cannot be explained structurally.
    pub fn run(program: &'p Program, observe_at: &[Vec<i64>]) -> Result<Analysis<'p>, String> {
        let projections = deps::read_projections(program, observe_at)?;
        Ok(Analysis {
            program,
            projections,
        })
    }

    /// The projection set Φ of one statement.
    pub fn phi(&self, stmt: StmtId) -> PhiSet {
        PhiSet::for_statement(self.program, stmt, &self.projections)
    }

    /// Classical K-partitioning bound for the sub-CDAG of `stmt`.
    pub fn classical_bound(&self, stmt: StmtId) -> ClassicalBound {
        classical::derive(self.program, stmt, &self.phi(stmt))
    }

    /// Classical bound, or `None` when no sound bound is derivable for the
    /// statement — the non-panicking path arbitrary DSL workloads go
    /// through. Refusal cases:
    ///
    /// * the projections cannot cover the iteration space (stencil-like
    ///   statements), or
    /// * the *load-bearing* projections alone cannot cover it. A read fed
    ///   (even partly) by a **cheap** producer — a statement whose values
    ///   are transitively producible from no reads at all, like a plain
    ///   initializer chain — imposes no load requirement: a schedule may
    ///   materialize those values inside any K-partition segment at zero
    ///   I/O cost (writes are free in the red-white model). If coverage
    ///   only exists thanks to such reads, the K-partition footprint
    ///   argument does not lower-bound *loads*, and the kernel-space
    ///   fuzzer exhibits executions below the would-be bound.
    pub fn try_classical_bound(&self, stmt: StmtId) -> Option<ClassicalBound> {
        if !self.load_bearing_coverage(stmt) {
            return None;
        }
        classical::try_derive(self.program, stmt, &self.phi(stmt))
    }

    /// Whether the union of *load-bearing* supports of `stmt`'s read
    /// projections covers every loop dimension of the statement.
    ///
    /// The load-bearing support of a read is the part of its footprint
    /// that demonstrably forces slow-memory traffic:
    ///
    /// * a program-input edge bears its full access support;
    /// * a *translated* (previous-iteration) producer edge bears its
    ///   support — the live-in family of a K-partition segment;
    /// * a *same-iteration* producer edge bears none of its own support —
    ///   the producing instance can always execute adjacent to the
    ///   consumer inside the segment, materializing the value at zero
    ///   load cost. Its requirement is instead the producer's own reads'
    ///   load-bearing footprint, *composed* through the consumer→producer
    ///   iteration map (IOLB's dependence-path composition). A zero-read
    ///   initializer chain therefore contributes nothing, while an
    ///   expensive panel statement (Cholesky's `Sc`) passes its operand
    ///   footprint through.
    ///
    /// Per read, alternatives intersect (a value obtainable through any
    /// free path imposes no load); per statement, operands union.
    fn load_bearing_coverage(&self, stmt: StmtId) -> bool {
        let mut covered: BTreeSet<iolb_ir::DimId> = BTreeSet::new();
        for rp in self.projections.iter().filter(|r| r.stmt == stmt) {
            let mut visiting = vec![stmt];
            covered.extend(self.read_lb_support(rp, &mut visiting));
        }
        self.program
            .stmt(stmt)
            .dims
            .iter()
            .all(|d| covered.contains(d))
    }

    /// Load-bearing support of one read: the intersection over its
    /// producer alternatives (every observed feed must force traffic for
    /// the family to count).
    fn read_lb_support(
        &self,
        rp: &deps::ReadProjection,
        visiting: &mut Vec<StmtId>,
    ) -> BTreeSet<iolb_ir::DimId> {
        let mut acc: Option<BTreeSet<iolb_ir::DimId>> = None;
        for e in &rp.edges {
            let sup = self.edge_lb_support(e, visiting);
            acc = Some(match acc {
                None => sup,
                Some(prev) => prev.intersection(&sup).copied().collect(),
            });
        }
        acc.unwrap_or_default()
    }

    /// Load-bearing support of one flow edge, in the consumer's dims.
    fn edge_lb_support(
        &self,
        e: &deps::FlowEdge,
        visiting: &mut Vec<StmtId>,
    ) -> BTreeSet<iolb_ir::DimId> {
        let p = match e.producer {
            deps::Producer::Input => return e.support.clone(),
            deps::Producer::Stmt(p) => p,
        };
        let common = self.program.common_dims(p, e.consumer);
        // Translated (previous-iteration) edges, and edges whose producer
        // is pinned to a *different* iteration of a shared loop
        // (`A[k][j]` written at `k′ = i`), cross segment boundaries: in
        // the no-recompute model those values sit across arbitrarily many
        // intervening accesses, a genuine reload family. Their support is
        // taken directly — minus any dim the producer reaches by a
        // self-referencing non-identity map (`i′ = i − 1` shifts,
        // `i′ = N−1−i` reflections): along such an axis the producing
        // instance runs boundedly close to (or exactly at) the consumer,
        // so like a translation the axis cannot multiply the footprint.
        let crosses = common
            .iter()
            .any(|d| matches!(e.determined.get(d), Some(expr) if *expr != iolb_ir::Aff::dim(*d)));
        if !e.translated.is_empty() || crosses {
            return crossing_support(e, &common);
        }
        // Adjacent (same-iteration) value: the producing instance can
        // always execute right next to the consumer, so the requirement
        // is the producer's own operand footprint, composed through the
        // consumer→producer map. Cycles carry no grounded data (a
        // self-feeding adjacent chain never reaches slow memory).
        if visiting.contains(&p) {
            return BTreeSet::new();
        }
        visiting.push(p);
        let mut producer_sup: BTreeSet<iolb_ir::DimId> = BTreeSet::new();
        for rp in self.projections.iter().filter(|r| r.stmt == p) {
            producer_sup.extend(self.read_lb_support(rp, visiting));
        }
        visiting.pop();
        // Pull the producer-dim footprint back to consumer dims: pinned
        // dims map through their unification expression, common dims map
        // identically, producer-private dims (its own reduction loops)
        // are dropped — a conservative shrink of the support.
        let mut out = BTreeSet::new();
        for d in producer_sup {
            if let Some(expr) = e.determined.get(&d) {
                out.extend(expr.dims_used());
            } else if common.contains(&d) {
                out.insert(d);
            }
        }
        out
    }

    /// Detects the hourglass pattern on `stmt` (§3.2), if present.
    pub fn detect_hourglass(&self, stmt: StmtId) -> Option<HourglassPattern> {
        hourglass::detect(self.program, stmt, &self.projections)
    }

    /// Hourglass-tightened bound (§4) for a detected pattern.
    pub fn hourglass_bound(&self, pattern: &HourglassPattern) -> HourglassBound {
        hourglass::derive(self.program, pattern, &hourglass::SplitChoice::None)
    }
}
