//! The hourglass pattern: detection (§3.2), certification, and the
//! tightened bound derivation (§4).
//!
//! **Detection.** A statement `X` carries the hourglass when:
//!
//! 1. it has a self-dependence translated along outer dims `⃗k` (temporal),
//! 2. some read of `X` is produced same-iteration by another statement, and
//!    its projection support *drops* non-temporal dims `⃗i` — the
//!    reduction/broadcast dims (the broadcast leg of the hourglass),
//! 3. the dropped value flows from `X`'s own output through a *reduction*
//!    statement `Z` (a consumer of `X`'s array with a private loop absent
//!    from its write subscripts) — the reduction leg,
//! 4. the width `W = |φ_{⃗i}(D_X)|` is parametric.
//!
//! **Certification.** Structural detection is checked against exact CDAGs:
//! for sampled `(⃗k, ⃗j)` and rb values `i, i′`, a dependency chain
//! `X[⃗k,⃗j,i] ⇝ X[⃗k+1,⃗j,i′]` must exist (Definition §3.2), with execution
//! order defining "next" (the paper's V2Q iterates the temporal loop
//! backwards).
//!
//! **Derivation (§4).** `E = I′ ⊎ F`; Lemma 4 sharpens the projections of
//! `I′` to `K/W`, flatness bounds `F` slices by `2`, giving
//! `U(K) = K²/W + 2RK` and, at `K = 2S`,
//! `Q ≥ S·⌊|V| / U(2S)⌋ = |V|·W / (4(S + RW))` — plus the small-S branch
//! `K = W`: `Q ≥ (W−S)·⌊|V|/(2W)⌋` (Theorem 5's second bound).

use crate::s_var;
use iolb_cdag::{build_cdag, NodeId};
use iolb_ir::count::{
    extent, instance_count, instance_count_bounded, poly_range_over_dims_bounded, BoundOverride,
};
use iolb_ir::deps::{Producer, ReadProjection};
use iolb_ir::{DimId, ExecSink, Interpreter, Program, StmtId, Store};
use iolb_symbolic::{Expr, Poly};
use std::collections::{BTreeMap, BTreeSet};

/// A detected hourglass pattern on one statement.
#[derive(Debug, Clone)]
pub struct HourglassPattern {
    /// The broadcast statement `X` (e.g. MGS's `SU`).
    pub stmt: StmtId,
    /// Temporal dims `⃗k`.
    pub temporal: Vec<DimId>,
    /// Neutral dims `⃗j`.
    pub neutral: Vec<DimId>,
    /// Reduction/broadcast dims `⃗i`.
    pub rb: Vec<DimId>,
    /// Index of the broadcast read in `X.reads`.
    pub broadcast_read: usize,
    /// The reduction statement `Z` (e.g. MGS's `SR`).
    pub reduction_stmt: StmtId,
}

/// A derived hourglass bound (all expressions over program params and `S`).
#[derive(Debug, Clone)]
pub struct HourglassBound {
    /// The pattern the bound was derived from.
    pub pattern: HourglassPattern,
    /// Minimal hourglass width over the (possibly split) domain.
    pub w_min: Poly,
    /// Maximal hourglass width.
    pub w_max: Poly,
    /// Flat-part multiplicity `R` (1 when a projection covers all neutral dims).
    pub r_factor: Poly,
    /// `|V|` restricted to the split range, first temporal iteration dropped
    /// — the strictly justified volume (used for validation).
    pub volume: Poly,
    /// `|V|` over the full domain, first temporal iteration dropped — the
    /// counting convention of IOLB's printed tables (Fig. 5).
    pub volume_tool: Poly,
    /// `|V|` with nothing dropped (for the small-S branch).
    pub volume_nodrop: Poly,
    /// Main bound `|V|·W/(4(S+RW))` with the sound volume.
    pub main: Expr,
    /// Main bound with the tool-convention volume (Fig. 5 parity).
    pub main_tool: Expr,
    /// Refined variant `|V|·W_min²/(4(S·W_max + W_min²))` (Theorems 6–8 shape).
    pub refined: Expr,
    /// Small-S branch `(W−S)·|V_nodrop|/(2W)` (negative when S > W).
    pub small_s: Expr,
    /// `max(main, small_s)` — always a valid lower bound.
    pub combined: Expr,
}

/// Loop splitting (§5.3) applied before the derivation.
#[derive(Debug, Clone)]
pub enum SplitChoice {
    /// No splitting (widths taken over the full domain).
    None,
    /// Restrict the (single) temporal dim to `[lo, split)` for the width
    /// minimum and the sound volume.
    At(Poly),
}

/// Structural detection of the hourglass pattern on `stmt`.
///
/// Among the candidate broadcast reads, the one whose reduction→producer
/// chain is shortest wins (the direct `SR → ST → SU` cycle of the paper,
/// rather than an incidental long path through other updates).
pub fn detect(
    program: &Program,
    stmt: StmtId,
    projections: &[ReadProjection],
) -> Option<HourglassPattern> {
    if !iolb_ir::count::countable_nest(program, stmt) {
        // Derivation needs closed-form instance counts over the nest;
        // decline the pattern rather than panic downstream (§4 only ever
        // targets unit-step single-bound nests anyway).
        return None;
    }
    let x = program.stmt(stmt);

    // Statement-level flow graph (producer → consumer).
    let mut flow: BTreeMap<StmtId, BTreeSet<StmtId>> = BTreeMap::new();
    for rp in projections {
        for e in &rp.edges {
            if let Producer::Stmt(p) = e.producer {
                flow.entry(p).or_default().insert(rp.stmt);
            }
        }
    }
    // BFS distance from `from` to `to`; `avoid` may not be an intermediate
    // node (endpoints are fine). `None` when unreachable.
    let distance = |from: StmtId, to: StmtId, avoid: StmtId| -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut seen = BTreeSet::new();
        let mut frontier = vec![from];
        let mut dist = 0usize;
        seen.insert(from);
        while !frontier.is_empty() {
            dist += 1;
            let mut next = Vec::new();
            for v in frontier {
                if v != from && v == avoid {
                    continue; // cannot pass through `avoid`
                }
                if let Some(cs) = flow.get(&v) {
                    for &c in cs {
                        if c == to {
                            return Some(dist);
                        }
                        if seen.insert(c) {
                            next.push(c);
                        }
                    }
                }
            }
            frontier = next;
        }
        None
    };

    // 1. Temporal dims: translated edges into X from a producer that X
    // itself feeds (the dependence cycle of §3.2 — the producer may be X or
    // a sibling update like GEHD2's SU2).
    let mut temporal: BTreeSet<DimId> = BTreeSet::new();
    for rp in projections.iter().filter(|r| r.stmt == stmt) {
        for e in &rp.edges {
            if let Producer::Stmt(p) = e.producer {
                if !e.translated.is_empty() && distance(stmt, p, StmtId(u32::MAX)).is_some() {
                    temporal.extend(e.translated.iter().copied());
                }
            }
        }
    }
    if temporal.is_empty() {
        return None;
    }

    // Reduction candidates Z: consumers of a value flowing (possibly
    // transitively — GEBD2's left-update output reaches its reduction only
    // through the right-reflector statements) from X's output, whose
    // reading subscript uses one of Z's private reduction dims (a dim
    // absent from all of Z's write subscripts and not shared with X).
    let is_reduction_edge = |rp: &ReadProjection| -> bool {
        let z = rp.stmt;
        if z == stmt {
            return false;
        }
        let fed_by_x = rp.edges.iter().any(|e| match e.producer {
            Producer::Stmt(p) => distance(stmt, p, StmtId(u32::MAX)).is_some(),
            Producer::Input => false,
        });
        if !fed_by_x {
            return false;
        }
        let zs = program.stmt(z);
        let written_dims: BTreeSet<DimId> = zs
            .writes
            .iter()
            .flat_map(|w| w.idx.iter().flat_map(|a| a.dims_used().collect::<Vec<_>>()))
            .collect();
        let common: BTreeSet<DimId> = program.common_dims(z, stmt).into_iter().collect();
        let read_dims: BTreeSet<DimId> = zs.reads[rp.read_idx]
            .idx
            .iter()
            .flat_map(|a| a.dims_used().collect::<Vec<_>>())
            .collect();
        zs.dims
            .iter()
            .any(|d| !written_dims.contains(d) && !common.contains(d) && read_dims.contains(d))
    };
    let reductions: Vec<StmtId> = projections
        .iter()
        .filter(|rp| is_reduction_edge(rp))
        .map(|rp| rp.stmt)
        .collect();
    if reductions.is_empty() {
        return None;
    }

    // 2./3. Broadcast candidates, ranked by reduction-chain distance.
    let mut best: Option<(usize, HourglassPattern)> = None;
    for rp in projections.iter().filter(|r| r.stmt == stmt) {
        let support = &rp.support;
        if !temporal.iter().all(|k| support.contains(k)) {
            continue;
        }
        let dropped: Vec<DimId> = x
            .dims
            .iter()
            .filter(|d| !support.contains(d) && !temporal.contains(d))
            .copied()
            .collect();
        if dropped.is_empty() {
            continue;
        }
        let producers: Vec<StmtId> = rp
            .edges
            .iter()
            .filter_map(|e| match e.producer {
                Producer::Stmt(p) => Some(p),
                Producer::Input => None,
            })
            .collect();
        for &z in &reductions {
            let dist = producers.iter().filter_map(|&p| distance(z, p, stmt)).min();
            if std::env::var("IOLB_DEBUG_DETECT").is_ok() {
                eprintln!(
                    "  candidate read={} support={:?} dropped={:?} z={} producers={:?} dist={:?}",
                    rp.read_idx,
                    support,
                    dropped,
                    program.stmt(z).name,
                    producers
                        .iter()
                        .map(|p| &program.stmt(*p).name)
                        .collect::<Vec<_>>(),
                    dist
                );
            }
            let Some(dist) = dist else { continue };
            if best.as_ref().is_some_and(|(d, _)| *d <= dist) {
                continue;
            }
            let temporal_v: Vec<DimId> = temporal.iter().copied().collect();
            let neutral: Vec<DimId> = x
                .dims
                .iter()
                .filter(|d| !temporal_v.contains(d) && !dropped.contains(d))
                .copied()
                .collect();
            best = Some((
                dist,
                HourglassPattern {
                    stmt,
                    temporal: temporal_v,
                    neutral,
                    rb: dropped.clone(),
                    broadcast_read: rp.read_idx,
                    reduction_stmt: z,
                },
            ));
        }
    }
    best.map(|(_, p)| p)
}

/// Certifies the pattern's dependency-chain property on the exact CDAG at
/// concrete parameters (Definition §3.2): consecutive executed temporal
/// values must be chained through the reduction/broadcast for all sampled
/// rb pairs.
///
/// # Errors
/// Returns a description of the first missing chain.
pub fn certify(
    program: &Program,
    pattern: &HourglassPattern,
    params: &[i64],
) -> Result<usize, String> {
    let cdag = build_cdag(program, params);
    // Enumerate X's instances in execution order, keyed by (neutral, temporal).
    struct Collector {
        target: StmtId,
        ivs: Vec<Vec<i64>>,
    }
    impl ExecSink for Collector {
        fn on_stmt(&mut self, stmt: StmtId, iv: &[i64]) {
            if stmt == self.target {
                self.ivs.push(iv.to_vec());
            }
        }
    }
    let mut col = Collector {
        target: pattern.stmt,
        ivs: Vec::new(),
    };
    let mut store = Store::init(program, params, |_, f| 0.5 + f as f64);
    Interpreter::new(program, params).run(&mut store, &mut col);

    let dims = &program.stmt(pattern.stmt).dims;
    let pos = |d: &DimId| dims.iter().position(|x| x == d).expect("dim of stmt");
    let tpos: Vec<usize> = pattern.temporal.iter().map(pos).collect();
    let npos: Vec<usize> = pattern.neutral.iter().map(pos).collect();
    let rpos: Vec<usize> = pattern.rb.iter().map(pos).collect();

    // group: neutral values → temporal values in first-execution order, each
    // with the list of rb values.
    type Key = Vec<i64>;
    let mut groups: BTreeMap<Key, Vec<(Key, Vec<Key>)>> = BTreeMap::new();
    for iv in &col.ivs {
        let nv: Key = npos.iter().map(|&p| iv[p]).collect();
        let tv: Key = tpos.iter().map(|&p| iv[p]).collect();
        let rv: Key = rpos.iter().map(|&p| iv[p]).collect();
        let seq = groups.entry(nv).or_default();
        match seq.last_mut() {
            Some((last_t, rvs)) if *last_t == tv => rvs.push(rv),
            _ => seq.push((tv, vec![rv])),
        }
    }

    let mut checked = 0usize;
    let mut budget = 60usize;
    for (nv, seq) in &groups {
        for w in seq.windows(2) {
            if budget == 0 {
                break;
            }
            let (t0, rvs0) = &w[0];
            let (t1, rvs1) = &w[1];
            // Sample first/last rb values on both sides.
            let samples0 = [rvs0.first().unwrap(), rvs0.last().unwrap()];
            let samples1 = [rvs1.first().unwrap(), rvs1.last().unwrap()];
            for r0 in samples0 {
                for r1 in samples1 {
                    let mk_iv = |tv: &Key, rv: &Key| -> Vec<i32> {
                        let mut iv = vec![0i32; dims.len()];
                        for (p, v) in tpos.iter().zip(tv) {
                            iv[*p] = *v as i32;
                        }
                        for (p, v) in npos.iter().zip(nv) {
                            iv[*p] = *v as i32;
                        }
                        for (p, v) in rpos.iter().zip(rv) {
                            iv[*p] = *v as i32;
                        }
                        iv
                    };
                    let a = cdag
                        .node_of(pattern.stmt, &mk_iv(t0, r0))
                        .ok_or_else(|| format!("instance {t0:?}/{nv:?}/{r0:?} not found"))?;
                    let b = cdag
                        .node_of(pattern.stmt, &mk_iv(t1, r1))
                        .ok_or_else(|| format!("instance {t1:?}/{nv:?}/{r1:?} not found"))?;
                    let (a, b) = if a < b { (a, b) } else { (b, a) };
                    if !cdag.has_path(a, b) {
                        return Err(format!(
                            "no dependency chain {:?}@{t0:?},{nv:?},{r0:?} ⇝ @{t1:?},{r1:?}",
                            program.stmt(pattern.stmt).name
                        ));
                    }
                    checked += 1;
                    budget = budget.saturating_sub(1);
                }
            }
        }
    }
    if checked == 0 {
        return Err("no consecutive temporal pair found to certify".to_string());
    }
    let _ = NodeId(0);
    Ok(checked)
}

/// Derives the hourglass bound (§4) for a certified pattern.
pub fn derive(
    program: &Program,
    pattern: &HourglassPattern,
    split: &SplitChoice,
) -> HourglassBound {
    let stmt = pattern.stmt;
    let dims = &program.stmt(stmt).dims;

    // Width: product of rb-dim extents, min/maxed over the other dims.
    let mut width = Poly::one();
    for d in &pattern.rb {
        width = &width * &extent(program, *d);
    }
    let other: Vec<DimId> = dims
        .iter()
        .filter(|d| !pattern.rb.contains(d))
        .copied()
        .collect();
    let overrides: Vec<(DimId, BoundOverride)> = match split {
        SplitChoice::None => Vec::new(),
        SplitChoice::At(p) => {
            assert_eq!(pattern.temporal.len(), 1, "split needs one temporal dim");
            vec![(
                pattern.temporal[0],
                BoundOverride {
                    lo: None,
                    hi: Some(p.clone()),
                },
            )]
        }
    };
    let (w_min, w_max) = poly_range_over_dims_bounded(program, &width, &other, &overrides);

    // R factor: neutral dims not covered by the broadcast projection add a
    // multiplicity (max extent each). All paper kernels give R = 1.
    let x = program.stmt(stmt);
    let broadcast_support: BTreeSet<DimId> = x.reads[pattern.broadcast_read]
        .idx
        .iter()
        .flat_map(|a| a.dims_used().collect::<Vec<_>>())
        .collect();
    let mut r_factor = Poly::one();
    for d in &pattern.neutral {
        if !broadcast_support.contains(d) {
            let e = extent(program, *d);
            let (_, emax) = poly_range_over_dims_bounded(program, &e, &other, &[]);
            r_factor = &r_factor * &emax;
        }
    }

    // Volumes.
    let first_t = pattern.temporal[0];
    let t_lo = {
        let info = program.loop_info(first_t);
        assert_eq!(info.lo.len(), 1);
        iolb_ir::count::aff_to_poly(program, &info.lo[0])
    };
    let drop_first = BoundOverride {
        lo: Some(&t_lo + &Poly::one()),
        hi: None,
    };
    let mut vol_overrides = vec![(first_t, drop_first.clone())];
    if let SplitChoice::At(p) = split {
        vol_overrides[0].1.hi = Some(p.clone());
    }
    let volume = instance_count_bounded(program, stmt, &vol_overrides);
    let volume_tool = instance_count_bounded(program, stmt, &[(first_t, drop_first)]);
    let volume_nodrop = instance_count(program, stmt);

    // Bound expressions.
    let s = Expr::var(s_var());
    let four = Expr::int(4);
    let mk_main = |vol: &Poly, w: &Poly, r: &Poly| -> Expr {
        // |V|·W / (4(S + R·W))
        Expr::from_poly(vol)
            .mul(Expr::from_poly(w))
            .div(four.clone().mul(s.clone().add(Expr::from_poly(&(r * w)))))
    };
    let main = mk_main(&volume, &w_min, &r_factor);
    let main_tool = mk_main(&volume_tool, &w_min, &r_factor);
    // Refined: |V|·W_min² / (4(S·W_max + W_min²)).
    let refined = Expr::from_poly(&volume_tool)
        .mul(Expr::from_poly(&(&w_min * &w_min)))
        .div(
            Expr::int(4).mul(
                s.clone()
                    .mul(Expr::from_poly(&w_max))
                    .add(Expr::from_poly(&(&w_min * &w_min))),
            ),
        );
    // Small-S branch: (W − S)·|V_nodrop| / (2W).
    let small_s = Expr::from_poly(&w_min)
        .sub(s.clone())
        .mul(Expr::from_poly(&volume_nodrop))
        .div(Expr::int(2).mul(Expr::from_poly(&w_min)));
    let combined = main.clone().max(small_s.clone());

    HourglassBound {
        pattern: pattern.clone(),
        w_min,
        w_max,
        r_factor,
        volume,
        volume_tool,
        volume_nodrop,
        main,
        main_tool,
        refined,
        small_s,
        combined,
    }
}

impl HourglassBound {
    /// Exact floored Theorem-1 evaluation at concrete parameters (the form
    /// compared against pebble plays): `max` of the `K = 2S` branch
    /// `S·⌊|V|/U(2S)⌋` and the `K = W` branch `(W−S)·⌊|V'|/(2W)⌋`.
    ///
    /// Every intermediate (`|V|`, `W`, `U(2S)`, the floors) is evaluated in
    /// exact [`iolb_numeric::Rational`] arithmetic; beyond 2^53 an `f64`
    /// pipeline rounds the volume *before* flooring and can push the result
    /// above the true bound, breaking the "never above a legal play"
    /// contract (see the `exact_floor_beats_f64_at_scale` regression test).
    ///
    /// # Panics
    /// Panics when the exact arithmetic overflows `i128` (the workspace
    /// treats silent wrapping of a bound as a hard logic error).
    pub fn eval_floor_exact(
        &self,
        env: &[(iolb_symbolic::Var, i128)],
        s: i128,
    ) -> iolb_numeric::Rational {
        use iolb_numeric::Rational;
        let ev = |p: &Poly| -> Rational {
            p.eval(&|v| {
                env.iter()
                    .find(|(w, _)| *w == v)
                    .map(|(_, x)| Rational::int(*x))
            })
        };
        let (w, r, vol, vol_nd) = (
            ev(&self.w_min),
            ev(&self.r_factor),
            ev(&self.volume),
            ev(&self.volume_nodrop),
        );
        let s_r = Rational::int(s);
        let mut best = Rational::ZERO;
        if w.is_positive() && vol.is_positive() {
            // U(2S) = (2S)²/W + 2R·(2S), all exact.
            let two_s = Rational::TWO * s_r;
            let u = two_s * two_s / w + Rational::TWO * r * two_s;
            if u.is_positive() {
                let sets = (vol / u).floor();
                best = best.max(s_r * Rational::int(sets));
            }
        }
        if w > s_r && vol_nd.is_positive() {
            let sets = (vol_nd / (Rational::TWO * w)).floor();
            best = best.max((w - s_r) * Rational::int(sets));
        }
        best
    }

    /// [`Self::eval_floor_exact`] converted to `f64` as the very last step
    /// (the only lossy operation; error ≤ 1 ulp of the exact value).
    pub fn eval_floor(&self, env: &[(iolb_symbolic::Var, i128)], s: i128) -> f64 {
        self.eval_floor_exact(env, s).to_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analysis;
    use iolb_symbolic::Var;

    /// The miniature MGS core (SR/SU only — enough to carry the hourglass).
    fn mini_mgs() -> iolb_ir::Program {
        let mut b = iolb_ir::ProgramBuilder::new("hg_mini_mgs", &["M", "N"]);
        let a = b.array("A", &[b.p("M"), b.p("N")]);
        let r = b.array("R", &[b.p("N"), b.p("N")]);
        let k = b.open("k", b.c(0), b.p("N"));
        let j = b.open("j", b.d(k) + 1, b.p("N"));
        let w_r = iolb_ir::Access::new(r, vec![b.d(k), b.d(j)]);
        b.stmt("S0", vec![], vec![w_r.clone()], move |c| {
            c.wr(r, &[c.v(0), c.v(1)], 0.0)
        });
        let i1 = b.open("i", b.c(0), b.p("M"));
        let rd_aik = iolb_ir::Access::new(a, vec![b.d(i1), b.d(k)]);
        let rd_aij = iolb_ir::Access::new(a, vec![b.d(i1), b.d(j)]);
        b.stmt(
            "SR",
            vec![rd_aik, rd_aij, w_r.clone()],
            vec![w_r.clone()],
            move |c| {
                let (k, j, i) = (c.v(0), c.v(1), c.v(2));
                let v = c.rd(a, &[i, k]) * c.rd(a, &[i, j]) + c.rd(r, &[k, j]);
                c.wr(r, &[k, j], v);
            },
        );
        b.close();
        let i2 = b.open("i", b.c(0), b.p("M"));
        let rd_aik2 = iolb_ir::Access::new(a, vec![b.d(i2), b.d(k)]);
        let rw_aij2 = iolb_ir::Access::new(a, vec![b.d(i2), b.d(j)]);
        b.stmt(
            "SU",
            vec![rd_aik2, rw_aij2.clone(), w_r.clone()],
            vec![rw_aij2],
            move |c| {
                let (k, j, i) = (c.v(0), c.v(1), c.v(2));
                let v = c.rd(a, &[i, j]) - c.rd(a, &[i, k]) * c.rd(r, &[k, j]);
                c.wr(a, &[i, j], v);
            },
        );
        b.close();
        b.close();
        b.close();
        b.finish()
    }

    #[test]
    fn detects_mgs_hourglass_with_correct_partition() {
        let p = mini_mgs();
        let analysis = Analysis::run(&p, &[vec![7, 5]]).unwrap();
        let su = p.stmt_id("SU").unwrap();
        let pat = analysis.detect_hourglass(su).expect("hourglass detected");
        let dims = &p.stmt(su).dims;
        assert_eq!(pat.temporal, vec![dims[0]], "k is temporal");
        assert_eq!(pat.neutral, vec![dims[1]], "j is neutral");
        assert_eq!(pat.rb, vec![dims[2]], "i is reduction/broadcast");
        assert_eq!(pat.reduction_stmt, p.stmt_id("SR").unwrap());
    }

    #[test]
    fn certification_passes_on_exact_cdag() {
        let p = mini_mgs();
        let analysis = Analysis::run(&p, &[vec![6, 4]]).unwrap();
        let su = p.stmt_id("SU").unwrap();
        let pat = analysis.detect_hourglass(su).unwrap();
        let checked = certify(&p, &pat, &[6, 4]).expect("chains exist");
        assert!(checked > 0);
    }

    #[test]
    fn mgs_bound_matches_paper_formula() {
        let p = mini_mgs();
        let analysis = Analysis::run(&p, &[vec![7, 5]]).unwrap();
        let su = p.stmt_id("SU").unwrap();
        let pat = analysis.detect_hourglass(su).unwrap();
        let b = analysis.hourglass_bound(&pat);
        // W = M (constant width), R = 1.
        assert_eq!(
            iolb_ir::count::eval_params(&b.w_min, &[("M", 17), ("N", 5)]),
            iolb_numeric::Rational::int(17)
        );
        assert_eq!(b.w_min, b.w_max);
        assert_eq!(b.r_factor, Poly::one());
        // main_tool = M²(N-1)(N-2)/(8(S+M)) — the Fig. 5 MGS row.
        let env = [
            (Var::new("M"), 100i128),
            (Var::new("N"), 40),
            (crate::s_var(), 256),
        ];
        let got = b.main_tool.eval_ints_f64(&env);
        let expect = (100.0f64 * 100.0 * 39.0 * 38.0) / (8.0 * (256.0 + 100.0));
        assert!(
            (got / expect - 1.0).abs() < 1e-12,
            "got {got} expect {expect}"
        );
        // small_s = (M−S)·(MN(N-1)/2)/(2M) = (M−S)N(N-1)/4 (Theorem 5).
        let got_small = b.small_s.eval_ints_f64(&[
            (Var::new("M"), 100),
            (Var::new("N"), 40),
            (crate::s_var(), 30),
        ]);
        let expect_small = (100.0 - 30.0) * 40.0 * 39.0 / 4.0;
        assert!((got_small / expect_small - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_hourglass_in_gemm_shape() {
        // C[i][j] += A[i][k]·B[k][j]: self-translation exists (k) but the
        // broadcast legs come from inputs — no reduction of X's own output.
        let mut b = iolb_ir::ProgramBuilder::new("hg_gemm_like", &["M", "N", "K"]);
        let a = b.array("A", &[b.p("M"), b.p("K")]);
        let bb = b.array("B", &[b.p("K"), b.p("N")]);
        let cc = b.array("C", &[b.p("M"), b.p("N")]);
        let i = b.open("i", b.c(0), b.p("M"));
        let j = b.open("j", b.c(0), b.p("N"));
        let w_c = iolb_ir::Access::new(cc, vec![b.d(i), b.d(j)]);
        b.stmt("Cz", vec![], vec![w_c.clone()], move |c| {
            c.wr(cc, &[c.v(0), c.v(1)], 0.0)
        });
        let k = b.open("k", b.c(0), b.p("K"));
        let ra = iolb_ir::Access::new(a, vec![b.d(i), b.d(k)]);
        let rb = iolb_ir::Access::new(bb, vec![b.d(k), b.d(j)]);
        b.stmt("SU", vec![ra, rb, w_c.clone()], vec![w_c], move |c| {
            let (i, j, k) = (c.v(0), c.v(1), c.v(2));
            let v = c.rd(cc, &[i, j]) + c.rd(a, &[i, k]) * c.rd(bb, &[k, j]);
            c.wr(cc, &[i, j], v);
        });
        b.close();
        b.close();
        b.close();
        let p = b.finish();
        let analysis = Analysis::run(&p, &[vec![4, 5, 3]]).unwrap();
        let su = p.stmt_id("SU").unwrap();
        assert!(analysis.detect_hourglass(su).is_none());
    }

    #[test]
    fn floored_eval_below_formula() {
        let p = mini_mgs();
        let analysis = Analysis::run(&p, &[vec![7, 5]]).unwrap();
        let su = p.stmt_id("SU").unwrap();
        let pat = analysis.detect_hourglass(su).unwrap();
        let b = analysis.hourglass_bound(&pat);
        for (m, n, s) in [(32i128, 8i128, 16i128), (64, 16, 24)] {
            let env = [(Var::new("M"), m), (Var::new("N"), n)];
            let floored = b.eval_floor(&env, s);
            let formula = b.combined.eval_ints_f64(&[
                (Var::new("M"), m),
                (Var::new("N"), n),
                (crate::s_var(), s),
            ]);
            assert!(floored <= formula + 1e-9, "floored {floored} vs {formula}");
        }
    }
}
