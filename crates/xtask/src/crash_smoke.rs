//! `xtask crash-smoke` — out-of-process crash-recovery smoke for `iolbd`.
//!
//! The in-process persistence tests (`crates/iolbd/tests/persistence.rs`)
//! prove the store contracts with exact assertions; this smoke proves
//! them against a *real* daemon process dying the ugly way:
//!
//! 1. start `iolbd --store DIR`, replay a kernel batch, capture the
//!    response bodies;
//! 2. `kill -9` the daemon in the middle of a second write burst, then
//!    smash a torn half-record onto the journal tail for good measure;
//! 3. restart against the same directory — recovery must report the
//!    first burst's records, count the torn tail, and serve the captured
//!    bodies byte-identical as persisted hits;
//! 4. stop that daemon with SIGTERM (the graceful-drain path, same as
//!    `POST /shutdown`) and require a clean exit;
//! 5. flip one journal byte, restart once more — the corrupt record must
//!    be skipped and counted, never served, and every body must still
//!    come back correct (recomputed where the record was lost).

use crate::json::{self, Value};
use crate::serve_bench::{body_of, exchange, get, head, post, Daemon, ScratchDir};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// `crash-smoke` options.
pub struct CrashSmokeOpts {
    /// Path to the daemon binary.
    pub iolbd: PathBuf,
    /// Directory of `.iolb` kernels to replay.
    pub kernels: PathBuf,
}

impl Default for CrashSmokeOpts {
    fn default() -> Self {
        Self {
            iolbd: PathBuf::from("target/release/iolbd"),
            kernels: PathBuf::from("kernels"),
        }
    }
}

pub fn parse_crash_smoke_args(args: &[String]) -> Result<CrashSmokeOpts, String> {
    let mut opts = CrashSmokeOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iolbd" => opts.iolbd = PathBuf::from(it.next().ok_or("--iolbd needs a path")?),
            "--kernels" => opts.kernels = PathBuf::from(it.next().ok_or("--kernels needs a dir")?),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

pub fn run_crash_smoke(opts: &CrashSmokeOpts) -> ExitCode {
    match crash_smoke(opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("crash-smoke ✗ — {e}");
            ExitCode::FAILURE
        }
    }
}

/// The replayed query: fast (bounds only) and fully deterministic.
const QUERY: &str = "/analyze?derive-only";

fn list_kernels(dir: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "iolb"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .iolb kernels in {}", dir.display()));
    }
    files
        .into_iter()
        .map(|p| {
            let name = p
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("?")
                .to_string();
            let src = std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            Ok((name, src))
        })
        .collect()
}

fn store_stat(addr: &str, field: &str) -> Result<u64, String> {
    let raw = exchange(addr, &get("/stats"))?;
    let doc = body_of(&raw)
        .ok_or("malformed /stats response")
        .and_then(|b| json::parse(b).map_err(|_| "/stats body is not JSON"))?;
    doc.get("store")
        .and_then(|s| s.get(field))
        .and_then(Value::num)
        .map(|n| n as u64)
        .ok_or_else(|| format!("/stats store.{field} missing"))
}

/// Replays the batch; returns `(body, cache disposition)` per kernel.
fn replay(addr: &str, batch: &[(String, String)]) -> Result<Vec<(String, String)>, String> {
    batch
        .iter()
        .map(|(name, src)| {
            let response = exchange(addr, &post(QUERY, src))?;
            if !response.starts_with("HTTP/1.1 200") {
                return Err(format!("{name}: {}", head(&response)));
            }
            let hit = if response.contains("X-Iolb-Cache: hit") {
                "hit"
            } else {
                "miss"
            };
            let body = body_of(&response)
                .ok_or_else(|| format!("{name}: malformed response"))?
                .to_string();
            Ok((body, hit.to_string()))
        })
        .collect()
}

/// Sends SIGTERM on unix (exercising the signal-driven drain path); falls
/// back to `POST /shutdown` elsewhere. Either way the daemon must exit 0.
fn terminate_gracefully(daemon: Daemon) -> Result<(), String> {
    #[cfg(unix)]
    {
        let mut daemon = daemon;
        let pid = daemon.child.id().to_string();
        let status = std::process::Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .map_err(|e| format!("kill -TERM: {e}"))?;
        if !status.success() {
            return Err(format!("kill -TERM exited with {status}"));
        }
        let status = daemon
            .child
            .wait()
            .map_err(|e| format!("daemon wait: {e}"))?;
        if status.success() {
            Ok(())
        } else {
            Err(format!("daemon did not drain cleanly on SIGTERM: {status}"))
        }
    }
    #[cfg(not(unix))]
    daemon.shutdown()
}

fn crash_smoke(opts: &CrashSmokeOpts) -> Result<(), String> {
    let batch = list_kernels(&opts.kernels)?;
    let store_dir = ScratchDir::new("crash_smoke_store");
    let store_arg = store_dir.0.to_string_lossy().into_owned();
    let journal = store_dir.0.join("journal.log");
    println!(
        "crash-smoke: {} kernel(s), store {}",
        batch.len(),
        store_dir.0.display()
    );

    // Life 1: journal one record per kernel, then die by SIGKILL in the
    // middle of a second write burst (each burst request uses a fresh
    // s-grid, so every one of them is a new record being appended when
    // the axe falls).
    let mut daemon = Daemon::start_with(&opts.iolbd, &["--store", &store_arg])?;
    let addr = daemon.addr.clone();
    let captured = replay(&addr, &batch)?;
    for (_, disposition) in &captured {
        if disposition != "miss" {
            return Err("first burst on an empty store must be all misses".to_string());
        }
    }
    let burst_addr = addr.clone();
    let burst_batch = batch.clone();
    let burst = std::thread::spawn(move || {
        for i in 0u64.. {
            let (_, src) = &burst_batch[(i % burst_batch.len() as u64) as usize];
            let query = format!("{QUERY}&s-grid=0,{}", 8 + i);
            if exchange(&burst_addr, &post(&query, src)).is_err() {
                break; // the daemon just got killed — mission accomplished
            }
        }
    });
    std::thread::sleep(std::time::Duration::from_millis(150));
    daemon.child.kill().map_err(|e| format!("kill -9: {e}"))?;
    daemon
        .child
        .wait()
        .map_err(|e| format!("daemon wait after kill: {e}"))?;
    drop(daemon);
    burst.join().map_err(|_| "burst thread panicked")?;

    // Whatever the kill left behind, guarantee a torn tail: a record that
    // declares more payload than the file holds.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal)
            .map_err(|e| format!("{}: {e}", journal.display()))?;
        f.write_all(b"IOLR\xff\xff\x00\x00torn")
            .map_err(|e| format!("tear journal: {e}"))?;
    }

    // Life 2: recovery must keep every record the first burst completed,
    // truncate the torn tail, and serve the captured bodies byte-for-byte
    // without recomputing.
    let daemon = Daemon::start_with(&opts.iolbd, &["--store", &store_arg])?;
    let addr = daemon.addr.clone();
    let recovered = store_stat(&addr, "recovered_records")?;
    let torn = store_stat(&addr, "torn_tail_bytes")?;
    if recovered < batch.len() as u64 {
        return Err(format!(
            "recovered only {recovered} records, first burst journaled {}",
            batch.len()
        ));
    }
    if torn == 0 {
        return Err("torn journal tail was not detected".to_string());
    }
    let warm = replay(&addr, &batch)?;
    for ((name, _), ((cold_body, _), (warm_body, disposition))) in
        batch.iter().zip(captured.iter().zip(&warm))
    {
        if disposition != "hit" {
            return Err(format!("{name}: expected a persisted hit after restart"));
        }
        if cold_body != warm_body {
            return Err(format!(
                "{name}: persisted body differs from the computed one"
            ));
        }
    }
    let persisted_hits = store_stat(&addr, "persisted_hits")?;
    if persisted_hits < batch.len() as u64 {
        return Err(format!(
            "only {persisted_hits} persisted hits for {} warm requests",
            batch.len()
        ));
    }
    println!(
        "crash-smoke: kill -9 recovery ok — {recovered} records recovered, {torn} torn bytes truncated, {} byte-identical warm bodies",
        batch.len()
    );
    terminate_gracefully(daemon)?;
    println!("crash-smoke: graceful drain on SIGTERM ok");

    // Life 3: flip one payload byte in the journal. The corrupt record is
    // skipped and counted — and every body still comes back correct (the
    // lost one recomputed, never served from the bad bytes).
    let mut bytes = std::fs::read(&journal).map_err(|e| format!("{}: {e}", journal.display()))?;
    if bytes.len() < 16 {
        return Err("journal too small to corrupt".to_string());
    }
    bytes[10] ^= 0xFF;
    std::fs::write(&journal, &bytes).map_err(|e| format!("{}: {e}", journal.display()))?;

    let daemon = Daemon::start_with(&opts.iolbd, &["--store", &store_arg])?;
    let addr = daemon.addr.clone();
    let skipped = store_stat(&addr, "skipped_corrupt_records")?;
    if skipped == 0 {
        return Err("corrupted journal record was not skipped".to_string());
    }
    let after = replay(&addr, &batch)?;
    for ((name, _), ((cold_body, _), (after_body, _))) in
        batch.iter().zip(captured.iter().zip(&after))
    {
        if cold_body != after_body {
            return Err(format!(
                "{name}: body after corruption differs — corrupt bytes may have been served"
            ));
        }
    }
    daemon.shutdown()?;
    println!(
        "crash-smoke ✓ — {skipped} corrupt record(s) skipped and recomputed, all bodies byte-identical across three daemon lives"
    );
    Ok(())
}
