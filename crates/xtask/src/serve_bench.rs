//! `xtask serve-bench` — benchmark the `iolbd` analysis daemon against
//! the `iolb` CLI on the shipped kernel suite.
//!
//! The harness starts a daemon on an ephemeral loopback port, replays
//! every `kernels/*.iolb` file through `POST /analyze` twice over:
//!
//! * a **cold** pass (empty cache) whose responses must carry
//!   `X-Iolb-Cache: miss` and whose embedded sweep rows must equal, value
//!   for value, the rows the `iolb` CLI emits for the same kernels and
//!   options — the proof that fronting the pipeline with a daemon changed
//!   nothing about the analysis;
//! * several **warm** passes whose responses must all be cache hits and
//!   whose bodies must be byte-identical to the cold bodies.
//!
//! It then writes `BENCH_serve.json` (schema
//! `hourglass-iolb/serve-bench/v2`) with the warm hit rate, the
//! cold-vs-CLI verdict, throughput / latency percentiles, and the
//! persistent-store counters of the bench daemon's scratch store. The
//! hit rate, the verdict, and the store's corruption counter are
//! deterministic and gated; the timing numbers are volatile and
//! reported for trend-watching only.

use crate::json::{self, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::Instant;

/// `serve-bench` options.
pub struct ServeBenchOpts {
    /// Path to the daemon binary.
    pub iolbd: PathBuf,
    /// Path to the CLI binary (the reference implementation).
    pub iolb: PathBuf,
    /// Directory of `.iolb` kernels to replay.
    pub kernels: PathBuf,
    /// Where to write the bench report.
    pub out: PathBuf,
    /// How many warm passes over the batch.
    pub warm_passes: u32,
}

impl Default for ServeBenchOpts {
    fn default() -> Self {
        Self {
            iolbd: PathBuf::from("target/release/iolbd"),
            iolb: PathBuf::from("target/release/iolb"),
            kernels: PathBuf::from("kernels"),
            out: PathBuf::from("BENCH_serve.json"),
            warm_passes: 5,
        }
    }
}

/// Fixed bench analysis options: a small S grid and no tightness tuning,
/// so the batch completes in seconds. Both sides — daemon query string
/// and CLI flags — are derived from these constants.
const S_GRID: &str = "0,16,64";

pub fn parse_serve_bench_args(args: &[String]) -> Result<ServeBenchOpts, String> {
    let mut opts = ServeBenchOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iolbd" => opts.iolbd = PathBuf::from(it.next().ok_or("--iolbd needs a path")?),
            "--iolb" => opts.iolb = PathBuf::from(it.next().ok_or("--iolb needs a path")?),
            "--kernels" => opts.kernels = PathBuf::from(it.next().ok_or("--kernels needs a dir")?),
            "--out" => opts.out = PathBuf::from(it.next().ok_or("--out needs a path")?),
            "--warm-passes" => {
                opts.warm_passes = it
                    .next()
                    .ok_or("--warm-passes needs a value")?
                    .parse()
                    .map_err(|_| "bad --warm-passes value".to_string())?;
                if opts.warm_passes == 0 {
                    return Err("--warm-passes must be at least 1".to_string());
                }
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

pub fn run_serve_bench(opts: &ServeBenchOpts) -> ExitCode {
    match serve_bench(opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve-bench ✗ — {e}");
            ExitCode::FAILURE
        }
    }
}

/// The daemon child plus the address it reported. Shared with
/// `crash-smoke`, which starts daemons against a persistent store and
/// kills them mid-burst.
pub(crate) struct Daemon {
    pub(crate) child: Child,
    pub(crate) addr: String,
}

impl Daemon {
    /// Starts the daemon with extra command-line arguments appended
    /// (`--store DIR`, deadline overrides, …).
    pub(crate) fn start_with(binary: &Path, extra: &[&str]) -> Result<Self, String> {
        let mut child = Command::new(binary)
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("cannot start {}: {e}", binary.display()))?;
        let stdout = child.stdout.take().ok_or("daemon stdout not captured")?;
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("daemon banner: {e}"))?;
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .ok_or_else(|| format!("unexpected daemon banner: {line:?}"))?
            .to_string();
        Ok(Self { child, addr })
    }

    pub(crate) fn shutdown(mut self) -> Result<(), String> {
        let response = exchange(&self.addr, &post("/shutdown", ""))?;
        if !response.starts_with("HTTP/1.1 200") {
            let _ = self.child.kill();
            return Err(format!("shutdown refused: {}", head(&response)));
        }
        let status = self.child.wait().map_err(|e| format!("daemon wait: {e}"))?;
        if status.success() {
            Ok(())
        } else {
            Err(format!("daemon exited with {status}"))
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Belt-and-braces: if the bench errored out before the orderly
        // shutdown, don't leave a daemon running.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A scratch directory removed on drop (store directories for the bench
/// and crash-smoke daemons).
pub(crate) struct ScratchDir(pub(crate) PathBuf);

impl ScratchDir {
    pub(crate) fn new(tag: &str) -> ScratchDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        ScratchDir(std::env::temp_dir().join(format!(
            "iolb_xtask_{tag}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

pub(crate) fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
}

pub(crate) fn post(path_query: &str, body: &str) -> String {
    format!(
        "POST {path_query} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// One request / one connection; reads the response to EOF.
pub(crate) fn exchange(addr: &str, request: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("receive: {e}"))?;
    Ok(response)
}

/// First line of a response, for error messages.
pub(crate) fn head(response: &str) -> &str {
    response.lines().next().unwrap_or("")
}

/// Body of a response (after the blank line).
pub(crate) fn body_of(response: &str) -> Option<&str> {
    response.split_once("\r\n\r\n").map(|(_, b)| b)
}

fn list_kernels(dir: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "iolb"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .iolb kernels in {}", dir.display()));
    }
    files
        .into_iter()
        .map(|p| {
            let name = p
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("?")
                .to_string();
            let src = std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            Ok((name, src))
        })
        .collect()
}

/// Runs the CLI over the whole batch with the bench options and returns
/// its combined sweep report.
fn cli_reference(iolb: &Path, kernels_dir: &Path, tmp: &Path) -> Result<Value, String> {
    let out = tmp.join("serve_bench_cli.json");
    let mut cmd = Command::new(iolb);
    cmd.args(["--s-grid", S_GRID, "--no-tightness", "--json"])
        .arg(&out);
    let mut files: Vec<PathBuf> = std::fs::read_dir(kernels_dir)
        .map_err(|e| format!("{}: {e}", kernels_dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "iolb"))
        .collect();
    files.sort();
    cmd.args(&files);
    let status = cmd
        .status()
        .map_err(|e| format!("cannot run {}: {e}", iolb.display()))?;
    if !status.success() {
        return Err(format!("CLI reference run failed with {status}"));
    }
    let src = std::fs::read_to_string(&out).map_err(|e| format!("{}: {e}", out.display()))?;
    json::parse(&src).map_err(|e| format!("CLI report: {e}"))
}

/// Compares the daemon's embedded sweep rows for `kernel` against the
/// CLI's combined report. Returns an error string on any mismatch.
fn rows_match(cli: &Value, kernel: &str, daemon_body: &Value) -> Result<usize, String> {
    let cli_rows: Vec<&Value> = cli
        .get("rows")
        .map(Value::arr)
        .unwrap_or(&[])
        .iter()
        .filter(|r| r.get("kernel").and_then(Value::str) == Some(kernel))
        .collect();
    let daemon_rows = daemon_body
        .get("sweep")
        .and_then(|s| s.get("rows"))
        .map(Value::arr)
        .unwrap_or(&[]);
    if cli_rows.len() != daemon_rows.len() {
        return Err(format!(
            "{kernel}: CLI emitted {} rows, daemon {}",
            cli_rows.len(),
            daemon_rows.len()
        ));
    }
    if cli_rows.is_empty() {
        return Err(format!("{kernel}: no rows on either side"));
    }
    for (i, (c, d)) in cli_rows.iter().zip(daemon_rows).enumerate() {
        if **c != *d {
            return Err(format!(
                "{kernel}: row {i} differs: CLI {c:?} vs daemon {d:?}"
            ));
        }
    }
    Ok(cli_rows.len())
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64) * p).ceil() as usize;
    sorted_ms[idx.clamp(1, sorted_ms.len()) - 1]
}

struct Phase {
    latencies_ms: Vec<f64>,
    wall_ms: f64,
    hits: u64,
    misses: u64,
}

impl Phase {
    fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn json(&self, label: &str) -> String {
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(f64::total_cmp);
        let requests = sorted.len();
        let throughput = if self.wall_ms > 0.0 {
            requests as f64 / (self.wall_ms / 1000.0)
        } else {
            0.0
        };
        format!(
            r#""{label}": {{"requests": {requests}, "wall_ms": {:.3}, "p50_ms": {:.3}, "p99_ms": {:.3}, "throughput_rps": {:.1}}}"#,
            self.wall_ms,
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.99),
            throughput,
        )
    }
}

/// Replays the batch once; checks every response is a 200 with the
/// expected cache disposition and (optionally) records/cross-checks the
/// response bodies.
fn replay(
    addr: &str,
    batch: &[(String, String)],
    expect: &str,
    bodies: &mut Vec<String>,
    check_bodies: bool,
) -> Result<Phase, String> {
    let mut phase = Phase {
        latencies_ms: Vec::with_capacity(batch.len()),
        wall_ms: 0.0,
        hits: 0,
        misses: 0,
    };
    let start = Instant::now();
    for (i, (name, src)) in batch.iter().enumerate() {
        let request = post(&format!("/analyze?s-grid={S_GRID}&no-tightness"), src);
        let t = Instant::now();
        let response = exchange(addr, &request)?;
        phase.latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
        if !response.starts_with("HTTP/1.1 200") {
            return Err(format!("{name}: {}", head(&response)));
        }
        match () {
            _ if response.contains("X-Iolb-Cache: hit") => phase.hits += 1,
            _ if response.contains("X-Iolb-Cache: miss") => phase.misses += 1,
            _ => return Err(format!("{name}: response lacks X-Iolb-Cache header")),
        }
        let body = body_of(&response)
            .ok_or_else(|| format!("{name}: malformed response"))?
            .to_string();
        if check_bodies && bodies[i] != body {
            return Err(format!(
                "{name}: {expect} body differs from the cold body — responses are not deterministic"
            ));
        }
        if !check_bodies {
            bodies.push(body);
        }
    }
    phase.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let seen = if expect == "miss" {
        phase.misses
    } else {
        phase.hits
    };
    if seen != batch.len() as u64 {
        return Err(format!(
            "expected {} `{expect}` responses, saw {seen} (hits {}, misses {})",
            batch.len(),
            phase.hits,
            phase.misses
        ));
    }
    Ok(phase)
}

fn serve_bench(opts: &ServeBenchOpts) -> Result<(), String> {
    let batch = list_kernels(&opts.kernels)?;
    println!(
        "serve-bench: {} kernel(s), grid {S_GRID}, {} warm pass(es)",
        batch.len(),
        opts.warm_passes
    );

    // Reference: the CLI on the same batch with the same options.
    let cli = cli_reference(&opts.iolb, &opts.kernels, &std::env::temp_dir())?;

    // The bench daemon runs with a scratch persistent store, so the
    // report carries the store counters a production deployment would
    // watch (and the gate can hold skipped_corrupt_records at zero).
    let store_dir = ScratchDir::new("serve_bench_store");
    let store_arg = store_dir.0.to_string_lossy().into_owned();
    let daemon = Daemon::start_with(&opts.iolbd, &["--store", &store_arg])?;
    let addr = daemon.addr.clone();

    // Cold pass: all misses; capture bodies.
    let mut bodies: Vec<String> = Vec::new();
    let cold = replay(&addr, &batch, "miss", &mut bodies, false)?;

    // Cold bodies vs the CLI: every sweep row identical.
    let mut rows_compared = 0usize;
    for ((name, _), body) in batch.iter().zip(&bodies) {
        let doc = json::parse(body).map_err(|e| format!("{name}: daemon body: {e}"))?;
        rows_compared += rows_match(&cli, name, &doc)?;
    }
    println!("serve-bench: cold pass matches CLI ({rows_compared} sweep rows compared, all equal)");

    // Warm passes: all hits, bodies byte-identical to cold.
    let mut warm = Phase {
        latencies_ms: Vec::new(),
        wall_ms: 0.0,
        hits: 0,
        misses: 0,
    };
    for _ in 0..opts.warm_passes {
        let pass = replay(&addr, &batch, "hit", &mut bodies, true)?;
        warm.latencies_ms.extend(pass.latencies_ms);
        warm.wall_ms += pass.wall_ms;
        warm.hits += pass.hits;
        warm.misses += pass.misses;
    }

    // Store counters straight from the daemon before it drains.
    let stats_raw = exchange(&addr, &get("/stats"))?;
    let stats_doc = body_of(&stats_raw)
        .ok_or("malformed /stats response")
        .and_then(|b| json::parse(b).map_err(|_| "/stats body is not JSON"))?;
    let store_num = |field: &str| -> Result<u64, String> {
        stats_doc
            .get("store")
            .and_then(|s| s.get(field))
            .and_then(Value::num)
            .map(|n| n as u64)
            .ok_or_else(|| format!("/stats store.{field} missing — daemon ran without --store?"))
    };
    let store_json = format!(
        "\"store\": {{\"entries\": {}, \"appends\": {}, \"append_errors\": {}, \
         \"persisted_hits\": {}, \"compactions\": {}, \"recovered_records\": {}, \
         \"snapshot_records\": {}, \"skipped_corrupt_records\": {}, \"torn_tail_bytes\": {}}}",
        store_num("entries")?,
        store_num("appends")?,
        store_num("append_errors")?,
        store_num("persisted_hits")?,
        store_num("compactions")?,
        store_num("recovered_records")?,
        store_num("snapshot_records")?,
        store_num("skipped_corrupt_records")?,
        store_num("torn_tail_bytes")?,
    );

    daemon.shutdown()?;

    let kernel_names: Vec<String> = batch
        .iter()
        .map(|(name, _)| format!("\"{name}\""))
        .collect();
    let report = format!(
        "{{\n  \"schema\": \"hourglass-iolb/serve-bench/v2\",\n  \
         \"meta\": {{\"kernels\": {}, \"warm_passes\": {}, \"s_grid\": \"{S_GRID}\"}},\n  \
         \"cold_matches_cli\": true,\n  \
         \"warm_hit_rate\": {:.4},\n  \
         {},\n  {},\n  {store_json},\n  \
         \"kernels\": [{}]\n}}\n",
        batch.len(),
        opts.warm_passes,
        warm.hit_rate(),
        cold.json("cold"),
        warm.json("warm"),
        kernel_names.join(", "),
    );
    std::fs::write(&opts.out, &report).map_err(|e| format!("{}: {e}", opts.out.display()))?;
    println!(
        "serve-bench ✓ — warm hit rate {:.2}%, wrote {}",
        warm.hit_rate() * 100.0,
        opts.out.display()
    );
    Ok(())
}

/// Gate checks for `BENCH_serve.json`: the deterministic fields must hold
/// absolutely (they do not regress by degrees), the timing fields are
/// volatile and ignored — consistent with how the pebble/tightness gates
/// treat wall times.
pub const SERVE_SCHEMAS: &[&str] = &[
    "hourglass-iolb/serve-bench/v1",
    "hourglass-iolb/serve-bench/v2",
];

pub fn gate_serve(base: &Value, new: &Value, violations: &mut Vec<String>) {
    if new.get("cold_matches_cli").and_then(Value::bool) != Some(true) {
        violations.push("serve: fresh cold pass does not match the CLI output".to_string());
    }
    match new.get("warm_hit_rate").and_then(Value::num) {
        Some(rate) if rate >= 0.99 => {}
        Some(rate) => violations.push(format!(
            "serve: warm cache hit rate {rate:.4} below the 0.99 floor"
        )),
        None => violations.push("serve: missing `warm_hit_rate`".to_string()),
    }
    // Coverage: every kernel the baseline served must still be served.
    let fresh_kernels: Vec<&str> = new
        .get("kernels")
        .map(Value::arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(Value::str)
        .collect();
    for k in base.get("kernels").map(Value::arr).unwrap_or(&[]) {
        if let Some(name) = k.str() {
            if !fresh_kernels.contains(&name) {
                violations.push(format!(
                    "serve: baseline kernel missing from fresh run: {name}"
                ));
            }
        }
    }
    // Store health (v2): a fresh run skipping more corrupt records than
    // the baseline knew about means the journal is corrupting data at
    // rest. Pre-v2 baselines carry no store section — noted, counted as
    // zero skipped, and the rest of the gate still applies.
    let skipped = |doc: &Value| {
        doc.get("store")
            .and_then(|s| s.get("skipped_corrupt_records"))
            .and_then(Value::num)
    };
    let base_skipped = skipped(base).unwrap_or_else(|| {
        println!(
            "gate: serve baseline has no store counters (pre-v2 schema) — \
             baseline skipped_corrupt_records taken as 0"
        );
        0.0
    });
    match skipped(new) {
        Some(fresh) if fresh <= base_skipped => {}
        Some(fresh) => violations.push(format!(
            "serve: skipped_corrupt_records {fresh:.0} above baseline {base_skipped:.0} — \
             the persistent store is corrupting records"
        )),
        None => println!(
            "gate: fresh serve report has no store counters (pre-v2 schema) — \
             store health not gated"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = r#"{"schema": "hourglass-iolb/serve-bench/v2",
        "meta": {"kernels": 2, "warm_passes": 5, "s_grid": "0,16,64"},
        "cold_matches_cli": true, "warm_hit_rate": 1.0,
        "cold": {"requests": 2, "wall_ms": 10.0, "p50_ms": 5.0, "p99_ms": 6.0, "throughput_rps": 200.0},
        "warm": {"requests": 10, "wall_ms": 5.0, "p50_ms": 0.5, "p99_ms": 0.9, "throughput_rps": 2000.0},
        "store": {"entries": 2, "appends": 2, "append_errors": 0, "persisted_hits": 0,
                  "compactions": 0, "recovered_records": 0, "snapshot_records": 0,
                  "skipped_corrupt_records": 0, "torn_tail_bytes": 0},
        "kernels": ["a", "b"]}"#;

    #[test]
    fn serve_gate_passes_a_clean_report() {
        let doc = json::parse(CLEAN).unwrap();
        let mut v = Vec::new();
        gate_serve(&doc, &doc, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn serve_gate_flags_mismatch_hit_rate_and_coverage() {
        let clean = json::parse(CLEAN).unwrap();

        let mismatch = json::parse(
            &CLEAN.replace("\"cold_matches_cli\": true", "\"cold_matches_cli\": false"),
        )
        .unwrap();
        let mut v = Vec::new();
        gate_serve(&clean, &mismatch, &mut v);
        assert!(v.iter().any(|m| m.contains("does not match")), "{v:?}");

        let lukewarm =
            json::parse(&CLEAN.replace("\"warm_hit_rate\": 1.0", "\"warm_hit_rate\": 0.5"))
                .unwrap();
        let mut v = Vec::new();
        gate_serve(&clean, &lukewarm, &mut v);
        assert!(
            v.iter().any(|m| m.contains("below the 0.99 floor")),
            "{v:?}"
        );

        let shrunk = json::parse(&CLEAN.replace(r#"["a", "b"]"#, r#"["a"]"#)).unwrap();
        let mut v = Vec::new();
        gate_serve(&clean, &shrunk, &mut v);
        assert!(
            v.iter().any(|m| m.contains("missing from fresh run: b")),
            "{v:?}"
        );
    }

    #[test]
    fn serve_gate_holds_store_corruption_at_the_baseline() {
        let clean = json::parse(CLEAN).unwrap();

        // Fresh run skipping corrupt records the baseline never saw: fail.
        let corrupting = json::parse(&CLEAN.replace(
            "\"skipped_corrupt_records\": 0",
            "\"skipped_corrupt_records\": 2",
        ))
        .unwrap();
        let mut v = Vec::new();
        gate_serve(&clean, &corrupting, &mut v);
        assert!(
            v.iter().any(|m| m.contains("skipped_corrupt_records 2")),
            "{v:?}"
        );

        // A pre-v2 baseline (no store section) is accepted — its skipped
        // count is taken as zero, so a clean fresh run passes and a
        // corrupting one still fails.
        let pre_v2 = json::parse(
            r#"{"schema": "hourglass-iolb/serve-bench/v1",
                "cold_matches_cli": true, "warm_hit_rate": 1.0,
                "kernels": ["a", "b"]}"#,
        )
        .unwrap();
        let mut v = Vec::new();
        gate_serve(&pre_v2, &clean, &mut v);
        assert!(v.is_empty(), "{v:?}");
        let mut v = Vec::new();
        gate_serve(&pre_v2, &corrupting, &mut v);
        assert!(v.iter().any(|m| m.contains("above baseline 0")), "{v:?}");

        // A pre-v2 *fresh* report is noted, not failed, on the store axis.
        let mut v = Vec::new();
        gate_serve(&clean, &pre_v2, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn serve_bench_args_parse() {
        let opts = parse_serve_bench_args(&[
            "--iolbd".into(),
            "x/iolbd".into(),
            "--out".into(),
            "o.json".into(),
            "--warm-passes".into(),
            "3".into(),
        ])
        .unwrap();
        assert_eq!(opts.iolbd, PathBuf::from("x/iolbd"));
        assert_eq!(opts.out, PathBuf::from("o.json"));
        assert_eq!(opts.warm_passes, 3);
        assert!(parse_serve_bench_args(&["--warm-passes".into(), "0".into()]).is_err());
        assert!(parse_serve_bench_args(&["--bogus".into()]).is_err());
    }

    #[test]
    fn percentiles_pick_the_right_ranks() {
        let ms: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&ms, 0.50), 50.0);
        assert_eq!(percentile(&ms, 0.99), 99.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        assert_eq!(percentile(&[], 0.50), 0.0);
    }
}
