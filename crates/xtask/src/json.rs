//! Minimal JSON reader for the gate — the offline workspace has no serde,
//! and the gate only consumes the repo's own hand-rolled emitters (plain
//! ASCII strings, finite numbers, no escapes beyond `\"` and `\\`).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the emitters only write finite decimals).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object as an ordered key list (duplicate keys keep the last).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(kv) => kv.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array view.
    pub fn arr(&self) -> &[Value] {
        match self {
            Value::Arr(v) => v,
            _ => &[],
        }
    }

    /// Number view.
    pub fn num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure at a byte offset.
#[derive(Debug)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

/// Parses one JSON document.
///
/// # Errors
/// Reports the first syntax error with its byte offset.
pub fn parse(src: &str) -> Result<Value, JsonError> {
    let b = src.as_bytes();
    let mut pos = 0usize;
    let v = value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(err(pos, "trailing content"));
    }
    Ok(v)
}

fn err(at: usize, msg: &str) -> JsonError {
    JsonError {
        at,
        msg: msg.to_string(),
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut kv = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(kv));
            }
            loop {
                skip_ws(b, pos);
                let Value::Str(k) = value(b, pos)? else {
                    return Err(err(*pos, "object key must be a string"));
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected `:`"));
                }
                *pos += 1;
                let v = value(b, pos)?;
                kv.push((k, v));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(kv));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut out = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(out));
            }
            loop {
                out.push(value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(out));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err(err(*pos, "unterminated string")),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Value::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            _ => return Err(err(*pos, "unsupported escape")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // Multi-byte UTF-8 passes through byte-wise.
                        s.push(c as char);
                        *pos += 1;
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err(start, "utf8"))?;
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| err(start, "bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_emitters_shapes() {
        let v = parse(
            r#"{"schema": "x/v2", "meta": {"threads": 8, "total_wall_ms": 12.5},
                "rows": [{"kernel": "a", "params": [1, 2], "sound": true, "x": null, "r": -1.25e2}]}"#,
        )
        .unwrap();
        assert_eq!(v.get("schema").unwrap().str(), Some("x/v2"));
        assert_eq!(
            v.get("meta").unwrap().get("threads").unwrap().num(),
            Some(8.0)
        );
        let row = &v.get("rows").unwrap().arr()[0];
        assert_eq!(row.get("sound").unwrap().bool(), Some(true));
        assert_eq!(row.get("x"), Some(&Value::Null));
        assert_eq!(row.get("r").unwrap().num(), Some(-125.0));
        assert_eq!(row.get("params").unwrap().arr().len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }
}
