//! `xtask` — repo automation. Two subcommands:
//!
//! `xtask gate --baseline <dir> --fresh <dir> [--tolerance 0.02]`
//!
//! `xtask fuzz-smoke [--seeds 1,2,3] [--cases 200] [--max-seconds 300]`
//! runs the kernel-space fuzzer (`iolb-fuzz`) over a fixed seed set and
//! fails on any differential-oracle violation. The seed set and case
//! count are fixed defaults — never wall-clock derived — so every CI run
//! checks the same kernels; the time budget only stops *starting* further
//! seeds when the runner is slow, it never changes what a seed generates.
//!
//! `xtask fuzz-smoke --inject all|panic,oom,deadline` instead runs the
//! fault-injection matrix: every named fault class armed at every
//! governed seam, asserting each surfaces as its typed error class with
//! clean state afterwards — the CI proof that no fault aborts a batch.
//!
//! The CI bench/tightness regression gate: compares freshly generated
//! `BENCH_pebble.json` / `BENCH_tightness.json` against the committed
//! baselines and fails on
//!
//! * **soundness loss** — any fresh pebble cell with `sound: false`;
//! * **coverage loss** — a baseline cell/point missing from the fresh run
//!   (a kernel or S value silently dropped from the suite);
//! * **tightness regression** — a fresh `(kernel, S)` ratio exceeding the
//!   baseline ratio by more than the relative tolerance, or any fresh
//!   ratio that is not finite.
//!
//! Wall times, thread counts, and other volatile `meta` data are ignored;
//! the comparable sections of both reports are deterministic, so on an
//! unchanged tree the gate compares byte-equal values.

mod crash_smoke;
mod json;
mod serve_bench;

use json::Value;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
xtask — repo automation

USAGE:
    xtask gate --baseline <DIR> --fresh <DIR> [--tolerance 0.02]
    xtask fuzz-smoke [--seeds 1,2,3] [--cases 200] [--max-seconds 300]
    xtask fuzz-smoke --inject all|panic,oom,deadline
    xtask serve-bench [--iolbd PATH] [--iolb PATH] [--kernels DIR]
                      [--out BENCH_serve.json] [--warm-passes 5]
    xtask crash-smoke [--iolbd PATH] [--kernels DIR]

`gate` diffs <DIR>/BENCH_pebble.json and <DIR>/BENCH_tightness.json between
the two directories and exits nonzero on soundness loss, coverage loss,
tightness-ratio regression beyond the tolerance, a failed kernel row, or a
kernel degraded below its baseline fidelity rung. When both sides carry a
BENCH_serve.json it also gates the daemon bench: the fresh cold pass must
match the CLI and the warm cache hit rate must stay at or above 0.99.

`serve-bench` starts the `iolbd` daemon on an ephemeral loopback port,
replays every kernel cold and warm, verifies the cold responses against
the `iolb` CLI row for row, and writes the BENCH_serve.json report.

`crash-smoke` starts `iolbd` against a scratch persistent store, kills it
with SIGKILL in the middle of a write burst, restarts it against the same
directory, and exits nonzero unless recovery truncated the torn journal
tail, skipped (and counted) a deliberately corrupted record, served every
previously computed body byte-identical as a persisted hit, and drained
cleanly on SIGTERM.

`fuzz-smoke` runs the kernel-space fuzzer over a fixed seed set and exits
nonzero on any differential-oracle violation (bounded CI job; the time
budget caps how many seeds start, never what a seed generates). With
`--inject` it instead runs the fault-injection matrix (listed classes ×
every governed seam) and exits nonzero unless every fault surfaced as its
typed error class and left clean state behind.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gate") => match parse_gate_args(&args[1..]) {
            Ok((baseline, fresh, tol)) => run_gate(&baseline, &fresh, tol),
            Err(msg) => {
                eprintln!("{msg}\n\n{USAGE}");
                ExitCode::from(2)
            }
        },
        Some("fuzz-smoke") => match parse_fuzz_smoke_args(&args[1..]) {
            Ok(opts) => run_fuzz_smoke(&opts),
            Err(msg) => {
                eprintln!("{msg}\n\n{USAGE}");
                ExitCode::from(2)
            }
        },
        Some("serve-bench") => match serve_bench::parse_serve_bench_args(&args[1..]) {
            Ok(opts) => serve_bench::run_serve_bench(&opts),
            Err(msg) => {
                eprintln!("{msg}\n\n{USAGE}");
                ExitCode::from(2)
            }
        },
        Some("crash-smoke") => match crash_smoke::parse_crash_smoke_args(&args[1..]) {
            Ok(opts) => crash_smoke::run_crash_smoke(&opts),
            Err(msg) => {
                eprintln!("{msg}\n\n{USAGE}");
                ExitCode::from(2)
            }
        },
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// `fuzz-smoke` options.
struct FuzzSmokeOpts {
    seeds: Vec<u64>,
    cases: u64,
    max_seconds: u64,
    /// Fault classes for `--inject` mode (empty = run the random oracle).
    inject: Vec<iolb_fuzz::inject::FaultKind>,
}

fn parse_fuzz_smoke_args(args: &[String]) -> Result<FuzzSmokeOpts, String> {
    let mut opts = FuzzSmokeOpts {
        seeds: vec![1, 2, 3],
        cases: 200,
        max_seconds: 300,
        inject: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                opts.seeds = it
                    .next()
                    .ok_or("--seeds needs a list")?
                    .split(',')
                    .map(|s| s.trim().parse::<u64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| "bad --seeds list".to_string())?;
                if opts.seeds.is_empty() {
                    return Err("--seeds needs at least one seed".to_string());
                }
            }
            "--cases" => {
                opts.cases = it
                    .next()
                    .ok_or("--cases needs a value")?
                    .parse()
                    .map_err(|_| "bad --cases value".to_string())?;
            }
            "--max-seconds" => {
                opts.max_seconds = it
                    .next()
                    .ok_or("--max-seconds needs a value")?
                    .parse()
                    .map_err(|_| "bad --max-seconds value".to_string())?;
            }
            "--inject" => {
                let spec = it.next().ok_or("--inject needs a class list or `all`")?;
                opts.inject = if spec == "all" {
                    iolb_fuzz::inject::FaultKind::ALL.to_vec()
                } else {
                    spec.split(',')
                        .map(|s| {
                            iolb_fuzz::inject::FaultKind::parse(s.trim()).ok_or_else(|| {
                                format!("bad --inject class `{s}` (want panic|oom|deadline|all)")
                            })
                        })
                        .collect::<Result<_, _>>()?
                };
                if opts.inject.is_empty() {
                    return Err("--inject needs at least one class".to_string());
                }
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// `--inject` mode: the full fault matrix instead of the random oracle.
fn run_injection_smoke(kinds: &[iolb_fuzz::inject::FaultKind]) -> ExitCode {
    let report = iolb_fuzz::run_injection_matrix(kinds);
    print!("{}", report.render_table());
    if report.all_expected() {
        println!(
            "injection smoke ✓ — {} cell(s): every fault surfaced as its typed class, \
             clean state after each, zero process aborts",
            report.outcomes.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("injection smoke ✗ — a fault escaped its class or poisoned state");
        ExitCode::FAILURE
    }
}

fn run_fuzz_smoke(opts: &FuzzSmokeOpts) -> ExitCode {
    if !opts.inject.is_empty() {
        return run_injection_smoke(&opts.inject);
    }
    let start = std::time::Instant::now();
    let mut total_violations = 0usize;
    let mut seeds_run = 0usize;
    for &seed in &opts.seeds {
        if seeds_run > 0 && start.elapsed().as_secs() >= opts.max_seconds {
            println!(
                "fuzz-smoke: time budget ({}s) reached after {seeds_run} seed(s); \
                 remaining seeds skipped",
                opts.max_seconds
            );
            break;
        }
        let report = iolb_fuzz::run_fuzz(&iolb_fuzz::FuzzConfig::new(seed, opts.cases));
        seeds_run += 1;
        println!(
            "fuzz-smoke seed={seed}: {} cases, {} violation(s), {} certified instances",
            report.config.cases,
            report.failures.len(),
            report.stats.instances
        );
        for f in &report.failures {
            eprintln!(
                "VIOLATION seed={seed} case {}: [{}] {}\nminimized ({} stmt(s)):\n{}",
                f.case_index,
                f.violation.invariant,
                f.violation.detail,
                f.minimized_stmts,
                f.minimized
            );
        }
        total_violations += report.failures.len();
    }
    if total_violations == 0 {
        println!("fuzz-smoke ✓ — {seeds_run} seed(s), zero oracle violations");
        ExitCode::SUCCESS
    } else {
        eprintln!("fuzz-smoke ✗ — {total_violations} violation(s)");
        ExitCode::FAILURE
    }
}

fn parse_gate_args(args: &[String]) -> Result<(PathBuf, PathBuf, f64), String> {
    let mut baseline: Option<PathBuf> = None;
    let mut fresh: Option<PathBuf> = None;
    let mut tol = 0.02f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => {
                baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a dir")?))
            }
            "--fresh" => fresh = Some(PathBuf::from(it.next().ok_or("--fresh needs a dir")?)),
            "--tolerance" => {
                tol = it
                    .next()
                    .ok_or("--tolerance needs a value")?
                    .parse()
                    .map_err(|_| "bad --tolerance value".to_string())?;
                if !(0.0..1.0).contains(&tol) {
                    return Err("--tolerance must be in [0, 1)".to_string());
                }
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok((
        baseline.ok_or("missing --baseline")?,
        fresh.ok_or("missing --fresh")?,
        tol,
    ))
}

/// Schema versions the gate knows how to compare. The pebble sweep moved
/// from per-cell play replays (v2) to one-pass miss curves (v3, `peak_red`
/// dropped), and tightness from pebble-play upper bounds with a
/// `trace_min_loads` side column (v1) to optimal-curve upper bounds (v2);
/// the keys the gate reads are stable across those bumps, so it accepts
/// both generations on either side of the diff.
const PEBBLE_SCHEMAS: &[&str] = &[
    "hourglass-iolb/pebble-sweep/v2",
    "hourglass-iolb/pebble-sweep/v3",
    "hourglass-iolb/pebble-sweep/v4",
    "hourglass-iolb/pebble-sweep/v5",
];
const TIGHTNESS_SCHEMAS: &[&str] = &[
    "hourglass-iolb/tightness/v1",
    "hourglass-iolb/tightness/v2",
    "hourglass-iolb/tightness/v3",
];

/// Schemas that carry the resource-governance sections (`degradation` and
/// `failures` arrays) introduced by pebble-sweep/v4 and tightness/v3.
const GOVERNED_SCHEMAS: &[&str] = &[
    "hourglass-iolb/pebble-sweep/v4",
    "hourglass-iolb/pebble-sweep/v5",
    "hourglass-iolb/tightness/v3",
];

/// The pebble schema that carries graph-level engine bound columns
/// (`lb_input` / `lb_visit` / `lb_spectral`, null when inapplicable).
const ENGINE_SCHEMA: &str = "hourglass-iolb/pebble-sweep/v5";

fn check_schema(doc: &Value, which: &str, accepted: &[&str], violations: &mut Vec<String>) {
    match doc.get("schema").and_then(Value::str) {
        Some(s) if accepted.contains(&s) => {}
        Some(s) => violations.push(format!(
            "{which}: unknown schema `{s}` (gate understands {accepted:?})"
        )),
        None => violations.push(format!("{which}: missing `schema` field")),
    }
}

/// Fidelity rank of a degradation level (higher = more degraded).
fn degradation_rank(level: &str) -> Option<u8> {
    match level {
        "full" => Some(0),
        "coarse" => Some(1),
        "bounds_only" => Some(2),
        _ => None,
    }
}

/// Governance-section checks for v4/v3 reports: both arrays must exist
/// and be well-formed, any fresh failure row is a regression, and no
/// kernel may report a fidelity rung below its baseline (absent baseline
/// entries default to `full`).
fn gate_governance(base: &Value, new: &Value, which: &str, violations: &mut Vec<String>) {
    let Some(schema) = new.get("schema").and_then(Value::str) else {
        return;
    };
    if !GOVERNED_SCHEMAS.contains(&schema) {
        return;
    }
    for field in ["degradation", "failures"] {
        if new.get(field).is_none() {
            violations.push(format!(
                "{which}: schema `{schema}` requires a `{field}` array"
            ));
        }
    }
    for row in new.get("failures").map(Value::arr).unwrap_or(&[]) {
        let kernel = row.get("kernel").and_then(Value::str).unwrap_or("?");
        let class = row.get("class").and_then(Value::str).unwrap_or("?");
        let message = row.get("message").and_then(Value::str).unwrap_or("");
        violations.push(format!(
            "{which}: failed kernel in fresh report: {kernel} [{class}] {message}"
        ));
    }
    let base_level = |kernel: &str| -> &str {
        base.get("degradation")
            .map(Value::arr)
            .unwrap_or(&[])
            .iter()
            .find(|r| r.get("kernel").and_then(Value::str) == Some(kernel))
            .and_then(|r| r.get("level").and_then(Value::str))
            .unwrap_or("full")
    };
    for row in new.get("degradation").map(Value::arr).unwrap_or(&[]) {
        let kernel = row.get("kernel").and_then(Value::str).unwrap_or("?");
        let level = row.get("level").and_then(Value::str).unwrap_or("?");
        let Some(rank) = degradation_rank(level) else {
            violations.push(format!(
                "{which}: {kernel}: unknown degradation level `{level}`"
            ));
            continue;
        };
        let baseline = base_level(kernel);
        if degradation_rank(baseline).map(|b| rank > b) == Some(true) {
            violations.push(format!(
                "{which}: {kernel}: degraded below baseline fidelity ({baseline} → {level})"
            ));
        }
    }
}

fn run_gate(baseline: &Path, fresh: &Path, tol: f64) -> ExitCode {
    let mut violations: Vec<String> = Vec::new();
    match load_pair(baseline, fresh, "BENCH_pebble.json") {
        Ok((base, new)) => {
            check_schema(&base, "pebble baseline", PEBBLE_SCHEMAS, &mut violations);
            check_schema(&new, "pebble fresh", PEBBLE_SCHEMAS, &mut violations);
            gate_pebble(&base, &new, &mut violations);
            gate_governance(&base, &new, "pebble", &mut violations);
            gate_engine_coverage(&base, &new, &mut violations);
            gate_scaling(&base, &new, &mut violations);
        }
        Err(e) => violations.push(e),
    }
    match load_pair(baseline, fresh, "BENCH_tightness.json") {
        Ok((base, new)) => {
            check_schema(
                &base,
                "tightness baseline",
                TIGHTNESS_SCHEMAS,
                &mut violations,
            );
            check_schema(&new, "tightness fresh", TIGHTNESS_SCHEMAS, &mut violations);
            gate_tightness(&base, &new, tol, &mut violations);
            gate_governance(&base, &new, "tightness", &mut violations);
        }
        Err(e) => violations.push(e),
    }
    // The serve bench is gated only once a baseline exists, so trees
    // predating the daemon still gate cleanly.
    if baseline.join("BENCH_serve.json").exists() {
        match load_pair(baseline, fresh, "BENCH_serve.json") {
            Ok((base, new)) => {
                check_schema(
                    &base,
                    "serve baseline",
                    serve_bench::SERVE_SCHEMAS,
                    &mut violations,
                );
                check_schema(
                    &new,
                    "serve fresh",
                    serve_bench::SERVE_SCHEMAS,
                    &mut violations,
                );
                serve_bench::gate_serve(&base, &new, &mut violations);
            }
            Err(e) => violations.push(e),
        }
    } else {
        println!("gate: no baseline BENCH_serve.json — serve bench not gated");
    }
    if violations.is_empty() {
        println!("gate ✓ — soundness and tightness no worse than the committed baselines (tolerance {tol})");
        ExitCode::SUCCESS
    } else {
        eprintln!("gate ✗ — {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}

fn load_pair(baseline: &Path, fresh: &Path, name: &str) -> Result<(Value, Value), String> {
    let read = |dir: &Path| -> Result<Value, String> {
        let path = dir.join(name);
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        json::parse(&src).map_err(|e| format!("{}: {e}", path.display()))
    };
    Ok((read(baseline)?, read(fresh)?))
}

/// Key of one pebble cell: kernel, params, S, policy.
fn pebble_key(row: &Value) -> String {
    format!(
        "{}{:?} S={} {}",
        row.get("kernel").and_then(Value::str).unwrap_or("?"),
        row.get("params")
            .map(|p| p.arr().iter().filter_map(Value::num).collect::<Vec<f64>>())
            .unwrap_or_default(),
        row.get("s").and_then(Value::num).unwrap_or(-1.0),
        row.get("policy").and_then(Value::str).unwrap_or("?"),
    )
}

fn gate_pebble(base: &Value, new: &Value, violations: &mut Vec<String>) {
    let fresh_rows = new.get("rows").map(Value::arr).unwrap_or(&[]);
    // Soundness loss: every fresh cell must be sound.
    for row in fresh_rows {
        if row.get("sound").and_then(Value::bool) != Some(true) {
            violations.push(format!("pebble: UNSOUND fresh cell {}", pebble_key(row)));
        }
    }
    // Coverage loss: every baseline cell must still be produced.
    let fresh_keys: Vec<String> = fresh_rows.iter().map(pebble_key).collect();
    for row in base.get("rows").map(Value::arr).unwrap_or(&[]) {
        let key = pebble_key(row);
        if !fresh_keys.contains(&key) {
            violations.push(format!(
                "pebble: baseline cell missing from fresh run: {key}"
            ));
        }
    }
}

/// The curve-engine scaling points of a pebble report's `meta` section,
/// as `(accesses, policy, wall_ms)` triples. Empty when the report (or
/// its baseline generation) carries no scaling series.
fn scaling_points(doc: &Value) -> Vec<(u64, String, f64)> {
    doc.get("meta")
        .and_then(|m| m.get("scaling"))
        .map(Value::arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(|p| {
            Some((
                p.get("accesses").and_then(Value::num)? as u64,
                p.get("policy").and_then(Value::str)?.to_string(),
                p.get("wall_ms").and_then(Value::num)?,
            ))
        })
        .collect()
}

/// Wall-time floor for the curve-engine scaling gate: points cheaper than
/// this in the baseline are timing noise, not a trend, and are not gated.
const SCALING_MIN_BASE_MS: f64 = 1.0;

/// Gates the curve-engine scaling series: for each policy, the fresh wall
/// time of the *largest* baseline point must stay within 2× of the
/// baseline — a streaming/sharding regression shows up at the big end
/// first. Baselines without a scaling series (pre-v5 meta) skip with a
/// note; a fresh run that dropped a gated point is a coverage loss.
fn gate_scaling(base: &Value, new: &Value, violations: &mut Vec<String>) {
    let base_pts = scaling_points(base);
    if base_pts.is_empty() {
        println!("gate: no baseline scaling series — curve-engine scaling not gated");
        return;
    }
    let fresh_pts = scaling_points(new);
    let mut policies: Vec<&str> = base_pts.iter().map(|(_, p, _)| p.as_str()).collect();
    policies.sort_unstable();
    policies.dedup();
    for policy in policies {
        let Some((accesses, _, base_ms)) = base_pts
            .iter()
            .filter(|(_, p, _)| p == policy)
            .max_by_key(|(a, _, _)| *a)
        else {
            continue;
        };
        let Some((_, _, fresh_ms)) = fresh_pts
            .iter()
            .find(|(a, p, _)| a == accesses && p == policy)
        else {
            violations.push(format!(
                "scaling: baseline point missing from fresh run: {accesses} accesses {policy}"
            ));
            continue;
        };
        if *base_ms >= SCALING_MIN_BASE_MS && *fresh_ms > 2.0 * base_ms {
            violations.push(format!(
                "scaling: {policy} at {accesses} accesses regressed more than 2×: \
                 {base_ms:.1} ms → {fresh_ms:.1} ms"
            ));
        }
    }
}

/// Engine coverage of a pebble-sweep/v5 report: kernel groups (kernel ×
/// params) with at least one finite graph-level engine cell in some row,
/// over all groups. `None` when the report predates v5.
fn engine_coverage(doc: &Value) -> Option<(usize, usize)> {
    if doc.get("schema").and_then(Value::str) != Some(ENGINE_SCHEMA) {
        return None;
    }
    let mut groups: Vec<(String, bool)> = Vec::new();
    for row in doc.get("rows").map(Value::arr).unwrap_or(&[]) {
        let key = format!(
            "{}{:?}",
            row.get("kernel").and_then(Value::str).unwrap_or("?"),
            row.get("params")
                .map(|p| p.arr().iter().filter_map(Value::num).collect::<Vec<f64>>())
                .unwrap_or_default(),
        );
        let finite = ["lb_input", "lb_visit", "lb_spectral"]
            .iter()
            .any(|f| row.get(f).and_then(Value::num).is_some());
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, covered)) => *covered |= finite,
            None => groups.push((key, finite)),
        }
    }
    let total = groups.len();
    let covered = groups.iter().filter(|(_, c)| *c).count();
    Some((covered, total))
}

/// The engine-coverage floor: the fraction of kernel groups with at least
/// one finite graph-level bound must not regress against the baseline.
/// Pre-v5 baselines carry no engine columns, so cross-generation runs skip
/// the floor with a note instead of failing.
fn gate_engine_coverage(base: &Value, new: &Value, violations: &mut Vec<String>) {
    let Some((fresh_cov, fresh_total)) = engine_coverage(new) else {
        return; // pre-v5 fresh report: nothing to gate
    };
    let Some((base_cov, base_total)) = engine_coverage(base) else {
        println!("gate: baseline pebble report predates engine columns (pre-v5) — coverage floor not gated");
        return;
    };
    if fresh_total == 0 || base_total == 0 {
        return; // empty row sections are already coverage-loss violations
    }
    let fresh_frac = fresh_cov as f64 / fresh_total as f64;
    let base_frac = base_cov as f64 / base_total as f64;
    if fresh_frac + 1e-9 < base_frac {
        violations.push(format!(
            "pebble: engine coverage regressed: {base_cov}/{base_total} kernel group(s) \
             with a finite graph bound → {fresh_cov}/{fresh_total}"
        ));
    }
}

fn gate_tightness(base: &Value, new: &Value, tol: f64, violations: &mut Vec<String>) {
    // (kernel, s) → ratio maps for both sides.
    let collect = |doc: &Value| -> Vec<(String, f64, Option<f64>)> {
        let mut out = Vec::new();
        for k in doc.get("kernels").map(Value::arr).unwrap_or(&[]) {
            let name = k
                .get("kernel")
                .and_then(Value::str)
                .unwrap_or("?")
                .to_string();
            for p in k.get("points").map(Value::arr).unwrap_or(&[]) {
                let s = p.get("s").and_then(Value::num).unwrap_or(-1.0);
                let ratio = p.get("ratio").and_then(Value::num);
                out.push((name.clone(), s, ratio));
            }
        }
        out
    };
    let fresh_pts = collect(new);
    // Every fresh ratio must be a finite number.
    for (kernel, s, ratio) in &fresh_pts {
        match ratio {
            Some(r) if r.is_finite() => {}
            _ => violations.push(format!("tightness: {kernel} S={s}: ratio is not finite")),
        }
    }
    // Per baseline point: present in fresh and not regressed beyond tol.
    for (kernel, s, base_ratio) in collect(base) {
        let Some(base_ratio) = base_ratio else {
            continue;
        };
        match fresh_pts.iter().find(|(k, fs, _)| *k == kernel && *fs == s) {
            None => violations.push(format!(
                "tightness: baseline point missing from fresh run: {kernel} S={s}"
            )),
            Some((_, _, Some(fresh_ratio))) => {
                let limit = base_ratio * (1.0 + tol) + 1e-9;
                if *fresh_ratio > limit {
                    violations.push(format!(
                        "tightness: {kernel} S={s}: ratio regressed {base_ratio:.4} → {fresh_ratio:.4} (limit {limit:.4})"
                    ));
                }
            }
            Some((_, _, None)) => {} // already reported as non-finite
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pebble(rows: &str) -> Value {
        json::parse(&format!(
            r#"{{"schema": "hourglass-iolb/pebble-sweep/v2", "meta": {{"threads": 1, "total_wall_ms": 1.0}}, "rows": [{rows}]}}"#
        ))
        .unwrap()
    }

    fn tight(kernels: &str) -> Value {
        json::parse(&format!(
            r#"{{"schema": "hourglass-iolb/tightness/v1", "meta": {{"threads": 1, "total_wall_ms": 1.0}}, "kernels": [{kernels}]}}"#
        ))
        .unwrap()
    }

    const CELL: &str =
        r#"{"kernel": "a", "params": [8], "s": 4, "policy": "lru", "loads": 10, "sound": true}"#;

    #[test]
    fn pebble_gate_passes_on_identical_reports() {
        let mut v = Vec::new();
        gate_pebble(&pebble(CELL), &pebble(CELL), &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn pebble_gate_flags_soundness_and_coverage_loss() {
        let unsound = CELL.replace("true", "false");
        let mut v = Vec::new();
        gate_pebble(&pebble(CELL), &pebble(&unsound), &mut v);
        assert!(v.iter().any(|m| m.contains("UNSOUND")), "{v:?}");

        let mut v = Vec::new();
        gate_pebble(&pebble(CELL), &pebble(""), &mut v);
        assert!(v.iter().any(|m| m.contains("missing")), "{v:?}");
    }

    fn pebble_scaled(series: &str) -> Value {
        json::parse(&format!(
            r#"{{"schema": "hourglass-iolb/pebble-sweep/v5", "meta": {{"threads": 1, "total_wall_ms": 1.0, "scaling": [{series}]}}, "rows": []}}"#
        ))
        .unwrap()
    }

    const SERIES: &str = r#"{"accesses": 1000000, "policy": "lru", "wall_ms": 5.0},
        {"accesses": 100000000, "policy": "lru", "wall_ms": 400.0},
        {"accesses": 100000000, "policy": "opt", "wall_ms": 900.0}"#;

    #[test]
    fn scaling_gate_skips_without_baseline_and_passes_within_budget() {
        // Baseline without a scaling series: skip with a note, no violation.
        let mut v = Vec::new();
        gate_scaling(&pebble(CELL), &pebble_scaled(SERIES), &mut v);
        assert!(v.is_empty(), "{v:?}");

        // Fresh largest points within 2× of the baseline: clean.
        let ok = SERIES.replace("400.0", "780.0");
        let mut v = Vec::new();
        gate_scaling(&pebble_scaled(SERIES), &pebble_scaled(&ok), &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn scaling_gate_flags_regression_and_dropped_points() {
        // The largest lru point slowed down by more than 2×.
        let slow = SERIES.replace("400.0", "801.0");
        let mut v = Vec::new();
        gate_scaling(&pebble_scaled(SERIES), &pebble_scaled(&slow), &mut v);
        assert!(
            v.iter().any(|m| m.contains("regressed more than 2×")),
            "{v:?}"
        );
        assert_eq!(v.len(), 1, "opt point untouched: {v:?}");

        // The gated point vanished from the fresh run entirely.
        let only_small = r#"{"accesses": 1000000, "policy": "lru", "wall_ms": 5.0}"#;
        let mut v = Vec::new();
        gate_scaling(&pebble_scaled(SERIES), &pebble_scaled(only_small), &mut v);
        assert!(
            v.iter().any(|m| m.contains("missing from fresh run")),
            "{v:?}"
        );
    }

    const POINT: &str = r#"{"kernel": "a", "params": [8], "points": [{"s": 4, "ratio": 2.0}]}"#;

    #[test]
    fn tightness_gate_applies_tolerance() {
        let ok = POINT.replace("2.0", "2.03");
        let bad = POINT.replace("2.0", "2.2");
        let mut v = Vec::new();
        gate_tightness(&tight(POINT), &tight(&ok), 0.02, &mut v);
        assert!(v.is_empty(), "within tolerance: {v:?}");
        let mut v = Vec::new();
        gate_tightness(&tight(POINT), &tight(&bad), 0.02, &mut v);
        assert!(v.iter().any(|m| m.contains("regressed")), "{v:?}");
    }

    #[test]
    fn tightness_gate_flags_nonfinite_and_missing_points() {
        let gone = r#"{"kernel": "a", "params": [8], "points": []}"#;
        let mut v = Vec::new();
        gate_tightness(&tight(POINT), &tight(gone), 0.02, &mut v);
        assert!(v.iter().any(|m| m.contains("missing")), "{v:?}");

        let nan = POINT.replace("2.0", "null");
        let mut v = Vec::new();
        gate_tightness(&tight(POINT), &tight(&nan), 0.02, &mut v);
        assert!(v.iter().any(|m| m.contains("not finite")), "{v:?}");
    }

    #[test]
    fn schema_check_accepts_both_generations_and_rejects_strangers() {
        let mut v = Vec::new();
        for s in super::PEBBLE_SCHEMAS {
            check_schema(
                &json::parse(&format!(r#"{{"schema": "{s}"}}"#)).unwrap(),
                "pebble",
                super::PEBBLE_SCHEMAS,
                &mut v,
            );
        }
        for s in super::TIGHTNESS_SCHEMAS {
            check_schema(
                &json::parse(&format!(r#"{{"schema": "{s}"}}"#)).unwrap(),
                "tightness",
                super::TIGHTNESS_SCHEMAS,
                &mut v,
            );
        }
        assert!(v.is_empty(), "{v:?}");
        check_schema(
            &json::parse(r#"{"schema": "hourglass-iolb/pebble-sweep/v99"}"#).unwrap(),
            "pebble",
            super::PEBBLE_SCHEMAS,
            &mut v,
        );
        check_schema(
            &json::parse("{}").unwrap(),
            "tightness",
            super::TIGHTNESS_SCHEMAS,
            &mut v,
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("unknown schema"));
        assert!(v[1].contains("missing"));
    }

    fn governed(degradation: &str, failures: &str) -> Value {
        json::parse(&format!(
            r#"{{"schema": "hourglass-iolb/pebble-sweep/v4", "meta": {{"threads": 1, "total_wall_ms": 1.0}}, "degradation": [{degradation}], "failures": [{failures}], "rows": []}}"#
        ))
        .unwrap()
    }

    #[test]
    fn governance_gate_passes_a_clean_governed_report() {
        let doc = governed(r#"{"kernel": "a", "level": "full"}"#, "");
        let mut v = Vec::new();
        gate_governance(&doc, &doc, "pebble", &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn governance_gate_flags_failures_missing_fields_and_degradation() {
        let clean = governed(r#"{"kernel": "a", "level": "full"}"#, "");

        // A fresh failure row is a regression.
        let failed = governed(
            r#"{"kernel": "a", "level": "full"}"#,
            r#"{"kernel": "b", "class": "internal", "message": "boom"}"#,
        );
        let mut v = Vec::new();
        gate_governance(&clean, &failed, "pebble", &mut v);
        assert!(
            v.iter()
                .any(|m| m.contains("failed kernel") && m.contains("[internal]")),
            "{v:?}"
        );

        // Degrading below the baseline rung is a regression; matching or
        // improving on it is not.
        let coarse = governed(r#"{"kernel": "a", "level": "coarse"}"#, "");
        let mut v = Vec::new();
        gate_governance(&clean, &coarse, "pebble", &mut v);
        assert!(
            v.iter().any(|m| m.contains("degraded below baseline")),
            "{v:?}"
        );
        let mut v = Vec::new();
        gate_governance(&coarse, &coarse, "pebble", &mut v);
        assert!(v.is_empty(), "same rung as baseline: {v:?}");
        let mut v = Vec::new();
        gate_governance(&coarse, &clean, "pebble", &mut v);
        assert!(v.is_empty(), "improved rung: {v:?}");

        // Unknown levels and missing sections are schema violations.
        let bogus = governed(r#"{"kernel": "a", "level": "mystery"}"#, "");
        let mut v = Vec::new();
        gate_governance(&clean, &bogus, "pebble", &mut v);
        assert!(
            v.iter().any(|m| m.contains("unknown degradation level")),
            "{v:?}"
        );
        let bare =
            json::parse(r#"{"schema": "hourglass-iolb/pebble-sweep/v4", "rows": []}"#).unwrap();
        let mut v = Vec::new();
        gate_governance(&clean, &bare, "pebble", &mut v);
        assert_eq!(v.len(), 2, "both governance arrays required: {v:?}");

        // Pre-governance schemas are exempt.
        let v3 =
            json::parse(r#"{"schema": "hourglass-iolb/pebble-sweep/v3", "rows": []}"#).unwrap();
        let mut v = Vec::new();
        gate_governance(&clean, &v3, "pebble", &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    fn pebble_v5(rows: &str) -> Value {
        json::parse(&format!(
            r#"{{"schema": "hourglass-iolb/pebble-sweep/v5", "degradation": [], "failures": [], "rows": [{rows}]}}"#
        ))
        .unwrap()
    }

    const V5_COVERED: &str = r#"{"kernel": "a", "params": [8], "s": 4, "policy": "lru", "loads": 10, "sound": true, "lb_input": 3, "lb_visit": null, "lb_spectral": null}"#;
    const V5_UNCOVERED: &str = r#"{"kernel": "a", "params": [8], "s": 4, "policy": "lru", "loads": 10, "sound": true, "lb_input": null, "lb_visit": null, "lb_spectral": null}"#;

    #[test]
    fn engine_coverage_counts_kernel_groups() {
        assert_eq!(engine_coverage(&pebble_v5(V5_COVERED)), Some((1, 1)));
        assert_eq!(engine_coverage(&pebble_v5(V5_UNCOVERED)), Some((0, 1)));
        // Pre-v5 reports have no engine columns to count.
        assert_eq!(engine_coverage(&pebble(CELL)), None);
    }

    #[test]
    fn engine_coverage_floor_gates_v5_and_skips_v4_baselines() {
        // Coverage held: clean.
        let mut v = Vec::new();
        gate_engine_coverage(&pebble_v5(V5_COVERED), &pebble_v5(V5_COVERED), &mut v);
        assert!(v.is_empty(), "{v:?}");

        // Coverage regressed: a covered group lost its finite bound.
        let mut v = Vec::new();
        gate_engine_coverage(&pebble_v5(V5_COVERED), &pebble_v5(V5_UNCOVERED), &mut v);
        assert!(
            v.iter().any(|m| m.contains("engine coverage regressed")),
            "{v:?}"
        );

        // v4 baseline against a v5 fresh run: skipped, not failed.
        let mut v = Vec::new();
        gate_engine_coverage(&pebble(CELL), &pebble_v5(V5_UNCOVERED), &mut v);
        assert!(v.is_empty(), "cross-generation runs skip the floor: {v:?}");

        // Pre-v5 fresh report: nothing to gate.
        let mut v = Vec::new();
        gate_engine_coverage(&pebble_v5(V5_COVERED), &pebble(CELL), &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn fuzz_smoke_inject_args_parse() {
        let opts = parse_fuzz_smoke_args(&["--inject".into(), "all".into()]).unwrap();
        assert_eq!(opts.inject.len(), 3);
        let opts = parse_fuzz_smoke_args(&["--inject".into(), "panic,deadline".into()]).unwrap();
        assert_eq!(opts.inject.len(), 2);
        assert!(parse_fuzz_smoke_args(&["--inject".into(), "nonsense".into()]).is_err());
    }

    #[test]
    fn gate_args_parse() {
        let (b, f, t) = parse_gate_args(&[
            "--baseline".into(),
            ".".into(),
            "--fresh".into(),
            "fresh".into(),
            "--tolerance".into(),
            "0.05".into(),
        ])
        .unwrap();
        assert_eq!(b, PathBuf::from("."));
        assert_eq!(f, PathBuf::from("fresh"));
        assert!((t - 0.05).abs() < 1e-12);
        assert!(parse_gate_args(&["--fresh".into(), "x".into()]).is_err());
        assert!(parse_gate_args(&[
            "--baseline".into(),
            ".".into(),
            "--fresh".into(),
            "x".into(),
            "--tolerance".into(),
            "2".into()
        ])
        .is_err());
    }
}
