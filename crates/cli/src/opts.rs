//! Command-line option parsing for the `iolb` front-end (batch analysis
//! plus the `fuzz` subcommand). Everything analysis-related converts
//! into an [`AnalysisOptions`] for the service pipeline; the flags,
//! diagnostics, and usage text here are the CLI's own contract.

use iolb_bench::sweep::CurveStrategy;
use iolb_core::govern::{Budget, Fault};
use iolb_service::AnalysisOptions;
use std::path::PathBuf;

/// CLI usage text.
pub const USAGE: &str = "\
iolb — I/O lower bounds for affine kernels (hourglass-tightened)

USAGE:
    iolb [OPTIONS] <FILE.iolb>...
    iolb emit-builtin <DIR>      regenerate the built-in paper kernels as .iolb files
    iolb fuzz --seed <N> --cases <N> [--max-dims <D>] [--json PATH] [--corpus DIR]
                                 generate random kernels and run the differential
                                 soundness oracle on each (seed is required: runs are
                                 reproducible from it alone, never from wall-clock)
    iolb fuzz --inject <SPEC>    fault-injection smoke: SPEC is `panic`, `oom`,
                                 `deadline` (one class across every governed seam),
                                 `all` (the full matrix), or `CLASS@SEAM` for one
                                 cell; exits 0 iff every fault surfaced as its
                                 typed error class and left clean state behind

OPTIONS:
    --params M=64,N=32    override the file's `default` parameter values
    --stmt NAME           override the file's `analyze` statement
    --s-grid 0,4,16,...   offsets added to the minimum feasible S, or a preset:
                          `dense` (~32 log-spaced points, the default — one
                          stack-distance pass prices the whole grid) or
                          `coarse` (the legacy 0,4,16,64,256)
    --json PATH           write the validation matrix as JSON
    --tightness-json PATH write the tightness report (lower vs measured upper bounds) as JSON
    --no-tightness        skip the upper-bound schedule measurement
    --derive-only         skip the pebble-game validation (bounds only)
    --engines SPEC        graph-level bound engines for the sweep report:
                          `all` (default), `none`, or a comma list drawn
                          from input-floor, visit, spectral
    --curve-strategy MODE curve-pricing path of the validation sweep:
                          `streaming` (default — sharded passes fed
                          straight from the CDAG, cross-checked against
                          the materialized engine on small traces) or
                          `materialized` (force the reference engine)
    -h, --help            this text

RESOURCE GOVERNANCE (admission control refuses or down-scopes a kernel
before materializing anything; all ceilings default to unlimited):
    --max-instances N     ceiling on dynamic statement instances
    --max-cdag-nodes N    ceiling on CDAG vertices
    --max-cdag-edges N    ceiling on CDAG edges
    --max-trace N         ceiling on the packed trace length (accesses)
    --max-arena-bytes N   ceiling on peak transient arena bytes
    --max-work N          ceiling on curve work (trace × S-grid points);
                          over-work kernels degrade: dense grid → coarse
                          grid (tightness skipped) → symbolic bounds only,
                          recorded per kernel in the report `degradation`
    --deadline-ms N       wall-clock deadline, polled at every governed seam
    --no-degrade          refuse (exit 4) instead of degrading
    --inject CLASS@SEAM   testing: arm a one-shot fault on the first file

EXIT CODES:
    0 sound   1 unsound cell   2 parse/usage   3 refused
    4 budget exceeded   5 deadline   6 cancelled   7 internal
";

/// Parsed command-line options.
#[derive(Debug)]
pub struct Options {
    /// `.iolb` files to process.
    pub files: Vec<PathBuf>,
    /// `--params` overrides.
    pub params_override: Vec<(String, i64)>,
    /// `--stmt` override.
    pub stmt_override: Option<String>,
    /// `--s-grid` offsets.
    pub s_offsets: Vec<usize>,
    /// `--json` output path.
    pub json: Option<PathBuf>,
    /// `--tightness-json` output path.
    pub tightness_json: Option<PathBuf>,
    /// `--no-tightness` flag.
    pub no_tightness: bool,
    /// `--derive-only` flag.
    pub derive_only: bool,
    /// `--engines` selection, stored canonically (see
    /// [`iolb_core::EngineRegistry::select`]).
    pub engines: String,
    /// Resource budget from the `--max-*` / `--deadline-ms` flags.
    pub budget: Budget,
    /// `--no-degrade`: refuse instead of down-scoping.
    pub no_degrade: bool,
    /// `--curve-strategy`: streaming sharded engines (default) or the
    /// materialized reference engine, forced.
    pub curve_strategy: CurveStrategy,
    /// `--inject`: one-shot fault armed on the batch's first file.
    pub inject: Option<Fault>,
}

impl Options {
    /// The service-pipeline view of these options. `inject` is *not*
    /// carried over — [`crate::run_with_code`] arms it on the batch's
    /// first file only.
    pub fn analysis_options(&self) -> AnalysisOptions {
        AnalysisOptions {
            params_override: self.params_override.clone(),
            stmt_override: self.stmt_override.clone(),
            s_offsets: self.s_offsets.clone(),
            no_tightness: self.no_tightness,
            derive_only: self.derive_only,
            engines: self.engines.clone(),
            budget: self.budget,
            no_degrade: self.no_degrade,
            curve_strategy: self.curve_strategy,
            inject: None,
        }
    }
}

/// Parses the next argument of `flag` as a `u64` ceiling.
fn parse_ceiling(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<u64, String> {
    it.next()
        .ok_or_else(|| format!("{flag} needs a value"))?
        .trim()
        .parse()
        .map_err(|_| format!("bad {flag} value (want a non-negative integer)"))
}

/// Parses command-line arguments (everything after the binary name).
///
/// # Errors
/// Returns usage/diagnostic text to print.
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        files: Vec::new(),
        params_override: Vec::new(),
        stmt_override: None,
        s_offsets: iolb_bench::sweep::dense_s_offsets(),
        json: None,
        tightness_json: None,
        no_tightness: false,
        derive_only: false,
        engines: "all".to_string(),
        budget: Budget::unlimited(),
        no_degrade: false,
        curve_strategy: CurveStrategy::default(),
        inject: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--params" => {
                let v = it.next().ok_or("--params needs a value")?;
                for kv in v.split(',') {
                    let (k, val) = kv
                        .split_once('=')
                        .ok_or_else(|| format!("bad --params entry `{kv}` (want NAME=INT)"))?;
                    let val: i64 = val
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad integer in --params entry `{kv}`"))?;
                    o.params_override.push((k.trim().to_string(), val));
                }
            }
            "--stmt" => {
                o.stmt_override = Some(it.next().ok_or("--stmt needs a value")?.clone());
            }
            "--s-grid" => {
                let v = it.next().ok_or("--s-grid needs a value")?;
                o.s_offsets = match v.trim() {
                    "dense" => iolb_bench::sweep::dense_s_offsets(),
                    "coarse" => iolb_bench::sweep::coarse_s_offsets(),
                    list => list
                        .split(',')
                        .map(|x| x.trim().parse::<usize>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| format!("bad --s-grid list `{v}`"))?,
                };
                if o.s_offsets.is_empty() {
                    return Err("--s-grid needs at least one offset".to_string());
                }
            }
            "--json" => {
                o.json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?));
            }
            "--tightness-json" => {
                o.tightness_json = Some(PathBuf::from(
                    it.next().ok_or("--tightness-json needs a path")?,
                ));
            }
            "--no-tightness" => o.no_tightness = true,
            "--derive-only" => o.derive_only = true,
            "--engines" => {
                let v = it.next().ok_or("--engines needs a value")?;
                // Validated and canonicalized up front, so permuted but
                // equivalent selections share a cache fingerprint.
                o.engines = iolb_core::EngineRegistry::select(v)?.fingerprint();
            }
            "--max-instances" => o.budget.max_instances = parse_ceiling(&mut it, a)?,
            "--max-cdag-nodes" => o.budget.max_cdag_nodes = parse_ceiling(&mut it, a)?,
            "--max-cdag-edges" => o.budget.max_cdag_edges = parse_ceiling(&mut it, a)?,
            "--max-trace" => o.budget.max_trace_len = parse_ceiling(&mut it, a)?,
            "--max-arena-bytes" => o.budget.max_arena_bytes = parse_ceiling(&mut it, a)?,
            "--max-work" => o.budget.max_work = parse_ceiling(&mut it, a)?,
            "--deadline-ms" => o.budget.deadline_ms = parse_ceiling(&mut it, a)?,
            "--no-degrade" => o.no_degrade = true,
            "--curve-strategy" => {
                let v = it.next().ok_or("--curve-strategy needs a value")?;
                o.curve_strategy = match v.trim() {
                    "streaming" => CurveStrategy::Streaming,
                    "materialized" => CurveStrategy::Materialized,
                    other => {
                        return Err(format!(
                            "bad --curve-strategy `{other}` (want streaming|materialized)"
                        ))
                    }
                };
            }
            "--inject" => {
                let v = it.next().ok_or("--inject needs CLASS or CLASS@SEAM")?;
                o.inject = Some(Fault::parse(v).ok_or_else(|| {
                    format!(
                        "bad --inject spec `{v}` (want panic|oom|deadline, \
                         optionally @admission|instances|cdag_fill|lru_pass|opt_pass|tuner)"
                    )
                })?);
            }
            "-h" | "--help" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`\n\n{USAGE}"))
            }
            file => o.files.push(PathBuf::from(file)),
        }
    }
    if o.files.is_empty() {
        return Err(USAGE.to_string());
    }
    if o.derive_only && o.json.is_some() {
        return Err(
            "--derive-only skips validation, so --json would write an empty report; \
             drop one of the two flags"
                .to_string(),
        );
    }
    if o.derive_only && o.tightness_json.is_some() {
        return Err(
            "--derive-only skips validation, so --tightness-json would write an empty report; \
             drop one of the two flags"
                .to_string(),
        );
    }
    if o.no_tightness && o.tightness_json.is_some() {
        return Err("--no-tightness contradicts --tightness-json".to_string());
    }
    Ok(o)
}

/// Options of the `iolb fuzz` subcommand.
#[derive(Debug)]
pub struct FuzzOptions {
    /// Required run seed (reproducibility flows from it alone).
    pub seed: u64,
    /// Number of generated cases.
    pub cases: u64,
    /// Maximum loop-nest depth.
    pub max_dims: u32,
    /// Optional JSON report path.
    pub json: Option<PathBuf>,
    /// Optional directory for minimized reproducers.
    pub corpus: Option<PathBuf>,
    /// `--inject` spec: run the fault-injection matrix instead of the
    /// random-kernel oracle.
    pub inject: Option<String>,
}

/// Parses `iolb fuzz` arguments. `--seed` is mandatory for the random
/// oracle (there is no ambient-entropy fallback, so every run is
/// replayable by construction); `--inject` mode is deterministic by
/// itself and needs no seed.
///
/// # Errors
/// Returns usage/diagnostic text to print.
pub fn parse_fuzz_args(args: &[String]) -> Result<FuzzOptions, String> {
    let mut seed: Option<u64> = None;
    let mut cases: u64 = 200;
    let mut max_dims: u32 = 4;
    let mut json: Option<PathBuf> = None;
    let mut corpus: Option<PathBuf> = None;
    let mut inject: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = Some(
                    it.next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|_| "bad --seed value (want u64)".to_string())?,
                );
            }
            "--cases" => {
                cases = it
                    .next()
                    .ok_or("--cases needs a value")?
                    .parse()
                    .map_err(|_| "bad --cases value".to_string())?;
            }
            "--max-dims" => {
                max_dims = it
                    .next()
                    .ok_or("--max-dims needs a value")?
                    .parse()
                    .map_err(|_| "bad --max-dims value".to_string())?;
                if !(1..=8).contains(&max_dims) {
                    return Err("--max-dims must be in 1..=8".to_string());
                }
            }
            "--json" => json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?)),
            "--corpus" => corpus = Some(PathBuf::from(it.next().ok_or("--corpus needs a dir")?)),
            "--inject" => {
                inject = Some(it.next().ok_or("--inject needs a fault spec")?.clone());
            }
            other => return Err(format!("unknown fuzz option `{other}`\n\n{USAGE}")),
        }
    }
    if inject.is_none() && seed.is_none() {
        return Err(
            "fuzz needs --seed <N>: runs are reproducible from the seed alone \
             (there is deliberately no wall-clock default)"
                .to_string(),
        );
    }
    Ok(FuzzOptions {
        seed: seed.unwrap_or(0),
        cases,
        max_dims,
        json,
        corpus,
        inject,
    })
}
