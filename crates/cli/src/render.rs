//! Human-readable rendering of service-pipeline outcomes — the exact
//! per-file text the `iolb` CLI has always printed, reconstructed from a
//! structured [`AnalysisOutcome`] (the byte-level format is pinned by
//! the golden snapshots and the e2e tests; change nothing casually).

use iolb_bench::sweep::render_sweep_table;
use iolb_core::govern::Degradation;
use iolb_core::report::render_tightness_points;
use iolb_service::AnalysisOutcome;
use std::fmt::Write as _;

/// Renders one kernel's analysis as the CLI's per-file text block.
/// `origin` is the display form of where the kernel came from (the file
/// path). `derive_only` distinguishes a caller-requested bounds-only run
/// (silent) from a budget degradation to the same rung (announced).
pub fn render_outcome(outcome: &AnalysisOutcome, origin: &str, derive_only: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "── {} ({origin})", outcome.name);
    let _ = writeln!(
        out,
        "   params: {}",
        outcome
            .params
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        out,
        "   access-certified {} statement instances",
        outcome.certified_instances
    );
    match &outcome.classical {
        Some(c) => {
            let _ = writeln!(out, "   classical: σ={} m={} → {}", c.sigma, c.m, c.expr);
        }
        None => {
            let _ = writeln!(out, "   classical: no covering projection set (no σ-bound)");
        }
    }
    if let Some(s) = &outcome.split {
        let _ = writeln!(out, "   split: {} = {} (§5.3)", s.var, s.expr);
    }
    match &outcome.hourglass {
        Some(h) => {
            let _ = writeln!(
                out,
                "   hourglass on {}: certified {} chains, W∈[{}, {}] → {}",
                outcome.stmt, h.chains, h.w_min, h.w_max, h.main_tool
            );
        }
        None => {
            let _ = writeln!(out, "   hourglass: no pattern on {}", outcome.stmt);
        }
    }

    let report = match &outcome.sweep {
        Some(report) => report,
        None => {
            if outcome.degradation == Degradation::BoundsOnly && !derive_only {
                if let Some(d) = &outcome.degrade {
                    let _ = writeln!(
                        out,
                        "   degraded: symbolic bounds only (work {} exceeds budget {})",
                        d.work_needed, d.max_work
                    );
                }
            }
            let _ = writeln!(out);
            return out;
        }
    };
    if outcome.degradation == Degradation::Coarse {
        if let Some(d) = &outcome.degrade {
            let _ = writeln!(
                out,
                "   degraded: coarse {}-point S grid, tightness skipped (work budget {})",
                d.coarse_points, d.max_work
            );
        }
    }
    let _ = write!(out, "{}", render_sweep_table(report));
    for r in &report.rows {
        if !r.sound() {
            let _ = writeln!(
                out,
                "   UNSOUND: S={} {:?}: bound {} exceeds play loads {}",
                r.s,
                r.policy,
                r.lb(),
                r.loads
            );
        }
    }
    if let Some(t) = &outcome.tightness {
        let _ = write!(out, "{}", render_tightness_points(&t.kernel, &t.points));
    }
    let _ = writeln!(out);
    out
}
