//! The `iolb fuzz` subcommand: the random-kernel differential oracle and
//! the fault-injection matrix.

use crate::opts::{FuzzOptions, USAGE};
use iolb_core::govern::{Fault, FaultKind};
use std::path::Path;
use std::process::ExitCode;

/// Runs the fault-injection matrix named by `spec` (`all`, a class name,
/// or `CLASS@SEAM`) and prints the outcome table. Exit codes: 0 every
/// cell surfaced its typed class and left clean state, 1 otherwise, 2
/// bad spec.
pub fn run_inject_cmd(spec: &str) -> ExitCode {
    let report = if spec == "all" {
        iolb_fuzz::run_injection_matrix(&FaultKind::ALL)
    } else if let Some(kind) = FaultKind::parse(spec) {
        iolb_fuzz::run_injection_matrix(&[kind])
    } else if let Some(fault) = Fault::parse(spec) {
        iolb_fuzz::inject::InjectionReport {
            outcomes: vec![iolb_fuzz::run_injection(fault)],
        }
    } else {
        eprintln!(
            "bad --inject spec `{spec}` (want all, panic|oom|deadline, or CLASS@SEAM)\n\n{USAGE}"
        );
        return ExitCode::from(2);
    };
    print!("{}", report.render_table());
    if report.all_expected() {
        println!(
            "injection clean ✓ — {} cell(s) surfaced their typed class, no process aborts",
            report.outcomes.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("injection FAILED — a fault escaped its class or poisoned state");
        ExitCode::from(1)
    }
}

/// Runs the fuzzer and reports. Exit codes: 0 clean, 1 violations found,
/// 2 usage/IO errors.
pub fn run_fuzz_cmd(opts: &FuzzOptions) -> ExitCode {
    if let Some(spec) = &opts.inject {
        return run_inject_cmd(spec);
    }
    let mut config = iolb_fuzz::FuzzConfig::new(opts.seed, opts.cases);
    config.max_dims = opts.max_dims;
    let report = iolb_fuzz::run_fuzz(&config);
    println!(
        "fuzz seed={} cases={} max-dims={}: {} violation(s); {} certified instances, \
         {} classical bounds, {} hourglass bounds, {} analysis-declined, {} tiled",
        report.config.seed,
        report.config.cases,
        report.config.max_dims,
        report.failures.len(),
        report.stats.instances,
        report.stats.classical,
        report.stats.hourglass,
        report.stats.analysis_skipped,
        report.stats.tiled
    );
    for f in &report.failures {
        eprintln!(
            "VIOLATION case {}: [{}] {}\nminimized reproducer ({} stmt(s)):\n{}",
            f.case_index, f.violation.invariant, f.violation.detail, f.minimized_stmts, f.minimized
        );
    }
    if let Some(dir) = &opts.corpus {
        if let Err(e) = write_corpus(dir, &report) {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, iolb_fuzz::fuzz_report_json(&report)) {
            eprintln!("writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }
    if report.failures.is_empty() {
        println!("fuzz clean ✓ — every generated kernel passed the differential oracle");
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Writes every minimized reproducer as a replayable corpus file, headed
/// by the exact command that regenerates it.
fn write_corpus(dir: &Path, report: &iolb_fuzz::FuzzReport) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    for f in &report.failures {
        let path = dir.join(format!(
            "fz{}_{}_{}.iolb",
            report.config.seed, f.case_index, f.violation.invariant
        ));
        let text = format!(
            "# Minimized reproducer: `iolb fuzz --seed {} --cases {} --max-dims {}` case {}.\n\
             # Violated invariant: {} — {}\n{}",
            report.config.seed,
            report.config.cases,
            report.config.max_dims,
            f.case_index,
            f.violation.invariant,
            f.violation.detail.replace('\n', " "),
            f.minimized
        );
        std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}
