//! The `iolb` binary: thin wrapper around [`iolb_cli::run`].

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    iolb_cli::run(&args)
}
