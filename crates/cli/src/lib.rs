//! `iolb` — the end-to-end I/O lower-bound pipeline on textual kernels.
//! (Library half: the `iolb` binary is a thin wrapper around [`run`].)
//!
//! For every `.iolb` file: parse → admission control (symbolic cost
//! pre-estimation against the resource budget) → access-consistency
//! certification → φ-set extraction → classical σ-bound → hourglass
//! detect / certify / derive (§3–4, with §5.3 splitting) → exact CDAG →
//! MIN/LRU miss-curve validation over a dense S grid (one stack-distance
//! pass per policy prices every grid point) → tightness measurement (the
//! best blocked upper-bound schedule from the file's `schedule { tile … }`
//! directives, auto-tuned over tile sizes, vs the derived lower bound).
//! Files are processed in parallel (rayon); per-file output is buffered
//! and printed in input order. A failing kernel never takes the batch
//! down: each file runs behind a panic-isolation boundary and failures
//! become structured per-kernel rows in the JSON reports while every
//! unaffected kernel still completes.
//!
//! Exit codes: `0` all kernels validated sound, `1` an unsound cell,
//! then one stable code per [`AnalysisError`] class — `2` parse/usage,
//! `3` refused, `4` budget exceeded, `5` deadline, `6` cancelled, `7`
//! internal (contained panic). A batch exits with the *maximum* class
//! code across its files.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use iolb_bench::sweep::{
    coarse_s_offsets, sweep_report_json, try_run_sweep, DegradationRow, FailureRow, SweepKernel,
    SweepReport,
};
use iolb_bench::tightness::{
    tightness_report_json, try_run_tightness, KernelTightness, TightnessJob, TightnessReport,
};
use iolb_core::govern::{
    catch_analysis_mut, AnalysisError, Budget, CancelToken, Degradation, Fault, FaultKind,
};
use iolb_core::hourglass;
use iolb_core::report::{
    derive_with_split, observation_sizes, render_tightness_points, SplitBinding,
};
use iolb_core::Analysis;
use iolb_ir::parse::{parse_kernel, print_kernel, KernelFile, ParamExpr, TileDirective};
use iolb_ir::Program;
use iolb_symbolic::Var;
use rayon::prelude::*;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// CLI usage text.
pub const USAGE: &str = "\
iolb — I/O lower bounds for affine kernels (hourglass-tightened)

USAGE:
    iolb [OPTIONS] <FILE.iolb>...
    iolb emit-builtin <DIR>      regenerate the built-in paper kernels as .iolb files
    iolb fuzz --seed <N> --cases <N> [--max-dims <D>] [--json PATH] [--corpus DIR]
                                 generate random kernels and run the differential
                                 soundness oracle on each (seed is required: runs are
                                 reproducible from it alone, never from wall-clock)
    iolb fuzz --inject <SPEC>    fault-injection smoke: SPEC is `panic`, `oom`,
                                 `deadline` (one class across every governed seam),
                                 `all` (the full matrix), or `CLASS@SEAM` for one
                                 cell; exits 0 iff every fault surfaced as its
                                 typed error class and left clean state behind

OPTIONS:
    --params M=64,N=32    override the file's `default` parameter values
    --stmt NAME           override the file's `analyze` statement
    --s-grid 0,4,16,...   offsets added to the minimum feasible S, or a preset:
                          `dense` (~32 log-spaced points, the default — one
                          stack-distance pass prices the whole grid) or
                          `coarse` (the legacy 0,4,16,64,256)
    --json PATH           write the validation matrix as JSON
    --tightness-json PATH write the tightness report (lower vs measured upper bounds) as JSON
    --no-tightness        skip the upper-bound schedule measurement
    --derive-only         skip the pebble-game validation (bounds only)
    -h, --help            this text

RESOURCE GOVERNANCE (admission control refuses or down-scopes a kernel
before materializing anything; all ceilings default to unlimited):
    --max-instances N     ceiling on dynamic statement instances
    --max-cdag-nodes N    ceiling on CDAG vertices
    --max-cdag-edges N    ceiling on CDAG edges
    --max-trace N         ceiling on the packed trace length (accesses)
    --max-arena-bytes N   ceiling on peak transient arena bytes
    --max-work N          ceiling on curve work (trace × S-grid points);
                          over-work kernels degrade: dense grid → coarse
                          grid (tightness skipped) → symbolic bounds only,
                          recorded per kernel in the report `degradation`
    --deadline-ms N       wall-clock deadline, polled at every governed seam
    --no-degrade          refuse (exit 4) instead of degrading
    --inject CLASS@SEAM   testing: arm a one-shot fault on the first file

EXIT CODES:
    0 sound   1 unsound cell   2 parse/usage   3 refused
    4 budget exceeded   5 deadline   6 cancelled   7 internal
";

/// Parsed command-line options.
#[derive(Debug)]
pub struct Options {
    /// `.iolb` files to process.
    pub files: Vec<PathBuf>,
    /// `--params` overrides.
    pub params_override: Vec<(String, i64)>,
    /// `--stmt` override.
    pub stmt_override: Option<String>,
    /// `--s-grid` offsets.
    pub s_offsets: Vec<usize>,
    /// `--json` output path.
    pub json: Option<PathBuf>,
    /// `--tightness-json` output path.
    pub tightness_json: Option<PathBuf>,
    /// `--no-tightness` flag.
    pub no_tightness: bool,
    /// `--derive-only` flag.
    pub derive_only: bool,
    /// Resource budget from the `--max-*` / `--deadline-ms` flags.
    pub budget: Budget,
    /// `--no-degrade`: refuse instead of down-scoping.
    pub no_degrade: bool,
    /// `--inject`: one-shot fault armed on the batch's first file.
    pub inject: Option<Fault>,
}

/// Parses the next argument of `flag` as a `u64` ceiling.
fn parse_ceiling(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<u64, String> {
    it.next()
        .ok_or_else(|| format!("{flag} needs a value"))?
        .trim()
        .parse()
        .map_err(|_| format!("bad {flag} value (want a non-negative integer)"))
}

/// Parses command-line arguments (everything after the binary name).
///
/// # Errors
/// Returns usage/diagnostic text to print.
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        files: Vec::new(),
        params_override: Vec::new(),
        stmt_override: None,
        s_offsets: iolb_bench::sweep::dense_s_offsets(),
        json: None,
        tightness_json: None,
        no_tightness: false,
        derive_only: false,
        budget: Budget::unlimited(),
        no_degrade: false,
        inject: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--params" => {
                let v = it.next().ok_or("--params needs a value")?;
                for kv in v.split(',') {
                    let (k, val) = kv
                        .split_once('=')
                        .ok_or_else(|| format!("bad --params entry `{kv}` (want NAME=INT)"))?;
                    let val: i64 = val
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad integer in --params entry `{kv}`"))?;
                    o.params_override.push((k.trim().to_string(), val));
                }
            }
            "--stmt" => {
                o.stmt_override = Some(it.next().ok_or("--stmt needs a value")?.clone());
            }
            "--s-grid" => {
                let v = it.next().ok_or("--s-grid needs a value")?;
                o.s_offsets = match v.trim() {
                    "dense" => iolb_bench::sweep::dense_s_offsets(),
                    "coarse" => iolb_bench::sweep::coarse_s_offsets(),
                    list => list
                        .split(',')
                        .map(|x| x.trim().parse::<usize>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| format!("bad --s-grid list `{v}`"))?,
                };
                if o.s_offsets.is_empty() {
                    return Err("--s-grid needs at least one offset".to_string());
                }
            }
            "--json" => {
                o.json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?));
            }
            "--tightness-json" => {
                o.tightness_json = Some(PathBuf::from(
                    it.next().ok_or("--tightness-json needs a path")?,
                ));
            }
            "--no-tightness" => o.no_tightness = true,
            "--derive-only" => o.derive_only = true,
            "--max-instances" => o.budget.max_instances = parse_ceiling(&mut it, a)?,
            "--max-cdag-nodes" => o.budget.max_cdag_nodes = parse_ceiling(&mut it, a)?,
            "--max-cdag-edges" => o.budget.max_cdag_edges = parse_ceiling(&mut it, a)?,
            "--max-trace" => o.budget.max_trace_len = parse_ceiling(&mut it, a)?,
            "--max-arena-bytes" => o.budget.max_arena_bytes = parse_ceiling(&mut it, a)?,
            "--max-work" => o.budget.max_work = parse_ceiling(&mut it, a)?,
            "--deadline-ms" => o.budget.deadline_ms = parse_ceiling(&mut it, a)?,
            "--no-degrade" => o.no_degrade = true,
            "--inject" => {
                let v = it.next().ok_or("--inject needs CLASS or CLASS@SEAM")?;
                o.inject = Some(Fault::parse(v).ok_or_else(|| {
                    format!(
                        "bad --inject spec `{v}` (want panic|oom|deadline, \
                         optionally @admission|instances|cdag_fill|lru_pass|opt_pass|tuner)"
                    )
                })?);
            }
            "-h" | "--help" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`\n\n{USAGE}"))
            }
            file => o.files.push(PathBuf::from(file)),
        }
    }
    if o.files.is_empty() {
        return Err(USAGE.to_string());
    }
    if o.derive_only && o.json.is_some() {
        return Err(
            "--derive-only skips validation, so --json would write an empty report; \
             drop one of the two flags"
                .to_string(),
        );
    }
    if o.derive_only && o.tightness_json.is_some() {
        return Err(
            "--derive-only skips validation, so --tightness-json would write an empty report; \
             drop one of the two flags"
                .to_string(),
        );
    }
    if o.no_tightness && o.tightness_json.is_some() {
        return Err("--no-tightness contradicts --tightness-json".to_string());
    }
    Ok(o)
}

/// Everything one `.iolb` file produced: buffered human-readable output
/// plus the machine-readable reports.
#[derive(Debug)]
pub struct FileOutcome {
    /// Kernel name.
    pub name: String,
    /// Buffered per-file text (printed in input order by [`run`]).
    pub output: String,
    /// The validation matrix (`None` under `--derive-only` or when the
    /// work budget degraded the kernel to symbolic bounds only).
    pub report: Option<SweepReport>,
    /// Tightness measurement (absent under `--no-tightness`,
    /// `--derive-only`, or any degradation below [`Degradation::Full`]).
    pub tightness: Option<KernelTightness>,
    /// All validation cells sound (vacuously true when validation was
    /// skipped).
    pub sound: bool,
    /// The degradation rung the work budget afforded this kernel.
    pub degradation: Degradation,
}

/// The CLI entry point (argument vector without the binary name).
pub fn run(args: &[String]) -> ExitCode {
    if args.first().map(String::as_str) == Some("emit-builtin") {
        return match args.get(1) {
            Some(dir) => emit_builtin(Path::new(dir)),
            None => {
                eprintln!("emit-builtin needs a target directory\n\n{USAGE}");
                ExitCode::from(2)
            }
        };
    }
    if args.first().map(String::as_str) == Some("fuzz") {
        return match parse_fuzz_args(&args[1..]) {
            Ok(opts) => run_fuzz_cmd(&opts),
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::from(2)
            }
        };
    }
    ExitCode::from(run_with_code(args))
}

/// The batch analysis path of [`run`], returning the raw process exit
/// code (documented in [`USAGE`]). Split out so tests can assert codes
/// without spawning the binary.
pub fn run_with_code(args: &[String]) -> u8 {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };

    // Every file runs through the full pipeline concurrently, behind a
    // per-file panic-isolation boundary; output is buffered per file and
    // printed in input order below. The `--inject` fault (if any) is
    // armed on the first file only, so the rest of the batch doubles as
    // the blast-radius control.
    let t_batch = std::time::Instant::now();
    let indexed: Vec<(usize, PathBuf)> = opts.files.iter().cloned().enumerate().collect();
    let results: Vec<(PathBuf, Result<FileOutcome, AnalysisError>)> = indexed
        .into_par_iter()
        .map(|(i, file)| {
            let token = match opts.inject {
                Some(fault) if i == 0 => CancelToken::with_fault(fault),
                _ => opts.budget.token(),
            };
            // Panics are mapped to `Internal` *inside* the worker so the
            // payload survives the thread boundary.
            let res = catch_analysis_mut(|| run_file_with(&file, &opts, &token));
            (file, res)
        })
        .collect();
    let batch_wall_ms = t_batch.elapsed().as_secs_f64() * 1e3;

    // Failures are collected across the whole batch (not fail-fast), so
    // one run surfaces every broken kernel file at once — as structured
    // rows in the JSON reports, next to every unaffected kernel's result.
    let mut failures: Vec<FailureRow> = Vec::new();
    let mut worst: u8 = 0;
    let mut outcomes: Vec<FileOutcome> = Vec::new();
    for (file, res) in results {
        match res {
            Ok(outcome) => {
                print!("{}", outcome.output);
                outcomes.push(outcome);
            }
            Err(e) => {
                let kernel = file
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| file.display().to_string());
                eprintln!("[{}] {}: {e}", e.class_name(), file.display());
                worst = worst.max(e.exit_code());
                failures.push(FailureRow::from_error(&kernel, &e));
            }
        }
    }
    if !failures.is_empty() {
        eprintln!(
            "{} of {} kernel files failed (see rows above)",
            failures.len(),
            opts.files.len()
        );
    }
    let degradation: Vec<DegradationRow> = outcomes
        .iter()
        .map(|o| DegradationRow {
            kernel: o.name.clone(),
            level: o.degradation,
        })
        .collect();

    let all_sound = outcomes.iter().all(|o| o.sound);
    let validated = outcomes.iter().any(|o| o.report.is_some());
    if let Some(path) = &opts.json {
        let mut combined = SweepReport {
            rows: Vec::new(),
            degradation: degradation.clone(),
            failures: failures.clone(),
            total_wall_ms: 0.0,
            threads: 0,
        };
        for o in outcomes.iter().filter_map(|o| o.report.as_ref()) {
            combined.rows.extend(o.rows.iter().cloned());
            combined.total_wall_ms += o.total_wall_ms;
            combined.threads = combined.threads.max(o.threads);
        }
        if let Err(e) = std::fs::write(path, sweep_report_json(&combined)) {
            eprintln!("writing {}: {e}", path.display());
            return 2;
        }
        println!("wrote {}", path.display());
    }
    if let Some(path) = &opts.tightness_json {
        let mut kernels: Vec<KernelTightness> = outcomes
            .iter()
            .filter_map(|o| o.tightness.clone())
            .collect();
        kernels.sort_by(|a, b| a.kernel.cmp(&b.kernel));
        // Live volatile data goes under `meta` only (the gate and the
        // golden snapshots ignore/redact it).
        let combined = TightnessReport {
            kernels,
            degradation,
            failures: failures.clone(),
            total_wall_ms: batch_wall_ms,
            threads: rayon::max_workers_used().max(1),
        };
        if let Err(e) = std::fs::write(path, tightness_report_json(&combined, false)) {
            eprintln!("writing {}: {e}", path.display());
            return 2;
        }
        println!("wrote {}", path.display());
    }

    if !all_sound {
        eprintln!("UNSOUND cells found — a derived bound exceeded a legal play");
        return worst.max(1);
    }
    if worst > 0 {
        return worst;
    }
    if !validated {
        println!("derivations complete (pebble validation skipped)");
    } else {
        println!("all cells sound ✓");
    }
    0
}

/// [`run_file_with`] on the options' own budget token — the entry point
/// for single-file callers that do not inject faults or share a token
/// across a batch.
pub fn run_file(file: &Path, opts: &Options) -> Result<FileOutcome, AnalysisError> {
    run_file_with(file, opts, &opts.budget.token())
}

/// Parses, admits, analyzes, and (unless down-scoped) pebble-validates
/// plus tightness-measures one file under the given budget and token. All
/// human-readable output is buffered on the returned outcome.
///
/// # Errors
/// Every failure is a typed [`AnalysisError`]: unreadable/unparsable
/// input is `Parse`, anything declined on structural grounds is
/// `Refused`, and admission or mid-pass governance yields the
/// budget/deadline/cancel classes.
pub fn run_file_with(
    file: &Path,
    opts: &Options,
    token: &CancelToken,
) -> Result<FileOutcome, AnalysisError> {
    let src = std::fs::read_to_string(file)
        .map_err(|e| AnalysisError::Parse(format!("cannot read: {e}")))?;
    let kernel = parse_kernel(&src).map_err(|e| AnalysisError::Parse(e.to_string()))?;
    let program = &kernel.program;
    let mut out = String::new();
    let _ = writeln!(out, "── {} ({})", program.name, file.display());

    let params = resolve_params(&kernel, &opts.params_override).map_err(AnalysisError::Refused)?;
    let named: Vec<(String, i64)> = program.params.iter().cloned().zip(params.clone()).collect();
    let _ = writeln!(
        out,
        "   params: {}",
        named
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // 1. Admission control: estimate every size-like resource from the
    // symbolic loop bounds and refuse before materializing anything; the
    // work budget then picks the degradation rung (dense grid → coarse
    // grid → symbolic bounds only).
    let estimate = iolb_ir::admission::estimate(program, &params, &opts.budget, token)?;
    estimate.check(&opts.budget)?;
    let degradation = estimate.degradation(
        &opts.budget,
        opts.s_offsets.len() as u64,
        coarse_s_offsets().len() as u64,
    );
    if opts.no_degrade && degradation != Degradation::Full {
        return Err(AnalysisError::BudgetExceeded {
            resource: "work",
            needed: estimate
                .trace_len
                .saturating_mul(opts.s_offsets.len() as u64),
            limit: opts.budget.max_work,
        });
    }

    // 2. The synthesized semantics must perform exactly the declared
    // accesses (the certification that lets everything downstream trust
    // the declared affine structure).
    let certified = iolb_ir::interp::validate_accesses(program, &params)
        .map_err(|e| AnalysisError::Refused(format!("access certification failed: {e}")))?;
    let _ = writeln!(out, "   access-certified {certified} statement instances");

    // 3. Statement under analysis: --stmt, else the `analyze` directive,
    // else the deepest (latest) statement.
    let stmt_name = opts
        .stmt_override
        .clone()
        .or_else(|| kernel.analyze.clone())
        .unwrap_or_else(|| deepest_stmt(program));
    let stmt = program
        .stmt_id(&stmt_name)
        .ok_or_else(|| AnalysisError::Refused(format!("no statement named {stmt_name}")))?;

    // 4. Dependence analysis + bounds at small observation sizes.
    let observe = observation_sizes(&params);
    let analysis = Analysis::run(program, &observe)
        .map_err(|e| AnalysisError::Refused(format!("analysis: {e}")))?;
    let classical = analysis.try_classical_bound(stmt);
    match &classical {
        Some(b) => {
            let _ = writeln!(out, "   classical: σ={} m={} → {}", b.sigma, b.m, b.expr);
        }
        None => {
            let _ = writeln!(out, "   classical: no covering projection set (no σ-bound)");
        }
    }

    let split_binding = dsl_split_binding(&kernel);
    let pattern = analysis.detect_hourglass(stmt);
    let (hourglass, applied_binding) = match &pattern {
        Some(pat) => {
            let checked = hourglass::certify(program, pat, &observe[0])
                .map_err(|e| AnalysisError::Refused(format!("hourglass certification: {e}")))?;
            // The same split decision `run_sweep` makes (shared helper +
            // identical observation sizes), so the printed derivation and
            // the validated bound cannot diverge.
            let (b, applied) = derive_with_split(program, pat, split_binding.clone())
                .map_err(AnalysisError::Refused)?;
            if let Some(binding) = &applied {
                let _ = writeln!(
                    out,
                    "   split: {} = {} (§5.3)",
                    binding.var.name(),
                    binding.expr
                );
            }
            let _ = writeln!(
                out,
                "   hourglass on {stmt_name}: certified {checked} chains, W∈[{}, {}] → {}",
                b.w_min, b.w_max, b.main_tool
            );
            (Some(b), applied)
        }
        None => {
            let _ = writeln!(out, "   hourglass: no pattern on {stmt_name}");
            (None, None)
        }
    };

    if opts.derive_only || degradation == Degradation::BoundsOnly {
        if degradation == Degradation::BoundsOnly && !opts.derive_only {
            let _ = writeln!(
                out,
                "   degraded: symbolic bounds only (work {} exceeds budget {})",
                estimate
                    .trace_len
                    .saturating_mul(opts.s_offsets.len() as u64),
                opts.budget.max_work
            );
        }
        let _ = writeln!(out);
        return Ok(FileOutcome {
            name: program.name.clone(),
            output: out,
            report: None,
            tightness: None,
            sound: true,
            degradation,
        });
    }
    let s_offsets = match degradation {
        Degradation::Coarse => {
            let coarse = coarse_s_offsets();
            let _ = writeln!(
                out,
                "   degraded: coarse {}-point S grid, tightness skipped (work budget {})",
                coarse.len(),
                opts.budget.max_work
            );
            coarse
        }
        _ => opts.s_offsets.clone(),
    };

    // 5. Exact CDAG + MIN/LRU miss-curve validation over the S grid.
    let sweep = SweepKernel {
        name: program.name.clone(),
        program: reparse(&src)?,
        stmt: stmt_name,
        params: params.clone(),
        split: split_binding,
        s_offsets: s_offsets.clone(),
    };
    let mut report = try_run_sweep(vec![sweep], &opts.budget, token)?;
    for row in &mut report.degradation {
        row.level = degradation;
    }
    let _ = write!(out, "{}", iolb_bench::sweep::render_sweep_table(&report));
    let mut sound = true;
    for r in &report.rows {
        if !r.sound() {
            let _ = writeln!(
                out,
                "   UNSOUND: S={} {:?}: bound {} exceeds play loads {}",
                r.s,
                r.policy,
                r.lb(),
                r.loads
            );
            sound = false;
        }
    }

    // 6. Tightness: the best measured blocked upper bound per S (the
    // file's `schedule` directives swept by the auto-tuner) vs the bound.
    // Skipped below `Full`: the tuner is the most work-hungry stage.
    let tightness = if opts.no_tightness || degradation != Degradation::Full {
        None
    } else {
        let mut env: Vec<(Var, i128)> = named
            .iter()
            .map(|(n, v)| (Var::new(n), *v as i128))
            .collect();
        if let Some(b) = &applied_binding {
            env.push((b.var, b.eval(&named)));
        }
        let job = TightnessJob {
            name: program.name.clone(),
            program: reparse(&src)?,
            params: params.clone(),
            env,
            classical,
            hourglass,
            schedule: kernel.schedule.clone(),
            s_offsets,
        };
        let tightness_report = try_run_tightness(vec![job], &opts.budget, token)?;
        let k =
            tightness_report.kernels.into_iter().next().ok_or_else(|| {
                AnalysisError::Internal("tightness produced no kernel".to_string())
            })?;
        let _ = write!(out, "{}", render_tightness_points(&k.kernel, &k.points));
        Some(k)
    };

    let _ = writeln!(out);
    Ok(FileOutcome {
        name: program.name.clone(),
        output: out,
        report: Some(report),
        tightness,
        sound,
        degradation,
    })
}

/// Concrete parameter values: CLI override wins over the `default`
/// directive, which must cover everything else. Override entries naming no
/// program parameter are an error, not a silent no-op.
fn resolve_params(kernel: &KernelFile, over: &[(String, i64)]) -> Result<Vec<i64>, String> {
    for (n, _) in over {
        if !kernel.program.params.contains(n) {
            return Err(format!(
                "--params names unknown parameter {n} (kernel has: {})",
                kernel.program.params.join(", ")
            ));
        }
    }
    kernel
        .program
        .params
        .iter()
        .map(|p| {
            over.iter()
                .find(|(n, _)| n == p)
                .map(|(_, v)| *v)
                .or_else(|| {
                    kernel
                        .defaults
                        .iter()
                        .find(|(n, _)| n == p)
                        .map(|(_, v)| *v)
                })
                .ok_or_else(|| {
                    format!("parameter {p} has no `default` directive (pass --params {p}=…)")
                })
        })
        .collect()
}

/// Fallback analysis target: [`Program::default_analyze_stmt`] (the
/// deepest statement, ties → latest in schedule order).
fn deepest_stmt(program: &Program) -> String {
    program
        .default_analyze_stmt()
        .map(|id| program.stmt(id).name.clone())
        .unwrap_or_default()
}

/// The DSL `split` directive as a [`SplitBinding`] on the paper's `Ms`.
fn dsl_split_binding(kernel: &KernelFile) -> Option<SplitBinding> {
    kernel.split.as_ref().map(|(name, expr)| SplitBinding {
        var: iolb_symbolic::Var::new(name),
        expr: expr.clone(),
    })
}

/// A second, independent parse of the same source (the [`Program`] is not
/// clonable: its statements carry closures).
fn reparse(src: &str) -> Result<Program, AnalysisError> {
    Ok(parse_kernel(src)
        .map_err(|e| AnalysisError::Parse(e.to_string()))?
        .program)
}

// ---------------------------------------------------------------------------
// fuzz
// ---------------------------------------------------------------------------

/// Options of the `iolb fuzz` subcommand.
#[derive(Debug)]
pub struct FuzzOptions {
    /// Required run seed (reproducibility flows from it alone).
    pub seed: u64,
    /// Number of generated cases.
    pub cases: u64,
    /// Maximum loop-nest depth.
    pub max_dims: u32,
    /// Optional JSON report path.
    pub json: Option<PathBuf>,
    /// Optional directory for minimized reproducers.
    pub corpus: Option<PathBuf>,
    /// `--inject` spec: run the fault-injection matrix instead of the
    /// random-kernel oracle.
    pub inject: Option<String>,
}

/// Parses `iolb fuzz` arguments. `--seed` is mandatory for the random
/// oracle (there is no ambient-entropy fallback, so every run is
/// replayable by construction); `--inject` mode is deterministic by
/// itself and needs no seed.
///
/// # Errors
/// Returns usage/diagnostic text to print.
pub fn parse_fuzz_args(args: &[String]) -> Result<FuzzOptions, String> {
    let mut seed: Option<u64> = None;
    let mut cases: u64 = 200;
    let mut max_dims: u32 = 4;
    let mut json: Option<PathBuf> = None;
    let mut corpus: Option<PathBuf> = None;
    let mut inject: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = Some(
                    it.next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|_| "bad --seed value (want u64)".to_string())?,
                );
            }
            "--cases" => {
                cases = it
                    .next()
                    .ok_or("--cases needs a value")?
                    .parse()
                    .map_err(|_| "bad --cases value".to_string())?;
            }
            "--max-dims" => {
                max_dims = it
                    .next()
                    .ok_or("--max-dims needs a value")?
                    .parse()
                    .map_err(|_| "bad --max-dims value".to_string())?;
                if !(1..=8).contains(&max_dims) {
                    return Err("--max-dims must be in 1..=8".to_string());
                }
            }
            "--json" => json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?)),
            "--corpus" => corpus = Some(PathBuf::from(it.next().ok_or("--corpus needs a dir")?)),
            "--inject" => {
                inject = Some(it.next().ok_or("--inject needs a fault spec")?.clone());
            }
            other => return Err(format!("unknown fuzz option `{other}`\n\n{USAGE}")),
        }
    }
    if inject.is_none() && seed.is_none() {
        return Err(
            "fuzz needs --seed <N>: runs are reproducible from the seed alone \
             (there is deliberately no wall-clock default)"
                .to_string(),
        );
    }
    Ok(FuzzOptions {
        seed: seed.unwrap_or(0),
        cases,
        max_dims,
        json,
        corpus,
        inject,
    })
}

/// Runs the fault-injection matrix named by `spec` (`all`, a class name,
/// or `CLASS@SEAM`) and prints the outcome table. Exit codes: 0 every
/// cell surfaced its typed class and left clean state, 1 otherwise, 2
/// bad spec.
pub fn run_inject_cmd(spec: &str) -> ExitCode {
    let report = if spec == "all" {
        iolb_fuzz::run_injection_matrix(&FaultKind::ALL)
    } else if let Some(kind) = FaultKind::parse(spec) {
        iolb_fuzz::run_injection_matrix(&[kind])
    } else if let Some(fault) = Fault::parse(spec) {
        iolb_fuzz::inject::InjectionReport {
            outcomes: vec![iolb_fuzz::run_injection(fault)],
        }
    } else {
        eprintln!(
            "bad --inject spec `{spec}` (want all, panic|oom|deadline, or CLASS@SEAM)\n\n{USAGE}"
        );
        return ExitCode::from(2);
    };
    print!("{}", report.render_table());
    if report.all_expected() {
        println!(
            "injection clean ✓ — {} cell(s) surfaced their typed class, no process aborts",
            report.outcomes.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("injection FAILED — a fault escaped its class or poisoned state");
        ExitCode::from(1)
    }
}

/// Runs the fuzzer and reports. Exit codes: 0 clean, 1 violations found,
/// 2 usage/IO errors.
pub fn run_fuzz_cmd(opts: &FuzzOptions) -> ExitCode {
    if let Some(spec) = &opts.inject {
        return run_inject_cmd(spec);
    }
    let mut config = iolb_fuzz::FuzzConfig::new(opts.seed, opts.cases);
    config.max_dims = opts.max_dims;
    let report = iolb_fuzz::run_fuzz(&config);
    println!(
        "fuzz seed={} cases={} max-dims={}: {} violation(s); {} certified instances, \
         {} classical bounds, {} hourglass bounds, {} analysis-declined, {} tiled",
        report.config.seed,
        report.config.cases,
        report.config.max_dims,
        report.failures.len(),
        report.stats.instances,
        report.stats.classical,
        report.stats.hourglass,
        report.stats.analysis_skipped,
        report.stats.tiled
    );
    for f in &report.failures {
        eprintln!(
            "VIOLATION case {}: [{}] {}\nminimized reproducer ({} stmt(s)):\n{}",
            f.case_index, f.violation.invariant, f.violation.detail, f.minimized_stmts, f.minimized
        );
    }
    if let Some(dir) = &opts.corpus {
        if let Err(e) = write_corpus(dir, &report) {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, iolb_fuzz::fuzz_report_json(&report)) {
            eprintln!("writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }
    if report.failures.is_empty() {
        println!("fuzz clean ✓ — every generated kernel passed the differential oracle");
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Writes every minimized reproducer as a replayable corpus file, headed
/// by the exact command that regenerates it.
fn write_corpus(dir: &Path, report: &iolb_fuzz::FuzzReport) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    for f in &report.failures {
        let path = dir.join(format!(
            "fz{}_{}_{}.iolb",
            report.config.seed, f.case_index, f.violation.invariant
        ));
        let text = format!(
            "# Minimized reproducer: `iolb fuzz --seed {} --cases {} --max-dims {}` case {}.\n\
             # Violated invariant: {} — {}\n{}",
            report.config.seed,
            report.config.cases,
            report.config.max_dims,
            f.case_index,
            f.violation.invariant,
            f.violation.detail.replace('\n', " "),
            f.minimized
        );
        std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// emit-builtin
// ---------------------------------------------------------------------------

/// Writes the six paper kernels as `.iolb` files (the shipped `kernels/`
/// directory is regenerated this way, so the DSL front-end and the
/// builder-constructed originals can never drift apart silently).
pub fn emit_builtin(dir: &Path) -> ExitCode {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("creating {}: {e}", dir.display());
        return ExitCode::from(2);
    }
    for (program, stmt, defaults, split, schedule) in builtin_kernels() {
        let file = KernelFile {
            analyze: Some(stmt.to_string()),
            defaults,
            split,
            schedule,
            program,
        };
        let path = dir.join(format!("{}.iolb", file.program.name));
        let text = format!(
            "# Generated by `iolb emit-builtin` from the builder-constructed paper kernel.\n{}",
            print_kernel(&file)
        );
        match iolb_ir::parse::parse_program(&text) {
            Ok(p) => {
                if let Some(diff) = iolb_ir::parse::structural_diff(&file.program, &p) {
                    eprintln!("{}: round-trip mismatch: {diff}", path.display());
                    return ExitCode::from(2);
                }
            }
            Err(e) => {
                eprintln!("{}: generated text does not re-parse: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// One built-in paper kernel: program, analysis statement, full-size
/// validation parameters, (GEHD2) the §5.3 split binding, and the blocked
/// `schedule` directives for the tightness harness.
pub type BuiltinKernel = (
    Program,
    &'static str,
    Vec<(String, i64)>,
    Option<(String, ParamExpr)>,
    Vec<TileDirective>,
);

/// The paper kernels with their pipeline directives: analysis statement,
/// full-size validation parameters, (GEHD2) the §5.3 split binding, and
/// (GEMM) the tiling schedule.
pub fn builtin_kernels() -> Vec<BuiltinKernel> {
    let mn = |m: i64, n: i64| vec![("M".to_string(), m), ("N".to_string(), n)];
    let tile = |names: &[&str]| -> Vec<TileDirective> {
        names
            .iter()
            .map(|n| TileDirective {
                loop_name: n.to_string(),
                size: None,
            })
            .collect()
    };
    vec![
        (iolb_kernels::mgs::program(), "SU", mn(64, 32), None, vec![]),
        (
            iolb_kernels::householder::a2v_program(),
            "SU",
            mn(40, 20),
            None,
            vec![],
        ),
        (
            iolb_kernels::householder::v2q_program(),
            "SU",
            mn(40, 20),
            None,
            vec![],
        ),
        (
            iolb_kernels::gebd2::program(),
            "SU",
            mn(36, 18),
            None,
            vec![],
        ),
        (
            iolb_kernels::gehd2::program(),
            "SU1",
            vec![("N".to_string(), 25)],
            Some((
                "Ms".to_string(),
                ParamExpr {
                    terms: vec![("N".to_string(), iolb_numeric::rational::rat(1, 2))],
                    cst: iolb_numeric::Rational::int(-1),
                },
            )),
            vec![],
        ),
        (
            iolb_kernels::gemm::program(),
            "SU",
            vec![
                ("M".to_string(), 24),
                ("N".to_string(), 24),
                ("K".to_string(), 24),
            ],
            None,
            tile(&["i", "j"]),
        ),
    ]
}
