//! `iolb` — the end-to-end I/O lower-bound pipeline on textual kernels.
//! (Library half: the `iolb` binary is a thin wrapper around [`run`].)
//!
//! This crate is a *front-end*: option parsing lives in [`opts`], human
//! rendering in [`render`], and the pipeline itself — parse → admission
//! control → access-consistency certification → φ-set extraction →
//! classical σ-bound → hourglass detect / certify / derive (§3–4, with
//! §5.3 splitting) → exact CDAG → MIN/LRU miss-curve validation →
//! tightness measurement — in the `iolb_service` crate, shared with the
//! `iolbd` daemon. Files are processed in parallel (rayon) through one
//! shared [`Pipeline`]; per-file output is buffered and printed in input
//! order. A failing kernel never takes the batch down: each file runs
//! behind a panic-isolation boundary and failures become structured
//! per-kernel rows in the JSON reports while every unaffected kernel
//! still completes.
//!
//! Exit codes: `0` all kernels validated sound, `1` an unsound cell,
//! then one stable code per [`AnalysisError`] class — `2` parse/usage,
//! `3` refused, `4` budget exceeded, `5` deadline, `6` cancelled, `7`
//! internal (contained panic). A batch exits with the *maximum* class
//! code across its files.

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod builtin;
pub mod fuzzcmd;
pub mod opts;
pub mod render;

pub use builtin::{builtin_kernels, emit_builtin, BuiltinKernel};
pub use fuzzcmd::{run_fuzz_cmd, run_inject_cmd};
pub use opts::{parse_args, parse_fuzz_args, FuzzOptions, Options, USAGE};
pub use render::render_outcome;

use iolb_bench::sweep::{sweep_report_json, DegradationRow, FailureRow, SweepReport};
use iolb_bench::tightness::{tightness_report_json, KernelTightness, TightnessReport};
use iolb_core::govern::{catch_analysis_mut, AnalysisError, CancelToken, Degradation};
use iolb_service::{AnalysisOptions, Pipeline};
use rayon::prelude::*;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Everything one `.iolb` file produced: buffered human-readable output
/// plus the machine-readable reports.
#[derive(Debug)]
pub struct FileOutcome {
    /// Kernel name.
    pub name: String,
    /// Buffered per-file text (printed in input order by [`run`]).
    pub output: String,
    /// The validation matrix (`None` under `--derive-only` or when the
    /// work budget degraded the kernel to symbolic bounds only).
    pub report: Option<SweepReport>,
    /// Tightness measurement (absent under `--no-tightness`,
    /// `--derive-only`, or any degradation below [`Degradation::Full`]).
    pub tightness: Option<KernelTightness>,
    /// All validation cells sound (vacuously true when validation was
    /// skipped).
    pub sound: bool,
    /// The degradation rung the work budget afforded this kernel.
    pub degradation: Degradation,
}

/// The CLI entry point (argument vector without the binary name).
pub fn run(args: &[String]) -> ExitCode {
    if args.first().map(String::as_str) == Some("emit-builtin") {
        return match args.get(1) {
            Some(dir) => emit_builtin(Path::new(dir)),
            None => {
                eprintln!("emit-builtin needs a target directory\n\n{USAGE}");
                ExitCode::from(2)
            }
        };
    }
    if args.first().map(String::as_str) == Some("fuzz") {
        return match parse_fuzz_args(&args[1..]) {
            Ok(opts) => run_fuzz_cmd(&opts),
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::from(2)
            }
        };
    }
    ExitCode::from(run_with_code(args))
}

/// The batch analysis path of [`run`], returning the raw process exit
/// code (documented in [`USAGE`]). Split out so tests can assert codes
/// without spawning the binary.
pub fn run_with_code(args: &[String]) -> u8 {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };

    // Every file runs through the full service pipeline concurrently,
    // behind a per-file panic-isolation boundary; output is buffered per
    // file and printed in input order below. One shared `Pipeline` means
    // duplicate kernel texts in a batch are analyzed once. The `--inject`
    // fault (if any) is armed on the first file only, so the rest of the
    // batch doubles as the blast-radius control.
    let pipeline = Pipeline::new();
    let t_batch = std::time::Instant::now();
    // Scoped worker accounting for the whole batch: nested parallel
    // stages (per-file sweeps on worker threads) attribute here, earlier
    // parallel work in the process does not.
    let batch_workers = rayon::worker_scope();
    let indexed: Vec<(usize, PathBuf)> = opts.files.iter().cloned().enumerate().collect();
    let base_aopts = opts.analysis_options();
    let results: Vec<(PathBuf, Result<FileOutcome, AnalysisError>)> = indexed
        .into_par_iter()
        .map(|(i, file)| {
            let mut aopts = base_aopts.clone();
            if i == 0 {
                aopts.inject = opts.inject;
            }
            // Panics are mapped to `Internal` *inside* the worker so the
            // payload survives the thread boundary.
            let res = catch_analysis_mut(|| run_file_on(&pipeline, &file, &aopts));
            (file, res)
        })
        .collect();
    let batch_wall_ms = t_batch.elapsed().as_secs_f64() * 1e3;

    // Failures are collected across the whole batch (not fail-fast), so
    // one run surfaces every broken kernel file at once — as structured
    // rows in the JSON reports, next to every unaffected kernel's result.
    let mut failures: Vec<FailureRow> = Vec::new();
    let mut worst: u8 = 0;
    let mut outcomes: Vec<FileOutcome> = Vec::new();
    for (file, res) in results {
        match res {
            Ok(outcome) => {
                print!("{}", outcome.output);
                outcomes.push(outcome);
            }
            Err(e) => {
                let kernel = file
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| file.display().to_string());
                eprintln!("[{}] {}: {e}", e.class_name(), file.display());
                worst = worst.max(e.exit_code());
                failures.push(FailureRow::from_error(&kernel, &e));
            }
        }
    }
    if !failures.is_empty() {
        eprintln!(
            "{} of {} kernel files failed (see rows above)",
            failures.len(),
            opts.files.len()
        );
    }
    let degradation: Vec<DegradationRow> = outcomes
        .iter()
        .map(|o| DegradationRow {
            kernel: o.name.clone(),
            level: o.degradation,
        })
        .collect();

    let all_sound = outcomes.iter().all(|o| o.sound);
    let validated = outcomes.iter().any(|o| o.report.is_some());
    if let Some(path) = &opts.json {
        let mut combined = SweepReport {
            rows: Vec::new(),
            degradation: degradation.clone(),
            failures: failures.clone(),
            total_wall_ms: 0.0,
            threads: 0,
            scaling: Vec::new(),
        };
        for o in outcomes.iter().filter_map(|o| o.report.as_ref()) {
            combined.rows.extend(o.rows.iter().cloned());
            combined.total_wall_ms += o.total_wall_ms;
            combined.threads = combined.threads.max(o.threads);
        }
        if let Err(e) = std::fs::write(path, sweep_report_json(&combined)) {
            eprintln!("writing {}: {e}", path.display());
            return 2;
        }
        println!("wrote {}", path.display());
    }
    if let Some(path) = &opts.tightness_json {
        let mut kernels: Vec<KernelTightness> = outcomes
            .iter()
            .filter_map(|o| o.tightness.clone())
            .collect();
        kernels.sort_by(|a, b| a.kernel.cmp(&b.kernel));
        // Live volatile data goes under `meta` only (the gate and the
        // golden snapshots ignore/redact it).
        let combined = TightnessReport {
            kernels,
            degradation,
            failures: failures.clone(),
            total_wall_ms: batch_wall_ms,
            threads: batch_workers.max_workers_used(),
        };
        if let Err(e) = std::fs::write(path, tightness_report_json(&combined, false)) {
            eprintln!("writing {}: {e}", path.display());
            return 2;
        }
        println!("wrote {}", path.display());
    }

    if !all_sound {
        eprintln!("UNSOUND cells found — a derived bound exceeded a legal play");
        return worst.max(1);
    }
    if worst > 0 {
        return worst;
    }
    if !validated {
        println!("derivations complete (pebble validation skipped)");
    } else {
        println!("all cells sound ✓");
    }
    0
}

/// [`run_file_with`] on the options' own budget token — the entry point
/// for single-file callers that do not inject faults or share a pipeline
/// across a batch.
///
/// # Errors
/// Every failure is a typed [`AnalysisError`].
pub fn run_file(file: &Path, opts: &Options) -> Result<FileOutcome, AnalysisError> {
    run_file_with(file, opts, &opts.budget.token())
}

/// Analyzes one file through a fresh service pipeline under the given
/// budget and token. All human-readable output is buffered on the
/// returned outcome.
///
/// # Errors
/// Every failure is a typed [`AnalysisError`]: unreadable/unparsable
/// input is `Parse`, anything declined on structural grounds is
/// `Refused`, and admission or mid-pass governance yields the
/// budget/deadline/cancel classes.
pub fn run_file_with(
    file: &Path,
    opts: &Options,
    token: &CancelToken,
) -> Result<FileOutcome, AnalysisError> {
    let pipeline = Pipeline::new();
    let mut aopts = opts.analysis_options();
    aopts.inject = opts.inject;
    let src = read_kernel(file)?;
    let answer = pipeline.analyze_with_token(&src, &aopts, token)?;
    Ok(file_outcome(&answer.outcome, file, aopts.derive_only))
}

/// One file through the batch's shared pipeline (its own token comes
/// from the options: the injected fault when armed, else the budget).
fn run_file_on(
    pipeline: &Pipeline,
    file: &Path,
    aopts: &AnalysisOptions,
) -> Result<FileOutcome, AnalysisError> {
    let src = read_kernel(file)?;
    let answer = pipeline.analyze(&src, aopts)?;
    Ok(file_outcome(&answer.outcome, file, aopts.derive_only))
}

fn read_kernel(file: &Path) -> Result<String, AnalysisError> {
    std::fs::read_to_string(file).map_err(|e| AnalysisError::Parse(format!("cannot read: {e}")))
}

fn file_outcome(
    outcome: &iolb_service::AnalysisOutcome,
    file: &Path,
    derive_only: bool,
) -> FileOutcome {
    FileOutcome {
        name: outcome.name.clone(),
        output: render_outcome(outcome, &file.display().to_string(), derive_only),
        report: outcome.sweep.clone(),
        tightness: outcome.tightness.clone(),
        sound: outcome.sound,
        degradation: outcome.degradation,
    }
}
