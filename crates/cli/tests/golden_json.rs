//! Golden snapshots of the machine-readable report schemas.
//!
//! The CI regression gate and downstream tooling parse
//! `BENCH_iolb_kernels.json` (pebble-sweep schema v5, miss-curve cells
//! with graph-level engine bounds plus per-kernel degradation/failure
//! rows) and `BENCH_tightness.json`
//! (tightness schema v3, optimal-curve upper bounds plus the same
//! governance rows); these tests pin both formats byte-for-byte on fixed
//! kernels at fixed sizes — including a batch that mixes a sound kernel,
//! a work-degraded kernel, a refused kernel, and a budget-killed kernel.
//! The comparable sections are deterministic by design (sorted rows,
//! fixed key order, volatile data confined to `meta` and redacted here),
//! so the snapshots are stable across machines and thread counts.
//!
//! To regenerate after an intentional schema change:
//! `UPDATE_GOLDEN=1 cargo test -p iolb-cli --test golden_json`.

use iolb_bench::sweep::{sweep_report_json_with, DegradationRow, FailureRow, SweepReport};
use iolb_bench::tightness::{tightness_report_json, TightnessReport};
use iolb_cli::{parse_args, run_file};
use iolb_core::govern::Degradation;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn kernels_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../kernels")
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} (regenerate with UPDATE_GOLDEN=1 cargo test -p iolb-cli --test golden_json)",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from the golden snapshot — if the schema change is \
         intentional, regenerate with UPDATE_GOLDEN=1",
    );
}

#[test]
fn report_schemas_match_golden_snapshots() {
    // gemm_tiled at a reduced fixed size: covers the sweep rows, a real
    // hourglass-free tightness section, and a tuned blocked winner.
    let opts = parse_args(&[
        "--params".to_string(),
        "M=10,N=10,K=10".to_string(),
        "--s-grid".to_string(),
        "0,16,64".to_string(),
        "x".to_string(),
    ])
    .unwrap();
    let outcome = run_file(&kernels_dir().join("gemm_tiled.iolb"), &opts).expect("pipeline");
    assert_eq!(outcome.degradation, Degradation::Full);

    let sweep = outcome.report.expect("validation ran");
    check_golden(
        "pebble_sweep_v5.json",
        &sweep_report_json_with(&sweep, true),
    );

    let tightness = TightnessReport {
        kernels: vec![outcome.tightness.expect("tightness measured")],
        degradation: vec![DegradationRow {
            kernel: outcome.name.clone(),
            level: outcome.degradation,
        }],
        failures: Vec::new(),
        total_wall_ms: 0.0,
        threads: 0,
    };
    check_golden(
        "tightness_v3.json",
        &tightness_report_json(&tightness, true),
    );
}

/// A governed batch mixing every outcome class: one sound kernel, one
/// down-scoped to the coarse grid by the work budget, one refused
/// (unknown statement), one killed by admission control. The combined
/// report — failure rows beside every unaffected kernel's results — is
/// assembled exactly as the batch CLI does and pinned byte-for-byte.
#[test]
fn degraded_and_failed_batch_matches_golden() {
    // Sound, full-fidelity kernel.
    let mut sound_opts = parse_args(&[
        "--params".to_string(),
        "N=12".to_string(),
        "--s-grid".to_string(),
        "0,16".to_string(),
        "x".to_string(),
    ])
    .unwrap();
    sound_opts.no_tightness = true;
    let sound = run_file(&kernels_dir().join("cholesky.iolb"), &sound_opts).expect("pipeline");
    assert_eq!(sound.degradation, Degradation::Full);

    // Work budget affords the coarse grid but not the default dense one:
    // gemm_tiled 10³ has a 4100-access trace, so dense (32 points) needs
    // 131 200 work units and coarse (5 points) needs 20 500.
    let degraded_opts = parse_args(&[
        "--params".to_string(),
        "M=10,N=10,K=10".to_string(),
        "--max-work".to_string(),
        "25000".to_string(),
        "x".to_string(),
    ])
    .unwrap();
    let degraded =
        run_file(&kernels_dir().join("gemm_tiled.iolb"), &degraded_opts).expect("pipeline");
    assert_eq!(degraded.degradation, Degradation::Coarse);
    assert!(
        degraded.tightness.is_none(),
        "coarse rung skips the tuner entirely"
    );
    assert!(degraded.output.contains("degraded: coarse"));

    // Refused: the kernel parses but names no such statement.
    let refused_opts =
        parse_args(&["--stmt".to_string(), "nope".to_string(), "x".to_string()]).unwrap();
    let refused = run_file(&kernels_dir().join("jacobi2d.iolb"), &refused_opts).unwrap_err();
    assert_eq!(refused.exit_code(), 3, "{refused}");

    // Budget-killed at admission: the estimate alone exceeds the trace
    // ceiling, so nothing was materialized.
    let killed_opts =
        parse_args(&["--max-trace".to_string(), "10".to_string(), "x".to_string()]).unwrap();
    let killed = run_file(&kernels_dir().join("syrk.iolb"), &killed_opts).unwrap_err();
    assert_eq!(killed.exit_code(), 4, "{killed}");

    // Combine exactly as `run_with_code` does for `--json`.
    let degradation = vec![
        DegradationRow {
            kernel: sound.name.clone(),
            level: sound.degradation,
        },
        DegradationRow {
            kernel: degraded.name.clone(),
            level: degraded.degradation,
        },
    ];
    let failures = vec![
        FailureRow::from_error("jacobi2d", &refused),
        FailureRow::from_error("syrk", &killed),
    ];
    let mut combined = SweepReport {
        rows: Vec::new(),
        degradation: degradation.clone(),
        failures: failures.clone(),
        total_wall_ms: 0.0,
        threads: 0,
        scaling: Vec::new(),
    };
    for report in [&sound.report, &degraded.report].into_iter().flatten() {
        combined.rows.extend(report.rows.iter().cloned());
    }
    check_golden(
        "pebble_sweep_v5_governed_batch.json",
        &sweep_report_json_with(&combined, true),
    );

    let tightness = TightnessReport {
        kernels: Vec::new(),
        degradation,
        failures,
        total_wall_ms: 0.0,
        threads: 0,
    };
    check_golden(
        "tightness_v3_governed_batch.json",
        &tightness_report_json(&tightness, true),
    );
}
