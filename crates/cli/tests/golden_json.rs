//! Golden snapshots of the machine-readable report schemas.
//!
//! The CI regression gate and downstream tooling parse
//! `BENCH_iolb_kernels.json` (pebble-sweep schema v3, miss-curve cells)
//! and `BENCH_tightness.json` (tightness schema v2, optimal-curve upper
//! bounds); these tests pin both formats byte-for-byte on a fixed kernel
//! at fixed sizes. The comparable
//! sections are deterministic by design (sorted rows, fixed key order,
//! volatile data confined to `meta` and redacted here), so the snapshots
//! are stable across machines and thread counts.
//!
//! To regenerate after an intentional schema change:
//! `UPDATE_GOLDEN=1 cargo test -p iolb-cli --test golden_json`.

use iolb_bench::sweep::sweep_report_json_with;
use iolb_bench::tightness::{tightness_report_json, TightnessReport};
use iolb_cli::{parse_args, run_file};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} (regenerate with UPDATE_GOLDEN=1 cargo test -p iolb-cli --test golden_json)",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from the golden snapshot — if the schema change is \
         intentional, regenerate with UPDATE_GOLDEN=1",
    );
}

#[test]
fn report_schemas_match_golden_snapshots() {
    // gemm_tiled at a reduced fixed size: covers the sweep rows, a real
    // hourglass-free tightness section, and a tuned blocked winner.
    let opts = parse_args(&[
        "--params".to_string(),
        "M=10,N=10,K=10".to_string(),
        "--s-grid".to_string(),
        "0,16,64".to_string(),
        "x".to_string(),
    ])
    .unwrap();
    let kernels = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../kernels");
    let outcome = run_file(&kernels.join("gemm_tiled.iolb"), &opts).expect("pipeline");

    let sweep = outcome.report.expect("validation ran");
    check_golden(
        "pebble_sweep_v3.json",
        &sweep_report_json_with(&sweep, true),
    );

    let tightness = TightnessReport {
        kernels: vec![outcome.tightness.expect("tightness measured")],
        total_wall_ms: 0.0,
        threads: 0,
    };
    check_golden(
        "tightness_v2.json",
        &tightness_report_json(&tightness, true),
    );
}
