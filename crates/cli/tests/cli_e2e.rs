//! End-to-end CLI runs over shipped `.iolb` files: parse → bounds → CDAG →
//! MIN/LRU pebble validation → tightness measurement, every cell sound,
//! non-paper workloads included.

use iolb_cli::{parse_args, run_file, FileOutcome, Options};
use std::path::PathBuf;

fn kernels_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../kernels")
}

fn small_opts() -> Options {
    parse_args(&[
        "--s-grid".to_string(),
        "0,8,64".to_string(),
        "x".to_string(),
    ])
    .unwrap()
}

fn run_ok(file: &str, opts: &Options) -> FileOutcome {
    run_file(&kernels_dir().join(file), opts).expect("pipeline")
}

fn rows(outcome: &FileOutcome) -> &[iolb_bench::sweep::SweepRow] {
    &outcome.report.as_ref().expect("validation ran").rows
}

#[test]
fn cholesky_full_pipeline_is_sound() {
    // The shipped default (N = 64) is the benchmark-suite size; the
    // debug-build test pins a smaller one.
    let mut opts = small_opts();
    opts.params_override = vec![("N".to_string(), 32)];
    let outcome = run_ok("cholesky.iolb", &opts);
    assert_eq!(outcome.name, "cholesky");
    assert!(outcome.sound, "every cell must be sound");
    assert_eq!(rows(&outcome).len(), 3 * 2, "S grid × {{LRU, MIN}}");
    // A non-paper kernel must still produce non-trivial classical bounds.
    assert!(
        rows(&outcome).iter().all(|r| r.lb_classical > 0.0),
        "cholesky must have a real σ-bound in every cell"
    );
    // The tightness section exists and every ratio is finite and ≥ 1.
    let t = outcome.tightness.expect("tightness measured");
    assert_eq!(t.points.len(), 3);
    for p in &t.points {
        assert!(
            p.ratio().is_finite() && p.ratio() >= 1.0 - 1e-9,
            "S={}",
            p.s
        );
    }
}

#[test]
fn lu_and_syrk_full_pipeline_is_sound() {
    let mut opts = small_opts();
    opts.params_override = vec![("N".to_string(), 24)];
    for file in ["lu_nopiv.iolb", "syrk.iolb"] {
        let outcome = run_ok(file, &opts);
        assert!(outcome.sound, "{file}: every cell must be sound");
        assert!(
            rows(&outcome).iter().all(|r| r.lb_classical > 0.0),
            "{file}: non-trivial bounds expected"
        );
    }
}

#[test]
fn jacobi_stencil_degrades_gracefully() {
    // No covering projection set and no hourglass: the symbolic bounds
    // are trivial in every cell, but the pipeline must not abort and the
    // graph-level engines now supply a finite positive lower bound (the
    // input floor alone guarantees one — jacobi reads inputs).
    let opts = small_opts();
    let outcome = run_ok("jacobi2d.iolb", &opts);
    assert!(outcome.sound);
    for r in rows(&outcome) {
        assert_eq!(r.lb_classical, 0.0, "S={}", r.s);
        assert_eq!(r.lb_hourglass, 0.0, "S={}", r.s);
        let graph = r.lb_graph().expect("graph engines apply");
        assert!(graph > 0, "S={}", r.s);
        assert_eq!(r.lb(), graph as f64, "S={}", r.s);
        assert!(
            !matches!(
                r.lb_provenance,
                iolb_core::BoundProvenance::Classical | iolb_core::BoundProvenance::Hourglass
            ),
            "best bound must come from a graph engine, got {:?}",
            r.lb_provenance
        );
    }
    let t = outcome.tightness.expect("tightness measured");
    for p in &t.points {
        assert!(p.lb_inputs > 0.0, "jacobi reads inputs");
        assert!(p.ratio().is_finite(), "S={}", p.s);
    }
}

#[test]
fn params_override_applies() {
    let mut opts = small_opts();
    opts.params_override = vec![("N".to_string(), 12)];
    let outcome = run_ok("cholesky.iolb", &opts);
    assert!(outcome.sound);
    assert!(rows(&outcome).iter().all(|r| r.params == vec![12]));
}

#[test]
fn missing_file_and_bad_args_are_errors() {
    let opts = small_opts();
    let err = run_file(&kernels_dir().join("nope.iolb"), &opts).unwrap_err();
    assert_eq!(err.class_name(), "parse", "{err}");
    assert_eq!(err.exit_code(), 2);
    assert!(parse_args(&["--s-grid".to_string(), "a,b".to_string()]).is_err());
    assert!(parse_args(&[]).is_err());
    assert!(parse_args(&["--params".to_string(), "N".to_string(), "f".to_string()]).is_err());
    // --derive-only writes no cells, so combining it with --json (or the
    // tightness report) is a usage error rather than an empty report.
    let err = parse_args(&[
        "--derive-only".to_string(),
        "--json".to_string(),
        "out.json".to_string(),
        "f.iolb".to_string(),
    ])
    .unwrap_err();
    assert!(err.contains("--derive-only"), "{err}");
    let err = parse_args(&[
        "--derive-only".to_string(),
        "--tightness-json".to_string(),
        "t.json".to_string(),
        "f.iolb".to_string(),
    ])
    .unwrap_err();
    assert!(err.contains("--derive-only"), "{err}");
    let err = parse_args(&[
        "--no-tightness".to_string(),
        "--tightness-json".to_string(),
        "t.json".to_string(),
        "f.iolb".to_string(),
    ])
    .unwrap_err();
    assert!(err.contains("contradicts"), "{err}");
}

#[test]
fn unknown_params_override_is_an_error() {
    let mut opts = small_opts();
    opts.params_override = vec![("NN".to_string(), 12)];
    let err = run_file(&kernels_dir().join("cholesky.iolb"), &opts).unwrap_err();
    assert_eq!(err.class_name(), "refused", "{err}");
    assert!(err.to_string().contains("unknown parameter NN"), "{err}");
}

#[test]
fn no_tightness_skips_the_measurement() {
    let mut opts = small_opts();
    opts.params_override = vec![("N".to_string(), 24)];
    opts.no_tightness = true;
    let outcome = run_ok("cholesky.iolb", &opts);
    assert!(outcome.tightness.is_none());
    assert!(!outcome.output.contains("tightness"));
}

#[test]
fn paper_kernel_through_cli_matches_builder_sweep() {
    // MGS from the shipped file at the default full size: the hourglass
    // bound column must be non-trivial (the tightened bound survives the
    // DSL round-trip into the validation matrix).
    let opts = small_opts();
    let outcome = run_ok("mgs.iolb", &opts);
    assert!(outcome.sound);
    assert!(rows(&outcome).iter().all(|r| r.lb_hourglass > 0.0));
}

#[test]
fn tiled_gemm_is_within_factor_two_of_its_lower_bound() {
    // The paper's tightness methodology: the measured I/O of the blocked
    // execution must sit within a small constant of the derived lower
    // bound. For GEMM (no hourglass pattern; the classical σ-bound is the
    // framework's bound) the auto-tuned blocked schedule must stay within
    // a factor 2 on the swept S grid — except at the feasibility minimum
    // S = indeg + 1, where only 1×1 tiles exist and even the optimal play
    // cannot reach 2·LB (the bound itself is ≈4 % loose there; the gate
    // still pins that point against regression).
    let opts = parse_args(&["x".to_string()]).unwrap(); // default dense S grid
    let outcome = run_ok("gemm_tiled.iolb", &opts);
    assert!(outcome.sound);
    let t = outcome.tightness.expect("tightness measured");
    assert_eq!(
        t.points.len(),
        iolb_bench::sweep::dense_s_offsets().len(),
        "default grid is the dense one"
    );
    let min_s = t.points[0].s;
    for p in &t.points {
        if p.s >= min_s + 4 {
            assert!(
                p.ratio() <= 2.0 + 1e-9,
                "S={}: ratio {:.3} exceeds 2 (schedule {})",
                p.s,
                p.ratio(),
                p.upper_schedule
            );
        } else {
            assert!(
                p.ratio() <= 2.2,
                "near-feasibility point regressed at S={}: {:.3}",
                p.s,
                p.ratio()
            );
        }
    }
}

#[test]
fn scheduled_kernel_tuner_finds_a_blocked_winner() {
    // The shipped tiled-GEMM variant carries `schedule` directives; at a
    // generous S the auto-tuned blocked order must beat program order.
    let opts = small_opts();
    let outcome = run_ok("gemm_tiled.iolb", &opts);
    assert!(outcome.sound);
    let t = outcome.tightness.expect("tightness measured");
    let last = t.points.last().unwrap();
    assert!(
        last.upper_schedule.starts_with("tile"),
        "expected a blocked winner, got {}",
        last.upper_schedule
    );
    assert!(last.upper_loads < last.program_order_loads);
}

// ---------------------------------------------------------------------------
// `iolb fuzz`
// ---------------------------------------------------------------------------

#[test]
fn fuzz_args_require_a_seed_and_report_it() {
    // No wall-clock fallback: a seedless invocation is a usage error.
    let err = iolb_cli::parse_fuzz_args(&["--cases".to_string(), "5".to_string()]).unwrap_err();
    assert!(err.contains("--seed"), "{err}");

    let opts = iolb_cli::parse_fuzz_args(&[
        "--seed".to_string(),
        "9".to_string(),
        "--cases".to_string(),
        "4".to_string(),
        "--max-dims".to_string(),
        "3".to_string(),
    ])
    .unwrap();
    assert_eq!((opts.seed, opts.cases, opts.max_dims), (9, 4, 3));
    assert!(iolb_cli::parse_fuzz_args(&[
        "--seed".to_string(),
        "1".to_string(),
        "--max-dims".to_string(),
        "99".to_string()
    ])
    .is_err());
}

#[test]
fn fuzz_run_is_clean_and_its_json_is_seed_stamped_and_deterministic() {
    let mut config = iolb_fuzz::FuzzConfig::new(2025, 8);
    config.s_offsets = vec![0, 2, 8];
    let a = iolb_fuzz::run_fuzz(&config);
    assert!(
        a.failures.is_empty(),
        "violations: {:?}",
        a.failures
            .iter()
            .map(|f| (f.violation.invariant, f.violation.detail.clone()))
            .collect::<Vec<_>>()
    );
    let json_a = iolb_fuzz::fuzz_report_json(&a);
    let json_b = iolb_fuzz::fuzz_report_json(&iolb_fuzz::run_fuzz(&config));
    assert_eq!(json_a, json_b, "bitwise-deterministic replays");
    assert!(
        json_a.contains("\"seed\": 2025"),
        "seed is a required field"
    );
    assert!(json_a.contains("\"schema\": \"hourglass-iolb/fuzz/v1\""));
}
