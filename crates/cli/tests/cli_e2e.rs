//! End-to-end CLI runs over shipped `.iolb` files: parse → bounds → CDAG →
//! MIN/LRU pebble validation, every cell sound, non-paper workloads
//! included.

use iolb_cli::{parse_args, run_file, Options};
use std::path::PathBuf;

fn kernels_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../kernels")
}

fn small_opts() -> Options {
    parse_args(&[
        "--s-grid".to_string(),
        "0,8,64".to_string(),
        "x".to_string(),
    ])
    .unwrap()
}

#[test]
fn cholesky_full_pipeline_is_sound() {
    let opts = small_opts();
    let (name, report, sound) = run_file(&kernels_dir().join("cholesky.iolb"), &opts)
        .expect("pipeline")
        .expect("validation ran");
    assert_eq!(name, "cholesky");
    assert!(sound, "every cell must be sound");
    assert_eq!(report.rows.len(), 3 * 2, "S grid × {{LRU, MIN}}");
    // A non-paper kernel must still produce non-trivial classical bounds.
    assert!(
        report.rows.iter().all(|r| r.lb_classical > 0.0),
        "cholesky must have a real σ-bound in every cell"
    );
}

#[test]
fn lu_and_syrk_full_pipeline_is_sound() {
    let opts = small_opts();
    for file in ["lu_nopiv.iolb", "syrk.iolb"] {
        let (_, report, sound) = run_file(&kernels_dir().join(file), &opts)
            .expect("pipeline")
            .expect("validation ran");
        assert!(sound, "{file}: every cell must be sound");
        assert!(
            report.rows.iter().all(|r| r.lb_classical > 0.0),
            "{file}: non-trivial bounds expected"
        );
    }
}

#[test]
fn jacobi_stencil_degrades_gracefully() {
    // No covering projection set and no hourglass: the pipeline must not
    // abort, and the trivial bound is (vacuously) sound in every cell.
    let opts = small_opts();
    let (_, report, sound) = run_file(&kernels_dir().join("jacobi2d.iolb"), &opts)
        .expect("pipeline")
        .expect("validation ran");
    assert!(sound);
    assert!(report.rows.iter().all(|r| r.lb() == 0.0));
}

#[test]
fn params_override_applies() {
    let mut opts = small_opts();
    opts.params_override = vec![("N".to_string(), 12)];
    let (_, report, sound) = run_file(&kernels_dir().join("cholesky.iolb"), &opts)
        .expect("pipeline")
        .expect("validation ran");
    assert!(sound);
    assert!(report.rows.iter().all(|r| r.params == vec![12]));
}

#[test]
fn missing_file_and_bad_args_are_errors() {
    let opts = small_opts();
    assert!(run_file(&kernels_dir().join("nope.iolb"), &opts).is_err());
    assert!(parse_args(&["--s-grid".to_string(), "a,b".to_string()]).is_err());
    assert!(parse_args(&[]).is_err());
    assert!(parse_args(&["--params".to_string(), "N".to_string(), "f".to_string()]).is_err());
    // --derive-only writes no cells, so combining it with --json is a
    // usage error rather than an empty report.
    let err = parse_args(&[
        "--derive-only".to_string(),
        "--json".to_string(),
        "out.json".to_string(),
        "f.iolb".to_string(),
    ])
    .unwrap_err();
    assert!(err.contains("--derive-only"), "{err}");
}

#[test]
fn unknown_params_override_is_an_error() {
    let mut opts = small_opts();
    opts.params_override = vec![("NN".to_string(), 12)];
    let err = run_file(&kernels_dir().join("cholesky.iolb"), &opts).unwrap_err();
    assert!(err.contains("unknown parameter NN"), "{err}");
}

#[test]
fn paper_kernel_through_cli_matches_builder_sweep() {
    // MGS from the shipped file at the default full size: the hourglass
    // bound column must be non-trivial (the tightened bound survives the
    // DSL round-trip into the validation matrix).
    let opts = small_opts();
    let (_, report, sound) = run_file(&kernels_dir().join("mgs.iolb"), &opts)
        .expect("pipeline")
        .expect("validation ran");
    assert!(sound);
    assert!(report.rows.iter().all(|r| r.lb_hourglass > 0.0));
}
