//! Process-level fault-injection e2e: the *real* `iolb` binary, a real
//! batch, a real injected fault. For every fault class at every governed
//! seam the batch must survive (no abort, no signal), keep the unaffected
//! kernel's results, emit a structured failure row in the JSON report,
//! and exit with the class-specific code.

use std::path::PathBuf;
use std::process::{Command, Output};

fn kernels_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../kernels")
}

fn iolb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_iolb"))
        .args(args)
        .output()
        .expect("spawn iolb")
}

/// A fast two-file batch (faulted target first, control kernel second)
/// with `--inject CLASS@SEAM`, writing the combined JSON report.
/// Tightness stays on: the `instances` seam is polled by its trace build.
fn inject_batch(spec: &str, json: &std::path::Path) -> Output {
    let target = kernels_dir().join("syrk.iolb");
    let control = kernels_dir().join("cholesky.iolb");
    iolb(&[
        "--params",
        "N=12",
        "--s-grid",
        "0,16",
        "--inject",
        spec,
        "--json",
        json.to_str().expect("utf8 tmp path"),
        target.to_str().expect("utf8 kernel path"),
        control.to_str().expect("utf8 kernel path"),
    ])
}

#[test]
fn injected_faults_at_every_seam_yield_class_exit_and_partial_results() {
    // (class spec, expected exit code, expected failure-row class)
    let classes = [
        ("panic", 7u8, "internal"),
        ("oom", 4u8, "budget"),
        ("deadline", 5u8, "deadline"),
    ];
    // Seams the single-file pipeline under these options reaches. (The
    // tuner seam needs a `schedule` kernel + tightness; it is covered by
    // the in-process matrix via `iolb fuzz --inject` below.)
    let seams = [
        "admission",
        "instances",
        "cdag_fill",
        "lru_pass",
        "opt_pass",
    ];
    let tmp = std::env::temp_dir();
    for (class, code, row_class) in classes {
        for seam in seams {
            let spec = format!("{class}@{seam}");
            let json = tmp.join(format!("iolb_inject_{class}_{seam}.json"));
            let out = inject_batch(&spec, &json);
            let stdout = String::from_utf8_lossy(&out.stdout);
            let stderr = String::from_utf8_lossy(&out.stderr);

            // Survival: a real exit code, not a signal/abort.
            assert_eq!(
                out.status.code(),
                Some(code as i32),
                "{spec}: wrong exit\nstdout:\n{stdout}\nstderr:\n{stderr}"
            );
            // The unaffected kernel still produced its full section.
            assert!(
                stdout.contains("── cholesky"),
                "{spec}: control kernel output missing\n{stdout}"
            );
            // The failure is a structured per-kernel row in the report.
            let report = std::fs::read_to_string(&json)
                .unwrap_or_else(|e| panic!("{spec}: report not written: {e}"));
            assert!(
                report.contains(&format!(
                    "{{\"kernel\": \"syrk\", \"class\": \"{row_class}\""
                )) || report.contains(&format!("\"class\": \"{row_class}\"")),
                "{spec}: no {row_class} failure row in report:\n{report}"
            );
            assert!(
                report.contains("\"kernel\": \"cholesky\""),
                "{spec}: control kernel rows missing from report"
            );
            assert!(
                stderr.contains(&format!("[{row_class}]")),
                "{spec}: stderr lacks the class tag\n{stderr}"
            );
            let _ = std::fs::remove_file(&json);
        }
    }
}

#[test]
fn fuzz_inject_matrix_is_clean_for_every_class() {
    // The in-process matrix covers all six seams (tuner included) per
    // class, asserting class-exact containment plus a clean control
    // re-run for each cell.
    for class in ["panic", "oom", "deadline"] {
        let out = iolb(&["fuzz", "--inject", class]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            out.status.code(),
            Some(0),
            "fuzz --inject {class}:\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(stdout.contains("injection clean"), "{stdout}");
    }
    let out = iolb(&["fuzz", "--inject", "nonsense"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn ordinary_error_classes_map_to_their_exit_codes() {
    let missing = kernels_dir().join("nope.iolb");
    let out = iolb(&[missing.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(2), "parse/read error");

    let jacobi = kernels_dir().join("jacobi2d.iolb");
    let out = iolb(&["--stmt", "nope", jacobi.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(3), "refused");

    let syrk = kernels_dir().join("syrk.iolb");
    let out = iolb(&["--max-trace", "10", syrk.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(4), "budget exceeded");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("[budget]"), "{stderr}");

    // --no-degrade turns a degradable work overrun into a refusal by
    // budget, while without it the same budget degrades gracefully.
    let gemm = kernels_dir().join("gemm_tiled.iolb");
    let gemm_args = ["--params", "M=10,N=10,K=10", "--max-work", "25000"];
    let out = iolb(
        &[
            &gemm_args[..],
            &["--no-degrade", gemm.to_str().expect("utf8")][..],
        ]
        .concat(),
    );
    assert_eq!(out.status.code(), Some(4), "--no-degrade refuses");
    let out = iolb(&[&gemm_args[..], &[gemm.to_str().expect("utf8")][..]].concat());
    assert_eq!(out.status.code(), Some(0), "degrades and stays sound");
    assert!(String::from_utf8_lossy(&out.stdout).contains("degraded: coarse"));
}
