//! Canonicalization property tests.
//!
//! The cache key of the service pipeline is the content hash of the
//! *canonicalized* kernel text — the pretty-printer's output. That is
//! only a sound key if pretty-printing is a fixed point under
//! re-parsing: `print(parse(print(parse(src))))` must equal
//! `print(parse(src))` for every kernel, shipped or generated.
//! Otherwise two requests for the same kernel could land on different
//! keys (wasted work) or — worse — different kernels on the same key.

use iolb_fuzz::{generate_case, GenConfig};
use iolb_service::{canonicalize, AnalysisOptions, Pipeline};
use std::path::PathBuf;
use std::sync::Arc;

fn kernels_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../kernels")
}

fn shipped_kernels() -> Vec<(String, String)> {
    let mut files: Vec<_> = std::fs::read_dir(kernels_dir())
        .expect("kernels dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "iolb"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no shipped kernels found");
    files
        .into_iter()
        .map(|p| {
            (
                p.display().to_string(),
                std::fs::read_to_string(&p).expect("readable kernel"),
            )
        })
        .collect()
}

/// Asserts the pretty-print of `src` is a fixed point of
/// parse-then-print, and returns the canonical (text, hash).
fn assert_fixed_point(origin: &str, src: &str) -> (String, u128) {
    let (canon, hash) = canonicalize(src).unwrap_or_else(|e| panic!("{origin}: {e}"));
    let (canon2, hash2) =
        canonicalize(&canon).unwrap_or_else(|e| panic!("{origin}: canonical text re-parse: {e}"));
    assert_eq!(
        canon, canon2,
        "{origin}: pretty-print is not a fixed point under re-parsing"
    );
    assert_eq!(hash, hash2, "{origin}: canonical hash drifted");
    (canon, hash)
}

#[test]
fn shipped_kernels_canonicalize_to_a_fixed_point() {
    for (origin, src) in shipped_kernels() {
        let (canon, _) = assert_fixed_point(&origin, &src);
        // The shipped files are emit-builtin/pretty-printer output headed
        // by '#' comments, so their canonical text is comment-free.
        assert!(
            !canon.contains('#'),
            "{origin}: canonical text kept a comment"
        );
    }
}

#[test]
fn generated_kernels_canonicalize_to_a_fixed_point() {
    let cfg = GenConfig::default();
    for seed in [1u64, 2, 3] {
        for index in 0..40u64 {
            let case = generate_case(seed, index, &cfg);
            let src = case.render();
            assert_fixed_point(&format!("seed {seed} case {index}"), &src);
        }
    }
}

#[test]
fn formatting_variants_share_one_canonical_hash_and_one_cache_entry() {
    let src = std::fs::read_to_string(kernels_dir().join("gemm_tiled.iolb")).expect("kernel");
    // Formatting-only mutations: extra comments, blank lines, trailing
    // whitespace, and a swap of indentation. None of these survive the
    // pretty-printer, so all variants canonicalize identically.
    let commented = format!("# a new leading comment\n{src}\n# and a trailing one\n");
    let blank_lines: String = src
        .lines()
        .flat_map(|l| [l, ""])
        .collect::<Vec<_>>()
        .join("\n");
    let trailing_ws: String = src.lines().map(|l| format!("{l}   \n")).collect();
    let reindented = src.replace("  ", "    ");

    let (_, h0) = canonicalize(&src).expect("original");
    for (what, variant) in [
        ("comments", &commented),
        ("blank lines", &blank_lines),
        ("trailing whitespace", &trailing_ws),
        ("re-indentation", &reindented),
    ] {
        let (_, h) = canonicalize(variant).unwrap_or_else(|e| panic!("{what}: {e}"));
        assert_eq!(h, h0, "{what}: canonical hash changed");
    }

    // And therefore they share one finished-report cache entry: four
    // analyze calls, one miss.
    let pipeline = Pipeline::new();
    let mut opts = AnalysisOptions::default();
    opts.set("params", "M=6,N=6,K=6").expect("params");
    opts.set("derive-only", "").expect("flag");
    let first = pipeline.analyze(&src, &opts).expect("analyze");
    assert!(!first.cached, "first request computes");
    for variant in [&commented, &blank_lines, &trailing_ws, &reindented] {
        let again = pipeline.analyze(variant, &opts).expect("analyze variant");
        assert!(again.cached, "formatting variant missed the cache");
        assert!(
            Arc::ptr_eq(&first.outcome, &again.outcome),
            "variant produced a distinct report object"
        );
    }
    let stats = pipeline.cache().stats();
    assert_eq!(stats.report.misses, 1, "one pipeline run for all variants");
    assert_eq!(stats.report.hits, 4);
    // The parse layer keys on the *raw* bytes, so each distinct variant
    // text is its own parse-layer entry — all converging on one hash.
    assert_eq!(stats.parse.misses, 5);
}

#[test]
fn distinct_options_do_not_share_entries() {
    let src = std::fs::read_to_string(kernels_dir().join("gemm_tiled.iolb")).expect("kernel");
    let pipeline = Pipeline::new();
    let mut a = AnalysisOptions::default();
    a.set("params", "M=6,N=6,K=6").expect("params");
    a.set("derive-only", "").expect("flag");
    let mut b = AnalysisOptions::default();
    b.set("params", "M=7,N=6,K=6").expect("params");
    b.set("derive-only", "").expect("flag");
    let ra = pipeline.analyze(&src, &a).expect("a");
    let rb = pipeline.analyze(&src, &b).expect("b");
    assert!(!ra.cached && !rb.cached);
    assert_eq!(pipeline.cache().stats().report.misses, 2);
    assert_ne!(ra.outcome.params, rb.outcome.params);
}
