//! Concurrency determinism of the result cache.
//!
//! N workers hammering one shared [`Pipeline`] with the same kernel
//! batch must produce reports bitwise-identical to a sequential run on a
//! fresh pipeline, and the hit/miss counters must be *deterministic*:
//! in-flight deduplication guarantees misses = distinct (kernel ×
//! options) keys no matter how the threads interleave.

use iolb_bench::sweep::sweep_report_json_with;
use iolb_service::{AnalysisOptions, Pipeline, ShardedCache};
use std::path::PathBuf;

fn kernels_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../kernels")
}

/// The batch: small fixed sizes so the full pipeline (sweep included)
/// stays fast, `no_tightness` to skip the tuner.
fn batch() -> Vec<(String, AnalysisOptions)> {
    let mk = |file: &str, params: &str| {
        let src = std::fs::read_to_string(kernels_dir().join(file)).expect("kernel");
        let mut opts = AnalysisOptions::default();
        opts.set("params", params).expect("params");
        opts.set("s-grid", "0,8,32").expect("grid");
        opts.set("no-tightness", "").expect("flag");
        (src, opts)
    };
    vec![
        mk("gemm_tiled.iolb", "M=8,N=8,K=8"),
        mk("cholesky.iolb", "N=10"),
        mk("mgs.iolb", "M=10,N=6"),
        mk("syrk.iolb", "N=9,K=5"),
    ]
}

/// Serializes one analysis answer to its deterministic byte form.
fn fingerprint(pipeline: &Pipeline, src: &str, opts: &AnalysisOptions) -> String {
    let answer = pipeline.analyze(src, opts).expect("analyze");
    let o = &answer.outcome;
    let sweep = o
        .sweep
        .as_ref()
        .map(|r| sweep_report_json_with(r, true))
        .unwrap_or_default();
    format!(
        "{}|{:?}|{}|{}|{}",
        o.name, o.params, o.certified_instances, o.sound, sweep
    )
}

#[test]
fn concurrent_workers_match_sequential_bitwise_with_deterministic_counters() {
    let batch = batch();

    // Sequential reference on its own pipeline.
    let reference: Vec<String> = {
        let pipeline = Pipeline::new();
        batch
            .iter()
            .map(|(src, opts)| fingerprint(&pipeline, src, opts))
            .collect()
    };

    // 8 workers × the same batch on one shared pipeline. Workers walk the
    // batch at different starting offsets so the interleaving actually
    // exercises concurrent same-key requests.
    const WORKERS: usize = 8;
    let pipeline = Pipeline::new();
    let all: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let pipeline = &pipeline;
                let batch = &batch;
                scope.spawn(move || {
                    (0..batch.len())
                        .map(|i| {
                            let (src, opts) = &batch[(i + w) % batch.len()];
                            fingerprint(pipeline, src, opts)
                        })
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });

    for (w, results) in all.iter().enumerate() {
        for (i, got) in results.iter().enumerate() {
            let expected = &reference[(i + w) % batch.len()];
            assert_eq!(
                got, expected,
                "worker {w} item {i}: concurrent report differs from sequential"
            );
        }
    }

    // Deterministic counters: misses = distinct keys, everything else a
    // hit — regardless of scheduling.
    let stats = pipeline.cache().stats();
    assert_eq!(stats.report.misses, batch.len() as u64);
    assert_eq!(
        stats.report.hits,
        (WORKERS * batch.len()) as u64 - batch.len() as u64
    );
    assert_eq!(stats.parse.misses, batch.len() as u64);
    assert_eq!(pipeline.cache().report_entries(), batch.len());
}

#[test]
fn disjoint_keys_under_eviction_pressure_keep_counters_deterministic() {
    // 8 workers insert fully disjoint key ranges into a cache far too
    // small to hold them. However the threads interleave, the counter
    // identities must come out exact: no shared keys means zero hits and
    // one miss per request, and every miss either survived to the end or
    // was evicted — conservation holds even while eviction races the
    // inserts on every shard.
    const WORKERS: u128 = 8;
    const PER_WORKER: u128 = 200;
    let cache: ShardedCache<u128, u64> = ShardedCache::with_capacity(16);
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let cache = &cache;
            scope.spawn(move || {
                for i in 0..PER_WORKER {
                    let key = w * 1_000_000 + i;
                    let v = cache
                        .get_or_compute(key, || Ok::<_, ()>(key as u64 * 3))
                        .expect("compute");
                    assert_eq!(*v, key as u64 * 3);
                }
            });
        }
    });
    let stats = cache.stats();
    let total = (WORKERS * PER_WORKER) as u64;
    assert_eq!(stats.hits, 0, "disjoint keys can never hit");
    assert_eq!(stats.misses, total, "every request is a miss");
    assert_eq!(
        stats.evictions,
        stats.misses - cache.len() as u64,
        "evictions must account for every miss not still resident"
    );
    assert!(
        cache.len() <= cache.capacity(),
        "len {} over capacity {}",
        cache.len(),
        cache.capacity()
    );
    assert!(
        stats.evictions > 0,
        "capacity 16 must have forced evictions"
    );
}
