//! `iolb_service` — the analysis service core.
//!
//! The full I/O lower-bound pipeline of the `iolb` CLI (parse →
//! admission → access certification → σ/hourglass derivation → CDAG +
//! miss-curve sweep → tightness), lifted out of the front-end into a
//! [`Pipeline`] of composable, individually-callable stages, each
//! threaded through the `govern` budget/cancellation seams. Because the
//! pipeline is deterministic, finished reports sit behind a two-layer
//! content-hash [`ResultCache`]: raw source → canonical text (the
//! pretty-printed round-trip, so formatting variants share an entry),
//! and (canonical hash × option fingerprint) → finished
//! [`AnalysisOutcome`].
//!
//! Front-ends stay thin: the `iolb` CLI renders outcomes as text/JSON,
//! the `iolbd` daemon serves them over HTTP. Both drive the same
//! [`Pipeline::analyze`].

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod cache;
pub mod json;
pub mod options;
pub mod pipeline;
pub mod render;
pub mod request;
pub mod store;

pub use cache::{fnv1a_128, CacheStats, LayerStats, ShardedCache};
pub use options::AnalysisOptions;
pub use pipeline::{
    analyze_uncached, canonicalize, canonicalize_kernel, AnalysisOutcome, CachedAnalysis,
    CanonEntry, ClassicalSummary, DegradeInfo, Derived, HourglassSummary, Pipeline, ResultCache,
    ServeSource, ServedAnalysis, SplitSummary, DEFAULT_REPORT_CAPACITY,
};
pub use render::{embed, outcome_body};
pub use request::AnalyzeRequest;
pub use store::{
    RealIo, RecoveryStats, ReportStore, StoreIo, StoreKey, StoreStats, JOURNAL_FILE, SNAPSHOT_FILE,
};
