//! Deterministic serve-envelope rendering.
//!
//! The `hourglass-iolb/serve/v1` success body lives here — below the
//! daemon — because the persistent [`ReportStore`](crate::ReportStore)
//! stores *rendered bodies*: byte-identical serving across a restart is
//! the store's contract, and the render is the canonical byte form of an
//! [`AnalysisOutcome`] (volatile meta redacted, fixed field order).

use crate::pipeline::AnalysisOutcome;
use iolb_bench::sweep::{json_str, sweep_report_json_with};
use iolb_bench::tightness::{tightness_report_json, TightnessReport};

/// Indents every non-first line of an embedded JSON document so the
/// envelope stays readable.
pub fn embed(doc: &str, indent: &str) -> String {
    doc.trim_end().replace('\n', &format!("\n{indent}"))
}

/// The success envelope: outcome summary + the CLI's own report schemas
/// embedded verbatim (volatile meta redacted, so a given kernel ×
/// options always serializes to identical bytes — cached, persisted, or
/// freshly computed).
pub fn outcome_body(o: &AnalysisOutcome) -> String {
    let params: Vec<String> = o
        .params
        .iter()
        .map(|(n, v)| format!("{}: {v}", json_str(n)))
        .collect();
    let classical = match &o.classical {
        Some(c) => format!(
            "{{\"sigma\": {}, \"m\": {}, \"expr\": {}}}",
            json_str(&c.sigma),
            json_str(&c.m),
            json_str(&c.expr)
        ),
        None => "null".to_string(),
    };
    let split = match &o.split {
        Some(s) => format!(
            "{{\"var\": {}, \"expr\": {}}}",
            json_str(&s.var),
            json_str(&s.expr)
        ),
        None => "null".to_string(),
    };
    let hourglass = match &o.hourglass {
        Some(h) => format!(
            "{{\"chains\": {}, \"w_min\": {}, \"w_max\": {}, \"main_tool\": {}}}",
            h.chains,
            json_str(&h.w_min),
            json_str(&h.w_max),
            json_str(&h.main_tool)
        ),
        None => "null".to_string(),
    };
    let degrade = match &o.degrade {
        Some(d) => format!(
            "{{\"work_needed\": {}, \"max_work\": {}, \"coarse_points\": {}}}",
            d.work_needed, d.max_work, d.coarse_points
        ),
        None => "null".to_string(),
    };
    let sweep = match &o.sweep {
        Some(r) => embed(&sweep_report_json_with(r, true), "  "),
        None => "null".to_string(),
    };
    let tightness = match &o.tightness {
        Some(k) => {
            let report = TightnessReport {
                kernels: vec![k.clone()],
                degradation: Vec::new(),
                failures: Vec::new(),
                total_wall_ms: 0.0,
                threads: 0,
            };
            embed(&tightness_report_json(&report, true), "  ")
        }
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"schema\": \"hourglass-iolb/serve/v1\",\n  \"kernel\": {},\n  \"stmt\": {},\n  \"params\": {{{}}},\n  \"certified_instances\": {},\n  \"degradation\": {},\n  \"sound\": {},\n  \"classical\": {classical},\n  \"split\": {split},\n  \"hourglass\": {hourglass},\n  \"degrade\": {degrade},\n  \"sweep\": {sweep},\n  \"tightness\": {tightness}\n}}\n",
        json_str(&o.name),
        json_str(&o.stmt),
        params.join(", "),
        o.certified_instances,
        json_str(o.degradation.as_str()),
        o.sound,
    )
}
