//! Analysis request options shared by every front-end (CLI flags, daemon
//! query parameters) and folded into the result-cache key.

use iolb_bench::sweep::CurveStrategy;
use iolb_core::govern::{Budget, Fault};
use iolb_core::EngineRegistry;

/// Everything that parameterizes one analysis request beyond the kernel
/// text itself. Two requests with equal [`fingerprint`]s on the same
/// canonicalized kernel are the same analysis — the pipeline is
/// deterministic, so the second is a cache lookup.
///
/// [`fingerprint`]: AnalysisOptions::fingerprint
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Parameter overrides applied over the file's `default` directive.
    pub params_override: Vec<(String, i64)>,
    /// Analysis-statement override (else `analyze` directive, else the
    /// deepest statement).
    pub stmt_override: Option<String>,
    /// Offsets added to the minimum feasible S to form the S grid.
    pub s_offsets: Vec<usize>,
    /// Skip the upper-bound schedule measurement.
    pub no_tightness: bool,
    /// Skip everything past the symbolic derivation.
    pub derive_only: bool,
    /// Graph-level bound-engine selection, stored in canonical spec form
    /// (`all`, `none`, or a comma list in canonical engine order) — the
    /// output of [`EngineRegistry::fingerprint`], so equivalent selections
    /// share a cache key.
    pub engines: String,
    /// Resource ceilings enforced by admission control and the governed
    /// seams.
    pub budget: Budget,
    /// Refuse instead of stepping down the degradation ladder.
    pub no_degrade: bool,
    /// Curve-pricing path of the validation sweep: streaming sharded
    /// engines (default, cross-checked on small traces) or the legacy
    /// materialized reference engine, forced.
    pub curve_strategy: CurveStrategy,
    /// One-shot injected fault (testing). Requests carrying a fault
    /// bypass the result cache entirely: the point is to exercise the
    /// pipeline, and their typed errors must never be masked by a cached
    /// success.
    pub inject: Option<Fault>,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            params_override: Vec::new(),
            stmt_override: None,
            s_offsets: iolb_bench::sweep::dense_s_offsets(),
            no_tightness: false,
            derive_only: false,
            engines: "all".to_string(),
            budget: Budget::unlimited(),
            no_degrade: false,
            curve_strategy: CurveStrategy::default(),
            inject: None,
        }
    }
}

/// Parses one `NAME=INT` list entry of a `params` value.
fn parse_param_entry(kv: &str) -> Result<(String, i64), String> {
    let (k, val) = kv
        .split_once('=')
        .ok_or_else(|| format!("bad params entry `{kv}` (want NAME=INT)"))?;
    let val: i64 = val
        .trim()
        .parse()
        .map_err(|_| format!("bad integer in params entry `{kv}`"))?;
    Ok((k.trim().to_string(), val))
}

fn parse_ceiling(key: &str, value: &str) -> Result<u64, String> {
    value
        .trim()
        .parse()
        .map_err(|_| format!("bad {key} value (want a non-negative integer)"))
}

/// Truthiness of a boolean option value: flags are set by presence, so
/// the empty string counts as true.
fn parse_flag(key: &str, value: &str) -> Result<bool, String> {
    match value.trim() {
        "" | "1" | "true" => Ok(true),
        "0" | "false" => Ok(false),
        other => Err(format!("bad {key} value `{other}` (want 1/0/true/false)")),
    }
}

impl AnalysisOptions {
    /// Applies one `key = value` option pair. The keys are the CLI flag
    /// names without the `--` prefix, so the daemon's query string and
    /// the CLI's flag vector drive the same switchboard:
    ///
    /// `params`, `stmt`, `s-grid`, `engines`, `no-tightness`,
    /// `derive-only`, `max-instances`, `max-cdag-nodes`, `max-cdag-edges`,
    /// `max-trace`, `max-arena-bytes`, `max-work`, `deadline-ms`,
    /// `no-degrade`, `curve-strategy`, `inject`.
    ///
    /// # Errors
    /// Human-readable diagnostic on unknown keys or malformed values.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        match key {
            "params" => {
                for kv in value.split(',') {
                    self.params_override.push(parse_param_entry(kv)?);
                }
            }
            "stmt" => self.stmt_override = Some(value.trim().to_string()),
            "s-grid" => {
                self.s_offsets = match value.trim() {
                    "dense" => iolb_bench::sweep::dense_s_offsets(),
                    "coarse" => iolb_bench::sweep::coarse_s_offsets(),
                    list => list
                        .split(',')
                        .map(|x| x.trim().parse::<usize>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| format!("bad s-grid list `{value}`"))?,
                };
                if self.s_offsets.is_empty() {
                    return Err("s-grid needs at least one offset".to_string());
                }
            }
            "engines" => self.engines = EngineRegistry::select(value)?.fingerprint(),
            "no-tightness" => self.no_tightness = parse_flag(key, value)?,
            "derive-only" => self.derive_only = parse_flag(key, value)?,
            "no-degrade" => self.no_degrade = parse_flag(key, value)?,
            "curve-strategy" => {
                self.curve_strategy = match value.trim() {
                    "streaming" => CurveStrategy::Streaming,
                    "materialized" => CurveStrategy::Materialized,
                    other => {
                        return Err(format!(
                            "bad curve-strategy `{other}` (want streaming|materialized)"
                        ))
                    }
                };
            }
            "max-instances" => self.budget.max_instances = parse_ceiling(key, value)?,
            "max-cdag-nodes" => self.budget.max_cdag_nodes = parse_ceiling(key, value)?,
            "max-cdag-edges" => self.budget.max_cdag_edges = parse_ceiling(key, value)?,
            "max-trace" => self.budget.max_trace_len = parse_ceiling(key, value)?,
            "max-arena-bytes" => self.budget.max_arena_bytes = parse_ceiling(key, value)?,
            "max-work" => self.budget.max_work = parse_ceiling(key, value)?,
            "deadline-ms" => self.budget.deadline_ms = parse_ceiling(key, value)?,
            "inject" => {
                self.inject = Some(Fault::parse(value.trim()).ok_or_else(|| {
                    format!(
                        "bad inject spec `{value}` (want panic|oom|deadline, \
                         optionally @admission|instances|cdag_fill|lru_pass|opt_pass|tuner|\
                         store_append|store_flush|store_compact|store_recover)"
                    )
                })?);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
        Ok(())
    }

    /// The engine registry this request selected. The stored spec is
    /// already canonical (validated by [`set`](AnalysisOptions::set)), so
    /// this cannot fail on options that went through the switchboard.
    ///
    /// # Errors
    /// Human-readable diagnostic when a hand-constructed spec is invalid.
    pub fn registry(&self) -> Result<EngineRegistry, String> {
        EngineRegistry::select(&self.engines)
    }

    /// Canonical cache-key half for these options: every field that can
    /// change the analysis result, rendered in a fixed order. Parameter
    /// overrides are deduplicated (the first entry wins, matching the
    /// resolution order) and sorted, so permuted but equivalent requests
    /// share a key.
    pub fn fingerprint(&self) -> String {
        let mut resolved: Vec<(String, i64)> = Vec::new();
        for (n, v) in &self.params_override {
            if !resolved.iter().any(|(rn, _)| rn == n) {
                resolved.push((n.clone(), *v));
            }
        }
        resolved.sort();
        let params: Vec<String> = resolved.iter().map(|(n, v)| format!("{n}={v}")).collect();
        let grid: Vec<String> = self.s_offsets.iter().map(|o| o.to_string()).collect();
        let b = &self.budget;
        format!(
            "params={};stmt={};grid={};engines={};tight={};derive={};nodeg={};curve={};\
             budget={},{},{},{},{},{},{}",
            params.join(","),
            self.stmt_override.as_deref().unwrap_or(""),
            grid.join(","),
            self.engines,
            u8::from(!self.no_tightness),
            u8::from(self.derive_only),
            u8::from(self.no_degrade),
            match self.curve_strategy {
                CurveStrategy::Streaming => "streaming",
                CurveStrategy::Materialized => "materialized",
            },
            b.max_instances,
            b.max_cdag_nodes,
            b.max_cdag_edges,
            b.max_trace_len,
            b.max_arena_bytes,
            b.max_work,
            b.deadline_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test-only assertions
    use super::*;

    #[test]
    fn set_covers_every_key_and_rejects_strangers() {
        let mut o = AnalysisOptions::default();
        o.set("params", "M=8,N=16").unwrap();
        o.set("stmt", "SU").unwrap();
        o.set("s-grid", "0, 4, 16").unwrap();
        o.set("engines", "spectral,input-floor").unwrap();
        o.set("no-tightness", "").unwrap();
        o.set("derive-only", "true").unwrap();
        o.set("no-degrade", "1").unwrap();
        o.set("max-trace", "1000").unwrap();
        o.set("deadline-ms", "250").unwrap();
        o.set("curve-strategy", "materialized").unwrap();
        o.set("inject", "oom@cdag_fill").unwrap();
        assert_eq!(
            o.params_override,
            vec![("M".to_string(), 8), ("N".to_string(), 16)]
        );
        assert_eq!(o.stmt_override.as_deref(), Some("SU"));
        assert_eq!(o.s_offsets, vec![0, 4, 16]);
        // Stored canonically, so permuted selections share a fingerprint.
        assert_eq!(o.engines, "input-floor,spectral");
        assert_eq!(
            o.registry().unwrap().names(),
            vec!["input-floor", "spectral"]
        );
        assert!(o.no_tightness && o.derive_only && o.no_degrade);
        assert_eq!(o.curve_strategy, CurveStrategy::Materialized);
        assert_eq!(o.budget.max_trace_len, 1000);
        assert_eq!(o.budget.deadline_ms, 250);
        assert!(o.inject.is_some());

        let mut o = AnalysisOptions::default();
        assert!(o.set("params", "M").is_err());
        assert!(o.set("s-grid", "a,b").is_err());
        assert!(o.set("s-grid", "").is_err());
        assert!(o.set("max-work", "-3").is_err());
        assert!(o.set("curve-strategy", "frobnicate").is_err());
        assert!(o.set("engines", "frobnicate").is_err());
        assert!(o.set("inject", "bogus").is_err());
        assert!(o.set("frobnicate", "1").is_err());
    }

    #[test]
    fn fingerprint_is_order_insensitive_in_params_and_sensitive_to_options() {
        let mut a = AnalysisOptions::default();
        a.set("params", "N=8,M=4").unwrap();
        let mut b = AnalysisOptions::default();
        b.set("params", "M=4").unwrap();
        b.set("params", "N=8").unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());

        // The first duplicate wins, matching resolution order.
        let mut c = AnalysisOptions::default();
        c.set("params", "M=4,M=9,N=8").unwrap();
        assert_eq!(c.fingerprint(), a.fingerprint());

        let mut d = a.clone();
        d.no_tightness = true;
        assert_ne!(a.fingerprint(), d.fingerprint());
        let mut e = a.clone();
        e.budget.max_work = 10;
        assert_ne!(a.fingerprint(), e.fingerprint());
        let mut f = a.clone();
        f.set("engines", "none").unwrap();
        assert_ne!(a.fingerprint(), f.fingerprint());
        let mut h = a.clone();
        h.set("curve-strategy", "materialized").unwrap();
        assert_ne!(a.fingerprint(), h.fingerprint());
        // `all` spelled out collapses to the default selection.
        let mut g = a.clone();
        g.set("engines", "input-floor,visit,spectral").unwrap();
        assert_eq!(a.fingerprint(), g.fingerprint());
    }
}
