//! The typed `POST /analyze` request body.
//!
//! The daemon's original interface packed everything into query
//! parameters. The typed form is a JSON object:
//!
//! ```json
//! {
//!   "source":  "kernel … { … }",
//!   "options": {"params": "M=8,N=4", "stmt": "SU", "s-grid": [0, 4, 16]},
//!   "budgets": {"max-work": 250000, "deadline-ms": 250},
//!   "engines": ["visit", "spectral"]
//! }
//! ```
//!
//! `source` is required; the three other members are optional. Every
//! `options`/`budgets` entry is funneled through the same
//! [`AnalysisOptions::set`] switchboard the query parameters and CLI
//! flags drive, so the vocabularies (and their diagnostics) cannot
//! diverge — the body form is sugar over the exact same option pairs,
//! which is what makes the byte-identical golden-exchange guarantee
//! against the deprecated query-parameter alias possible at all.

use crate::json::{self, Value};
use crate::options::AnalysisOptions;

/// One parsed `POST /analyze` body: the kernel source plus the option
/// pairs in application order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeRequest {
    /// Kernel source text.
    pub source: String,
    /// `(key, value)` pairs for [`AnalysisOptions::set`], in body order
    /// (`options` first, then `budgets`, then `engines`).
    pub sets: Vec<(String, String)>,
}

/// Renders one JSON option value in the string form
/// [`AnalysisOptions::set`] expects: strings pass through, integers print
/// plainly, booleans become `1`/`0`, arrays comma-join their elements.
fn value_string(key: &str, v: &Value) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::Bool(b) => Ok(if *b { "1" } else { "0" }.to_string()),
        Value::Num(n) => {
            if n.is_finite() && n.fract() == 0.0 && n.abs() < 9e15 {
                Ok(format!("{}", *n as i64))
            } else {
                Err(format!("option `{key}`: expected an integer, got {n}"))
            }
        }
        Value::Arr(items) => {
            let parts: Result<Vec<String>, String> = items
                .iter()
                .map(|item| match item {
                    Value::Str(_) | Value::Num(_) => value_string(key, item),
                    _ => Err(format!(
                        "option `{key}`: array elements must be strings or integers"
                    )),
                })
                .collect();
            Ok(parts?.join(","))
        }
        Value::Null => Err(format!("option `{key}` is null")),
        Value::Obj(_) => Err(format!("option `{key}`: nested objects are not allowed")),
    }
}

/// Flattens one `options`/`budgets` object into `(key, value)` pairs.
fn collect_pairs(member: &str, v: &Value, out: &mut Vec<(String, String)>) -> Result<(), String> {
    let kv = v
        .obj()
        .ok_or_else(|| format!("`{member}` must be a JSON object"))?;
    for (k, val) in kv {
        out.push((k.clone(), value_string(k, val)?));
    }
    Ok(())
}

impl AnalyzeRequest {
    /// Parses a JSON request body.
    ///
    /// # Errors
    /// Human-readable diagnostic: JSON syntax errors, a missing or
    /// non-string `source`, unknown top-level members, or malformed
    /// option values. Option *semantics* (unknown keys, bad integers) are
    /// validated later by [`AnalyzeRequest::options`], exactly as for
    /// query parameters.
    pub fn parse(body: &str) -> Result<AnalyzeRequest, String> {
        let root = json::parse(body).map_err(|e| format!("request body: {e}"))?;
        let members = root
            .obj()
            .ok_or_else(|| "request body must be a JSON object".to_string())?;
        for (k, _) in members {
            if !matches!(k.as_str(), "source" | "options" | "budgets" | "engines") {
                return Err(format!(
                    "unknown request member `{k}` (want source, options, budgets, engines)"
                ));
            }
        }
        let source = root
            .get("source")
            .and_then(Value::str)
            .ok_or_else(|| "request body needs a string `source` member".to_string())?
            .to_string();
        let mut sets = Vec::new();
        if let Some(v) = root.get("options") {
            collect_pairs("options", v, &mut sets)?;
        }
        if let Some(v) = root.get("budgets") {
            collect_pairs("budgets", v, &mut sets)?;
        }
        if let Some(v) = root.get("engines") {
            sets.push(("engines".to_string(), value_string("engines", v)?));
        }
        Ok(AnalyzeRequest { source, sets })
    }

    /// Resolves the request's option pairs into [`AnalysisOptions`]
    /// through the shared switchboard.
    ///
    /// # Errors
    /// The switchboard's diagnostic for the first bad pair.
    pub fn options(&self) -> Result<AnalysisOptions, String> {
        let mut opts = AnalysisOptions::default();
        for (k, v) in &self.sets {
            opts.set(k, v)?;
        }
        Ok(opts)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test-only assertions
    use super::*;

    #[test]
    fn full_body_resolves_through_the_switchboard() {
        let req = AnalyzeRequest::parse(
            r#"{
                "source": "kernel g { }",
                "options": {"params": "M=8,N=4", "s-grid": [0, 4, 16], "no-tightness": true},
                "budgets": {"max-work": 25000, "deadline-ms": 250},
                "engines": ["spectral", "input-floor"]
            }"#,
        )
        .unwrap();
        assert_eq!(req.source, "kernel g { }");
        let opts = req.options().unwrap();
        assert_eq!(
            opts.params_override,
            vec![("M".to_string(), 8), ("N".to_string(), 4)]
        );
        assert_eq!(opts.s_offsets, vec![0, 4, 16]);
        assert!(opts.no_tightness);
        assert_eq!(opts.budget.max_work, 25000);
        assert_eq!(opts.budget.deadline_ms, 250);
        // Engine lists canonicalize exactly like `engines=` query values.
        assert_eq!(opts.engines, "input-floor,spectral");
    }

    #[test]
    fn source_only_body_is_the_default_analysis() {
        let req = AnalyzeRequest::parse(r#"{"source": "kernel g { }"}"#).unwrap();
        assert!(req.sets.is_empty());
        let opts = req.options().unwrap();
        assert_eq!(opts.fingerprint(), AnalysisOptions::default().fingerprint());
    }

    #[test]
    fn engines_accepts_string_or_array() {
        let a = AnalyzeRequest::parse(r#"{"source": "k", "engines": "none"}"#).unwrap();
        assert_eq!(a.sets, vec![("engines".to_string(), "none".to_string())]);
        let b = AnalyzeRequest::parse(r#"{"source": "k", "engines": ["visit"]}"#).unwrap();
        assert_eq!(b.options().unwrap().engines, "visit");
    }

    #[test]
    fn bad_bodies_get_precise_diagnostics() {
        assert!(AnalyzeRequest::parse("not json").is_err());
        assert!(AnalyzeRequest::parse("[1]").is_err());
        let e = AnalyzeRequest::parse(r#"{"options": {}}"#).unwrap_err();
        assert!(e.contains("source"), "{e}");
        let e = AnalyzeRequest::parse(r#"{"source": "k", "frobnicate": 1}"#).unwrap_err();
        assert!(e.contains("unknown request member"), "{e}");
        let e =
            AnalyzeRequest::parse(r#"{"source": "k", "budgets": {"max-work": 1.5}}"#).unwrap_err();
        assert!(e.contains("integer"), "{e}");
        let e = AnalyzeRequest::parse(r#"{"source": "k", "options": {"stmt": null}}"#).unwrap_err();
        assert!(e.contains("null"), "{e}");
        // Semantic validation is deferred to the shared switchboard.
        let req =
            AnalyzeRequest::parse(r#"{"source": "k", "options": {"frobnicate": "1"}}"#).unwrap();
        assert!(req.options().unwrap_err().contains("unknown option"));
    }
}
