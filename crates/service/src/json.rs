//! Minimal JSON reader for typed request bodies — the offline workspace
//! has no serde. Accepts the standard scalar/array/object shapes and the
//! full standard escape set, including `\uXXXX` with surrogate pairs —
//! stock emitters (python's `json.dumps`, serde) escape non-ASCII that
//! way, so request bodies built by ordinary clients must parse.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (finite decimals).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object as an ordered key list (duplicate keys keep the last).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(kv) => kv.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object view (ordered key list).
    pub fn obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(kv) => Some(kv),
            _ => None,
        }
    }

    /// Array view.
    pub fn arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Number view.
    pub fn num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure at a byte offset.
#[derive(Debug)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

/// Parses one JSON document.
///
/// # Errors
/// Reports the first syntax error with its byte offset.
pub fn parse(src: &str) -> Result<Value, JsonError> {
    let b = src.as_bytes();
    let mut pos = 0usize;
    let v = value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(err(pos, "trailing content"));
    }
    Ok(v)
}

fn err(at: usize, msg: &str) -> JsonError {
    JsonError {
        at,
        msg: msg.to_string(),
    }
}

/// Four hex digits of a `\uXXXX` escape starting at `at`.
fn hex4(b: &[u8], at: usize) -> Result<u32, JsonError> {
    let chunk = b
        .get(at..at + 4)
        .ok_or_else(|| err(at, "truncated \\u escape"))?;
    std::str::from_utf8(chunk)
        .ok()
        .and_then(|text| u32::from_str_radix(text, 16).ok())
        .ok_or_else(|| err(at, "bad \\u escape"))
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut kv = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(kv));
            }
            loop {
                skip_ws(b, pos);
                let Value::Str(k) = value(b, pos)? else {
                    return Err(err(*pos, "object key must be a string"));
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected `:`"));
                }
                *pos += 1;
                let v = value(b, pos)?;
                kv.push((k, v));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(kv));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut out = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(out));
            }
            loop {
                out.push(value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(out));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            let mut raw = Vec::new();
            loop {
                match b.get(*pos) {
                    None => return Err(err(*pos, "unterminated string")),
                    Some(b'"') => {
                        *pos += 1;
                        if !raw.is_empty() {
                            let tail = std::str::from_utf8(&raw)
                                .map_err(|_| err(*pos, "invalid UTF-8 in string"))?;
                            s.push_str(tail);
                        }
                        return Ok(Value::Str(s));
                    }
                    Some(b'\\') => {
                        if !raw.is_empty() {
                            let tail = std::str::from_utf8(&raw)
                                .map_err(|_| err(*pos, "invalid UTF-8 in string"))?;
                            s.push_str(tail);
                            raw.clear();
                        }
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hi = hex4(b, *pos + 1)?;
                                *pos += 4;
                                let code = if (0xD800..0xDC00).contains(&hi) {
                                    // High surrogate: a low surrogate
                                    // escape must follow immediately.
                                    if b.get(*pos + 1) != Some(&b'\\')
                                        || b.get(*pos + 2) != Some(&b'u')
                                    {
                                        return Err(err(*pos, "unpaired surrogate"));
                                    }
                                    let lo = hex4(b, *pos + 3)?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(err(*pos, "unpaired surrogate"));
                                    }
                                    *pos += 6;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else if (0xDC00..0xE000).contains(&hi) {
                                    return Err(err(*pos, "unpaired surrogate"));
                                } else {
                                    hi
                                };
                                s.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| err(*pos, "bad \\u escape"))?,
                                );
                            }
                            _ => return Err(err(*pos, "unsupported escape")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // Multi-byte UTF-8 accumulates and decodes in one go.
                        raw.push(c);
                        *pos += 1;
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err(start, "utf8"))?;
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| err(start, "bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test-only assertions
    use super::*;

    #[test]
    fn parses_request_shapes() {
        let v = parse(
            r#"{"source": "kernel g {\n}", "options": {"s-grid": [0, 4], "no-tightness": true},
                "budgets": {"max-work": 25000}, "engines": ["visit", "spectral"], "x": null}"#,
        )
        .unwrap();
        assert_eq!(v.get("source").unwrap().str(), Some("kernel g {\n}"));
        let opts = v.get("options").unwrap().obj().unwrap();
        assert_eq!(opts[0].0, "s-grid");
        assert_eq!(opts[0].1.arr().unwrap().len(), 2);
        assert_eq!(opts[1].1.bool(), Some(true));
        assert_eq!(
            v.get("budgets").unwrap().get("max-work").unwrap().num(),
            Some(25000.0)
        );
        assert_eq!(v.get("engines").unwrap().arr().unwrap().len(), 2);
        assert_eq!(v.get("x"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
        assert!(parse("{\"a\": \"\\q\"}").is_err());
    }

    #[test]
    fn multibyte_strings_round_trip() {
        let v = parse("{\"s\": \"π ≤ 4\"}").unwrap();
        assert_eq!(v.get("s").unwrap().str(), Some("π ≤ 4"));
    }

    #[test]
    fn unicode_escapes_decode_including_surrogate_pairs() {
        // `json.dumps` escapes non-ASCII this way by default, so typed
        // bodies from stock clients depend on it.
        let v = parse("{\"s\": \"\\u03c0 \\u2264 4\"}").unwrap();
        assert_eq!(v.get("s").unwrap().str(), Some("π ≤ 4"));
        let v = parse("{\"s\": \"\\ud83e\\udd80\"}").unwrap();
        assert_eq!(v.get("s").unwrap().str(), Some("🦀"));
        assert_eq!(parse("\"A\\u000a\"").unwrap().str(), Some("A\n"));
        // Unpaired or malformed surrogates are errors, not replacement chars.
        assert!(parse("\"\\ud83e\"").is_err());
        assert!(parse("\"\\ud83eA\"").is_err());
        assert!(parse("\"\\udd80\"").is_err());
        assert!(parse("\"\\uZZZZ\"").is_err());
        assert!(parse("\"\\u00\"").is_err());
    }
}
