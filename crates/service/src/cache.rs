//! Content-hash result cache.
//!
//! The whole analysis pipeline is deterministic (the fuzzer's
//! bitwise-determinism tests prove it), so every finished report is
//! infinitely cacheable: the cache key is the 128-bit FNV-1a hash of the
//! *canonicalized* kernel text (pretty-print round-trip, so
//! formatting-only variants of the same kernel collide on purpose)
//! crossed with the option fingerprint. Two layers:
//!
//! * **parse layer** — raw source hash → canonical text + canonical
//!   hash, so a byte-identical resubmission skips the parser entirely;
//! * **report layer** — (canonical hash, option fingerprint) → finished
//!   [`AnalysisOutcome`](crate::pipeline::AnalysisOutcome).
//!
//! Both layers are sharded (16 independent mutexes chosen by key hash)
//! so concurrent requests on the rayon pool never serialize on one lock,
//! and both deduplicate *in-flight* computations: the first requester of
//! a key computes while later requesters block on the shard's condvar
//! and then count as hits. That makes the hit/miss counters
//! deterministic — for any request multiset, misses = distinct keys —
//! which the concurrency tests assert.
//!
//! A cache built with [`ShardedCache::with_capacity`] additionally bounds
//! its entry count: each shard holds at most ⌈capacity / shards⌉ finished
//! entries and evicts its least-recently-touched one (a monotone global
//! touch tick, never an in-flight `Pending` marker) when an insert would
//! exceed that. Evictions are counted and surfaced through
//! [`LayerStats::evictions`] — the daemon's report layer uses this to keep
//! a long-lived process from growing without bound, while the parse layer
//! (tiny entries) stays unbounded.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// 128-bit FNV-1a over the given bytes (the canonical content hash; no
/// truncation, so accidental collisions are out of the picture at any
/// realistic corpus size).
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Snapshot of one cache layer's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerStats {
    /// Requests answered from the cache (including requests that waited
    /// for an in-flight computation of the same key).
    pub hits: u64,
    /// Requests that computed and inserted (= distinct successful keys,
    /// thanks to in-flight dedup).
    pub misses: u64,
    /// Finished entries dropped by the capacity bound (0 forever on
    /// unbounded layers).
    pub evictions: u64,
}

impl LayerStats {
    /// Hit fraction (0 when the layer is untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Snapshot of both layers, served verbatim by the daemon's `/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Raw-source → canonical-text layer.
    pub parse: LayerStats,
    /// Canonical-hash × options → finished-report layer.
    pub report: LayerStats,
}

const SHARDS: usize = 16;

/// One slot of a shard map: a finished value (with its last-touch tick,
/// for LRU eviction), or a marker that another thread is computing it
/// right now.
enum Slot<V> {
    Pending,
    Ready(Arc<V>, u64),
}

struct Shard<K, V> {
    map: Mutex<HashMap<K, Slot<V>>>,
    cv: Condvar,
}

/// A sharded, interior-mutable map with in-flight deduplication. `K` is
/// expected to carry good hash bits already (content hashes), so the
/// shard index is taken from the key's own hash.
pub struct ShardedCache<K, V> {
    shards: Vec<Shard<K, V>>,
    /// Finished-entry bound per shard; 0 = unbounded.
    cap_per_shard: usize,
    /// Monotone touch clock shared by every shard (LRU recency order).
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: std::hash::Hash + Eq + Clone, V> Default for ShardedCache<K, V> {
    fn default() -> Self {
        ShardedCache::new(0)
    }
}

impl<K: std::hash::Hash + Eq + Clone, V> ShardedCache<K, V> {
    fn new(cap_per_shard: usize) -> ShardedCache<K, V> {
        ShardedCache {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    map: Mutex::new(HashMap::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            cap_per_shard,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache bounded to roughly `capacity` finished entries in total
    /// (each shard holds at most ⌈capacity / shards⌉, so the worst-case
    /// total overshoots by at most one entry per shard under skewed key
    /// distributions). `capacity = 0` means unbounded.
    pub fn with_capacity(capacity: usize) -> ShardedCache<K, V> {
        ShardedCache::new(capacity.div_ceil(SHARDS))
    }

    /// The configured total finished-entry bound (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.cap_per_shard * SHARDS
    }

    fn shard(&self, key: &K) -> &Shard<K, V> {
        use std::hash::Hasher;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Returns the cached value for `key`, or computes it with `f`.
    ///
    /// Exactly one caller computes per key: concurrent requesters of the
    /// same key block until the computation finishes and then share the
    /// result (counted as hits). Errors are never cached — the pending
    /// marker is removed so the next requester retries (budget and
    /// deadline failures depend on the options, which are part of the
    /// key, so retrying is deterministic per key).
    ///
    /// # Errors
    /// Whatever `f` returned; waiting threads re-race on the key.
    pub fn get_or_compute<E>(&self, key: K, f: impl FnOnce() -> Result<V, E>) -> Result<Arc<V>, E> {
        let shard = self.shard(&key);
        {
            let mut map = shard.map.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                match map.get_mut(&key) {
                    None => {
                        map.insert(key.clone(), Slot::Pending);
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    Some(Slot::Ready(v, touched)) => {
                        *touched = self.tick.fetch_add(1, Ordering::Relaxed);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(Arc::clone(v));
                    }
                    Some(Slot::Pending) => {
                        map = shard.cv.wait(map).unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        }
        // Compute outside the lock. The caller is responsible for
        // wrapping panicky work in a `catch_analysis` barrier so this
        // always resolves the pending marker; a panic that does escape
        // poisons only this key's waiters, not the whole process.
        let result = f();
        let mut map = shard.map.lock().unwrap_or_else(|e| e.into_inner());
        match &result {
            Ok(_) => {}
            Err(_) => {
                map.remove(&key);
                shard.cv.notify_all();
            }
        }
        match result {
            Ok(v) => {
                let v = Arc::new(v);
                map.insert(
                    key,
                    Slot::Ready(Arc::clone(&v), self.tick.fetch_add(1, Ordering::Relaxed)),
                );
                if self.cap_per_shard > 0 {
                    self.evict_over_cap(&mut map);
                }
                shard.cv.notify_all();
                Ok(v)
            }
            Err(e) => Err(e),
        }
    }

    /// Drops least-recently-touched finished entries until the shard is
    /// back at its cap. `Pending` markers are never evicted (a waiter is
    /// parked on them), and the just-inserted entry carries the newest
    /// tick so it is the last candidate.
    fn evict_over_cap(&self, map: &mut HashMap<K, Slot<V>>) {
        loop {
            let ready = map
                .iter()
                .filter(|(_, s)| matches!(s, Slot::Ready(..)))
                .count();
            if ready <= self.cap_per_shard {
                return;
            }
            let oldest = map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready(_, touched) => Some((*touched, k.clone())),
                    Slot::Pending => None,
                })
                .min_by_key(|(touched, _)| *touched);
            match oldest {
                Some((_, k)) => {
                    map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => return,
            }
        }
    }

    /// Peeks without computing or counting (used by tests).
    pub fn peek(&self, key: &K) -> Option<Arc<V>> {
        let map = self
            .shard(key)
            .map
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        match map.get(key) {
            Some(Slot::Ready(v, _)) => Some(Arc::clone(v)),
            _ => None,
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LayerStats {
        LayerStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of finished entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.map
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .values()
                    .filter(|v| matches!(v, Slot::Ready(..)))
                    .count()
            })
            .sum()
    }

    /// Whether the cache holds no finished entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test-only assertions
    use super::*;

    #[test]
    fn fnv_is_stable_and_spreads() {
        // Reference vector: FNV-1a 128 of the empty input is the offset
        // basis; of "a" it is a fixed published value.
        assert_eq!(fnv1a_128(b""), 0x6c62272e07bb014262b821756295c58d);
        assert_ne!(fnv1a_128(b"kernel a"), fnv1a_128(b"kernel b"));
    }

    #[test]
    fn compute_once_then_hit() {
        let cache: ShardedCache<u128, String> = ShardedCache::default();
        let v = cache
            .get_or_compute(7, || Ok::<_, ()>("seven".to_string()))
            .unwrap();
        assert_eq!(*v, "seven");
        let again = cache
            .get_or_compute(7, || -> Result<String, ()> { panic!("must not recompute") })
            .unwrap();
        assert_eq!(*again, "seven");
        assert_eq!(
            cache.stats(),
            LayerStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_touched() {
        // One entry per shard: any second entry landing on an occupied
        // shard must push out the older one.
        let cache: ShardedCache<u128, u64> = ShardedCache::with_capacity(SHARDS);
        assert_eq!(cache.capacity(), SHARDS);
        let n = 10 * SHARDS as u128;
        for k in 0..n {
            cache.get_or_compute(k, || Ok::<_, ()>(k as u64)).unwrap();
        }
        assert!(cache.len() <= SHARDS, "len {} over cap", cache.len());
        let stats = cache.stats();
        assert_eq!(stats.misses, n as u64);
        assert_eq!(stats.evictions, stats.misses - cache.len() as u64);

        // Recency matters: keep touching one key while flooding others on
        // (probabilistically) every shard — the touched key survives
        // because each insert's eviction victim is the *least recently*
        // touched entry, never the freshly-touched hot key. (Per-shard
        // cap of 2, so the hot key and the newest flood key coexist.)
        let cache: ShardedCache<u128, u64> = ShardedCache::with_capacity(2 * SHARDS);
        cache.get_or_compute(0, || Ok::<_, ()>(0)).unwrap();
        for k in 1..n {
            cache.get_or_compute(k, || Ok::<_, ()>(k as u64)).unwrap();
            cache
                .get_or_compute(0, || -> Result<u64, ()> { panic!("evicted the hot key") })
                .unwrap();
        }
        assert!(cache.peek(&0).is_some());
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache: ShardedCache<u128, u64> = ShardedCache::default();
        for k in 0..(4 * SHARDS as u128) {
            cache.get_or_compute(k, || Ok::<_, ()>(1)).unwrap();
        }
        assert_eq!(cache.len(), 4 * SHARDS);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache: ShardedCache<u128, String> = ShardedCache::default();
        let err = cache
            .get_or_compute(3, || Err::<String, _>("boom"))
            .unwrap_err();
        assert_eq!(err, "boom");
        assert!(cache.peek(&3).is_none());
        // The next requester retries and can succeed.
        let v = cache
            .get_or_compute(3, || Ok::<_, &str>("ok".to_string()))
            .unwrap();
        assert_eq!(*v, "ok");
    }

    /// Same shard-selection arithmetic as [`ShardedCache::shard`], exposed
    /// so tests can pick keys that land on distinct shards.
    fn shard_index<K: std::hash::Hash>(key: &K) -> usize {
        use std::hash::Hasher;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    #[test]
    fn in_flight_entries_are_never_evicted_at_capacity() {
        // Pin a `Pending` slot in several distinct shards by blocking its
        // compute, then flood the cache hard enough to evict every
        // finished entry many times over. The pinned markers must survive
        // the pressure: each blocked compute resolves exactly once with
        // its own value, and the freshly-inserted entries are still
        // peekable afterwards (nothing evicted a Pending slot, and the
        // just-finished inserts carry the newest touch ticks).
        const PINNED: usize = 4;
        let mut pinned: Vec<u128> = Vec::new();
        let mut shards_used = [false; SHARDS];
        let mut k = 0u128;
        while pinned.len() < PINNED {
            let s = shard_index(&k);
            if !shards_used[s] {
                shards_used[s] = true;
                pinned.push(k);
            }
            k += 1;
        }

        let cache: Arc<ShardedCache<u128, u64>> = Arc::new(ShardedCache::with_capacity(SHARDS));
        let started = Arc::new(AtomicU64::new(0));
        let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let computed = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for &key in &pinned {
                let cache = Arc::clone(&cache);
                let started = Arc::clone(&started);
                let release = Arc::clone(&release);
                let computed = Arc::clone(&computed);
                scope.spawn(move || {
                    let v = cache
                        .get_or_compute(key, || {
                            computed.fetch_add(1, Ordering::Relaxed);
                            started.fetch_add(1, Ordering::Relaxed);
                            while !release.load(Ordering::Relaxed) {
                                std::thread::yield_now();
                            }
                            Ok::<_, ()>(key as u64 + 1000)
                        })
                        .unwrap();
                    assert_eq!(*v, key as u64 + 1000);
                });
            }
            // Wait until every pinned compute is in flight, i.e. its
            // Pending marker sits in the shard map.
            while started.load(Ordering::Relaxed) < PINNED as u64 {
                std::thread::yield_now();
            }
            // Flood with distinct keys: with one finished entry allowed
            // per shard, almost every insert must evict something — and
            // the only legal victims are finished entries.
            let flood = 20 * SHARDS as u128;
            for f in 0..flood {
                cache
                    .get_or_compute(1_000_000 + f, || Ok::<_, ()>(0))
                    .unwrap();
            }
            assert!(
                cache.stats().evictions > 0,
                "flood never forced an eviction — the test is not exercising pressure"
            );
            release.store(true, Ordering::Relaxed);
        });

        assert_eq!(
            computed.load(Ordering::Relaxed),
            PINNED as u64,
            "each pinned key computed exactly once"
        );
        for &key in &pinned {
            let v = cache.peek(&key).unwrap_or_else(|| {
                panic!("pinned key {key} missing after release — a Pending slot was evicted")
            });
            assert_eq!(*v, key as u64 + 1000);
        }
    }

    proptest::proptest! {
        /// Counter conservation for any request multiset and capacity:
        /// every request is a hit or a miss, and every miss either still
        /// sits in the cache or was evicted. With no bound, nothing is
        /// ever evicted.
        #[test]
        fn counters_conserve_for_any_request_sequence(
            keys in proptest::collection::vec(0u8..32, 0..200),
            capacity in 0usize..40,
        ) {
            let cache: ShardedCache<u128, u64> = ShardedCache::with_capacity(capacity);
            for &k in &keys {
                cache
                    .get_or_compute(k as u128, || Ok::<_, ()>(k as u64))
                    .unwrap();
            }
            let stats = cache.stats();
            proptest::prop_assert_eq!(stats.hits + stats.misses, keys.len() as u64);
            proptest::prop_assert_eq!(stats.misses, cache.len() as u64 + stats.evictions);
            if cache.capacity() > 0 {
                proptest::prop_assert!(cache.len() <= cache.capacity());
            } else {
                proptest::prop_assert_eq!(stats.evictions, 0);
            }
        }
    }

    #[test]
    fn concurrent_same_key_dedups_to_one_miss() {
        let cache: Arc<ShardedCache<u128, u64>> = Arc::new(ShardedCache::default());
        let computed = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let computed = Arc::clone(&computed);
                scope.spawn(move || {
                    let v = cache
                        .get_or_compute(42, || {
                            computed.fetch_add(1, Ordering::Relaxed);
                            // Widen the race window so waiters really wait.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok::<_, ()>(99u64)
                        })
                        .unwrap();
                    assert_eq!(*v, 99);
                });
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 1, "one computation");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }
}
