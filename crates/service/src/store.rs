//! Crash-safe persistent report store: the write-behind third layer of
//! the result cache.
//!
//! Deriving a tight bound is expensive and the pipeline is deterministic,
//! so a finished report is worth keeping across daemon restarts. The
//! store is an **append-only journal** of rendered serve-envelope bodies
//! keyed by `(canonical content hash × options fingerprint)`, plus a
//! periodically rewritten **checksummed snapshot** the journal compacts
//! into. Durability model:
//!
//! * every append is `write(2)`-complete before the request that computed
//!   it finishes — data that reached the kernel survives `kill -9`;
//! * `fsync` happens only on [`ReportStore::flush`] (the daemon's drain
//!   path) and around compaction — a power loss between flushes can lose
//!   recent appends but can never corrupt the recovery invariant below;
//! * **recovery is corruption-tolerant**: every record carries a magic,
//!   a length prefix, and a CRC-32 of its payload. A torn tail is
//!   truncated (and counted), a corrupt record in the middle is skipped
//!   (and counted) with a magic-scan resync — the store always opens.
//!
//! The four store operations are governed seams ([`Seam::StoreAppend`],
//! [`Seam::StoreFlush`], [`Seam::StoreCompact`], [`Seam::StoreRecover`]):
//! each polls its [`CancelToken`] *before* touching the disk, so an
//! injected fault surfaces as its typed [`AnalysisError`] class and never
//! leaves a half-written record behind. Real disk failures are injected
//! through the [`StoreIo`] seam instead (short writes, disk-full, failed
//! renames), which is how the tests produce genuinely torn files.

use iolb_core::govern::{AnalysisError, CancelToken, Seam};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Per-record magic, scanned for when resyncing past a corrupt record.
pub const RECORD_MAGIC: [u8; 4] = *b"IOLR";
/// Snapshot file header magic.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"IOLBSNP1";
/// Journal file name inside the store directory.
pub const JOURNAL_FILE: &str = "journal.log";
/// Snapshot file name inside the store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Upper bound on one record's payload (a rendered report body plus its
/// key); anything larger is treated as corruption, not an allocation.
pub const MAX_RECORD: usize = 1 << 26;

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// The persistent identity of one finished report: the canonical content
/// hash crossed with the full options fingerprint (which embeds the
/// engines fingerprint; it is also stored separately for introspection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreKey {
    /// 128-bit FNV-1a of the canonicalized kernel text.
    pub canon_hash: u128,
    /// [`AnalysisOptions::fingerprint`](crate::AnalysisOptions::fingerprint).
    pub options_fp: String,
    /// The canonical engine-selection spec of the request.
    pub engines_fp: String,
}

/// Injectable disk-I/O seam. The production implementation is
/// [`RealIo`]; tests substitute failing or short-writing implementations
/// to produce genuinely torn journals and disk-full appends.
pub trait StoreIo: Send + Sync {
    /// Appends `bytes` to `file` (must be all-or-error in production).
    ///
    /// # Errors
    /// The underlying I/O error; a partial write must also error.
    fn write_all(&self, file: &mut File, bytes: &[u8]) -> std::io::Result<()>;
    /// Forces `file`'s data to stable storage.
    ///
    /// # Errors
    /// The underlying fsync error.
    fn sync(&self, file: &File) -> std::io::Result<()>;
    /// Atomically renames `from` onto `to`.
    ///
    /// # Errors
    /// The underlying rename error.
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;
}

/// The production [`StoreIo`]: plain `std::io` calls.
#[derive(Debug, Default)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn write_all(&self, file: &mut File, bytes: &[u8]) -> std::io::Result<()> {
        use std::io::Write as _;
        file.write_all(bytes)
    }
    fn sync(&self, file: &File) -> std::io::Result<()> {
        file.sync_data()
    }
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)
    }
}

/// What recovery found when the store opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records loaded from the snapshot.
    pub snapshot_records: u64,
    /// Records loaded from the journal (includes later-write-wins
    /// duplicates of snapshot keys).
    pub recovered_records: u64,
    /// Records whose CRC or framing failed — skipped, never served.
    pub skipped_corrupt_records: u64,
    /// Bytes of incomplete trailing record truncated off the journal.
    pub torn_tail_bytes: u64,
}

/// Counter snapshot of a live store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// What recovery found at open.
    pub recovery: RecoveryStats,
    /// Successful journal appends since open.
    pub appends: u64,
    /// Failed appends (the entry stays memory-only; the daemon keeps
    /// serving).
    pub append_errors: u64,
    /// Requests answered from the persisted index (store hits).
    pub persisted_hits: u64,
    /// Snapshot compactions since open.
    pub compactions: u64,
    /// Live entries in the persisted index.
    pub entries: u64,
}

/// One record, encoded:
///
/// ```text
/// magic[4] | len:u32le | payload | crc32(payload):u32le
/// payload = canon_hash:u128le
///         | opts_len:u32le | opts | eng_len:u32le | eng
///         | body_len:u32le | body
/// ```
fn encode_record(key: &StoreKey, body: &str) -> Vec<u8> {
    let mut payload =
        Vec::with_capacity(28 + key.options_fp.len() + key.engines_fp.len() + body.len());
    payload.extend_from_slice(&key.canon_hash.to_le_bytes());
    for part in [
        key.options_fp.as_bytes(),
        key.engines_fp.as_bytes(),
        body.as_bytes(),
    ] {
        payload.extend_from_slice(&(part.len() as u32).to_le_bytes());
        payload.extend_from_slice(part);
    }
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(&RECORD_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(bytes.get(at..at + 4)?.try_into().ok()?))
}

/// Decodes one payload back into `(key, body)`; `None` on framing rot
/// (covered by the CRC in practice, but length fields are re-validated).
fn decode_payload(payload: &[u8]) -> Option<(StoreKey, String)> {
    let canon_hash = u128::from_le_bytes(payload.get(..16)?.try_into().ok()?);
    let mut at = 16usize;
    let mut parts: Vec<&[u8]> = Vec::with_capacity(3);
    for _ in 0..3 {
        let len = read_u32(payload, at)? as usize;
        at += 4;
        parts.push(payload.get(at..at + len)?);
        at += len;
    }
    if at != payload.len() {
        return None;
    }
    let options_fp = std::str::from_utf8(parts[0]).ok()?.to_string();
    let engines_fp = std::str::from_utf8(parts[1]).ok()?.to_string();
    let body = std::str::from_utf8(parts[2]).ok()?.to_string();
    Some((
        StoreKey {
            canon_hash,
            options_fp,
            engines_fp,
        },
        body,
    ))
}

/// Outcome of scanning one file of records.
struct ScanOutcome {
    /// Records decoded, in file order.
    records: Vec<(StoreKey, String)>,
    /// Corrupt records (bad CRC / bad framing) skipped over.
    skipped: u64,
    /// Offset just past the last well-formed record (journal truncation
    /// point); `< file len` means a torn tail follows.
    last_good: u64,
}

/// Scans a record stream. `bytes` starts at the first record (the caller
/// strips any file header). Corrupt records are skipped with a forward
/// scan for the next [`RECORD_MAGIC`]; an incomplete trailing record ends
/// the scan with `last_good` pointing at its start.
fn scan_records(bytes: &[u8]) -> ScanOutcome {
    let mut out = ScanOutcome {
        records: Vec::new(),
        skipped: 0,
        last_good: 0,
    };
    let mut at = 0usize;
    let resync = |from: usize| -> Option<usize> {
        bytes[from..]
            .windows(RECORD_MAGIC.len())
            .position(|w| w == RECORD_MAGIC)
            .map(|p| from + p)
    };
    while at < bytes.len() {
        if bytes.len() - at < 8 || bytes[at..at + 4] != RECORD_MAGIC {
            // Not a record start. A stray magic further on means mid-file
            // corruption (skip to it); nothing further means a torn tail.
            match resync(at + 1) {
                Some(next) => {
                    out.skipped += 1;
                    at = next;
                    continue;
                }
                None => break,
            }
        }
        let len = match read_u32(bytes, at + 4) {
            Some(l) => l as usize,
            None => break,
        };
        if len > MAX_RECORD {
            match resync(at + 1) {
                Some(next) => {
                    out.skipped += 1;
                    at = next;
                    continue;
                }
                None => break,
            }
        }
        let end = at + 8 + len + 4;
        if end > bytes.len() {
            // Declared extent runs past EOF: a torn tail, unless a later
            // magic proves the length field itself was corrupted.
            match resync(at + 1) {
                Some(next) => {
                    out.skipped += 1;
                    at = next;
                    continue;
                }
                None => break,
            }
        }
        let payload = &bytes[at + 8..at + 8 + len];
        let stored_crc = read_u32(bytes, at + 8 + len).unwrap_or(0);
        if crc32(payload) != stored_crc {
            out.skipped += 1;
            at = end;
            out.last_good = end as u64;
            continue;
        }
        match decode_payload(payload) {
            Some(rec) => out.records.push(rec),
            None => out.skipped += 1,
        }
        at = end;
        out.last_good = end as u64;
    }
    out
}

fn internal(op: &str, e: impl std::fmt::Display) -> AnalysisError {
    AnalysisError::Internal(format!("report store: {op}: {e}"))
}

struct Journal {
    file: File,
    appends_since_compact: u64,
}

/// The crash-safe persistent report store. Shared immutably (`&self`
/// methods, interior mutex) by every daemon worker; see the module docs
/// for the format and durability model.
pub struct ReportStore {
    dir: PathBuf,
    io: Box<dyn StoreIo>,
    /// Compact the journal into a snapshot every this many appends
    /// (0 = never automatically).
    compact_every: u64,
    index: Mutex<HashMap<(u128, String), Arc<String>>>,
    journal: Mutex<Journal>,
    recovery: RecoveryStats,
    appends: AtomicU64,
    append_errors: AtomicU64,
    persisted_hits: AtomicU64,
    compactions: AtomicU64,
}

/// Default append count between automatic compactions.
pub const DEFAULT_COMPACT_EVERY: u64 = 1024;

impl ReportStore {
    /// Opens (creating if needed) the store in `dir` with production I/O
    /// and the default compaction cadence.
    ///
    /// # Errors
    /// Unusable directory or journal (recovery itself never fails on
    /// corrupt *data* — it skips and counts).
    pub fn open(dir: &Path) -> Result<ReportStore, AnalysisError> {
        ReportStore::open_with(
            dir,
            DEFAULT_COMPACT_EVERY,
            Box::new(RealIo),
            &CancelToken::unlimited(),
        )
    }

    /// [`ReportStore::open`] with an explicit compaction cadence, I/O
    /// implementation, and cancellation token (the recovery scan polls
    /// [`Seam::StoreRecover`] once per file).
    ///
    /// # Errors
    /// Unusable directory/journal, or the token's typed error.
    pub fn open_with(
        dir: &Path,
        compact_every: u64,
        io: Box<dyn StoreIo>,
        token: &CancelToken,
    ) -> Result<ReportStore, AnalysisError> {
        std::fs::create_dir_all(dir).map_err(|e| internal("create dir", e))?;
        let mut recovery = RecoveryStats::default();
        let mut index: HashMap<(u128, String), Arc<String>> = HashMap::new();

        // Snapshot first (older data), then journal (later wins).
        token.check(Seam::StoreRecover)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        if snapshot_path.exists() {
            let bytes = read_file(&snapshot_path)?;
            if bytes.len() >= SNAPSHOT_MAGIC.len() + 4 && bytes[..8] == SNAPSHOT_MAGIC {
                let declared = read_u32(&bytes, 8).unwrap_or(0) as u64;
                let scan = scan_records(&bytes[12..]);
                recovery.snapshot_records = scan.records.len() as u64;
                recovery.skipped_corrupt_records += scan.skipped;
                if declared > scan.records.len() as u64 {
                    // Truncated snapshot: the missing tail counts as
                    // corruption (it gets rewritten on the next compaction).
                    recovery.skipped_corrupt_records += declared - scan.records.len() as u64;
                }
                for (key, body) in scan.records {
                    index.insert((key.canon_hash, key.options_fp), Arc::new(body));
                }
            } else if !bytes.is_empty() {
                recovery.skipped_corrupt_records += 1;
            }
        }

        token.check(Seam::StoreRecover)?;
        let journal_path = dir.join(JOURNAL_FILE);
        let mut torn_truncate_to: Option<u64> = None;
        if journal_path.exists() {
            let bytes = read_file(&journal_path)?;
            let scan = scan_records(&bytes);
            recovery.recovered_records = scan.records.len() as u64;
            recovery.skipped_corrupt_records += scan.skipped;
            if scan.last_good < bytes.len() as u64 {
                recovery.torn_tail_bytes = bytes.len() as u64 - scan.last_good;
                torn_truncate_to = Some(scan.last_good);
            }
            for (key, body) in scan.records {
                index.insert((key.canon_hash, key.options_fp), Arc::new(body));
            }
        }

        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)
            .map_err(|e| internal("open journal", e))?;
        if let Some(to) = torn_truncate_to {
            file.set_len(to)
                .map_err(|e| internal("truncate torn tail", e))?;
        }

        Ok(ReportStore {
            dir: dir.to_path_buf(),
            io,
            compact_every,
            index: Mutex::new(index),
            journal: Mutex::new(Journal {
                file,
                appends_since_compact: 0,
            }),
            recovery,
            appends: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            persisted_hits: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks up a persisted body; a hit bumps the persisted-hit counter.
    /// Bodies come back as shared `Arc`s — the exact recovered bytes.
    pub fn get(&self, canon_hash: u128, options_fp: &str) -> Option<Arc<String>> {
        let index = self.index.lock().unwrap_or_else(|e| e.into_inner());
        let hit = index.get(&(canon_hash, options_fp.to_string())).cloned();
        drop(index);
        if hit.is_some() {
            self.persisted_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Appends one finished report to the journal (write-behind: the
    /// caller already holds the rendered body). The token is polled at
    /// [`Seam::StoreAppend`] *before* any bytes are written, so a fault
    /// never tears the journal. Failed appends are counted and leave the
    /// on-disk state exactly as it was.
    ///
    /// # Errors
    /// The token's typed error, or `Internal` on disk failure.
    pub fn append(
        &self,
        key: &StoreKey,
        body: &str,
        token: &CancelToken,
    ) -> Result<(), AnalysisError> {
        let result = (|| {
            token.check(Seam::StoreAppend)?;
            let record = encode_record(key, body);
            let mut journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
            self.io
                .write_all(&mut journal.file, &record)
                .map_err(|e| internal("append", e))?;
            journal.appends_since_compact += 1;
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.appends.fetch_add(1, Ordering::Relaxed);
                let mut index = self.index.lock().unwrap_or_else(|e| e.into_inner());
                index.insert(
                    (key.canon_hash, key.options_fp.clone()),
                    Arc::new(body.to_string()),
                );
                Ok(())
            }
            Err(e) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Forces the journal to stable storage (the drain path's last act
    /// before exit). Polls [`Seam::StoreFlush`] first.
    ///
    /// # Errors
    /// The token's typed error, or `Internal` on fsync failure.
    pub fn flush(&self, token: &CancelToken) -> Result<(), AnalysisError> {
        token.check(Seam::StoreFlush)?;
        let journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        self.io
            .sync(&journal.file)
            .map_err(|e| internal("flush", e))
    }

    /// Compacts: writes every live entry into a fresh checksummed
    /// snapshot (tmp → fsync → rename), then truncates the journal.
    /// Polls [`Seam::StoreCompact`] before touching anything; a failure
    /// at any step leaves the previous snapshot and journal intact.
    ///
    /// # Errors
    /// The token's typed error, or `Internal` on disk failure.
    pub fn compact(&self, token: &CancelToken) -> Result<(), AnalysisError> {
        token.check(Seam::StoreCompact)?;
        // Hold the journal lock across the whole rewrite so no append can
        // land between the snapshot capture and the journal truncation.
        let mut journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        let entries: Vec<(StoreKey, Arc<String>)> = {
            let index = self.index.lock().unwrap_or_else(|e| e.into_inner());
            let mut rows: Vec<_> = index
                .iter()
                .map(|((hash, fp), body)| {
                    (
                        StoreKey {
                            canon_hash: *hash,
                            options_fp: fp.clone(),
                            engines_fp: String::new(),
                        },
                        Arc::clone(body),
                    )
                })
                .collect();
            rows.sort_by(|a, b| {
                (a.0.canon_hash, &a.0.options_fp).cmp(&(b.0.canon_hash, &b.0.options_fp))
            });
            rows
        };
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut file = File::create(&tmp).map_err(|e| internal("snapshot tmp", e))?;
            let mut header = Vec::with_capacity(12);
            header.extend_from_slice(&SNAPSHOT_MAGIC);
            header.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            self.io
                .write_all(&mut file, &header)
                .map_err(|e| internal("snapshot header", e))?;
            for (key, body) in &entries {
                let record = encode_record(key, body);
                self.io
                    .write_all(&mut file, &record)
                    .map_err(|e| internal("snapshot record", e))?;
            }
            self.io
                .sync(&file)
                .map_err(|e| internal("snapshot sync", e))?;
        }
        self.io
            .rename(&tmp, &self.dir.join(SNAPSHOT_FILE))
            .map_err(|e| internal("snapshot rename", e))?;
        journal
            .file
            .set_len(0)
            .map_err(|e| internal("journal reset", e))?;
        self.io
            .sync(&journal.file)
            .map_err(|e| internal("journal sync", e))?;
        journal.appends_since_compact = 0;
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Compacts when the configured append cadence has been reached.
    /// Returns whether a compaction ran.
    ///
    /// # Errors
    /// Same as [`ReportStore::compact`].
    pub fn maybe_compact(&self, token: &CancelToken) -> Result<bool, AnalysisError> {
        let due = {
            let journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
            self.compact_every > 0 && journal.appends_since_compact >= self.compact_every
        };
        if due {
            self.compact(token)?;
        }
        Ok(due)
    }

    /// What recovery found when this store opened.
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            recovery: self.recovery,
            appends: self.appends.load(Ordering::Relaxed),
            append_errors: self.append_errors.load(Ordering::Relaxed),
            persisted_hits: self.persisted_hits.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }

    /// Live entries in the persisted index.
    pub fn len(&self) -> usize {
        self.index.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the persisted index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn read_file(path: &Path) -> Result<Vec<u8>, AnalysisError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| internal("read", e))?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // test-only assertions
    use super::*;
    use iolb_core::govern::{Fault, FaultKind};
    use std::sync::atomic::AtomicUsize;

    /// A unique scratch directory per test invocation (no wall clock: the
    /// process id plus a process-wide counter).
    fn scratch(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "iolb_store_{tag}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u128) -> StoreKey {
        StoreKey {
            canon_hash: n,
            options_fp: format!("opts-{n}"),
            engines_fp: "all".to_string(),
        }
    }

    fn unlimited() -> CancelToken {
        CancelToken::unlimited()
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn roundtrip_across_reopen_is_byte_identical() {
        let dir = scratch("roundtrip");
        {
            let store = ReportStore::open(&dir).unwrap();
            for n in 0..5u128 {
                store
                    .append(
                        &key(n),
                        &format!("body for {n} with unicode ⊗"),
                        &unlimited(),
                    )
                    .unwrap();
            }
            store.flush(&unlimited()).unwrap();
            assert_eq!(store.stats().appends, 5);
        }
        let store = ReportStore::open(&dir).unwrap();
        let r = store.recovery();
        assert_eq!(r.recovered_records, 5);
        assert_eq!(r.skipped_corrupt_records, 0);
        assert_eq!(r.torn_tail_bytes, 0);
        for n in 0..5u128 {
            let body = store.get(n, &format!("opts-{n}")).expect("recovered entry");
            assert_eq!(*body, format!("body for {n} with unicode ⊗"));
        }
        assert!(store.get(99, "opts-99").is_none());
        assert_eq!(store.stats().persisted_hits, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let dir = scratch("torn");
        {
            let store = ReportStore::open(&dir).unwrap();
            store.append(&key(1), "one", &unlimited()).unwrap();
            store.append(&key(2), "two", &unlimited()).unwrap();
        }
        // Simulate a crash mid-append: half a record at the journal tail.
        let journal = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&journal).unwrap();
        let good_len = bytes.len();
        bytes.extend_from_slice(&RECORD_MAGIC);
        bytes.extend_from_slice(&1000u32.to_le_bytes());
        bytes.extend_from_slice(b"torn");
        std::fs::write(&journal, &bytes).unwrap();

        let store = ReportStore::open(&dir).unwrap();
        let r = store.recovery();
        assert_eq!(r.recovered_records, 2);
        assert_eq!(r.torn_tail_bytes, 12);
        assert_eq!(r.skipped_corrupt_records, 0);
        assert_eq!(*store.get(1, "opts-1").unwrap(), "one");
        // The tail was truncated off the file itself.
        assert_eq!(std::fs::metadata(&journal).unwrap().len(), good_len as u64);
        // And appends continue from the clean point.
        store.append(&key(3), "three", &unlimited()).unwrap();
        drop(store);
        let store = ReportStore::open(&dir).unwrap();
        assert_eq!(store.recovery().recovered_records, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_is_skipped_counted_and_never_served() {
        let dir = scratch("flip");
        {
            let store = ReportStore::open(&dir).unwrap();
            store.append(&key(1), "first body", &unlimited()).unwrap();
            store.append(&key(2), "second body", &unlimited()).unwrap();
            store.append(&key(3), "third body", &unlimited()).unwrap();
        }
        let journal = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&journal).unwrap();
        // Flip one byte inside the first record's payload.
        bytes[20] ^= 0xFF;
        std::fs::write(&journal, &bytes).unwrap();

        let store = ReportStore::open(&dir).unwrap();
        let r = store.recovery();
        assert_eq!(r.skipped_corrupt_records, 1, "{r:?}");
        assert_eq!(r.recovered_records, 2);
        assert!(store.get(1, "opts-1").is_none(), "corrupt record served");
        assert_eq!(*store.get(2, "opts-2").unwrap(), "second body");
        assert_eq!(*store.get(3, "opts-3").unwrap(), "third body");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_mid_file_resyncs_on_magic() {
        let dir = scratch("resync");
        let rec1 = encode_record(&key(1), "one");
        let rec2 = encode_record(&key(2), "two");
        let mut bytes = rec1;
        bytes.extend_from_slice(b"????definitely not a record????");
        bytes.extend_from_slice(&rec2);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(JOURNAL_FILE), &bytes).unwrap();
        let store = ReportStore::open(&dir).unwrap();
        let r = store.recovery();
        assert_eq!(r.recovered_records, 2);
        assert!(r.skipped_corrupt_records >= 1, "{r:?}");
        assert_eq!(*store.get(2, "opts-2").unwrap(), "two");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_moves_entries_to_snapshot_and_last_write_wins() {
        let dir = scratch("compact");
        {
            let store = ReportStore::open_with(&dir, 0, Box::new(RealIo), &unlimited()).unwrap();
            store.append(&key(1), "old", &unlimited()).unwrap();
            store.append(&key(1), "new", &unlimited()).unwrap();
            store.append(&key(2), "two", &unlimited()).unwrap();
            store.compact(&unlimited()).unwrap();
            assert_eq!(store.stats().compactions, 1);
            // Journal is empty after compaction; appends keep working.
            assert_eq!(std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len(), 0);
            store.append(&key(3), "post-compact", &unlimited()).unwrap();
        }
        let store = ReportStore::open(&dir).unwrap();
        let r = store.recovery();
        assert_eq!(r.snapshot_records, 2);
        assert_eq!(r.recovered_records, 1);
        assert_eq!(r.skipped_corrupt_records, 0);
        assert_eq!(*store.get(1, "opts-1").unwrap(), "new");
        assert_eq!(*store.get(3, "opts-3").unwrap(), "post-compact");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn automatic_compaction_fires_on_the_cadence() {
        let dir = scratch("cadence");
        let store = ReportStore::open_with(&dir, 3, Box::new(RealIo), &unlimited()).unwrap();
        for n in 0..3u128 {
            store.append(&key(n), "x", &unlimited()).unwrap();
        }
        assert!(store.maybe_compact(&unlimited()).unwrap());
        assert!(!store.maybe_compact(&unlimited()).unwrap());
        assert_eq!(store.stats().compactions, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_snapshot_is_tolerated_and_counted() {
        let dir = scratch("snaptear");
        {
            let store = ReportStore::open_with(&dir, 0, Box::new(RealIo), &unlimited()).unwrap();
            for n in 0..4u128 {
                store.append(&key(n), "snap", &unlimited()).unwrap();
            }
            store.compact(&unlimited()).unwrap();
        }
        let snap = dir.join(SNAPSHOT_FILE);
        let bytes = std::fs::read(&snap).unwrap();
        std::fs::write(&snap, &bytes[..bytes.len() - 10]).unwrap();
        let store = ReportStore::open(&dir).unwrap();
        let r = store.recovery();
        assert_eq!(r.snapshot_records, 3);
        assert!(r.skipped_corrupt_records >= 1, "{r:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A [`StoreIo`] that fails the nth write with the given error kind,
    /// optionally landing a short (torn) prefix first.
    struct FailNthWrite {
        countdown: AtomicUsize,
        torn_prefix: usize,
        kind: std::io::ErrorKind,
    }

    impl StoreIo for FailNthWrite {
        fn write_all(&self, file: &mut File, bytes: &[u8]) -> std::io::Result<()> {
            if self.countdown.fetch_sub(1, Ordering::SeqCst) == 1 {
                if self.torn_prefix > 0 {
                    use std::io::Write as _;
                    file.write_all(&bytes[..self.torn_prefix.min(bytes.len())])?;
                }
                return Err(std::io::Error::new(self.kind, "injected disk fault"));
            }
            RealIo.write_all(file, bytes)
        }
        fn sync(&self, file: &File) -> std::io::Result<()> {
            RealIo.sync(file)
        }
        fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
            RealIo.rename(from, to)
        }
    }

    #[test]
    fn disk_full_append_is_counted_and_store_keeps_serving() {
        let dir = scratch("diskfull");
        let io = FailNthWrite {
            countdown: AtomicUsize::new(2),
            torn_prefix: 0,
            kind: std::io::ErrorKind::StorageFull,
        };
        let store = ReportStore::open_with(&dir, 0, Box::new(io), &unlimited()).unwrap();
        store.append(&key(1), "ok", &unlimited()).unwrap();
        let err = store.append(&key(2), "fails", &unlimited()).unwrap_err();
        assert!(matches!(err, AnalysisError::Internal(_)), "{err:?}");
        // Third append works again; the failed one was never indexed.
        store.append(&key(3), "ok again", &unlimited()).unwrap();
        let stats = store.stats();
        assert_eq!(stats.append_errors, 1);
        assert_eq!(stats.appends, 2);
        assert!(store.get(2, "opts-2").is_none());
        assert_eq!(*store.get(3, "opts-3").unwrap(), "ok again");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_tears_the_journal_and_recovery_truncates_it() {
        let dir = scratch("shortwrite");
        {
            let io = FailNthWrite {
                countdown: AtomicUsize::new(2),
                torn_prefix: 9,
                kind: std::io::ErrorKind::Other,
            };
            let store = ReportStore::open_with(&dir, 0, Box::new(io), &unlimited()).unwrap();
            store.append(&key(1), "intact", &unlimited()).unwrap();
            assert!(store.append(&key(2), "torn", &unlimited()).is_err());
        }
        let store = ReportStore::open(&dir).unwrap();
        let r = store.recovery();
        assert_eq!(r.recovered_records, 1);
        assert_eq!(r.torn_tail_bytes, 9);
        assert_eq!(*store.get(1, "opts-1").unwrap(), "intact");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_snapshot_rename_leaves_previous_state_intact() {
        struct NoRename;
        impl StoreIo for NoRename {
            fn write_all(&self, file: &mut File, bytes: &[u8]) -> std::io::Result<()> {
                RealIo.write_all(file, bytes)
            }
            fn sync(&self, file: &File) -> std::io::Result<()> {
                RealIo.sync(file)
            }
            fn rename(&self, _: &Path, _: &Path) -> std::io::Result<()> {
                Err(std::io::Error::other("injected rename failure"))
            }
        }
        let dir = scratch("norename");
        {
            let store = ReportStore::open_with(&dir, 0, Box::new(NoRename), &unlimited()).unwrap();
            store.append(&key(1), "kept", &unlimited()).unwrap();
            assert!(store.compact(&unlimited()).is_err());
            assert_eq!(store.stats().compactions, 0);
        }
        let store = ReportStore::open(&dir).unwrap();
        assert_eq!(*store.get(1, "opts-1").unwrap(), "kept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_store_seam_surfaces_its_fault_class_and_control_reruns_clean() {
        let dir = scratch("seams");
        let store = ReportStore::open(&dir).unwrap();
        for (seam, run) in [
            (
                Seam::StoreAppend,
                Box::new(|t: &CancelToken| store.append(&key(7), "b", t))
                    as Box<dyn Fn(&CancelToken) -> Result<(), AnalysisError>>,
            ),
            (Seam::StoreFlush, Box::new(|t: &CancelToken| store.flush(t))),
            (
                Seam::StoreCompact,
                Box::new(|t: &CancelToken| store.compact(t)),
            ),
        ] {
            for kind in FaultKind::ALL {
                if kind == FaultKind::Panic {
                    continue; // panic containment is the harness's job
                }
                let token = CancelToken::with_fault(Fault { kind, seam });
                let err = run(&token).unwrap_err();
                assert_eq!(err.class_name(), kind.expected_class(), "{seam:?}: {err:?}");
                run(&unlimited()).unwrap_or_else(|e| panic!("control at {seam:?}: {e:?}"));
            }
        }
        // Recovery seam: a fresh open under a fault, then a clean control.
        for kind in [FaultKind::Oom, FaultKind::Deadline] {
            let token = CancelToken::with_fault(Fault {
                kind,
                seam: Seam::StoreRecover,
            });
            let err = match ReportStore::open_with(&dir, 0, Box::new(RealIo), &token) {
                Err(e) => e,
                Ok(_) => panic!("recovery fault at {kind:?} did not surface"),
            };
            assert_eq!(err.class_name(), kind.expected_class());
        }
        drop(store);
        assert!(ReportStore::open(&dir).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
