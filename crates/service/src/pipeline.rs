//! The analysis pipeline as composable, individually-callable stages.
//!
//! This is the service core that used to be welded into the `iolb` CLI:
//! parse → canonicalize → admission → access certification → σ/hourglass
//! derivation → CDAG + miss-curve sweep → tightness measurement. Every
//! stage is threaded through the `govern` seams ([`Budget`] ceilings and
//! a polled [`CancelToken`]), every front-end (CLI batch, `iolbd`
//! daemon) drives the same [`Pipeline::analyze_with_token`], and the
//! whole chain is deterministic — which is why [`Pipeline`] can sit
//! behind a content-hash [`ResultCache`](crate::cache) and serve repeat
//! requests as lookups.

use crate::cache::{CacheStats, ShardedCache};
use crate::options::AnalysisOptions;
use crate::store::{ReportStore, StoreKey};
use iolb_bench::sweep::{
    coarse_s_offsets, try_run_sweep_opts, CurveStrategy, SweepKernel, SweepReport,
};
use iolb_bench::tightness::{try_run_tightness, KernelTightness, TightnessJob};
use iolb_core::classical::ClassicalBound;
use iolb_core::govern::{
    catch_analysis_mut, AnalysisError, Budget, CancelToken, CostEstimate, Degradation,
};
use iolb_core::hourglass::{self, HourglassBound};
use iolb_core::report::{derive_with_split, observation_sizes, SplitBinding};
use iolb_core::{Analysis, EngineRegistry};
use iolb_ir::parse::{parse_kernel, print_kernel, KernelFile};
use iolb_ir::Program;
use iolb_symbolic::Var;
use std::cell::Cell;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// stages
// ---------------------------------------------------------------------------

/// Parses kernel text.
///
/// # Errors
/// [`AnalysisError::Parse`] with the spanned diagnostic.
pub fn parse_stage(src: &str) -> Result<KernelFile, AnalysisError> {
    parse_kernel(src).map_err(|e| AnalysisError::Parse(e.to_string()))
}

/// Canonical text of a parsed kernel: the pretty-printer's output, which
/// the round-trip property test pins as a fixed point (print ∘ parse ∘
/// print = print). Formatting-only variants of the same kernel —
/// whitespace, comments — all canonicalize to the same bytes, so their
/// content hashes collide on purpose and they share one cache entry.
pub fn canonicalize_kernel(kernel: &KernelFile) -> String {
    print_kernel(kernel)
}

/// Parses and canonicalizes in one step, returning the canonical text
/// and its 128-bit content hash.
///
/// # Errors
/// [`AnalysisError::Parse`] when the source does not parse.
pub fn canonicalize(src: &str) -> Result<(String, u128), AnalysisError> {
    let kernel = parse_stage(src)?;
    let text = canonicalize_kernel(&kernel);
    let hash = crate::cache::fnv1a_128(text.as_bytes());
    Ok((text, hash))
}

/// Resolves concrete parameter values: override entries win over the
/// file's `default` directive, which must cover everything else.
/// Override entries naming no program parameter are an error, not a
/// silent no-op.
///
/// # Errors
/// [`AnalysisError::Refused`] — resubmitting with a larger budget will
/// not help.
pub fn resolve_params(
    kernel: &KernelFile,
    over: &[(String, i64)],
) -> Result<Vec<i64>, AnalysisError> {
    for (n, _) in over {
        if !kernel.program.params.contains(n) {
            return Err(AnalysisError::Refused(format!(
                "params override names unknown parameter {n} (kernel has: {})",
                kernel.program.params.join(", ")
            )));
        }
    }
    kernel
        .program
        .params
        .iter()
        .map(|p| {
            over.iter()
                .find(|(n, _)| n == p)
                .map(|(_, v)| *v)
                .or_else(|| {
                    kernel
                        .defaults
                        .iter()
                        .find(|(n, _)| n == p)
                        .map(|(_, v)| *v)
                })
                .ok_or_else(|| {
                    AnalysisError::Refused(format!(
                        "parameter {p} has no `default` directive (pass params {p}=…)"
                    ))
                })
        })
        .collect()
}

/// Admission control: estimates every size-like resource from the
/// symbolic loop bounds, refuses before materializing anything, and
/// picks the degradation rung the work budget affords (dense grid →
/// coarse grid → symbolic bounds only). Under `no_degrade`, any rung
/// below full is a budget refusal instead.
///
/// # Errors
/// The typed admission error (budget class, or whatever the estimator
/// itself surfaced).
pub fn admission_stage(
    program: &Program,
    params: &[i64],
    opts: &AnalysisOptions,
    token: &CancelToken,
) -> Result<(CostEstimate, Degradation), AnalysisError> {
    let estimate = iolb_ir::admission::estimate(program, params, &opts.budget, token)?;
    estimate.check(&opts.budget)?;
    let degradation = estimate.degradation(
        &opts.budget,
        opts.s_offsets.len() as u64,
        coarse_s_offsets().len() as u64,
    );
    if opts.no_degrade && degradation != Degradation::Full {
        return Err(AnalysisError::BudgetExceeded {
            resource: "work",
            needed: estimate
                .trace_len
                .saturating_mul(opts.s_offsets.len() as u64),
            limit: opts.budget.max_work,
        });
    }
    Ok((estimate, degradation))
}

/// Access certification: the synthesized semantics must perform exactly
/// the declared accesses (what lets everything downstream trust the
/// declared affine structure). Returns the number of certified dynamic
/// statement instances.
///
/// # Errors
/// [`AnalysisError::Refused`] when any instance deviates.
pub fn certify_stage(program: &Program, params: &[i64]) -> Result<u64, AnalysisError> {
    iolb_ir::interp::validate_accesses(program, params)
        .map_err(|e| AnalysisError::Refused(format!("access certification failed: {e}")))
}

/// Everything the derivation stage produced: the bounds themselves (for
/// the downstream sweep/tightness stages) plus display-ready summaries
/// (for the front-ends' renderers).
#[derive(Debug)]
pub struct Derived {
    /// The analyzed statement's name.
    pub stmt_name: String,
    /// Classical K-partition bound, when a covering projection set exists.
    pub classical: Option<ClassicalBound>,
    /// Hourglass bound, when the pattern is present and certifies.
    pub hourglass: Option<HourglassBound>,
    /// The §5.3 split binding that was actually applied.
    pub applied_split: Option<SplitBinding>,
    /// The file's own `split` directive (forwarded to the sweep so the
    /// printed derivation and the validated bound cannot diverge).
    pub dsl_split: Option<SplitBinding>,
    /// Hourglass chains certified (0 without a pattern).
    pub chains: usize,
}

/// σ-bound + hourglass derivation at small observation sizes.
///
/// # Errors
/// [`AnalysisError::Refused`] on analysis failures, unknown statements,
/// or an hourglass pattern that fails certification.
pub fn derive_stage(
    kernel: &KernelFile,
    params: &[i64],
    stmt_override: Option<&str>,
) -> Result<Derived, AnalysisError> {
    let program = &kernel.program;
    let stmt_name = stmt_override
        .map(str::to_string)
        .or_else(|| kernel.analyze.clone())
        .unwrap_or_else(|| deepest_stmt(program));
    let stmt = program
        .stmt_id(&stmt_name)
        .ok_or_else(|| AnalysisError::Refused(format!("no statement named {stmt_name}")))?;

    let observe = observation_sizes(params);
    let analysis = Analysis::run(program, &observe)
        .map_err(|e| AnalysisError::Refused(format!("analysis: {e}")))?;
    let classical = analysis.try_classical_bound(stmt);
    let dsl_split = dsl_split_binding(kernel);
    let (hourglass, applied_split, chains) = match analysis.detect_hourglass(stmt) {
        Some(pat) => {
            let chains = hourglass::certify(program, &pat, &observe[0])
                .map_err(|e| AnalysisError::Refused(format!("hourglass certification: {e}")))?;
            // The same split decision the sweep makes (shared helper +
            // identical observation sizes), so the printed derivation and
            // the validated bound cannot diverge.
            let (b, applied) = derive_with_split(program, &pat, dsl_split.clone())
                .map_err(AnalysisError::Refused)?;
            (Some(b), applied, chains)
        }
        None => (None, None, 0),
    };
    Ok(Derived {
        stmt_name,
        classical,
        hourglass,
        applied_split,
        dsl_split,
        chains,
    })
}

/// Exact CDAG + MIN/LRU miss-curve validation over the S grid, with the
/// request's graph-level engine selection evaluated per grid point. Takes
/// the canonical source rather than a `Program` because the sweep needs
/// an owned program and `Program` is not clonable (its statements carry
/// closures) — one extra parse of already-canonical text.
///
/// `strategy` picks the curve-pricing path: the streaming sharded
/// engines fed straight from the CDAG (default; cross-checked against
/// the materialized reference on small traces) or the legacy
/// materialized engine, forced.
///
/// # Errors
/// The first typed error any sweep stage produced.
#[allow(clippy::too_many_arguments)]
pub fn sweep_stage(
    name: &str,
    canon_src: &str,
    stmt: &str,
    params: &[i64],
    split: Option<SplitBinding>,
    s_offsets: &[usize],
    budget: &Budget,
    token: &CancelToken,
    registry: &EngineRegistry,
    strategy: CurveStrategy,
) -> Result<SweepReport, AnalysisError> {
    let sweep = SweepKernel {
        name: name.to_string(),
        program: reparse(canon_src)?,
        stmt: stmt.to_string(),
        params: params.to_vec(),
        split,
        s_offsets: s_offsets.to_vec(),
    };
    try_run_sweep_opts(vec![sweep], budget, token, registry, strategy)
}

/// Tightness: the best measured blocked upper bound per S (the file's
/// `schedule` directives swept by the auto-tuner) vs the derived bound.
///
/// # Errors
/// The first typed error the tuner produced.
#[allow(clippy::too_many_arguments)]
pub fn tightness_stage(
    name: &str,
    canon_src: &str,
    kernel: &KernelFile,
    params: &[i64],
    env: Vec<(Var, i128)>,
    derived: &Derived,
    s_offsets: &[usize],
    budget: &Budget,
    token: &CancelToken,
) -> Result<KernelTightness, AnalysisError> {
    let job = TightnessJob {
        name: name.to_string(),
        program: reparse(canon_src)?,
        params: params.to_vec(),
        env,
        classical: derived.classical.clone(),
        hourglass: derived.hourglass.clone(),
        schedule: kernel.schedule.clone(),
        s_offsets: s_offsets.to_vec(),
    };
    let report = try_run_tightness(vec![job], budget, token)?;
    report
        .kernels
        .into_iter()
        .next()
        .ok_or_else(|| AnalysisError::Internal("tightness produced no kernel".to_string()))
}

/// Fallback analysis target: the deepest statement, ties → latest in
/// schedule order.
fn deepest_stmt(program: &Program) -> String {
    program
        .default_analyze_stmt()
        .map(|id| program.stmt(id).name.clone())
        .unwrap_or_default()
}

/// The DSL `split` directive as a [`SplitBinding`] on the paper's `Ms`.
fn dsl_split_binding(kernel: &KernelFile) -> Option<SplitBinding> {
    kernel.split.as_ref().map(|(name, expr)| SplitBinding {
        var: Var::new(name),
        expr: expr.clone(),
    })
}

/// A second, independent parse of the same source (the [`Program`] is not
/// clonable: its statements carry closures).
fn reparse(src: &str) -> Result<Program, AnalysisError> {
    Ok(parse_stage(src)?.program)
}

// ---------------------------------------------------------------------------
// outcome
// ---------------------------------------------------------------------------

/// Display-ready classical-bound summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassicalSummary {
    /// Brascamp–Lieb exponent σ.
    pub sigma: String,
    /// In-set refinement divisor m.
    pub m: String,
    /// The asymptotic bound expression.
    pub expr: String,
}

/// Display-ready hourglass-bound summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HourglassSummary {
    /// Certified chains at the observation size.
    pub chains: usize,
    /// Minimal hourglass width.
    pub w_min: String,
    /// Maximal hourglass width.
    pub w_max: String,
    /// Main bound (tool-convention volume).
    pub main_tool: String,
}

/// Display-ready §5.3 split summary (present only when a binding was
/// actually applied).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitSummary {
    /// Split variable name (the paper's `Ms`).
    pub var: String,
    /// The binding expression.
    pub expr: String,
}

/// What the work budget did to this request (present below
/// [`Degradation::Full`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeInfo {
    /// Work the requested grid would have needed (trace × grid points).
    pub work_needed: u64,
    /// The configured work ceiling.
    pub max_work: u64,
    /// Points of the coarse fallback grid.
    pub coarse_points: usize,
}

/// The finished, cacheable result of one analysis request: structured
/// data only — rendering (tables, human text, JSON framing) is the
/// front-ends' job.
#[derive(Debug)]
pub struct AnalysisOutcome {
    /// Kernel name (from the program header).
    pub name: String,
    /// Resolved named parameter values, in program order.
    pub params: Vec<(String, i64)>,
    /// Access-certified dynamic statement instances.
    pub certified_instances: u64,
    /// The analyzed statement.
    pub stmt: String,
    /// Classical σ-bound summary, when derivable.
    pub classical: Option<ClassicalSummary>,
    /// Applied §5.3 split, when any.
    pub split: Option<SplitSummary>,
    /// Hourglass summary, when the kernel has the pattern.
    pub hourglass: Option<HourglassSummary>,
    /// The degradation rung the work budget afforded.
    pub degradation: Degradation,
    /// Budget numbers behind a below-full rung.
    pub degrade: Option<DegradeInfo>,
    /// The validation matrix (`None` under `derive_only` or the
    /// bounds-only rung).
    pub sweep: Option<SweepReport>,
    /// Tightness measurement (absent under `no_tightness`, `derive_only`,
    /// or any degradation below full).
    pub tightness: Option<KernelTightness>,
    /// All validation cells sound (vacuously true when validation was
    /// skipped).
    pub sound: bool,
}

/// Runs the full uncached chain on (canonical) kernel text.
///
/// # Errors
/// Every failure is a typed [`AnalysisError`].
pub fn analyze_uncached(
    src: &str,
    opts: &AnalysisOptions,
    token: &CancelToken,
) -> Result<AnalysisOutcome, AnalysisError> {
    let kernel = parse_stage(src)?;
    let program = &kernel.program;
    let params = resolve_params(&kernel, &opts.params_override)?;
    let named: Vec<(String, i64)> = program.params.iter().cloned().zip(params.clone()).collect();

    let (estimate, degradation) = admission_stage(program, &params, opts, token)?;
    let certified = certify_stage(program, &params)?;
    let derived = derive_stage(&kernel, &params, opts.stmt_override.as_deref())?;

    let classical = derived.classical.as_ref().map(|b| ClassicalSummary {
        sigma: b.sigma.to_string(),
        m: b.m.to_string(),
        expr: b.expr.to_string(),
    });
    let split = derived.applied_split.as_ref().map(|b| SplitSummary {
        var: b.var.name().to_string(),
        expr: b.expr.to_string(),
    });
    let hourglass = derived.hourglass.as_ref().map(|b| HourglassSummary {
        chains: derived.chains,
        w_min: b.w_min.to_string(),
        w_max: b.w_max.to_string(),
        main_tool: b.main_tool.to_string(),
    });
    let degrade = (degradation != Degradation::Full).then(|| DegradeInfo {
        work_needed: estimate
            .trace_len
            .saturating_mul(opts.s_offsets.len() as u64),
        max_work: opts.budget.max_work,
        coarse_points: coarse_s_offsets().len(),
    });

    let mut outcome = AnalysisOutcome {
        name: program.name.clone(),
        params: named.clone(),
        certified_instances: certified,
        stmt: derived.stmt_name.clone(),
        classical,
        split,
        hourglass,
        degradation,
        degrade,
        sweep: None,
        tightness: None,
        sound: true,
    };
    if opts.derive_only || degradation == Degradation::BoundsOnly {
        return Ok(outcome);
    }
    let s_offsets = match degradation {
        Degradation::Coarse => coarse_s_offsets(),
        _ => opts.s_offsets.clone(),
    };

    let registry = opts.registry().map_err(AnalysisError::Refused)?;
    let mut report = sweep_stage(
        &outcome.name,
        src,
        &derived.stmt_name,
        &params,
        derived.dsl_split.clone(),
        &s_offsets,
        &opts.budget,
        token,
        &registry,
        opts.curve_strategy,
    )?;
    for row in &mut report.degradation {
        row.level = degradation;
    }
    outcome.sound = report.rows.iter().all(iolb_bench::sweep::SweepRow::sound);

    outcome.tightness = if opts.no_tightness || degradation != Degradation::Full {
        None
    } else {
        let mut env: Vec<(Var, i128)> = named
            .iter()
            .map(|(n, v)| (Var::new(n), *v as i128))
            .collect();
        if let Some(b) = &derived.applied_split {
            env.push((b.var, b.eval(&named)));
        }
        Some(tightness_stage(
            &outcome.name,
            src,
            &kernel,
            &params,
            env,
            &derived,
            &s_offsets,
            &opts.budget,
            token,
        )?)
    };
    outcome.sweep = Some(report);
    Ok(outcome)
}

// ---------------------------------------------------------------------------
// the cached pipeline
// ---------------------------------------------------------------------------

/// One entry of the parse layer: the canonical text and its hash, shared
/// by every formatting variant that parses to the same kernel.
#[derive(Debug)]
pub struct CanonEntry {
    /// The pretty-printed (canonical) kernel text.
    pub text: String,
    /// 128-bit FNV-1a of the canonical text.
    pub hash: u128,
}

/// Default bound on finished report entries (reports are the heavy layer:
/// a full sweep + tightness outcome per entry). The parse layer stores
/// only canonical text and stays unbounded.
pub const DEFAULT_REPORT_CAPACITY: usize = 512;

/// The two-layer result cache (see the [`crate::cache`] docs for the
/// sharding, in-flight-dedup, and LRU-capacity story).
pub struct ResultCache {
    parse: ShardedCache<u128, CanonEntry>,
    report: ShardedCache<(u128, String), AnalysisOutcome>,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::with_report_capacity(DEFAULT_REPORT_CAPACITY)
    }
}

impl ResultCache {
    /// A cache whose report layer is bounded to roughly `capacity`
    /// finished entries (0 = unbounded), evicting least-recently-used
    /// entries past that.
    pub fn with_report_capacity(capacity: usize) -> ResultCache {
        ResultCache {
            parse: ShardedCache::default(),
            report: ShardedCache::with_capacity(capacity),
        }
    }

    /// Counter snapshot of both layers.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            parse: self.parse.stats(),
            report: self.report.stats(),
        }
    }

    /// Finished report entries currently cached.
    pub fn report_entries(&self) -> usize {
        self.report.len()
    }

    /// The report layer's configured entry bound (0 = unbounded).
    pub fn report_capacity(&self) -> usize {
        self.report.capacity()
    }
}

/// An analysis answer plus where it came from.
#[derive(Debug, Clone)]
pub struct CachedAnalysis {
    /// The (possibly shared) finished report.
    pub outcome: Arc<AnalysisOutcome>,
    /// Whether the report layer answered without running the pipeline.
    pub cached: bool,
}

/// A served analysis answer: the rendered `serve/v1` body plus where the
/// bytes came from. Bodies are shared `Arc`s — a store hit returns the
/// exact recovered bytes.
#[derive(Debug, Clone)]
pub struct ServedAnalysis {
    /// The rendered response body.
    pub body: Arc<String>,
    /// Which layer answered.
    pub source: ServeSource,
}

/// Which layer produced a [`ServedAnalysis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeSource {
    /// The pipeline ran (a miss everywhere).
    Computed,
    /// The in-memory report cache answered.
    Memory,
    /// The persistent store answered (warm restart).
    Store,
}

impl ServedAnalysis {
    /// Whether the answer came from a cache layer (memory or disk) rather
    /// than a fresh pipeline run — the daemon's `X-Iolb-Cache` header.
    pub fn cached(&self) -> bool {
        self.source != ServeSource::Computed
    }
}

/// The analysis service core: the staged pipeline behind the two-layer
/// content-hash cache, with an optional persistent store as write-behind
/// third layer. Cheap to share (`&Pipeline` is `Sync`); one instance per
/// daemon / batch run.
#[derive(Default)]
pub struct Pipeline {
    cache: ResultCache,
    store: Option<ReportStore>,
}

impl Pipeline {
    /// A pipeline with an empty cache ([`DEFAULT_REPORT_CAPACITY`] report
    /// entries).
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// A pipeline whose report cache is bounded to roughly `capacity`
    /// entries (0 = unbounded).
    pub fn with_report_capacity(capacity: usize) -> Pipeline {
        Pipeline {
            cache: ResultCache::with_report_capacity(capacity),
            store: None,
        }
    }

    /// [`Pipeline::with_report_capacity`] plus a persistent report store:
    /// every freshly computed report is appended write-behind, and
    /// reports missing from memory are served byte-identical from the
    /// store (warm restarts).
    pub fn with_store(capacity: usize, store: ReportStore) -> Pipeline {
        Pipeline {
            cache: ResultCache::with_report_capacity(capacity),
            store: Some(store),
        }
    }

    /// Cache access (stats endpoints, tests).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The persistent store, when one is attached.
    pub fn store(&self) -> Option<&ReportStore> {
        self.store.as_ref()
    }

    /// Fsyncs the store journal (the daemon's drain path); a no-op
    /// without a store.
    ///
    /// # Errors
    /// `Internal` on fsync failure.
    pub fn flush_store(&self) -> Result<(), AnalysisError> {
        match &self.store {
            Some(s) => s.flush(&CancelToken::unlimited()),
            None => Ok(()),
        }
    }

    /// [`Pipeline::analyze_with_token`] with a token built from the
    /// options: the injected fault when one is armed, else the budget's
    /// own deadline token.
    ///
    /// # Errors
    /// Every failure is a typed [`AnalysisError`].
    pub fn analyze(
        &self,
        src: &str,
        opts: &AnalysisOptions,
    ) -> Result<CachedAnalysis, AnalysisError> {
        let token = match opts.inject {
            Some(fault) => CancelToken::with_fault(fault),
            None => opts.budget.token(),
        };
        self.analyze_with_token(src, opts, &token)
    }

    /// Analyzes one kernel text under the given options and cancellation
    /// token, answering from the cache when the canonicalized text ×
    /// option fingerprint has been analyzed before. Fault-injection
    /// requests bypass the cache entirely (their purpose is to exercise
    /// the pipeline). Errors are never cached.
    ///
    /// # Errors
    /// Every failure is a typed [`AnalysisError`]; panics inside the
    /// pipeline are contained and surface as `Internal`.
    pub fn analyze_with_token(
        &self,
        src: &str,
        opts: &AnalysisOptions,
        token: &CancelToken,
    ) -> Result<CachedAnalysis, AnalysisError> {
        if opts.inject.is_some() {
            let outcome = catch_analysis_mut(|| analyze_uncached(src, opts, token))?;
            return Ok(CachedAnalysis {
                outcome: Arc::new(outcome),
                cached: false,
            });
        }
        let raw_hash = crate::cache::fnv1a_128(src.as_bytes());
        let canon = self.cache.parse.get_or_compute(raw_hash, || {
            let (text, hash) = canonicalize(src)?;
            Ok::<_, AnalysisError>(CanonEntry { text, hash })
        })?;
        let key = (canon.hash, opts.fingerprint());
        let computed = Cell::new(false);
        let outcome = self.cache.report.get_or_compute(key, || {
            computed.set(true);
            catch_analysis_mut(|| analyze_uncached(&canon.text, opts, token))
        })?;
        Ok(CachedAnalysis {
            outcome,
            cached: !computed.get(),
        })
    }

    /// [`Pipeline::analyze`] rendered to the canonical `serve/v1` body,
    /// with the persistent store as the third layer: a report missing
    /// from the in-memory cache but present on disk is served
    /// byte-identical without re-running the pipeline, and every freshly
    /// computed report is appended write-behind (append failures are
    /// counted in the store's stats but never fail the request — the
    /// answer is already in hand).
    ///
    /// # Errors
    /// Every failure is a typed [`AnalysisError`].
    pub fn serve(
        &self,
        src: &str,
        opts: &AnalysisOptions,
    ) -> Result<ServedAnalysis, AnalysisError> {
        let token = match opts.inject {
            Some(fault) => CancelToken::with_fault(fault),
            None => opts.budget.token(),
        };
        if opts.inject.is_some() {
            // Fault-injection requests bypass every layer, including the
            // store: their purpose is to exercise the pipeline.
            let outcome = catch_analysis_mut(|| analyze_uncached(src, opts, &token))?;
            return Ok(ServedAnalysis {
                body: Arc::new(crate::render::outcome_body(&outcome)),
                source: ServeSource::Computed,
            });
        }
        let raw_hash = crate::cache::fnv1a_128(src.as_bytes());
        let canon = self.cache.parse.get_or_compute(raw_hash, || {
            let (text, hash) = canonicalize(src)?;
            Ok::<_, AnalysisError>(CanonEntry { text, hash })
        })?;
        let fingerprint = opts.fingerprint();
        if let Some(store) = &self.store {
            // Peek (non-counting) so a disk answer leaves the memory
            // counters untouched; the store keeps its own hit counter.
            if self
                .cache
                .report
                .peek(&(canon.hash, fingerprint.clone()))
                .is_none()
            {
                if let Some(body) = store.get(canon.hash, &fingerprint) {
                    return Ok(ServedAnalysis {
                        body,
                        source: ServeSource::Store,
                    });
                }
            }
        }
        let computed = Cell::new(false);
        let outcome =
            self.cache
                .report
                .get_or_compute((canon.hash, fingerprint.clone()), || {
                    computed.set(true);
                    catch_analysis_mut(|| analyze_uncached(&canon.text, opts, &token))
                })?;
        let body = Arc::new(crate::render::outcome_body(&outcome));
        if !computed.get() {
            return Ok(ServedAnalysis {
                body,
                source: ServeSource::Memory,
            });
        }
        if let Some(store) = &self.store {
            let key = StoreKey {
                canon_hash: canon.hash,
                options_fp: fingerprint,
                engines_fp: opts.engines.clone(),
            };
            // Write-behind with an unlimited token: the request's own
            // deadline must not tear persistence, and errors are counted
            // by the store itself.
            let unlimited = CancelToken::unlimited();
            if store.append(&key, &body, &unlimited).is_ok() {
                let _ = store.maybe_compact(&unlimited);
            }
        }
        Ok(ServedAnalysis {
            body,
            source: ServeSource::Computed,
        })
    }
}
