//! The paper's linear-algebra kernels, from scratch.
//!
//! Every kernel of the evaluation (§5) is provided in two synchronized
//! forms:
//!
//! 1. an **IR program** ([`iolb_ir::Program`]) transcribed statement-for-
//!    statement from the paper's listings — the input of the bound
//!    derivation engine, certified by `validate_accesses`, and
//! 2. a **native f64 implementation** used for numerical ground truth
//!    (QR / bidiagonal / Hessenberg reconstruction checks) and performance
//!    benchmarks.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`mgs`] | Modified Gram-Schmidt, right-looking (Fig. 1) + tiled left-looking (Fig. 8, Appendix A.1) |
//! | [`householder`] | QR Householder A2V/GEQR2 (Fig. 3), V2Q/ORG2R (Fig. 6), tiled A2V (Fig. 9, Appendix A.2) |
//! | [`gebd2`] | reduction to bidiagonal form (LAPACK GEBD2) |
//! | [`gehd2`] | reduction to Hessenberg form (Fig. 7) |
//! | [`gemm`] | matrix multiply — the classical K-partitioning baseline (no hourglass) |
//!
//! [`sinks::MemSimSink`] bridges the IR interpreter to the two-level cache
//! simulator so any kernel/schedule's I/O can be measured directly.

pub mod exec;
pub mod gebd2;
pub mod gehd2;
pub mod gemm;
pub mod householder;
pub mod matrix;
pub mod mgs;
pub mod sinks;

pub use matrix::Matrix;

/// A kernel registered for sweeping in benches and validation tests.
pub struct KernelInfo {
    /// Kernel name as used in the paper's tables.
    pub name: &'static str,
    /// IR constructor.
    pub build: fn() -> iolb_ir::Program,
    /// Parameter values for an (M, N) problem, in program-parameter order.
    pub params: fn(m: i64, n: i64) -> Vec<i64>,
    /// Name of the hourglass (broadcast) statement, when the kernel has one.
    pub hourglass_stmt: Option<&'static str>,
}

/// All analyzable (untiled, unit-step) kernels.
pub fn analyzable_kernels() -> Vec<KernelInfo> {
    vec![
        KernelInfo {
            name: "MGS",
            build: mgs::program,
            params: |m, n| vec![m, n],
            hourglass_stmt: Some("SU"),
        },
        KernelInfo {
            name: "QR HH A2V",
            build: householder::a2v_program,
            params: |m, n| vec![m, n],
            hourglass_stmt: Some("SU"),
        },
        KernelInfo {
            name: "QR HH V2Q",
            build: householder::v2q_program,
            params: |m, n| vec![m, n],
            hourglass_stmt: Some("SU"),
        },
        KernelInfo {
            name: "GEBD2",
            build: gebd2::program,
            params: |m, n| vec![m, n],
            hourglass_stmt: Some("SU"),
        },
        KernelInfo {
            name: "GEHD2",
            build: gehd2::program,
            params: |_m, n| vec![n],
            hourglass_stmt: Some("SU1"),
        },
        KernelInfo {
            name: "GEMM",
            build: gemm::program,
            params: |m, n| vec![m, n, (m + n) / 2],
            hourglass_stmt: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_and_validates() {
        for k in analyzable_kernels() {
            let p = (k.build)();
            let params = (k.params)(8, 5);
            let checked = iolb_ir::interp::validate_accesses(&p, &params)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert!(checked > 0, "{} executed no instance", k.name);
            if let Some(h) = k.hourglass_stmt {
                assert!(p.stmt_id(h).is_some(), "{} lacks statement {h}", k.name);
            }
        }
    }
}
