//! GEMM baseline: `C = A·B` with the classical `i, j, k` loop nest.
//!
//! No hourglass here — the kernel validates the *classical* K-partitioning
//! path of the engine (projections `{i,j}, {i,k}, {k,j}`, exponent
//! `σ = 3/2`, the Irony–Toledo–Tiskin / Smith et al. `2·MNK/√S` shape) and
//! serves as the negative control for hourglass detection.

use crate::matrix::Matrix;
use iolb_ir::{Access, Program, ProgramBuilder};

/// GEMM IR: parameters `M, N, K` (`C (M×N) += A (M×K) · B (K×N)`).
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("gemm", &["M", "N", "K"]);
    let a = b.array("A", &[b.p("M"), b.p("K")]);
    let bb = b.array("B", &[b.p("K"), b.p("N")]);
    let cc = b.array("C", &[b.p("M"), b.p("N")]);

    let i = b.open("i", b.c(0), b.p("M"));
    let j = b.open("j", b.c(0), b.p("N"));
    let w_cij = Access::new(cc, vec![b.d(i), b.d(j)]);
    b.stmt("Cz", vec![], vec![w_cij.clone()], move |c| {
        c.wr(cc, &[c.v(0), c.v(1)], 0.0)
    });
    {
        let k = b.open("k", b.c(0), b.p("K"));
        let r_aik = Access::new(a, vec![b.d(i), b.d(k)]);
        let r_bkj = Access::new(bb, vec![b.d(k), b.d(j)]);
        b.stmt(
            "SU",
            vec![r_aik, r_bkj, w_cij.clone()],
            vec![w_cij],
            move |c| {
                let (i, j, k) = (c.v(0), c.v(1), c.v(2));
                let v = c.rd(cc, &[i, j]) + c.rd(a, &[i, k]) * c.rd(bb, &[k, j]);
                c.wr(cc, &[i, j], v);
            },
        );
        b.close();
    }
    b.close();
    b.close();
    b.finish()
}

/// Native GEMM.
pub fn native(a: &Matrix, b: &Matrix) -> Matrix {
    a.matmul(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{extract_matrix, run_with_inputs};

    #[test]
    fn ir_matches_native() {
        let a = Matrix::random(5, 4, 71);
        let b = Matrix::random(4, 6, 72);
        let p = program();
        let store = run_with_inputs(&p, &[5, 6, 4], &[("A", &a), ("B", &b)]);
        let c_ir = extract_matrix(&p, &[5, 6, 4], &store, "C");
        assert!(c_ir.max_abs_diff(&native(&a, &b)) < 1e-12);
    }

    #[test]
    fn ir_accesses_are_consistent() {
        assert!(iolb_ir::interp::validate_accesses(&program(), &[4, 5, 3]).unwrap() > 0);
    }
}
