//! Execution helpers: run an IR kernel on concrete matrices and extract the
//! results, so numerics tests can compare the IR semantics against the
//! native implementations bit-for-bit (same operation order).

use crate::matrix::Matrix;
use iolb_ir::{ArrayId, Interpreter, Program, Store};

/// Runs `program` with named array inputs (row-major); unnamed arrays start
/// at zero. Returns the final store.
pub fn run_with_inputs(program: &Program, params: &[i64], inputs: &[(&str, &Matrix)]) -> Store {
    let lookup = |a: ArrayId| -> Option<&Matrix> {
        let name = &program.arrays[a.0 as usize].name;
        inputs.iter().find(|(n, _)| n == name).map(|(_, m)| *m)
    };
    let mut store = Store::init(program, params, |a, f| match lookup(a) {
        Some(m) => m.data[f],
        None => 0.0,
    });
    Interpreter::new(program, params).run(&mut store, &mut iolb_ir::NullSink);
    store
}

/// Extracts a named 2-D array from a store as a [`Matrix`].
///
/// # Panics
/// Panics when the array is unknown or its flat size mismatches.
pub fn extract_matrix(program: &Program, params: &[i64], store: &Store, name: &str) -> Matrix {
    let id = program
        .array_id(name)
        .unwrap_or_else(|| panic!("unknown array {name}"));
    let extents = program.array_extents(id, params);
    assert_eq!(extents.len(), 2, "extract_matrix needs a 2-D array");
    let data = store.data[id.0 as usize].clone();
    assert_eq!(data.len(), extents[0] * extents[1]);
    Matrix {
        rows: extents[0],
        cols: extents[1],
        data,
    }
}

/// Extracts a named 1-D array.
///
/// # Panics
/// Panics when the array is unknown or not 1-D.
pub fn extract_vector(program: &Program, params: &[i64], store: &Store, name: &str) -> Vec<f64> {
    let id = program
        .array_id(name)
        .unwrap_or_else(|| panic!("unknown array {name}"));
    let extents = program.array_extents(id, params);
    assert_eq!(extents.len(), 1, "extract_vector needs a 1-D array");
    store.data[id.0 as usize].clone()
}
