//! GEHD2 (Figure 7): reduction of an `N×N` matrix to upper Hessenberg form
//! by similarity transformations `A ← Hⱼ·A·Hⱼ`.
//!
//! The left-update statement `SU1` carries the hourglass; its width
//! `N − 2 − j` shrinks to 1 at the last iterations, which is why §5.3 splits
//! the outer loop at a symbolic point `M` before applying the hourglass
//! derivation (handled by `iolb-core`).

use crate::matrix::Matrix;
use iolb_ir::{Access, Program, ProgramBuilder};

/// GEHD2 IR: single parameter `N`.
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("gehd2", &["N"]);
    let a = b.array("A", &[b.p("N"), b.p("N")]);
    let tmp = b.array("tmp", &[b.p("N")]);
    let norma2 = b.scalar("norma2");
    let norma = b.scalar("norma");
    let tau = b.scalar("tau");

    let j = b.open("j", b.c(0), b.p("N") - 2);
    let w_n2 = Access::new(norma2, vec![]);
    b.stmt("Gn0", vec![], vec![w_n2.clone()], move |c| {
        c.wr(norma2, &[], 0.0)
    });
    {
        let i = b.open("i", b.d(j) + 2, b.p("N"));
        let r_aij = Access::new(a, vec![b.d(i), b.d(j)]);
        b.stmt(
            "Gn1",
            vec![r_aij, w_n2.clone()],
            vec![w_n2.clone()],
            move |c| {
                let (j, i) = (c.v(0), c.v(1));
                let x = c.rd(a, &[i, j]);
                let v = c.rd(norma2, &[]) + x * x;
                c.wr(norma2, &[], v);
            },
        );
        b.close();
    }
    let w_nrm = Access::new(norma, vec![]);
    let rw_sub = Access::new(a, vec![b.d(j) + 1, b.d(j)]);
    b.stmt(
        "Gnorm",
        vec![rw_sub.clone(), w_n2.clone()],
        vec![w_nrm.clone()],
        move |c| {
            let j = c.v(0);
            let x = c.rd(a, &[j + 1, j]);
            let n2 = c.rd(norma2, &[]);
            c.wr(norma, &[], (x * x + n2).sqrt());
        },
    );
    b.stmt(
        "Ga",
        vec![rw_sub.clone(), w_nrm.clone()],
        vec![rw_sub.clone()],
        move |c| {
            let j = c.v(0);
            let x = c.rd(a, &[j + 1, j]);
            let nr = c.rd(norma, &[]);
            c.wr(a, &[j + 1, j], if x > 0.0 { x + nr } else { x - nr });
        },
    );
    let w_tau = Access::new(tau, vec![]);
    b.stmt(
        "Gtau",
        vec![w_n2.clone(), rw_sub.clone()],
        vec![w_tau.clone()],
        move |c| {
            let j = c.v(0);
            let x = c.rd(a, &[j + 1, j]);
            let n2 = c.rd(norma2, &[]);
            c.wr(tau, &[], 2.0 / (1.0 + n2 / (x * x)));
        },
    );
    {
        let i = b.open("i", b.d(j) + 2, b.p("N"));
        let rw_aij = Access::new(a, vec![b.d(i), b.d(j)]);
        b.stmt(
            "Gscale",
            vec![rw_aij.clone(), rw_sub.clone()],
            vec![rw_aij],
            move |c| {
                let (j, i) = (c.v(0), c.v(1));
                let v = c.rd(a, &[i, j]) / c.rd(a, &[j + 1, j]);
                c.wr(a, &[i, j], v);
            },
        );
        b.close();
    }
    b.stmt(
        "Gflip",
        vec![rw_sub.clone(), w_nrm.clone()],
        vec![rw_sub.clone()],
        move |c| {
            let j = c.v(0);
            let x = c.rd(a, &[j + 1, j]);
            let nr = c.rd(norma, &[]);
            c.wr(a, &[j + 1, j], if x > 0.0 { -nr } else { nr });
        },
    );
    // ---- left application: rows j+1.., columns i in j+1..N ----
    {
        let i = b.open("i", b.d(j) + 1, b.p("N"));
        let r_a1i = Access::new(a, vec![b.d(j) + 1, b.d(i)]);
        let w_tmpi = Access::new(tmp, vec![b.d(i)]);
        b.stmt("Gt0", vec![r_a1i], vec![w_tmpi.clone()], move |c| {
            let (j, i) = (c.v(0), c.v(1));
            let v = c.rd(a, &[j + 1, i]);
            c.wr(tmp, &[i], v);
        });
        {
            let kk = b.open("k", b.d(j) + 2, b.p("N"));
            let r_akj = Access::new(a, vec![b.d(kk), b.d(j)]);
            let r_aki = Access::new(a, vec![b.d(kk), b.d(i)]);
            b.stmt(
                "SR1",
                vec![r_akj, r_aki, w_tmpi.clone()],
                vec![w_tmpi.clone()],
                move |c| {
                    let (j, i, k) = (c.v(0), c.v(1), c.v(2));
                    let v = c.rd(tmp, &[i]) + c.rd(a, &[k, j]) * c.rd(a, &[k, i]);
                    c.wr(tmp, &[i], v);
                },
            );
            b.close();
        }
        b.close();
    }
    {
        let i = b.open("i", b.d(j) + 1, b.p("N"));
        let w_tmpi = Access::new(tmp, vec![b.d(i)]);
        b.stmt(
            "Gt1",
            vec![w_tmpi.clone(), w_tau.clone()],
            vec![w_tmpi.clone()],
            move |c| {
                let i = c.v(1);
                let v = c.rd(tmp, &[i]) * c.rd(tau, &[]);
                c.wr(tmp, &[i], v);
            },
        );
        b.close();
    }
    {
        let i = b.open("i", b.d(j) + 1, b.p("N"));
        let rw_a1i = Access::new(a, vec![b.d(j) + 1, b.d(i)]);
        let r_tmpi = Access::new(tmp, vec![b.d(i)]);
        b.stmt(
            "Gr1",
            vec![rw_a1i.clone(), r_tmpi],
            vec![rw_a1i],
            move |c| {
                let (j, i) = (c.v(0), c.v(1));
                let v = c.rd(a, &[j + 1, i]) - c.rd(tmp, &[i]);
                c.wr(a, &[j + 1, i], v);
            },
        );
        b.close();
    }
    {
        let i = b.open("i", b.d(j) + 2, b.p("N"));
        let kk = b.open("k", b.d(j) + 1, b.p("N"));
        let r_aij = Access::new(a, vec![b.d(i), b.d(j)]);
        let rw_aik = Access::new(a, vec![b.d(i), b.d(kk)]);
        let r_tmpk = Access::new(tmp, vec![b.d(kk)]);
        b.stmt(
            "SU1",
            vec![r_aij, rw_aik.clone(), r_tmpk],
            vec![rw_aik],
            move |c| {
                let (j, i, k) = (c.v(0), c.v(1), c.v(2));
                let v = c.rd(a, &[i, k]) - c.rd(a, &[i, j]) * c.rd(tmp, &[k]);
                c.wr(a, &[i, k], v);
            },
        );
        b.close();
        b.close();
    }
    // ---- right application: all rows, columns j+2..N ----
    {
        let i = b.open("i", b.c(0), b.p("N"));
        let r_ai1 = Access::new(a, vec![b.d(i), b.d(j) + 1]);
        let w_tmpi = Access::new(tmp, vec![b.d(i)]);
        b.stmt("Gt2", vec![r_ai1], vec![w_tmpi.clone()], move |c| {
            let (j, i) = (c.v(0), c.v(1));
            let v = c.rd(a, &[i, j + 1]);
            c.wr(tmp, &[i], v);
        });
        {
            let kk = b.open("k", b.d(j) + 2, b.p("N"));
            let r_aik = Access::new(a, vec![b.d(i), b.d(kk)]);
            let r_akj = Access::new(a, vec![b.d(kk), b.d(j)]);
            b.stmt(
                "SR2",
                vec![r_aik, r_akj, w_tmpi.clone()],
                vec![w_tmpi.clone()],
                move |c| {
                    let (j, i, k) = (c.v(0), c.v(1), c.v(2));
                    let v = c.rd(tmp, &[i]) + c.rd(a, &[i, k]) * c.rd(a, &[k, j]);
                    c.wr(tmp, &[i], v);
                },
            );
            b.close();
        }
        b.close();
    }
    {
        let i = b.open("i", b.c(0), b.p("N"));
        let w_tmpi = Access::new(tmp, vec![b.d(i)]);
        b.stmt(
            "Gt3",
            vec![w_tmpi.clone(), w_tau.clone()],
            vec![w_tmpi.clone()],
            move |c| {
                let i = c.v(1);
                let v = c.rd(tmp, &[i]) * c.rd(tau, &[]);
                c.wr(tmp, &[i], v);
            },
        );
        b.close();
    }
    {
        let i = b.open("i", b.c(0), b.p("N"));
        let rw_ai1 = Access::new(a, vec![b.d(i), b.d(j) + 1]);
        let r_tmpi = Access::new(tmp, vec![b.d(i)]);
        b.stmt(
            "Gr2",
            vec![rw_ai1.clone(), r_tmpi],
            vec![rw_ai1],
            move |c| {
                let (j, i) = (c.v(0), c.v(1));
                let v = c.rd(a, &[i, j + 1]) - c.rd(tmp, &[i]);
                c.wr(a, &[i, j + 1], v);
            },
        );
        b.close();
    }
    {
        let i = b.open("i", b.c(0), b.p("N"));
        let kk = b.open("k", b.d(j) + 2, b.p("N"));
        let r_tmpi = Access::new(tmp, vec![b.d(i)]);
        let rw_aik = Access::new(a, vec![b.d(i), b.d(kk)]);
        let r_akj = Access::new(a, vec![b.d(kk), b.d(j)]);
        b.stmt(
            "SU2",
            vec![r_tmpi, rw_aik.clone(), r_akj],
            vec![rw_aik],
            move |c| {
                let (j, i, k) = (c.v(0), c.v(1), c.v(2));
                let v = c.rd(a, &[i, k]) - c.rd(tmp, &[i]) * c.rd(a, &[k, j]);
                c.wr(a, &[i, k], v);
            },
        );
        b.close();
        b.close();
    }
    b.close();
    b.finish()
}

/// Native GEHD2 (mirrors Figure 7); returns `(A with reflectors +
/// Hessenberg, taus)`.
pub fn native(a0: &Matrix) -> (Matrix, Vec<f64>) {
    let n = a0.rows;
    assert_eq!(a0.cols, n, "GEHD2 needs a square matrix");
    let mut a = a0.clone();
    let mut taus = vec![0.0; n];
    let mut tmp = vec![0.0; n];
    for j in 0..n.saturating_sub(2) {
        let mut norma2 = 0.0;
        for i in j + 2..n {
            norma2 += a[(i, j)] * a[(i, j)];
        }
        let norma = (a[(j + 1, j)] * a[(j + 1, j)] + norma2).sqrt();
        a[(j + 1, j)] = if a[(j + 1, j)] > 0.0 {
            a[(j + 1, j)] + norma
        } else {
            a[(j + 1, j)] - norma
        };
        let tau = 2.0 / (1.0 + norma2 / (a[(j + 1, j)] * a[(j + 1, j)]));
        taus[j] = tau;
        for i in j + 2..n {
            a[(i, j)] /= a[(j + 1, j)];
        }
        a[(j + 1, j)] = if a[(j + 1, j)] > 0.0 { -norma } else { norma };
        // Left application.
        for i in j + 1..n {
            tmp[i] = a[(j + 1, i)];
            for k in j + 2..n {
                tmp[i] += a[(k, j)] * a[(k, i)];
            }
        }
        for t in tmp.iter_mut().take(n).skip(j + 1) {
            *t *= tau;
        }
        for i in j + 1..n {
            a[(j + 1, i)] -= tmp[i];
        }
        for i in j + 2..n {
            for k in j + 1..n {
                a[(i, k)] -= a[(i, j)] * tmp[k];
            }
        }
        // Right application.
        for i in 0..n {
            tmp[i] = a[(i, j + 1)];
            for k in j + 2..n {
                tmp[i] += a[(i, k)] * a[(k, j)];
            }
        }
        for t in tmp.iter_mut().take(n) {
            *t *= tau;
        }
        for i in 0..n {
            a[(i, j + 1)] -= tmp[i];
        }
        for i in 0..n {
            for k in j + 2..n {
                a[(i, k)] -= tmp[i] * a[(k, j)];
            }
        }
    }
    (a, taus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{extract_matrix, run_with_inputs};
    use crate::matrix::dense_q_from_reflectors;

    #[test]
    fn native_produces_hessenberg_similarity() {
        let a0 = Matrix::random(8, 8, 61);
        let (out, taus) = native(&a0);
        // Q from reflectors (reflector j starts at row j+1).
        let q = dense_q_from_reflectors(&out, &taus[..6], 1);
        assert!(q.orthonormality_error() < 1e-10);
        // H = stored upper part (zero the reflector essentials).
        let n = 8;
        let mut h = out.clone();
        for jj in 0..n {
            for i in jj + 2..n {
                h[(i, jj)] = 0.0;
            }
        }
        assert_eq!(h.below_hessenberg_max(), 0.0);
        // Qᵀ A₀ Q = H.
        let sim = q.transpose().matmul(&a0).matmul(&q);
        assert!(
            sim.max_abs_diff(&h) < 1e-9,
            "similarity error {}",
            sim.max_abs_diff(&h)
        );
    }

    #[test]
    fn ir_matches_native() {
        let a0 = Matrix::random(7, 7, 62);
        let p = program();
        let store = run_with_inputs(&p, &[7], &[("A", &a0)]);
        let out_ir = extract_matrix(&p, &[7], &store, "A");
        let (out, _) = native(&a0);
        assert!(out_ir.max_abs_diff(&out) < 1e-12);
    }

    #[test]
    fn ir_accesses_are_consistent() {
        let p = program();
        assert!(iolb_ir::interp::validate_accesses(&p, &[7]).unwrap() > 0);
    }

    #[test]
    fn tiny_sizes_are_noops() {
        // N ≤ 2: the outer loop is empty, A unchanged.
        for n in [1usize, 2] {
            let a0 = Matrix::random(n, n, 63);
            let (out, _) = native(&a0);
            assert_eq!(out.max_abs_diff(&a0), 0.0);
            let p = program();
            let store = run_with_inputs(&p, &[n as i64], &[("A", &a0)]);
            let out_ir = extract_matrix(&p, &[n as i64], &store, "A");
            assert_eq!(out_ir.max_abs_diff(&a0), 0.0);
        }
    }
}
