//! Small dense matrix type plus the verification helpers the kernel tests
//! need (reconstruction of orthogonal factors from stored reflectors).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major `rows × cols` f64 matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major contents.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity of order `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Deterministic pseudo-random matrix with entries in `(-1, 1)`.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    /// Matrix product.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Frobenius norm.
    pub fn frob(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry of `self - other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// `‖selfᵀ·self − I‖_∞`: deviation of the columns from orthonormality.
    pub fn orthonormality_error(&self) -> f64 {
        let g = self.transpose().matmul(self);
        g.max_abs_diff(&Matrix::identity(self.cols))
    }

    /// Largest |entry| strictly below the main diagonal.
    pub fn below_diagonal_max(&self) -> f64 {
        let mut m = 0.0f64;
        for i in 0..self.rows {
            for j in 0..self.cols.min(i) {
                m = m.max(self[(i, j)].abs());
            }
        }
        m
    }

    /// Largest |entry| outside the upper-bidiagonal band (diagonal + first
    /// super-diagonal).
    pub fn off_bidiagonal_max(&self) -> f64 {
        let mut m = 0.0f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j != i && j != i + 1 {
                    m = m.max(self[(i, j)].abs());
                }
            }
        }
        m
    }

    /// Largest |entry| strictly below the first sub-diagonal (Hessenberg
    /// structure violation).
    pub fn below_hessenberg_max(&self) -> f64 {
        let mut m = 0.0f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i > j + 1 {
                    m = m.max(self[(i, j)].abs());
                }
            }
        }
        m
    }

    /// Extracts the upper-triangular part of the top `n × n` block.
    pub fn upper_triangular(&self, n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| if j >= i { self[(i, j)] } else { 0.0 })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// Applies the Householder reflector `H = I − τ·v·vᵀ` to `m` from the left,
/// where `v` has `v[offset] = 1`, `v[offset+1..] = essentials`, zeros above.
pub fn apply_reflector_left(m: &mut Matrix, offset: usize, essentials: &[f64], tau: f64) {
    let rows = m.rows;
    let mut v = vec![0.0; rows];
    v[offset] = 1.0;
    v[offset + 1..offset + 1 + essentials.len()].copy_from_slice(essentials);
    for j in 0..m.cols {
        let dot: f64 = (offset..rows).map(|i| v[i] * m[(i, j)]).sum();
        let t = tau * dot;
        for i in offset..rows {
            m[(i, j)] -= t * v[i];
        }
    }
}

/// Applies `H = I − τ·v·vᵀ` to `m` from the right (reflector on columns).
pub fn apply_reflector_right(m: &mut Matrix, offset: usize, essentials: &[f64], tau: f64) {
    let cols = m.cols;
    let mut v = vec![0.0; cols];
    v[offset] = 1.0;
    v[offset + 1..offset + 1 + essentials.len()].copy_from_slice(essentials);
    for i in 0..m.rows {
        let dot: f64 = (offset..cols).map(|j| m[(i, j)] * v[j]).sum();
        let t = tau * dot;
        for j in offset..cols {
            m[(i, j)] -= t * v[j];
        }
    }
}

/// Builds the dense `M × M` orthogonal factor `Q = H₀·H₁·⋯·H_{N−1}` from
/// reflectors stored LAPACK-style below the diagonal of `vmat` (unit lower)
/// with scalars `tau`, where reflector `k` starts at row `k + shift`.
pub fn dense_q_from_reflectors(vmat: &Matrix, tau: &[f64], shift: usize) -> Matrix {
    let m = vmat.rows;
    let mut q = Matrix::identity(m);
    // Q = H_0 (H_1 (… I)) — apply in reverse to the identity.
    for k in (0..tau.len()).rev() {
        let offset = k + shift;
        if offset >= m {
            continue;
        }
        let essentials: Vec<f64> = (offset + 1..m).map(|i| vmat[(i, k)]).collect();
        apply_reflector_left(&mut q, offset, &essentials, tau[k]);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_matmul() {
        let a = Matrix::random(4, 3, 7);
        let i4 = Matrix::identity(4);
        assert!(i4.matmul(&a).max_abs_diff(&a) == 0.0);
        let b = Matrix::random(3, 5, 8);
        let c = a.matmul(&b);
        assert_eq!((c.rows, c.cols), (4, 5));
        // Spot check one entry.
        let c00: f64 = (0..3).map(|k| a[(0, k)] * b[(k, 0)]).sum();
        assert!((c[(0, 0)] - c00).abs() < 1e-14);
    }

    #[test]
    fn reflector_is_orthogonal_involution() {
        // H² = I for any reflector.
        let mut m = Matrix::identity(5);
        let ess = [0.3, -0.7, 0.2];
        apply_reflector_left(&mut m, 1, &ess, 2.0 / (1.0 + 0.09 + 0.49 + 0.04));
        let h = m.clone();
        let hh = h.matmul(&h);
        assert!(hh.max_abs_diff(&Matrix::identity(5)) < 1e-12);
        assert!(h.orthonormality_error() < 1e-12);
    }

    #[test]
    fn right_application_matches_transpose_trick() {
        // (H Aᵀ)ᵀ = A H for symmetric H.
        let a = Matrix::random(4, 5, 3);
        let ess = [0.5, -0.25];
        let tau = 2.0 / (1.0 + 0.25 + 0.0625);
        let mut right = a.clone();
        apply_reflector_right(&mut right, 2, &ess, tau);
        let mut tr = a.transpose();
        apply_reflector_left(&mut tr, 2, &ess, tau);
        assert!(right.max_abs_diff(&tr.transpose()) < 1e-12);
    }

    #[test]
    fn structure_checks() {
        let mut m = Matrix::zeros(4, 4);
        m[(0, 0)] = 1.0;
        m[(0, 1)] = 2.0;
        m[(1, 1)] = 3.0;
        m[(1, 2)] = 4.0;
        assert_eq!(m.off_bidiagonal_max(), 0.0);
        assert_eq!(m.below_diagonal_max(), 0.0);
        m[(3, 0)] = 5.0;
        assert_eq!(m.off_bidiagonal_max(), 5.0);
        assert_eq!(m.below_hessenberg_max(), 5.0);
        m[(3, 0)] = 0.0;
        m[(3, 1)] = 7.0;
        assert_eq!(m.below_hessenberg_max(), 7.0);
        m[(3, 1)] = 0.0;
        m[(1, 0)] = 9.0; // allowed in Hessenberg
        assert_eq!(m.below_hessenberg_max(), 0.0);
    }
}
