//! Bridges from the IR interpreter to the cache simulator.
//!
//! Two shapes, both single-materialization at worst:
//!
//! * [`MemSimSink`] streams every access straight into an LRU simulator —
//!   no trace is ever materialized, so arbitrarily long executions fit in
//!   memory,
//! * [`measure_min_io`] / [`measure_lru_min_io`] run the interpreter once
//!   into the packed `TraceSink` encoding and feed the simulators directly
//!   from the packed words — the old intermediate `Vec<Access>` decode pass
//!   is gone.

use iolb_ir::{ArrayId, ExecSink, Program};
use iolb_memsim::LruSim;

/// [`ExecSink`] that streams every access straight into an LRU cache
/// simulator — no trace materialization, so arbitrarily long executions fit
/// in memory.
#[derive(Debug)]
pub struct MemSimSink {
    sim: LruSim,
    base: Vec<usize>,
}

impl MemSimSink {
    /// Creates a streaming simulator for a program instantiation.
    pub fn new(program: &Program, params: &[i64], capacity: usize) -> MemSimSink {
        let mut base = Vec::with_capacity(program.arrays.len());
        let mut acc = 0usize;
        for i in 0..program.arrays.len() {
            base.push(acc);
            acc += program.array_len(ArrayId(i as u32), params).max(1);
        }
        MemSimSink {
            // Pre-size the cell table: ids are dense in [0, total cells).
            sim: LruSim::with_cells(capacity, acc),
            base,
        }
    }

    /// Final statistics (with dirty flush).
    pub fn finish(self) -> iolb_memsim::IoStats {
        self.sim.finish()
    }
}

impl ExecSink for MemSimSink {
    fn on_read(&mut self, array: ArrayId, flat: usize) {
        self.sim.read(self.base[array.0 as usize] + flat);
    }
    fn on_write(&mut self, array: ArrayId, flat: usize) {
        self.sim.write(self.base[array.0 as usize] + flat);
    }
}

/// Runs `program` at `params` with input init `f(array, flat)` and returns
/// the LRU I/O statistics for fast-memory capacity `s` (streaming — no
/// trace materialization).
pub fn measure_lru_io(
    program: &Program,
    params: &[i64],
    s: usize,
    init: impl FnMut(ArrayId, usize) -> f64,
) -> iolb_memsim::IoStats {
    let mut sink = MemSimSink::new(program, params, s);
    let mut store = iolb_ir::Store::init(program, params, init);
    iolb_ir::Interpreter::new(program, params).run(&mut store, &mut sink);
    sink.finish()
}

/// Runs `program` and returns the Belady-MIN (optimal replacement) I/O
/// statistics for capacity `s` — materializes the packed trace once and
/// simulates straight from it.
pub fn measure_min_io(
    program: &Program,
    params: &[i64],
    s: usize,
    init: impl FnMut(ArrayId, usize) -> f64,
) -> iolb_memsim::IoStats {
    let mut sink = iolb_ir::TraceSink::new(program, params);
    let mut store = iolb_ir::Store::init(program, params, init);
    iolb_ir::Interpreter::new(program, params).run(&mut store, &mut sink);
    iolb_memsim::BeladySim::new(s).run_packed(&sink.packed)
}

/// Runs `program` once and returns `(LRU, MIN)` statistics for capacity `s`
/// from the same packed trace — one interpreter execution, one trace, both
/// policies.
pub fn measure_lru_min_io(
    program: &Program,
    params: &[i64],
    s: usize,
    init: impl FnMut(ArrayId, usize) -> f64,
) -> (iolb_memsim::IoStats, iolb_memsim::IoStats) {
    let mut sink = iolb_ir::TraceSink::new(program, params);
    let mut store = iolb_ir::Store::init(program, params, init);
    iolb_ir::Interpreter::new(program, params).run(&mut store, &mut sink);
    let mut lru = LruSim::with_cells(s, sink.num_cells);
    lru.run_packed(&sink.packed);
    let lru_stats = lru.finish();
    let min_stats = iolb_memsim::BeladySim::new(s).run_packed(&sink.packed);
    (lru_stats, min_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_ir::{Access as IrAccess, ProgramBuilder};

    /// Two sequential passes over x[0..N].
    fn two_pass() -> iolb_ir::Program {
        let mut b = ProgramBuilder::new("two_pass_sink", &["N"]);
        let x = b.array("x", &[b.p("N")]);
        let acc = b.scalar("acc");
        let wa = IrAccess::new(acc, vec![]);
        b.stmt("Z", vec![], vec![wa.clone()], move |c| c.wr(acc, &[], 0.0));
        for pass in 0..2 {
            let i = b.open("i", b.c(0), b.p("N"));
            let xi = IrAccess::new(x, vec![b.d(i)]);
            let nm = format!("S{pass}");
            b.stmt(&nm, vec![xi, wa.clone()], vec![wa.clone()], move |c| {
                let v = c.rd(x, &[c.v(0)]) + c.rd(acc, &[]);
                c.wr(acc, &[], v);
            });
            b.close();
        }
        b.finish()
    }

    #[test]
    fn streaming_lru_measures_reuse() {
        let p = two_pass();
        // Capacity 4 < N=8 (+acc): thrash → 16 loads of x.
        let small = measure_lru_io(&p, &[8], 4, |_, f| f as f64);
        assert_eq!(small.loads, 16);
        // Capacity 16 keeps x resident: 8 loads.
        let big = measure_lru_io(&p, &[8], 16, |_, f| f as f64);
        assert_eq!(big.loads, 8);
    }

    #[test]
    fn min_never_worse_than_lru() {
        let p = two_pass();
        for s in [2usize, 3, 5, 9, 20] {
            let lru = measure_lru_io(&p, &[8], s, |_, f| f as f64);
            let min = measure_min_io(&p, &[8], s, |_, f| f as f64);
            assert!(min.loads <= lru.loads, "S={s}");
        }
    }

    #[test]
    fn fused_path_matches_separate_measurements() {
        let p = two_pass();
        for s in [2usize, 4, 9, 20] {
            let lru = measure_lru_io(&p, &[8], s, |_, f| f as f64);
            let min = measure_min_io(&p, &[8], s, |_, f| f as f64);
            let (lru2, min2) = measure_lru_min_io(&p, &[8], s, |_, f| f as f64);
            assert_eq!(lru, lru2, "S={s}");
            assert_eq!(min, min2, "S={s}");
        }
    }
}
