//! Modified Gram-Schmidt: the paper's running example.
//!
//! * [`program`] — the right-looking variant of Figure 1, transcribed
//!   statement-for-statement (statements `SR`/`SU` form the hourglass).
//! * [`tiled_program`] / [`tiled_native`] — the left-looking tiled ordering
//!   of Figure 8 (Appendix A.1) with block size `B`, whose measured I/O is
//!   `≈ ½·M²N²/S` when `B = ⌊S/M⌋ − 1` — the upper bound that matches the
//!   new hourglass lower bound of Theorem 5.
//! * [`native`] / analytic I/O models for the appendix formulas.

use crate::matrix::Matrix;
use iolb_ir::{Access, LoopStep, Program, ProgramBuilder};

/// Right-looking MGS (Figure 1): `A (M×N) → Q (M×N), R (N×N)`.
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("mgs", &["M", "N"]);
    let a = b.array("A", &[b.p("M"), b.p("N")]);
    let q = b.array("Q", &[b.p("M"), b.p("N")]);
    let r = b.array("R", &[b.p("N"), b.p("N")]);
    let nrm = b.scalar("nrm");

    let k = b.open("k", b.c(0), b.p("N"));
    let w_nrm = Access::new(nrm, vec![]);
    b.stmt("nrm0", vec![], vec![w_nrm.clone()], move |c| {
        c.wr(nrm, &[], 0.0)
    });
    {
        let i = b.open("i", b.c(0), b.p("M"));
        let r_aik = Access::new(a, vec![b.d(i), b.d(k)]);
        b.stmt(
            "nrm1",
            vec![r_aik, w_nrm.clone()],
            vec![w_nrm.clone()],
            move |c| {
                let (k, i) = (c.v(0), c.v(1));
                let x = c.rd(a, &[i, k]);
                let v = c.rd(nrm, &[]) + x * x;
                c.wr(nrm, &[], v);
            },
        );
        b.close();
    }
    let w_rkk = Access::new(r, vec![b.d(k), b.d(k)]);
    b.stmt("rkk", vec![w_nrm.clone()], vec![w_rkk.clone()], move |c| {
        let v = c.rd(nrm, &[]).sqrt();
        c.wr(r, &[c.v(0), c.v(0)], v);
    });
    {
        let i = b.open("i", b.c(0), b.p("M"));
        let r_aik = Access::new(a, vec![b.d(i), b.d(k)]);
        let w_qik = Access::new(q, vec![b.d(i), b.d(k)]);
        b.stmt("qdiv", vec![r_aik, w_rkk.clone()], vec![w_qik], move |c| {
            let (k, i) = (c.v(0), c.v(1));
            let v = c.rd(a, &[i, k]) / c.rd(r, &[k, k]);
            c.wr(q, &[i, k], v);
        });
        b.close();
    }
    {
        let j = b.open("j", b.d(k) + 1, b.p("N"));
        let w_rkj = Access::new(r, vec![b.d(k), b.d(j)]);
        b.stmt("r0", vec![], vec![w_rkj.clone()], move |c| {
            c.wr(r, &[c.v(0), c.v(1)], 0.0)
        });
        {
            let i = b.open("i", b.c(0), b.p("M"));
            let r_qik = Access::new(q, vec![b.d(i), b.d(k)]);
            let r_aij = Access::new(a, vec![b.d(i), b.d(j)]);
            b.stmt(
                "SR",
                vec![r_qik, r_aij, w_rkj.clone()],
                vec![w_rkj.clone()],
                move |c| {
                    let (k, j, i) = (c.v(0), c.v(1), c.v(2));
                    let v = c.rd(r, &[k, j]) + c.rd(q, &[i, k]) * c.rd(a, &[i, j]);
                    c.wr(r, &[k, j], v);
                },
            );
            b.close();
        }
        {
            let i = b.open("i", b.c(0), b.p("M"));
            let r_qik = Access::new(q, vec![b.d(i), b.d(k)]);
            let rw_aij = Access::new(a, vec![b.d(i), b.d(j)]);
            b.stmt(
                "SU",
                vec![r_qik, rw_aij.clone(), w_rkj.clone()],
                vec![rw_aij],
                move |c| {
                    let (k, j, i) = (c.v(0), c.v(1), c.v(2));
                    let v = c.rd(a, &[i, j]) - c.rd(q, &[i, k]) * c.rd(r, &[k, j]);
                    c.wr(a, &[i, j], v);
                },
            );
            b.close();
        }
        b.close();
    }
    b.close();
    b.finish()
}

/// Left-looking tiled MGS (Figure 8): parameters `M, N, B`; Q is produced
/// in place of `A`.
pub fn tiled_program() -> Program {
    let mut b = ProgramBuilder::new("mgs_tiled", &["M", "N", "B"]);
    let a = b.array("A", &[b.p("M"), b.p("N")]);
    let r = b.array("R", &[b.p("N"), b.p("N")]);
    let bstep = LoopStep::Param(b.pid("B"));

    let j0 = b.open_strided("j0", b.c(0), b.p("N"), bstep);
    // Projection against all columns left of the block.
    {
        let i = b.open("i", b.c(0), b.d(j0));
        let j = b.open_general(
            "j",
            vec![b.d(j0)],
            vec![b.d(j0) + b.p("B"), b.p("N")],
            LoopStep::One,
            false,
        );
        let w_rij = Access::new(r, vec![b.d(i), b.d(j)]);
        b.stmt("Tr0", vec![], vec![w_rij.clone()], move |c| {
            c.wr(r, &[c.v(1), c.v(2)], 0.0)
        });
        {
            let kk = b.open("k", b.c(0), b.p("M"));
            let r_aki = Access::new(a, vec![b.d(kk), b.d(i)]);
            let r_akj = Access::new(a, vec![b.d(kk), b.d(j)]);
            b.stmt(
                "Tr1",
                vec![r_aki, r_akj, w_rij.clone()],
                vec![w_rij.clone()],
                move |c| {
                    let (i, j, k) = (c.v(1), c.v(2), c.v(3));
                    let v = c.rd(r, &[i, j]) + c.rd(a, &[k, i]) * c.rd(a, &[k, j]);
                    c.wr(r, &[i, j], v);
                },
            );
            b.close();
        }
        {
            let kk = b.open("k", b.c(0), b.p("M"));
            let r_aki = Access::new(a, vec![b.d(kk), b.d(i)]);
            let rw_akj = Access::new(a, vec![b.d(kk), b.d(j)]);
            b.stmt(
                "Tu",
                vec![r_aki, rw_akj.clone(), w_rij.clone()],
                vec![rw_akj],
                move |c| {
                    let (i, j, k) = (c.v(1), c.v(2), c.v(3));
                    let v = c.rd(a, &[k, j]) - c.rd(a, &[k, i]) * c.rd(r, &[i, j]);
                    c.wr(a, &[k, j], v);
                },
            );
            b.close();
        }
        b.close();
        b.close();
    }
    // Panel factorization inside the block.
    {
        let j = b.open_general(
            "j",
            vec![b.d(j0)],
            vec![b.d(j0) + b.p("B"), b.p("N")],
            LoopStep::One,
            false,
        );
        {
            let i = b.open("i", b.d(j0), b.d(j));
            let w_rij = Access::new(r, vec![b.d(i), b.d(j)]);
            b.stmt("Ts0", vec![], vec![w_rij.clone()], move |c| {
                c.wr(r, &[c.v(2), c.v(1)], 0.0)
            });
            {
                let kk = b.open("k", b.c(0), b.p("M"));
                let r_aki = Access::new(a, vec![b.d(kk), b.d(i)]);
                let r_akj = Access::new(a, vec![b.d(kk), b.d(j)]);
                b.stmt(
                    "Ts1",
                    vec![r_aki, r_akj, w_rij.clone()],
                    vec![w_rij.clone()],
                    move |c| {
                        let (j, i, k) = (c.v(1), c.v(2), c.v(3));
                        let v = c.rd(r, &[i, j]) + c.rd(a, &[k, i]) * c.rd(a, &[k, j]);
                        c.wr(r, &[i, j], v);
                    },
                );
                b.close();
            }
            {
                let kk = b.open("k", b.c(0), b.p("M"));
                let r_aki = Access::new(a, vec![b.d(kk), b.d(i)]);
                let rw_akj = Access::new(a, vec![b.d(kk), b.d(j)]);
                b.stmt(
                    "Tsu",
                    vec![r_aki, rw_akj.clone(), w_rij.clone()],
                    vec![rw_akj],
                    move |c| {
                        let (j, i, k) = (c.v(1), c.v(2), c.v(3));
                        let v = c.rd(a, &[k, j]) - c.rd(a, &[k, i]) * c.rd(r, &[i, j]);
                        c.wr(a, &[k, j], v);
                    },
                );
                b.close();
            }
            b.close();
        }
        let w_rjj = Access::new(r, vec![b.d(j), b.d(j)]);
        b.stmt("Td0", vec![], vec![w_rjj.clone()], move |c| {
            c.wr(r, &[c.v(1), c.v(1)], 0.0)
        });
        {
            let kk = b.open("k", b.c(0), b.p("M"));
            let r_akj = Access::new(a, vec![b.d(kk), b.d(j)]);
            b.stmt(
                "Td1",
                vec![r_akj, w_rjj.clone()],
                vec![w_rjj.clone()],
                move |c| {
                    let (j, k) = (c.v(1), c.v(2));
                    let x = c.rd(a, &[k, j]);
                    let v = c.rd(r, &[j, j]) + x * x;
                    c.wr(r, &[j, j], v);
                },
            );
            b.close();
        }
        b.stmt("Tdsq", vec![w_rjj.clone()], vec![w_rjj.clone()], move |c| {
            let j = c.v(1);
            let v = c.rd(r, &[j, j]).sqrt();
            c.wr(r, &[j, j], v);
        });
        {
            let kk = b.open("k", b.c(0), b.p("M"));
            let rw_akj = Access::new(a, vec![b.d(kk), b.d(j)]);
            b.stmt(
                "Tdd",
                vec![rw_akj.clone(), w_rjj.clone()],
                vec![rw_akj],
                move |c| {
                    let (j, k) = (c.v(1), c.v(2));
                    let v = c.rd(a, &[k, j]) / c.rd(r, &[j, j]);
                    c.wr(a, &[k, j], v);
                },
            );
            b.close();
        }
        b.close();
    }
    b.close();
    b.finish()
}

/// Native right-looking MGS; returns `(Q, R)`.
pub fn native(a0: &Matrix) -> (Matrix, Matrix) {
    let (m, n) = (a0.rows, a0.cols);
    let mut a = a0.clone();
    let mut q = Matrix::zeros(m, n);
    let mut r = Matrix::zeros(n, n);
    for k in 0..n {
        let mut nrm = 0.0;
        for i in 0..m {
            nrm += a[(i, k)] * a[(i, k)];
        }
        r[(k, k)] = nrm.sqrt();
        for i in 0..m {
            q[(i, k)] = a[(i, k)] / r[(k, k)];
        }
        for j in k + 1..n {
            r[(k, j)] = 0.0;
            for i in 0..m {
                r[(k, j)] += q[(i, k)] * a[(i, j)];
            }
            for i in 0..m {
                a[(i, j)] -= q[(i, k)] * r[(k, j)];
            }
        }
    }
    (q, r)
}

/// Native tiled left-looking MGS (Figure 8); returns `(Q, R)` with Q in
/// place of A.
pub fn tiled_native(a0: &Matrix, block: usize) -> (Matrix, Matrix) {
    assert!(block >= 1, "block size must be positive");
    let (m, n) = (a0.rows, a0.cols);
    let mut a = a0.clone();
    let mut r = Matrix::zeros(n, n);
    let mut j0 = 0;
    while j0 < n {
        let jend = (j0 + block).min(n);
        for i in 0..j0 {
            for j in j0..jend {
                r[(i, j)] = 0.0;
                for k in 0..m {
                    r[(i, j)] += a[(k, i)] * a[(k, j)];
                }
                for k in 0..m {
                    a[(k, j)] -= a[(k, i)] * r[(i, j)];
                }
            }
        }
        for j in j0..jend {
            for i in j0..j {
                r[(i, j)] = 0.0;
                for k in 0..m {
                    r[(i, j)] += a[(k, i)] * a[(k, j)];
                }
                for k in 0..m {
                    a[(k, j)] -= a[(k, i)] * r[(i, j)];
                }
            }
            r[(j, j)] = 0.0;
            for k in 0..m {
                r[(j, j)] += a[(k, j)] * a[(k, j)];
            }
            r[(j, j)] = r[(j, j)].sqrt();
            for k in 0..m {
                a[(k, j)] /= r[(j, j)];
            }
        }
        j0 += block;
    }
    (a, r)
}

/// Appendix A.1 block size: largest `B` with `M(B+1) < S` (at least 1).
pub fn a1_block_size(m: usize, s: usize) -> usize {
    (s / m).saturating_sub(1).max(1)
}

/// Appendix A.1 read-cost model for the tiled ordering at block size `B`:
/// `½·MN²/B` (panel reloads) + `MN` (block loads).
pub fn a1_reads_model(m: usize, n: usize, block: usize) -> f64 {
    let (m, n, b) = (m as f64, n as f64, block as f64);
    0.5 * m * n * n / b + m * n
}

/// Appendix A.1 headline I/O: `½·M²N²/S`.
pub fn a1_io_headline(m: usize, n: usize, s: usize) -> f64 {
    let (m, n, s) = (m as f64, n as f64, s as f64);
    0.5 * m * m * n * n / s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{extract_matrix, run_with_inputs};

    #[test]
    fn native_mgs_is_a_qr_factorization() {
        let a = Matrix::random(12, 7, 42);
        let (q, r) = native(&a);
        assert!(q.orthonormality_error() < 1e-10, "Q columns orthonormal");
        assert!(q.matmul(&r).max_abs_diff(&a) < 1e-10, "QR = A");
        assert_eq!(r.below_diagonal_max(), 0.0, "R upper triangular");
    }

    #[test]
    fn ir_matches_native() {
        let a = Matrix::random(9, 6, 7);
        let p = program();
        let store = run_with_inputs(&p, &[9, 6], &[("A", &a)]);
        let q_ir = extract_matrix(&p, &[9, 6], &store, "Q");
        let r_ir = extract_matrix(&p, &[9, 6], &store, "R");
        let (q, r) = native(&a);
        assert!(q_ir.max_abs_diff(&q) < 1e-13);
        assert!(r_ir.max_abs_diff(&r) < 1e-13);
    }

    #[test]
    fn ir_accesses_are_consistent() {
        let p = program();
        let n = iolb_ir::interp::validate_accesses(&p, &[7, 5]).unwrap();
        assert!(n > 0);
    }

    #[test]
    fn tiled_native_matches_untiled() {
        let a = Matrix::random(14, 9, 3);
        let (q_ref, r_ref) = native(&a);
        for block in [1, 2, 3, 9] {
            let (q, r) = tiled_native(&a, block);
            assert!(q.max_abs_diff(&q_ref) < 1e-9, "B={block}");
            assert!(r.max_abs_diff(&r_ref) < 1e-9, "B={block}");
        }
    }

    #[test]
    fn tiled_ir_matches_tiled_native() {
        let a = Matrix::random(8, 6, 11);
        let p = tiled_program();
        for block in [2i64, 3, 6] {
            let store = run_with_inputs(&p, &[8, 6, block], &[("A", &a)]);
            let q_ir = extract_matrix(&p, &[8, 6, block], &store, "A");
            let r_ir = extract_matrix(&p, &[8, 6, block], &store, "R");
            let (q, r) = tiled_native(&a, block as usize);
            assert!(q_ir.max_abs_diff(&q) < 1e-13, "B={block}");
            assert!(r_ir.max_abs_diff(&r) < 1e-13, "B={block}");
        }
    }

    #[test]
    fn tiled_ir_accesses_are_consistent() {
        let p = tiled_program();
        let n = iolb_ir::interp::validate_accesses(&p, &[8, 6, 3]).unwrap();
        assert!(n > 0);
    }

    #[test]
    fn tiled_io_beats_untiled_under_lru() {
        // M=24, N=12, S=128: B = ⌊S/M⌋−1 = 4.
        let (m, n, s) = (24usize, 12usize, 128usize);
        let block = a1_block_size(m, s) as i64;
        let a = Matrix::random(m, n, 5);
        let untiled = crate::sinks::measure_lru_io(&program(), &[m as i64, n as i64], s, {
            let a = a.clone();
            move |arr, f| if arr.0 == 0 { a.data[f] } else { 0.0 }
        });
        let tiled =
            crate::sinks::measure_lru_io(&tiled_program(), &[m as i64, n as i64, block], s, {
                let a = a.clone();
                move |arr, f| if arr.0 == 0 { a.data[f] } else { 0.0 }
            });
        assert!(
            tiled.loads < untiled.loads,
            "tiled {} < untiled {}",
            tiled.loads,
            untiled.loads
        );
    }

    #[test]
    fn appendix_models_are_consistent() {
        // With B = ⌊S/M⌋−1 ≈ S/M, the panel-reload term of the reads model
        // approaches the headline ½M²N²/S (the MN block-move term is lower
        // order in the paper's regime).
        let (m, n, s) = (64usize, 32, 512);
        let b = a1_block_size(m, s);
        let panel = a1_reads_model(m, n, b) - (m * n) as f64;
        let headline = a1_io_headline(m, n, s);
        assert!((panel / headline) < 2.0 && (panel / headline) > 0.5);
    }
}
