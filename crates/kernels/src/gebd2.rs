//! GEBD2: reduction of an `M×N` matrix (`M ≥ N`) to upper bidiagonal form
//! by alternating left/right Householder reflectors (LAPACK's unblocked
//! routine). The left-update statements `SR`/`SU` carry the hourglass with
//! width `M − k ≥ M − N + 1`, matching Theorem 8.
//!
//! The IR guards the right-reflector block with a 0/1 dummy loop
//! `for g in 0..min(1, N-1-k)` — the standard polyhedral encoding of the
//! `k ≤ N-2` condition, keeping the program affine.

use crate::matrix::Matrix;
use iolb_ir::{Access, LoopStep, Program, ProgramBuilder};

/// GEBD2 IR: parameters `M, N` (assumes `M ≥ N` like LAPACK).
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("gebd2", &["M", "N"]);
    let a = b.array("A", &[b.p("M"), b.p("N")]);
    let tauq = b.array("tauq", &[b.p("N")]);
    let taup = b.array("taup", &[b.p("N")]);
    let tmp = b.array("tmp", &[b.p("N")]);
    let tmp2 = b.array("tmp2", &[b.p("M")]);
    let norma2 = b.scalar("norma2");
    let norma = b.scalar("norma");

    let k = b.open("k", b.c(0), b.p("N"));
    // ---- left reflector from A[k:M, k] ----
    let w_n2 = Access::new(norma2, vec![]);
    b.stmt("Bn0", vec![], vec![w_n2.clone()], move |c| {
        c.wr(norma2, &[], 0.0)
    });
    {
        let i = b.open("i", b.d(k) + 1, b.p("M"));
        let r_aik = Access::new(a, vec![b.d(i), b.d(k)]);
        b.stmt(
            "Bn1",
            vec![r_aik, w_n2.clone()],
            vec![w_n2.clone()],
            move |c| {
                let (k, i) = (c.v(0), c.v(1));
                let x = c.rd(a, &[i, k]);
                let v = c.rd(norma2, &[]) + x * x;
                c.wr(norma2, &[], v);
            },
        );
        b.close();
    }
    let w_nrm = Access::new(norma, vec![]);
    let rw_akk = Access::new(a, vec![b.d(k), b.d(k)]);
    b.stmt(
        "Bnorm",
        vec![rw_akk.clone(), w_n2.clone()],
        vec![w_nrm.clone()],
        move |c| {
            let k = c.v(0);
            let akk = c.rd(a, &[k, k]);
            let n2 = c.rd(norma2, &[]);
            c.wr(norma, &[], (akk * akk + n2).sqrt());
        },
    );
    b.stmt(
        "Bakk",
        vec![rw_akk.clone(), w_nrm.clone()],
        vec![rw_akk.clone()],
        move |c| {
            let k = c.v(0);
            let akk = c.rd(a, &[k, k]);
            let nr = c.rd(norma, &[]);
            c.wr(a, &[k, k], if akk > 0.0 { akk + nr } else { akk - nr });
        },
    );
    let w_tauqk = Access::new(tauq, vec![b.d(k)]);
    b.stmt(
        "Btauq",
        vec![w_n2.clone(), rw_akk.clone()],
        vec![w_tauqk.clone()],
        move |c| {
            let k = c.v(0);
            let akk = c.rd(a, &[k, k]);
            let n2 = c.rd(norma2, &[]);
            c.wr(tauq, &[k], 2.0 / (1.0 + n2 / (akk * akk)));
        },
    );
    {
        let i = b.open("i", b.d(k) + 1, b.p("M"));
        let rw_aik = Access::new(a, vec![b.d(i), b.d(k)]);
        b.stmt(
            "Bscale",
            vec![rw_aik.clone(), rw_akk.clone()],
            vec![rw_aik],
            move |c| {
                let (k, i) = (c.v(0), c.v(1));
                let v = c.rd(a, &[i, k]) / c.rd(a, &[k, k]);
                c.wr(a, &[i, k], v);
            },
        );
        b.close();
    }
    b.stmt(
        "Bflip",
        vec![rw_akk.clone(), w_nrm.clone()],
        vec![rw_akk.clone()],
        move |c| {
            let k = c.v(0);
            let akk = c.rd(a, &[k, k]);
            let nr = c.rd(norma, &[]);
            c.wr(a, &[k, k], if akk > 0.0 { -nr } else { nr });
        },
    );
    // ---- apply left reflector to columns k+1..N (the hourglass) ----
    {
        let j = b.open("j", b.d(k) + 1, b.p("N"));
        let rw_akj = Access::new(a, vec![b.d(k), b.d(j)]);
        let w_tmpj = Access::new(tmp, vec![b.d(j)]);
        b.stmt(
            "Bt0",
            vec![rw_akj.clone()],
            vec![w_tmpj.clone()],
            move |c| {
                let (k, j) = (c.v(0), c.v(1));
                let v = c.rd(a, &[k, j]);
                c.wr(tmp, &[j], v);
            },
        );
        {
            let i = b.open("i", b.d(k) + 1, b.p("M"));
            let r_aik = Access::new(a, vec![b.d(i), b.d(k)]);
            let r_aij = Access::new(a, vec![b.d(i), b.d(j)]);
            b.stmt(
                "SR",
                vec![r_aik, r_aij, w_tmpj.clone()],
                vec![w_tmpj.clone()],
                move |c| {
                    let (k, j, i) = (c.v(0), c.v(1), c.v(2));
                    let v = c.rd(tmp, &[j]) + c.rd(a, &[i, k]) * c.rd(a, &[i, j]);
                    c.wr(tmp, &[j], v);
                },
            );
            b.close();
        }
        b.stmt(
            "Bt1",
            vec![w_tauqk.clone(), w_tmpj.clone()],
            vec![w_tmpj.clone()],
            move |c| {
                let (k, j) = (c.v(0), c.v(1));
                let v = c.rd(tauq, &[k]) * c.rd(tmp, &[j]);
                c.wr(tmp, &[j], v);
            },
        );
        b.stmt(
            "Brow",
            vec![rw_akj.clone(), w_tmpj.clone()],
            vec![rw_akj.clone()],
            move |c| {
                let (k, j) = (c.v(0), c.v(1));
                let v = c.rd(a, &[k, j]) - c.rd(tmp, &[j]);
                c.wr(a, &[k, j], v);
            },
        );
        {
            let i = b.open("i", b.d(k) + 1, b.p("M"));
            let r_aik = Access::new(a, vec![b.d(i), b.d(k)]);
            let rw_aij = Access::new(a, vec![b.d(i), b.d(j)]);
            b.stmt(
                "SU",
                vec![r_aik, rw_aij.clone(), w_tmpj.clone()],
                vec![rw_aij],
                move |c| {
                    let (k, j, i) = (c.v(0), c.v(1), c.v(2));
                    let v = c.rd(a, &[i, j]) - c.rd(a, &[i, k]) * c.rd(tmp, &[j]);
                    c.wr(a, &[i, j], v);
                },
            );
            b.close();
        }
        b.close();
    }
    // ---- right reflector from A[k, k+1:N], guarded by k ≤ N-2 ----
    {
        let g = b.open_general(
            "g",
            vec![b.c(0)],
            vec![b.c(1), b.p("N") - b.d(k) - 1],
            LoopStep::One,
            false,
        );
        let _ = g;
        b.stmt("Cn0", vec![], vec![w_n2.clone()], move |c| {
            c.wr(norma2, &[], 0.0)
        });
        {
            let j = b.open("j", b.d(k) + 2, b.p("N"));
            let r_akj = Access::new(a, vec![b.d(k), b.d(j)]);
            b.stmt(
                "Cn1",
                vec![r_akj, w_n2.clone()],
                vec![w_n2.clone()],
                move |c| {
                    let (k, j) = (c.v(0), c.v(2));
                    let x = c.rd(a, &[k, j]);
                    let v = c.rd(norma2, &[]) + x * x;
                    c.wr(norma2, &[], v);
                },
            );
            b.close();
        }
        let rw_ak1 = Access::new(a, vec![b.d(k), b.d(k) + 1]);
        b.stmt(
            "Cnorm",
            vec![rw_ak1.clone(), w_n2.clone()],
            vec![w_nrm.clone()],
            move |c| {
                let k = c.v(0);
                let x = c.rd(a, &[k, k + 1]);
                let n2 = c.rd(norma2, &[]);
                c.wr(norma, &[], (x * x + n2).sqrt());
            },
        );
        b.stmt(
            "Cak",
            vec![rw_ak1.clone(), w_nrm.clone()],
            vec![rw_ak1.clone()],
            move |c| {
                let k = c.v(0);
                let x = c.rd(a, &[k, k + 1]);
                let nr = c.rd(norma, &[]);
                c.wr(a, &[k, k + 1], if x > 0.0 { x + nr } else { x - nr });
            },
        );
        let w_taupk = Access::new(taup, vec![b.d(k)]);
        b.stmt(
            "Ctaup",
            vec![w_n2.clone(), rw_ak1.clone()],
            vec![w_taupk.clone()],
            move |c| {
                let k = c.v(0);
                let x = c.rd(a, &[k, k + 1]);
                let n2 = c.rd(norma2, &[]);
                c.wr(taup, &[k], 2.0 / (1.0 + n2 / (x * x)));
            },
        );
        {
            let j = b.open("j", b.d(k) + 2, b.p("N"));
            let rw_akj = Access::new(a, vec![b.d(k), b.d(j)]);
            b.stmt(
                "Cscale",
                vec![rw_akj.clone(), rw_ak1.clone()],
                vec![rw_akj],
                move |c| {
                    let (k, j) = (c.v(0), c.v(2));
                    let v = c.rd(a, &[k, j]) / c.rd(a, &[k, k + 1]);
                    c.wr(a, &[k, j], v);
                },
            );
            b.close();
        }
        b.stmt(
            "Cflip",
            vec![rw_ak1.clone(), w_nrm.clone()],
            vec![rw_ak1.clone()],
            move |c| {
                let k = c.v(0);
                let x = c.rd(a, &[k, k + 1]);
                let nr = c.rd(norma, &[]);
                c.wr(a, &[k, k + 1], if x > 0.0 { -nr } else { nr });
            },
        );
        // Apply right reflector to rows k+1..M.
        {
            let i = b.open("i", b.d(k) + 1, b.p("M"));
            let rw_ai1 = Access::new(a, vec![b.d(i), b.d(k) + 1]);
            let w_tmp2 = Access::new(tmp2, vec![b.d(i)]);
            b.stmt(
                "Ct0",
                vec![rw_ai1.clone()],
                vec![w_tmp2.clone()],
                move |c| {
                    let (k, i) = (c.v(0), c.v(2));
                    let v = c.rd(a, &[i, k + 1]);
                    c.wr(tmp2, &[i], v);
                },
            );
            {
                let j = b.open("j", b.d(k) + 2, b.p("N"));
                let r_akj = Access::new(a, vec![b.d(k), b.d(j)]);
                let r_aij = Access::new(a, vec![b.d(i), b.d(j)]);
                b.stmt(
                    "CSR",
                    vec![r_akj, r_aij, w_tmp2.clone()],
                    vec![w_tmp2.clone()],
                    move |c| {
                        let (k, i, j) = (c.v(0), c.v(2), c.v(3));
                        let v = c.rd(tmp2, &[i]) + c.rd(a, &[i, j]) * c.rd(a, &[k, j]);
                        c.wr(tmp2, &[i], v);
                    },
                );
                b.close();
            }
            b.stmt(
                "Ct1",
                vec![w_taupk.clone(), w_tmp2.clone()],
                vec![w_tmp2.clone()],
                move |c| {
                    let (k, i) = (c.v(0), c.v(2));
                    let v = c.rd(taup, &[k]) * c.rd(tmp2, &[i]);
                    c.wr(tmp2, &[i], v);
                },
            );
            b.stmt(
                "Ccol",
                vec![rw_ai1.clone(), w_tmp2.clone()],
                vec![rw_ai1.clone()],
                move |c| {
                    let (k, i) = (c.v(0), c.v(2));
                    let v = c.rd(a, &[i, k + 1]) - c.rd(tmp2, &[i]);
                    c.wr(a, &[i, k + 1], v);
                },
            );
            {
                let j = b.open("j", b.d(k) + 2, b.p("N"));
                let r_akj = Access::new(a, vec![b.d(k), b.d(j)]);
                let rw_aij = Access::new(a, vec![b.d(i), b.d(j)]);
                b.stmt(
                    "CSU",
                    vec![r_akj, rw_aij.clone(), w_tmp2.clone()],
                    vec![rw_aij],
                    move |c| {
                        let (k, i, j) = (c.v(0), c.v(2), c.v(3));
                        let v = c.rd(a, &[i, j]) - c.rd(tmp2, &[i]) * c.rd(a, &[k, j]);
                        c.wr(a, &[i, j], v);
                    },
                );
                b.close();
            }
            b.close();
        }
        b.close();
    }
    b.close();
    b.finish()
}

/// Native GEBD2; returns `(A with reflectors + bidiagonal, tauq, taup)`.
pub fn native(a0: &Matrix) -> (Matrix, Vec<f64>, Vec<f64>) {
    let (m, n) = (a0.rows, a0.cols);
    assert!(m >= n, "GEBD2 requires M ≥ N");
    let mut a = a0.clone();
    let mut tauq = vec![0.0; n];
    let mut taup = vec![0.0; n];
    for k in 0..n {
        // Left reflector from A[k:M, k].
        let mut norma2 = 0.0;
        for i in k + 1..m {
            norma2 += a[(i, k)] * a[(i, k)];
        }
        let norma = (a[(k, k)] * a[(k, k)] + norma2).sqrt();
        a[(k, k)] = if a[(k, k)] > 0.0 {
            a[(k, k)] + norma
        } else {
            a[(k, k)] - norma
        };
        tauq[k] = 2.0 / (1.0 + norma2 / (a[(k, k)] * a[(k, k)]));
        for i in k + 1..m {
            a[(i, k)] /= a[(k, k)];
        }
        a[(k, k)] = if a[(k, k)] > 0.0 { -norma } else { norma };
        for j in k + 1..n {
            let mut t = a[(k, j)];
            for i in k + 1..m {
                t += a[(i, k)] * a[(i, j)];
            }
            t *= tauq[k];
            a[(k, j)] -= t;
            for i in k + 1..m {
                a[(i, j)] -= a[(i, k)] * t;
            }
        }
        // Right reflector from A[k, k+1:N], when it exists.
        if k + 1 < n {
            let mut normb2 = 0.0;
            for j in k + 2..n {
                normb2 += a[(k, j)] * a[(k, j)];
            }
            let normb = (a[(k, k + 1)] * a[(k, k + 1)] + normb2).sqrt();
            a[(k, k + 1)] = if a[(k, k + 1)] > 0.0 {
                a[(k, k + 1)] + normb
            } else {
                a[(k, k + 1)] - normb
            };
            taup[k] = 2.0 / (1.0 + normb2 / (a[(k, k + 1)] * a[(k, k + 1)]));
            for j in k + 2..n {
                a[(k, j)] /= a[(k, k + 1)];
            }
            a[(k, k + 1)] = if a[(k, k + 1)] > 0.0 { -normb } else { normb };
            for i in k + 1..m {
                let mut t = a[(i, k + 1)];
                for j in k + 2..n {
                    t += a[(i, j)] * a[(k, j)];
                }
                t *= taup[k];
                a[(i, k + 1)] -= t;
                for j in k + 2..n {
                    a[(i, j)] -= t * a[(k, j)];
                }
            }
        }
    }
    (a, tauq, taup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{extract_matrix, extract_vector, run_with_inputs};
    use crate::matrix::{apply_reflector_right, dense_q_from_reflectors};

    /// Reconstructs `Qᵀ·A₀·P` from the stored reflectors and checks it is
    /// the stored bidiagonal.
    fn verify_bidiagonalization(a0: &Matrix, out: &Matrix, tauq: &[f64], taup: &[f64]) {
        let (m, n) = (a0.rows, a0.cols);
        let q = dense_q_from_reflectors(out, tauq, 0);
        // P = G_0 · G_1 · … (right reflectors stored in rows, offset k+1).
        let mut p = Matrix::identity(n);
        for k in 0..n.saturating_sub(1) {
            let essentials: Vec<f64> = (k + 2..n).map(|j| out[(k, j)]).collect();
            apply_reflector_right(&mut p, k + 1, &essentials, taup[k]);
        }
        let b = q.transpose().matmul(a0).matmul(&p);
        // Expected: bidiagonal with stored diagonal/superdiagonal.
        let mut expect = Matrix::zeros(m, n);
        for k in 0..n {
            expect[(k, k)] = out[(k, k)];
            if k + 1 < n {
                expect[(k, k + 1)] = out[(k, k + 1)];
            }
        }
        assert!(
            b.max_abs_diff(&expect) < 1e-9,
            "QᵀAP is the stored bidiagonal (err {})",
            b.max_abs_diff(&expect)
        );
        assert!(q.orthonormality_error() < 1e-10);
        assert!(p.orthonormality_error() < 1e-10);
    }

    #[test]
    fn native_bidiagonalizes() {
        let a0 = Matrix::random(9, 6, 51);
        let (out, tauq, taup) = native(&a0);
        verify_bidiagonalization(&a0, &out, &tauq, &taup);
    }

    #[test]
    fn square_case_works() {
        let a0 = Matrix::random(6, 6, 52);
        let (out, tauq, taup) = native(&a0);
        verify_bidiagonalization(&a0, &out, &tauq, &taup);
    }

    #[test]
    fn ir_matches_native() {
        let a0 = Matrix::random(8, 5, 53);
        let p = program();
        let store = run_with_inputs(&p, &[8, 5], &[("A", &a0)]);
        let out_ir = extract_matrix(&p, &[8, 5], &store, "A");
        let tauq_ir = extract_vector(&p, &[8, 5], &store, "tauq");
        let taup_ir = extract_vector(&p, &[8, 5], &store, "taup");
        let (out, tauq, taup) = native(&a0);
        assert!(out_ir.max_abs_diff(&out) < 1e-12);
        for (x, y) in tauq_ir.iter().zip(&tauq) {
            assert!((x - y).abs() < 1e-12);
        }
        for (x, y) in taup_ir.iter().zip(&taup) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn ir_accesses_are_consistent() {
        let p = program();
        assert!(iolb_ir::interp::validate_accesses(&p, &[7, 5]).unwrap() > 0);
        assert!(iolb_ir::interp::validate_accesses(&p, &[6, 6]).unwrap() > 0);
    }
}
