//! Householder QR: the A2V (GEQR2, Figure 3) and V2Q (ORG2R, Figure 6)
//! parts, plus the tiled A2V ordering of Figure 9 (Appendix A.2).
//!
//! A2V factors `A = Q·R` storing the reflector essentials `V` below the
//! diagonal (unit implied), `R` on and above it, and the scalars `tau[k]`.
//! V2Q expands `(V, tau)` into the thin `M×N` orthogonal factor, running the
//! outer loop *backwards* so `tau[j]` cells can be reused as temporaries.
//! Both exhibit the hourglass on their `SR`/`SU` statements with parametric
//! width `M − 1 − k ≥ M − N`.

use crate::matrix::Matrix;
use iolb_ir::{Access, LoopStep, Program, ProgramBuilder};

/// A2V (LAPACK GEQR2, Figure 3): in-place `A → V\R`, producing `tau`.
pub fn a2v_program() -> Program {
    let mut b = ProgramBuilder::new("qr_hh_a2v", &["M", "N"]);
    let a = b.array("A", &[b.p("M"), b.p("N")]);
    let tau = b.array("tau", &[b.p("N")]);
    let norma2 = b.scalar("norma2");
    let norma = b.scalar("norma");

    let k = b.open("k", b.c(0), b.p("N"));
    let w_n2 = Access::new(norma2, vec![]);
    b.stmt("Hn0", vec![], vec![w_n2.clone()], move |c| {
        c.wr(norma2, &[], 0.0)
    });
    {
        let i = b.open("i", b.d(k) + 1, b.p("M"));
        let r_aik = Access::new(a, vec![b.d(i), b.d(k)]);
        b.stmt(
            "Hn1",
            vec![r_aik, w_n2.clone()],
            vec![w_n2.clone()],
            move |c| {
                let (k, i) = (c.v(0), c.v(1));
                let x = c.rd(a, &[i, k]);
                let v = c.rd(norma2, &[]) + x * x;
                c.wr(norma2, &[], v);
            },
        );
        b.close();
    }
    let w_nrm = Access::new(norma, vec![]);
    let rw_akk = Access::new(a, vec![b.d(k), b.d(k)]);
    b.stmt(
        "Hnorm",
        vec![rw_akk.clone(), w_n2.clone()],
        vec![w_nrm.clone()],
        move |c| {
            let k = c.v(0);
            let akk = c.rd(a, &[k, k]);
            let v = (akk * akk + c.rd(norma2, &[])).sqrt();
            c.wr(norma, &[], v);
        },
    );
    b.stmt(
        "Hakk",
        vec![rw_akk.clone(), w_nrm.clone()],
        vec![rw_akk.clone()],
        move |c| {
            let k = c.v(0);
            let akk = c.rd(a, &[k, k]);
            let nr = c.rd(norma, &[]);
            c.wr(a, &[k, k], if akk > 0.0 { akk + nr } else { akk - nr });
        },
    );
    let w_tauk = Access::new(tau, vec![b.d(k)]);
    b.stmt(
        "Htau",
        vec![w_n2.clone(), rw_akk.clone()],
        vec![w_tauk.clone()],
        move |c| {
            let k = c.v(0);
            let akk = c.rd(a, &[k, k]);
            let v = 2.0 / (1.0 + c.rd(norma2, &[]) / (akk * akk));
            c.wr(tau, &[k], v);
        },
    );
    {
        let i = b.open("i", b.d(k) + 1, b.p("M"));
        let rw_aik = Access::new(a, vec![b.d(i), b.d(k)]);
        b.stmt(
            "Hscale",
            vec![rw_aik.clone(), rw_akk.clone()],
            vec![rw_aik],
            move |c| {
                let (k, i) = (c.v(0), c.v(1));
                let v = c.rd(a, &[i, k]) / c.rd(a, &[k, k]);
                c.wr(a, &[i, k], v);
            },
        );
        b.close();
    }
    b.stmt(
        "Hflip",
        vec![rw_akk.clone(), w_nrm.clone()],
        vec![rw_akk.clone()],
        move |c| {
            let k = c.v(0);
            let akk = c.rd(a, &[k, k]);
            let nr = c.rd(norma, &[]);
            c.wr(a, &[k, k], if akk > 0.0 { -nr } else { nr });
        },
    );
    {
        let j = b.open("j", b.d(k) + 1, b.p("N"));
        let rw_akj = Access::new(a, vec![b.d(k), b.d(j)]);
        let w_tauj = Access::new(tau, vec![b.d(j)]);
        b.stmt(
            "Ht0",
            vec![rw_akj.clone()],
            vec![w_tauj.clone()],
            move |c| {
                let (k, j) = (c.v(0), c.v(1));
                let v = c.rd(a, &[k, j]);
                c.wr(tau, &[j], v);
            },
        );
        {
            let i = b.open("i", b.d(k) + 1, b.p("M"));
            let r_aik = Access::new(a, vec![b.d(i), b.d(k)]);
            let r_aij = Access::new(a, vec![b.d(i), b.d(j)]);
            b.stmt(
                "SR",
                vec![r_aik, r_aij, w_tauj.clone()],
                vec![w_tauj.clone()],
                move |c| {
                    let (k, j, i) = (c.v(0), c.v(1), c.v(2));
                    let v = c.rd(tau, &[j]) + c.rd(a, &[i, k]) * c.rd(a, &[i, j]);
                    c.wr(tau, &[j], v);
                },
            );
            b.close();
        }
        b.stmt(
            "Ht1",
            vec![w_tauk.clone(), w_tauj.clone()],
            vec![w_tauj.clone()],
            move |c| {
                let (k, j) = (c.v(0), c.v(1));
                let v = c.rd(tau, &[k]) * c.rd(tau, &[j]);
                c.wr(tau, &[j], v);
            },
        );
        b.stmt(
            "Hrow",
            vec![rw_akj.clone(), w_tauj.clone()],
            vec![rw_akj.clone()],
            move |c| {
                let (k, j) = (c.v(0), c.v(1));
                let v = c.rd(a, &[k, j]) - c.rd(tau, &[j]);
                c.wr(a, &[k, j], v);
            },
        );
        {
            let i = b.open("i", b.d(k) + 1, b.p("M"));
            let r_aik = Access::new(a, vec![b.d(i), b.d(k)]);
            let rw_aij = Access::new(a, vec![b.d(i), b.d(j)]);
            b.stmt(
                "SU",
                vec![r_aik, rw_aij.clone(), w_tauj.clone()],
                vec![rw_aij],
                move |c| {
                    let (k, j, i) = (c.v(0), c.v(1), c.v(2));
                    let v = c.rd(a, &[i, j]) - c.rd(a, &[i, k]) * c.rd(tau, &[j]);
                    c.wr(a, &[i, j], v);
                },
            );
            b.close();
        }
        b.close();
    }
    b.close();
    b.finish()
}

/// V2Q (LAPACK ORG2R, Figure 6): in-place `V\· → Q` given `tau` (M ≥ N).
pub fn v2q_program() -> Program {
    let mut b = ProgramBuilder::new("qr_hh_v2q", &["M", "N"]);
    let a = b.array("A", &[b.p("M"), b.p("N")]);
    let tau = b.array("tau", &[b.p("N")]);

    let k = b.open_rev("k", b.c(0), b.p("N"));
    {
        let j = b.open("j", b.d(k) + 1, b.p("N"));
        let w_tauj = Access::new(tau, vec![b.d(j)]);
        b.stmt("Vt0", vec![], vec![w_tauj.clone()], move |c| {
            c.wr(tau, &[c.v(1)], 0.0)
        });
        {
            let i = b.open("i", b.d(k) + 1, b.p("M"));
            let r_aik = Access::new(a, vec![b.d(i), b.d(k)]);
            let r_aij = Access::new(a, vec![b.d(i), b.d(j)]);
            b.stmt(
                "SR",
                vec![r_aik, r_aij, w_tauj.clone()],
                vec![w_tauj.clone()],
                move |c| {
                    let (k, j, i) = (c.v(0), c.v(1), c.v(2));
                    let v = c.rd(tau, &[j]) + c.rd(a, &[i, k]) * c.rd(a, &[i, j]);
                    c.wr(tau, &[j], v);
                },
            );
            b.close();
        }
        b.close();
    }
    {
        let j = b.open("j", b.d(k) + 1, b.p("N"));
        let w_tauj = Access::new(tau, vec![b.d(j)]);
        let r_tauk = Access::new(tau, vec![b.d(k)]);
        b.stmt(
            "Vt1",
            vec![w_tauj.clone(), r_tauk],
            vec![w_tauj.clone()],
            move |c| {
                let (k, j) = (c.v(0), c.v(1));
                let v = c.rd(tau, &[j]) * c.rd(tau, &[k]);
                c.wr(tau, &[j], v);
            },
        );
        b.close();
    }
    let r_tauk = Access::new(tau, vec![b.d(k)]);
    let w_akk = Access::new(a, vec![b.d(k), b.d(k)]);
    b.stmt("Vdiag", vec![r_tauk.clone()], vec![w_akk], move |c| {
        let k = c.v(0);
        let v = 1.0 - c.rd(tau, &[k]);
        c.wr(a, &[k, k], v);
    });
    {
        let j = b.open("j", b.d(k) + 1, b.p("N"));
        let r_tauj = Access::new(tau, vec![b.d(j)]);
        let w_akj = Access::new(a, vec![b.d(k), b.d(j)]);
        b.stmt("Vrow", vec![r_tauj], vec![w_akj], move |c| {
            let (k, j) = (c.v(0), c.v(1));
            let v = -c.rd(tau, &[j]);
            c.wr(a, &[k, j], v);
        });
        b.close();
    }
    {
        let j = b.open("j", b.d(k) + 1, b.p("N"));
        let i = b.open("i", b.d(k) + 1, b.p("M"));
        let r_aik = Access::new(a, vec![b.d(i), b.d(k)]);
        let rw_aij = Access::new(a, vec![b.d(i), b.d(j)]);
        let r_tauj = Access::new(tau, vec![b.d(j)]);
        b.stmt(
            "SU",
            vec![r_aik, rw_aij.clone(), r_tauj],
            vec![rw_aij],
            move |c| {
                let (k, j, i) = (c.v(0), c.v(1), c.v(2));
                let v = c.rd(a, &[i, j]) - c.rd(a, &[i, k]) * c.rd(tau, &[j]);
                c.wr(a, &[i, j], v);
            },
        );
        b.close();
        b.close();
    }
    {
        let i = b.open("i", b.d(k) + 1, b.p("M"));
        let rw_aik = Access::new(a, vec![b.d(i), b.d(k)]);
        let r_tauk = Access::new(tau, vec![b.d(k)]);
        b.stmt(
            "Vscale",
            vec![rw_aik.clone(), r_tauk],
            vec![rw_aik],
            move |c| {
                let (k, i) = (c.v(0), c.v(1));
                let v = -c.rd(a, &[i, k]) * c.rd(tau, &[k]);
                c.wr(a, &[i, k], v);
            },
        );
        b.close();
    }
    b.close();
    b.finish()
}

/// Tiled A2V (Figure 9): parameters `M, N, B`; left-looking blocked
/// ordering with I/O `≈ ½(M²N² − MN³/3)/S` at `B = ⌊S/M⌋ − 1`.
pub fn a2v_tiled_program() -> Program {
    let mut b = ProgramBuilder::new("qr_hh_a2v_tiled", &["M", "N", "B"]);
    let a = b.array("A", &[b.p("M"), b.p("N")]);
    let tau = b.array("tau", &[b.p("N")]);
    let tmp = b.scalar("tmp");
    let norma2 = b.scalar("norma2");
    let norma = b.scalar("norma");
    let bstep = LoopStep::Param(b.pid("B"));

    // Emits the "reflect column k by reflector j" block; dims positions are
    // passed in because the two phases nest (j, k) in opposite orders.
    // (pos_j, pos_i) give c.v positions of j and k; the inner i loop is
    // opened here.
    macro_rules! reflect_block {
        ($b:ident, $jd:ident, $kd:ident, $pj:expr, $pk:expr, $prefix:literal) => {{
            let rw_ajk = Access::new(a, vec![$b.d($jd), $b.d($kd)]);
            let w_tmp = Access::new(tmp, vec![]);
            $b.stmt(
                concat!($prefix, "t0"),
                vec![rw_ajk.clone()],
                vec![w_tmp.clone()],
                move |c| {
                    let (j, k) = (c.v($pj), c.v($pk));
                    let v = c.rd(a, &[j, k]);
                    c.wr(tmp, &[], v);
                },
            );
            {
                let i = $b.open("i", $b.d($jd) + 1, $b.p("M"));
                let r_aij = Access::new(a, vec![$b.d(i), $b.d($jd)]);
                let r_aik = Access::new(a, vec![$b.d(i), $b.d($kd)]);
                $b.stmt(
                    concat!($prefix, "t1"),
                    vec![r_aij, r_aik, w_tmp.clone()],
                    vec![w_tmp.clone()],
                    move |c| {
                        let (j, k, i) = (c.v($pj), c.v($pk), c.v(3));
                        let v = c.rd(tmp, &[]) + c.rd(a, &[i, j]) * c.rd(a, &[i, k]);
                        c.wr(tmp, &[], v);
                    },
                );
                $b.close();
            }
            let r_tauj = Access::new(tau, vec![$b.d($jd)]);
            $b.stmt(
                concat!($prefix, "t2"),
                vec![r_tauj, w_tmp.clone()],
                vec![w_tmp.clone()],
                move |c| {
                    let j = c.v($pj);
                    let v = c.rd(tau, &[j]) * c.rd(tmp, &[]);
                    c.wr(tmp, &[], v);
                },
            );
            $b.stmt(
                concat!($prefix, "row"),
                vec![rw_ajk.clone(), w_tmp.clone()],
                vec![rw_ajk.clone()],
                move |c| {
                    let (j, k) = (c.v($pj), c.v($pk));
                    let v = c.rd(a, &[j, k]) - c.rd(tmp, &[]);
                    c.wr(a, &[j, k], v);
                },
            );
            {
                let i = $b.open("i", $b.d($jd) + 1, $b.p("M"));
                let r_aij = Access::new(a, vec![$b.d(i), $b.d($jd)]);
                let rw_aik = Access::new(a, vec![$b.d(i), $b.d($kd)]);
                $b.stmt(
                    concat!($prefix, "su"),
                    vec![r_aij, rw_aik.clone(), w_tmp.clone()],
                    vec![rw_aik],
                    move |c| {
                        let (j, k, i) = (c.v($pj), c.v($pk), c.v(3));
                        let v = c.rd(a, &[i, k]) - c.rd(a, &[i, j]) * c.rd(tmp, &[]);
                        c.wr(a, &[i, k], v);
                    },
                );
                $b.close();
            }
        }};
    }

    let k0 = b.open_strided("k0", b.c(0), b.p("N"), bstep);
    let _ = k0;
    // Phase 1: apply all reflectors j < k0 to the block's columns.
    {
        let j = b.open("j", b.c(0), b.d(k0));
        let kk = b.open_general(
            "k",
            vec![b.d(k0)],
            vec![b.d(k0) + b.p("B"), b.p("N")],
            LoopStep::One,
            false,
        );
        reflect_block!(b, j, kk, 1, 2, "X");
        b.close();
        b.close();
    }
    // Phase 2: panel factorization inside the block.
    {
        let kk = b.open_general(
            "k",
            vec![b.d(k0)],
            vec![b.d(k0) + b.p("B"), b.p("N")],
            LoopStep::One,
            false,
        );
        {
            let j = b.open("j", b.d(k0), b.d(kk));
            reflect_block!(b, j, kk, 2, 1, "Y");
            b.close();
        }
        // Reflector generation for column k (same as the A2V head).
        let w_n2 = Access::new(norma2, vec![]);
        b.stmt("Yn0", vec![], vec![w_n2.clone()], move |c| {
            c.wr(norma2, &[], 0.0)
        });
        {
            let i = b.open("i", b.d(kk) + 1, b.p("M"));
            let r_aik = Access::new(a, vec![b.d(i), b.d(kk)]);
            b.stmt(
                "Yn1",
                vec![r_aik, w_n2.clone()],
                vec![w_n2.clone()],
                move |c| {
                    let (k, i) = (c.v(1), c.v(2));
                    let x = c.rd(a, &[i, k]);
                    let v = c.rd(norma2, &[]) + x * x;
                    c.wr(norma2, &[], v);
                },
            );
            b.close();
        }
        let w_nrm = Access::new(norma, vec![]);
        let rw_akk = Access::new(a, vec![b.d(kk), b.d(kk)]);
        b.stmt(
            "Ynorm",
            vec![rw_akk.clone(), w_n2.clone()],
            vec![w_nrm.clone()],
            move |c| {
                let k = c.v(1);
                let akk = c.rd(a, &[k, k]);
                let v = (akk * akk + c.rd(norma2, &[])).sqrt();
                c.wr(norma, &[], v);
            },
        );
        b.stmt(
            "Yakk",
            vec![rw_akk.clone(), w_nrm.clone()],
            vec![rw_akk.clone()],
            move |c| {
                let k = c.v(1);
                let akk = c.rd(a, &[k, k]);
                let nr = c.rd(norma, &[]);
                c.wr(a, &[k, k], if akk > 0.0 { akk + nr } else { akk - nr });
            },
        );
        let w_tauk = Access::new(tau, vec![b.d(kk)]);
        b.stmt(
            "Ytau",
            vec![w_n2.clone(), rw_akk.clone()],
            vec![w_tauk],
            move |c| {
                let k = c.v(1);
                let akk = c.rd(a, &[k, k]);
                let v = 2.0 / (1.0 + c.rd(norma2, &[]) / (akk * akk));
                c.wr(tau, &[k], v);
            },
        );
        {
            let i = b.open("i", b.d(kk) + 1, b.p("M"));
            let rw_aik = Access::new(a, vec![b.d(i), b.d(kk)]);
            b.stmt(
                "Yscale",
                vec![rw_aik.clone(), rw_akk.clone()],
                vec![rw_aik],
                move |c| {
                    let (k, i) = (c.v(1), c.v(2));
                    let v = c.rd(a, &[i, k]) / c.rd(a, &[k, k]);
                    c.wr(a, &[i, k], v);
                },
            );
            b.close();
        }
        b.stmt(
            "Yflip",
            vec![rw_akk.clone(), w_nrm.clone()],
            vec![rw_akk.clone()],
            move |c| {
                let k = c.v(1);
                let akk = c.rd(a, &[k, k]);
                let nr = c.rd(norma, &[]);
                c.wr(a, &[k, k], if akk > 0.0 { -nr } else { nr });
            },
        );
        b.close();
    }
    b.close();
    b.finish()
}

/// Native A2V; returns `(V\R in place, tau)`.
pub fn a2v_native(a0: &Matrix) -> (Matrix, Vec<f64>) {
    let (m, n) = (a0.rows, a0.cols);
    let mut a = a0.clone();
    let mut tau = vec![0.0; n];
    for k in 0..n {
        let mut norma2 = 0.0;
        for i in k + 1..m {
            norma2 += a[(i, k)] * a[(i, k)];
        }
        let norma = (a[(k, k)] * a[(k, k)] + norma2).sqrt();
        a[(k, k)] = if a[(k, k)] > 0.0 {
            a[(k, k)] + norma
        } else {
            a[(k, k)] - norma
        };
        tau[k] = 2.0 / (1.0 + norma2 / (a[(k, k)] * a[(k, k)]));
        for i in k + 1..m {
            a[(i, k)] /= a[(k, k)];
        }
        a[(k, k)] = if a[(k, k)] > 0.0 { -norma } else { norma };
        for j in k + 1..n {
            let mut t = a[(k, j)];
            for i in k + 1..m {
                t += a[(i, k)] * a[(i, j)];
            }
            t *= tau[k];
            a[(k, j)] -= t;
            for i in k + 1..m {
                a[(i, j)] -= a[(i, k)] * t;
            }
        }
    }
    (a, tau)
}

/// Native V2Q; expands `(V, tau)` (as produced by A2V) into thin `Q`.
pub fn v2q_native(vr: &Matrix, tau0: &[f64]) -> Matrix {
    let (m, n) = (vr.rows, vr.cols);
    let mut a = vr.clone();
    let mut tau = tau0.to_vec();
    for k in (0..n).rev() {
        for j in k + 1..n {
            tau[j] = 0.0;
            for i in k + 1..m {
                tau[j] += a[(i, k)] * a[(i, j)];
            }
        }
        for j in k + 1..n {
            tau[j] *= tau[k];
        }
        a[(k, k)] = 1.0 - tau[k];
        for j in k + 1..n {
            a[(k, j)] = -tau[j];
        }
        for j in k + 1..n {
            for i in k + 1..m {
                a[(i, j)] -= a[(i, k)] * tau[j];
            }
        }
        for i in k + 1..m {
            a[(i, k)] = -a[(i, k)] * tau[k];
        }
    }
    a
}

/// Native tiled A2V (Figure 9); returns `(V\R, tau)`.
pub fn a2v_tiled_native(a0: &Matrix, block: usize) -> (Matrix, Vec<f64>) {
    assert!(block >= 1);
    let (m, n) = (a0.rows, a0.cols);
    let mut a = a0.clone();
    let mut tau = vec![0.0; n];
    let reflect = |a: &mut Matrix, tau: &[f64], j: usize, k: usize| {
        let mut t = a[(j, k)];
        for i in j + 1..m {
            t += a[(i, j)] * a[(i, k)];
        }
        t *= tau[j];
        a[(j, k)] -= t;
        for i in j + 1..m {
            a[(i, k)] -= a[(i, j)] * t;
        }
    };
    let mut k0 = 0;
    while k0 < n {
        let kend = (k0 + block).min(n);
        for j in 0..k0 {
            for k in k0..kend {
                reflect(&mut a, &tau, j, k);
            }
        }
        for k in k0..kend {
            for j in k0..k {
                reflect(&mut a, &tau, j, k);
            }
            let mut norma2 = 0.0;
            for i in k + 1..m {
                norma2 += a[(i, k)] * a[(i, k)];
            }
            let norma = (a[(k, k)] * a[(k, k)] + norma2).sqrt();
            a[(k, k)] = if a[(k, k)] > 0.0 {
                a[(k, k)] + norma
            } else {
                a[(k, k)] - norma
            };
            tau[k] = 2.0 / (1.0 + norma2 / (a[(k, k)] * a[(k, k)]));
            for i in k + 1..m {
                a[(i, k)] /= a[(k, k)];
            }
            a[(k, k)] = if a[(k, k)] > 0.0 { -norma } else { norma };
        }
        k0 += block;
    }
    (a, tau)
}

/// Appendix A.2 block size (same constraint as A.1): `B = ⌊S/M⌋ − 1`.
pub fn a2_block_size(m: usize, s: usize) -> usize {
    (s / m).saturating_sub(1).max(1)
}

/// Appendix A.2 read-cost model at block size `B`:
/// `(½MN² − N³/6)/B` (reflector reloads) + `2MN` (block moves).
pub fn a2_reads_model(m: usize, n: usize, block: usize) -> f64 {
    let (m, n, b) = (m as f64, n as f64, block as f64);
    (0.5 * m * n * n - n * n * n / 6.0) / b + 2.0 * m * n
}

/// Appendix A.2 headline I/O: `½(M²N² − MN³/3)/S`.
pub fn a2_io_headline(m: usize, n: usize, s: usize) -> f64 {
    let (m, n, s) = (m as f64, n as f64, s as f64);
    0.5 * (m * m * n * n - m * n * n * n / 3.0) / s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{extract_matrix, extract_vector, run_with_inputs};
    use crate::matrix::dense_q_from_reflectors;

    #[test]
    fn a2v_factors_a() {
        let a0 = Matrix::random(10, 6, 21);
        let (vr, tau) = a2v_native(&a0);
        // Rebuild dense Q from reflectors; A = Q · [R; 0].
        let q = dense_q_from_reflectors(&vr, &tau, 0);
        assert!(q.orthonormality_error() < 1e-10);
        let mut rfull = Matrix::zeros(10, 6);
        for i in 0..6 {
            for j in i..6 {
                rfull[(i, j)] = vr[(i, j)];
            }
        }
        assert!(q.matmul(&rfull).max_abs_diff(&a0) < 1e-9);
    }

    #[test]
    fn v2q_matches_dense_expansion() {
        let a0 = Matrix::random(9, 5, 33);
        let (vr, tau) = a2v_native(&a0);
        let qthin = v2q_native(&vr, &tau);
        let qdense = dense_q_from_reflectors(&vr, &tau, 0);
        // First N columns of the dense Q.
        let expect = Matrix::from_fn(9, 5, |i, j| qdense[(i, j)]);
        assert!(qthin.max_abs_diff(&expect) < 1e-10);
        assert!(qthin.orthonormality_error() < 1e-10);
    }

    #[test]
    fn qr_roundtrip_through_both_parts() {
        let a0 = Matrix::random(12, 8, 4);
        let (vr, tau) = a2v_native(&a0);
        let q = v2q_native(&vr, &tau);
        let r = vr.upper_triangular(8);
        // A ≈ Q_thin · R.
        assert!(q.matmul(&r).max_abs_diff(&a0) < 1e-9);
    }

    #[test]
    fn a2v_ir_matches_native() {
        let a0 = Matrix::random(8, 5, 9);
        let p = a2v_program();
        let store = run_with_inputs(&p, &[8, 5], &[("A", &a0)]);
        let vr_ir = extract_matrix(&p, &[8, 5], &store, "A");
        let tau_ir = extract_vector(&p, &[8, 5], &store, "tau");
        let (vr, tau) = a2v_native(&a0);
        assert!(vr_ir.max_abs_diff(&vr) < 1e-12);
        for (a, b) in tau_ir.iter().zip(&tau) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn v2q_ir_matches_native() {
        let a0 = Matrix::random(8, 5, 10);
        let (vr, tau) = a2v_native(&a0);
        let p = v2q_program();
        let tau_m = Matrix {
            rows: 1,
            cols: 5,
            data: tau.clone(),
        };
        // tau is 1-D; pass through a 1×N matrix view of the data.
        let store = {
            let lookupable = [("A", &vr)];
            let mut store = iolb_ir::Store::init(&p, &[8, 5], |arr, f| {
                let name = &p.arrays[arr.0 as usize].name;
                if name == "A" {
                    lookupable[0].1.data[f]
                } else if name == "tau" {
                    tau_m.data[f]
                } else {
                    0.0
                }
            });
            iolb_ir::Interpreter::new(&p, &[8, 5]).run(&mut store, &mut iolb_ir::NullSink);
            store
        };
        let q_ir = extract_matrix(&p, &[8, 5], &store, "A");
        let q = v2q_native(&vr, &tau);
        assert!(q_ir.max_abs_diff(&q) < 1e-12);
    }

    #[test]
    fn tiled_a2v_matches_untiled() {
        let a0 = Matrix::random(11, 7, 17);
        let (vr_ref, tau_ref) = a2v_native(&a0);
        for block in [1, 2, 3, 7] {
            let (vr, tau) = a2v_tiled_native(&a0, block);
            assert!(vr.max_abs_diff(&vr_ref) < 1e-9, "B={block}");
            for (a, b) in tau.iter().zip(&tau_ref) {
                assert!((a - b).abs() < 1e-9, "B={block}");
            }
        }
    }

    #[test]
    fn tiled_a2v_ir_matches_tiled_native() {
        let a0 = Matrix::random(9, 6, 29);
        let p = a2v_tiled_program();
        for block in [2i64, 3] {
            let store = run_with_inputs(&p, &[9, 6, block], &[("A", &a0)]);
            let vr_ir = extract_matrix(&p, &[9, 6, block], &store, "A");
            let tau_ir = extract_vector(&p, &[9, 6, block], &store, "tau");
            let (vr, tau) = a2v_tiled_native(&a0, block as usize);
            assert!(vr_ir.max_abs_diff(&vr) < 1e-12, "B={block}");
            for (x, y) in tau_ir.iter().zip(&tau) {
                assert!((x - y).abs() < 1e-12, "B={block}");
            }
        }
    }

    #[test]
    fn all_ir_variants_validate() {
        assert!(iolb_ir::interp::validate_accesses(&a2v_program(), &[8, 5]).unwrap() > 0);
        assert!(iolb_ir::interp::validate_accesses(&v2q_program(), &[8, 5]).unwrap() > 0);
        assert!(iolb_ir::interp::validate_accesses(&a2v_tiled_program(), &[8, 5, 2]).unwrap() > 0);
    }

    #[test]
    fn tiled_io_beats_untiled_under_lru() {
        let (m, n, s) = (24usize, 12usize, 128usize);
        let block = a2_block_size(m, s) as i64;
        let a0 = Matrix::random(m, n, 6);
        let mk_init = |a0: &Matrix| {
            let a = a0.clone();
            move |arr: iolb_ir::ArrayId, f: usize| if arr.0 == 0 { a.data[f] } else { 0.0 }
        };
        let untiled =
            crate::sinks::measure_lru_io(&a2v_program(), &[m as i64, n as i64], s, mk_init(&a0));
        let tiled = crate::sinks::measure_lru_io(
            &a2v_tiled_program(),
            &[m as i64, n as i64, block],
            s,
            mk_init(&a0),
        );
        assert!(
            tiled.loads < untiled.loads,
            "tiled {} < untiled {}",
            tiled.loads,
            untiled.loads
        );
    }
}
