//! Cancellation-seam coverage (issue satellite 3): a cancel/deadline/fault
//! landing *mid-pass* at every governed seam must surface as the right
//! typed error within a bounded number of polls, leave no corrupted state
//! behind, and never abort the process.

use iolb_bench::sweep::{
    default_sweep_kernels_at, try_run_sweep, try_run_sweep_opts, CurveStrategy, SweepSize,
};
use iolb_bench::tightness::{try_run_tightness, TightnessJob};
use iolb_cdag::try_build_cdag;
use iolb_govern::{catch_analysis_mut, AnalysisError, Budget, CancelToken, Fault, FaultKind, Seam};
use iolb_memsim::CurveEngine;

/// A small GEMM with an auto-tuned schedule — the only built-in shape that
/// exercises the tuner seam.
fn tiled_job() -> TightnessJob {
    let src = "
kernel gemm_mini(M, N, K) {
  array A[M][K];
  array B[K][N];
  array C[M][N];
  analyze SU;
  schedule { tile i; tile j; tile k; }

  for i in 0..M {
    for j in 0..N {
      Cz: C[i][j] = op();
    }
  }
  for i in 0..M {
    for j in 0..N {
      for k in 0..K {
        SU: C[i][j] = op(A[i][k], B[k][j], C[i][j]);
      }
    }
  }
}
";
    let kernel = iolb_ir::parse_kernel(src).expect("parse");
    TightnessJob {
        name: "gemm_mini".to_string(),
        program: kernel.program,
        params: vec![8, 8, 8],
        env: Vec::new(),
        classical: None,
        hourglass: None,
        schedule: kernel.schedule,
        s_offsets: vec![0, 8],
    }
}

/// A packed program-order trace long enough that the curve passes poll the
/// token at least twice (polls land every 4096 positions).
fn long_trace() -> Vec<u64> {
    let program = iolb_kernels::gemm::program();
    let params = vec![16i64, 16, 16];
    let cdag = try_build_cdag(
        &program,
        &params,
        &Budget::unlimited(),
        &CancelToken::unlimited(),
    )
    .expect("ungoverned build");
    let mut trace = Vec::new();
    cdag.packed_program_order_trace(&mut trace);
    assert!(trace.len() > 2 * 4096, "trace long enough to poll twice");
    trace
}

#[test]
fn cancel_mid_cdag_fill_is_typed_and_bounded() {
    let program = iolb_kernels::gemm::program();
    let params = vec![12i64, 12, 12];
    let token = CancelToken::trip_after_checks(2);
    let err = try_build_cdag(&program, &params, &Budget::unlimited(), &token)
        .expect_err("tripped token must cancel the fill");
    assert!(matches!(err, AnalysisError::Cancelled), "got {err}");
    // The walk polls every 1024 instances, so the trip lands after at most
    // two polls — the enumeration never runs away past the cancel.
    assert_eq!(
        token.checks_seen(),
        2,
        "cancel surfaced at the tripping poll"
    );
}

#[test]
fn fault_injected_mid_cdag_fill_keeps_its_class() {
    let program = iolb_kernels::gemm::program();
    let params = vec![12i64, 12, 12];
    let token = CancelToken::with_fault(Fault {
        kind: FaultKind::Oom,
        seam: Seam::CdagFill,
    });
    let err = try_build_cdag(&program, &params, &Budget::unlimited(), &token)
        .expect_err("injected OOM must surface");
    assert_eq!(err.class_name(), "budget");
    assert!(matches!(
        err,
        AnalysisError::BudgetExceeded {
            resource: "injected_oom",
            ..
        }
    ));
}

#[test]
fn cancel_mid_lru_pass_is_typed() {
    let trace = long_trace();
    let mut engine = CurveEngine::new();
    let token = CancelToken::trip_after_checks(2);
    let err = engine
        .try_lru_packed(&trace, 64, &token)
        .expect_err("tripped token must cancel the LRU pass");
    assert!(matches!(err, AnalysisError::Cancelled), "got {err}");
    assert_eq!(token.checks_seen(), 2);
}

#[test]
fn cancel_mid_opt_pass_is_typed() {
    let trace = long_trace();
    let mut engine = CurveEngine::new();
    let token = CancelToken::with_fault(Fault {
        kind: FaultKind::Deadline,
        seam: Seam::OptPass,
    });
    let err = engine
        .try_opt_packed(&trace, 64, &token)
        .expect_err("injected deadline must cancel the OPT pass");
    assert!(matches!(err, AnalysisError::Deadline { .. }), "got {err}");
}

/// The engine reuse guarantee: a cancelled pass leaves no observable state
/// behind — the same engine produces bitwise-identical curves afterwards.
#[test]
fn engine_reuse_after_cancelled_pass_is_clean() {
    let trace = long_trace();
    let horizon = 64usize;
    let mut engine = CurveEngine::new();
    let unlimited = CancelToken::unlimited();
    let lru_before = engine
        .try_lru_packed(&trace, horizon, &unlimited)
        .expect("clean pass");
    let opt_before = engine
        .try_opt_packed(&trace, horizon, &unlimited)
        .expect("clean pass");

    // Interrupt both passes mid-flight on the same engine.
    for n in [1u64, 2] {
        let token = CancelToken::trip_after_checks(n);
        assert!(engine.try_lru_packed(&trace, horizon, &token).is_err());
        let token = CancelToken::trip_after_checks(n);
        assert!(engine.try_opt_packed(&trace, horizon, &token).is_err());
    }

    let lru_after = engine
        .try_lru_packed(&trace, horizon, &unlimited)
        .expect("clean pass after cancellations");
    let opt_after = engine
        .try_opt_packed(&trace, horizon, &unlimited)
        .expect("clean pass after cancellations");
    for s in 1..=horizon {
        assert_eq!(
            lru_before.loads(s),
            lru_after.loads(s),
            "LRU loads at S={s}"
        );
        assert_eq!(
            opt_before.loads(s),
            opt_after.loads(s),
            "OPT loads at S={s}"
        );
    }
}

#[test]
fn cancel_mid_tuner_is_typed() {
    let token = CancelToken::with_fault(Fault {
        kind: FaultKind::Deadline,
        seam: Seam::Tuner,
    });
    let err = try_run_tightness(vec![tiled_job()], &Budget::unlimited(), &token)
        .expect_err("injected deadline must cancel the tuner");
    assert!(matches!(err, AnalysisError::Deadline { .. }), "got {err}");
}

#[test]
fn panic_injected_mid_tuner_is_contained() {
    let token = CancelToken::with_fault(Fault {
        kind: FaultKind::Panic,
        seam: Seam::Tuner,
    });
    let err = catch_analysis_mut(|| {
        try_run_tightness(vec![tiled_job()], &Budget::unlimited(), &token).map(|_| ())
    })
    .expect_err("injected panic must be contained as a typed error");
    assert_eq!(err.class_name(), "internal");
    assert!(matches!(err, AnalysisError::Internal(ref msg) if msg.contains("injected panic")));
}

#[test]
fn sweep_respects_trace_budget_and_external_cancel() {
    // A trace budget far below any real kernel's trace: the sweep must
    // refuse with a typed budget error naming the resource.
    let budget = Budget {
        max_trace_len: 16,
        ..Budget::unlimited()
    };
    let err = try_run_sweep(
        default_sweep_kernels_at(SweepSize::Small),
        &budget,
        &CancelToken::unlimited(),
    )
    .expect_err("tiny trace budget must refuse");
    assert!(matches!(
        err,
        AnalysisError::BudgetExceeded {
            resource: "trace_len",
            ..
        }
    ));

    // An externally cancelled token aborts the sweep with `Cancelled`.
    let token = CancelToken::unlimited();
    token.cancel();
    let err = try_run_sweep(
        default_sweep_kernels_at(SweepSize::Small),
        &Budget::unlimited(),
        &token,
    )
    .expect_err("cancelled token must abort the sweep");
    assert!(matches!(err, AnalysisError::Cancelled), "got {err}");
}

/// The default sweep path prices curves through the *sharded* engines, so
/// a fault armed at a curve-pass seam must surface from inside the shard
/// workers — through `try_run_sweep`, not just the engine unit tests.
#[test]
fn sweep_faults_at_shard_seams_are_typed() {
    let token = CancelToken::with_fault(Fault {
        kind: FaultKind::Deadline,
        seam: Seam::LruPass,
    });
    let err = try_run_sweep(
        default_sweep_kernels_at(SweepSize::Small),
        &Budget::unlimited(),
        &token,
    )
    .expect_err("deadline at the LRU shard seam must abort the sweep");
    assert!(matches!(err, AnalysisError::Deadline { .. }), "got {err}");

    let token = CancelToken::with_fault(Fault {
        kind: FaultKind::Deadline,
        seam: Seam::OptPass,
    });
    let err = try_run_sweep(
        default_sweep_kernels_at(SweepSize::Small),
        &Budget::unlimited(),
        &token,
    )
    .expect_err("deadline at the OPT shard seam must abort the sweep");
    assert!(matches!(err, AnalysisError::Deadline { .. }), "got {err}");
}

/// Issue acceptance: the streaming sharded path is bitwise-equal to the
/// materialized reference on *every* shipped kernel — same rows, same
/// measured loads, cell for cell. (Traces at `SweepSize::Small` sit under
/// `CROSS_CHECK_CAP`, so the streaming run additionally re-prices each
/// curve on the materialized engine internally and would already have
/// failed with `Internal` on any divergence; this test pins the
/// report-level equality end to end.)
#[test]
fn all_shipped_kernels_price_identically_under_both_strategies() {
    let registry = iolb_core::EngineRegistry::all();
    let run = |strategy| {
        try_run_sweep_opts(
            default_sweep_kernels_at(SweepSize::Small),
            &Budget::unlimited(),
            &CancelToken::unlimited(),
            &registry,
            strategy,
        )
        .expect("sweep")
    };
    let streaming = run(CurveStrategy::Streaming);
    let materialized = run(CurveStrategy::Materialized);
    assert_eq!(streaming.rows.len(), materialized.rows.len());
    assert!(
        streaming.rows.len() >= 5,
        "all shipped kernels present, got {}",
        streaming.rows.len()
    );
    for (s, m) in streaming.rows.iter().zip(&materialized.rows) {
        assert_eq!(s.kernel, m.kernel);
        assert_eq!(s.s, m.s);
        assert_eq!(s.policy, m.policy);
        assert_eq!(
            s.loads, m.loads,
            "{} S={} {:?}: streaming vs materialized loads",
            s.kernel, s.s, s.policy
        );
    }
}
