//! Substrate throughput: accesses/second of the LRU and Belady-MIN
//! simulators (they gate how large the Appendix sweeps can go).
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use iolb_memsim::{lru_stats, min_stats, Access};
use rand::prelude::*;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let trace: Vec<Access> = (0..200_000)
        .map(|_| Access {
            cell: rng.gen_range(0..4096),
            write: rng.gen_bool(0.3),
        })
        .collect();
    let mut g = c.benchmark_group("memsim_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("lru_200k", |b| b.iter(|| lru_stats(1024, &trace)));
    g.bench_function("belady_min_200k", |b| b.iter(|| min_stats(1024, &trace)));
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
