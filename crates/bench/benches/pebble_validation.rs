//! VAL-P: times CDAG construction plus a full pebble play for MGS, and
//! asserts the bound-vs-play soundness as a side effect.
use criterion::{criterion_group, criterion_main, Criterion};
use iolb_cdag::{build_cdag, PebbleGame, SpillPolicy};
use iolb_symbolic::Var;

fn bench(c: &mut Criterion) {
    let program = iolb_kernels::mgs::program();
    let params = [16i64, 8];
    let cdag = build_cdag(&program, &params);
    let analysis = iolb_core::Analysis::run(&program, &[params.to_vec()]).unwrap();
    let su = program.stmt_id("SU").unwrap();
    let pat = analysis.detect_hourglass(su).unwrap();
    let hb = analysis.hourglass_bound(&pat);
    let env = [(Var::new("M"), 16i128), (Var::new("N"), 8)];
    for s in [8usize, 16, 32] {
        let play = PebbleGame::new(&cdag, s)
            .play_program_order(SpillPolicy::MinNextUse)
            .unwrap();
        assert!(hb.eval_floor(&env, s as i128) <= play.loads as f64);
    }
    let mut g = c.benchmark_group("pebble_validation");
    g.sample_size(10);
    g.bench_function("mgs_16x8_cdag_build", |b| {
        b.iter(|| build_cdag(&program, &params))
    });
    g.bench_function("mgs_16x8_play_min_s16", |b| {
        b.iter(|| {
            PebbleGame::new(&cdag, 16)
                .play_program_order(SpillPolicy::MinNextUse)
                .unwrap()
        })
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
