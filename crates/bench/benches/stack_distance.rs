//! One-pass stack-distance curves vs the per-S replay loop they replaced.
//!
//! The dense validation grid reads ~32 S points per (kernel, policy); the
//! old harness replayed `LruSim`/`BeladySim` once per point. These
//! benchmarks price one curve pass against that 32× replay loop on the
//! two trace shapes the harness actually profiles: a GEMM-like kernel
//! trace (structured reuse, the tightness auto-tuner's workload) and a
//! uniform random trace (the adversarial shape for the displacement
//! chain).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use iolb_bench::scale::{GemmTrace, SCALING_HORIZON, SCALING_TARGETS};
use iolb_memsim::{BeladySim, ChunkedTrace, CurveEngine, LruSim, ShardedCurveEngine};
use rand::prelude::*;

/// S grid matching `iolb_bench::sweep::dense_s_offsets` over `min_s = 4`.
fn s_grid() -> Vec<usize> {
    iolb_bench::sweep::dense_s_offsets()
        .into_iter()
        .map(|off| 4 + off)
        .collect()
}

/// The untiled GEMM element trace at 24³ (the tightness tuner's unit of
/// work: ~58k accesses over ~1.7k cells).
fn gemm_trace() -> Vec<u64> {
    let n = 24usize;
    let (a0, b0, c0) = (0, n * n, 2 * n * n);
    let mut t = Vec::with_capacity(4 * n * n * n + n * n);
    for i in 0..n {
        for j in 0..n {
            t.push(((c0 + i * n + j) as u64) << 1 | 1);
        }
    }
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                t.push(((a0 + i * n + k) as u64) << 1);
                t.push(((b0 + k * n + j) as u64) << 1);
                t.push(((c0 + i * n + j) as u64) << 1);
                t.push(((c0 + i * n + j) as u64) << 1 | 1);
            }
        }
    }
    t
}

fn random_trace(len: usize, cells: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(11);
    (0..len)
        .map(|_| (rng.gen_range(0..cells) << 1) | rng.gen_bool(0.3) as u64)
        .collect()
}

fn bench(c: &mut Criterion) {
    let grid = s_grid();
    let horizon = *grid.last().unwrap();
    for (name, trace) in [
        ("gemm24", gemm_trace()),
        ("rand200k", random_trace(200_000, 4096)),
    ] {
        let mut g = c.benchmark_group(format!("stack_distance_{name}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(trace.len() as u64));
        g.bench_function("opt_curve_1pass", |b| {
            let mut e = CurveEngine::new();
            b.iter(|| e.opt_packed(&trace, horizon))
        });
        g.bench_function("lru_curve_1pass", |b| {
            let mut e = CurveEngine::new();
            b.iter(|| e.lru_packed(&trace, horizon))
        });
        g.bench_function("belady_replay_32x", |b| {
            let mut sim = BeladySim::new(1);
            b.iter(|| {
                let mut total = 0u64;
                for &s in &grid {
                    sim = BeladySim::new(s);
                    total += sim.run_packed(&trace).loads;
                }
                total
            })
        });
        g.bench_function("lru_replay_32x", |b| {
            b.iter(|| {
                let mut total = 0u64;
                for &s in &grid {
                    let mut sim = LruSim::new(s);
                    total += sim.run_packed(&trace).loads;
                }
                total
            })
        });
        g.finish();
    }
}

/// Scaling series of the streaming sharded engines on the symbolic GEMM
/// trace (no materialization): 10⁶ → 10⁸ accesses, the same points the
/// pebble report records under `meta.scaling` and `xtask gate` guards
/// against >2× wall-time regressions.
fn bench_scaling(c: &mut Criterion) {
    let token = iolb_core::govern::CancelToken::unlimited();
    for &target in &SCALING_TARGETS {
        let trace = GemmTrace::with_at_least_accesses(target);
        let mut g = c.benchmark_group(format!("stack_distance_scaling_{target}"));
        g.sample_size(10);
        g.throughput(Throughput::Elements(trace.len()));
        g.bench_function("sharded_lru", |b| {
            let engine = ShardedCurveEngine::new();
            b.iter(|| engine.try_lru(&trace, SCALING_HORIZON, &token).unwrap())
        });
        g.bench_function("streaming_opt", |b| {
            let engine = ShardedCurveEngine::new();
            b.iter(|| engine.try_opt(&trace, SCALING_HORIZON, &token).unwrap())
        });
        g.finish();
    }
}
criterion_group!(benches, bench, bench_scaling);
criterion_main!(benches);
