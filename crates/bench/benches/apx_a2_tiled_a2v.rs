//! APXA2: times the tiled-A2V I/O measurement that regenerates the
//! Appendix A.2 table.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("apx_a2_tiled_a2v");
    g.sample_size(10);
    let (m, n) = (48usize, 24usize);
    for s in [256usize, 512, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            b.iter(|| iolb_bench::sweep_tiled_a2v(m, n, &[s]))
        });
    }
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
