//! Native kernel throughput: the f64 implementations used as numerical
//! ground truth (also demonstrates the tiled orderings cost no extra flops).
use criterion::{criterion_group, criterion_main, Criterion};
use iolb_kernels::Matrix;

fn bench(c: &mut Criterion) {
    let a = Matrix::random(128, 64, 42);
    let mut g = c.benchmark_group("kernels_native");
    g.sample_size(20);
    g.bench_function("mgs_128x64", |b| b.iter(|| iolb_kernels::mgs::native(&a)));
    g.bench_function("mgs_tiled_128x64_b8", |b| {
        b.iter(|| iolb_kernels::mgs::tiled_native(&a, 8))
    });
    g.bench_function("a2v_128x64", |b| {
        b.iter(|| iolb_kernels::householder::a2v_native(&a))
    });
    let (vr, tau) = iolb_kernels::householder::a2v_native(&a);
    g.bench_function("v2q_128x64", |b| {
        b.iter(|| iolb_kernels::householder::v2q_native(&vr, &tau))
    });
    g.bench_function("gebd2_128x64", |b| {
        b.iter(|| iolb_kernels::gebd2::native(&a))
    });
    let sq = Matrix::random(96, 96, 43);
    g.bench_function("gehd2_96", |b| b.iter(|| iolb_kernels::gehd2::native(&sq)));
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
