//! APXA1: times the tiled-MGS I/O measurement (interpreter + LRU cache
//! simulation) that regenerates the Appendix A.1 table.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("apx_a1_tiled_mgs");
    g.sample_size(10);
    let (m, n) = (48usize, 24usize);
    for s in [256usize, 512, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            b.iter(|| iolb_bench::sweep_tiled_mgs(m, n, &[s]))
        });
    }
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
