//! FIG4: times a full old+new derivation per kernel (the engine itself is a
//! deliverable; Figure 4 is regenerated from these derivations).
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_derivation");
    g.sample_size(10);
    for (program, name, stmt) in iolb_bench::paper_kernels() {
        g.bench_function(name, |b| {
            b.iter(|| iolb_core::report::analyze_kernel(&program, name, stmt).expect("derivation"))
        });
    }
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
