//! FIG5: times the Figure-5 parity evaluation (paper formulas vs engine
//! formulas across the default grid) and asserts parity as a side effect.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let reports = iolb_bench::derive_all();
    // Assert the parity property once, so `cargo bench` also validates.
    for p in iolb_core::report::fig5_parity(&reports, 16384, 4096, 1024) {
        assert!(
            (p.engine_new / p.paper_new - 1.0).abs() < 0.05,
            "{}",
            p.kernel
        );
    }
    c.bench_function("fig5_parity_grid", |b| {
        b.iter(|| iolb_core::report::fig5_table(&reports))
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
