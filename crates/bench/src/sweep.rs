//! Parallel (kernel × S × policy) pebble-game validation sweep.
//!
//! Every derived lower bound must sit at or below the loads of a *legal*
//! red-white pebble play on the exact CDAG. This module runs that check as
//! a data-parallel matrix — kernels are prepared (CDAG construction + bound
//! derivation) concurrently, then every `(kernel, S, policy)` cell plays
//! concurrently — and renders the outcome as both a table and a
//! machine-readable `BENCH_pebble.json` so successive PRs have a recorded
//! perf/soundness trajectory.

use iolb_cdag::{build_cdag, Cdag, PebbleGame, SpillPolicy};
use iolb_core::hourglass::SplitChoice;
use iolb_core::{hourglass, theorems, Analysis, ClassicalBound};
use iolb_symbolic::Var;
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// One kernel in the sweep: program + derivation inputs + evaluation env.
pub struct SweepKernel {
    /// Display name.
    pub name: &'static str,
    /// The IR program.
    pub program: iolb_ir::Program,
    /// Statement whose bounds are derived.
    pub stmt: &'static str,
    /// Concrete parameter values.
    pub params: Vec<i64>,
    /// Symbolic environment matching `params`.
    pub env: Vec<(Var, i128)>,
    /// Loop-split choice for the hourglass derivation.
    pub split: SplitChoice,
    /// Offsets added to the kernel's minimum feasible S to form the S grid.
    pub s_offsets: Vec<usize>,
}

/// The default validation matrix: every paper kernel at sizes well beyond
/// the original 16×8 grids (MGS 64×32, GEMM 24³, …).
pub fn default_sweep_kernels() -> Vec<SweepKernel> {
    let s_offsets = vec![0, 4, 16, 64, 256];
    vec![
        SweepKernel {
            name: "MGS",
            program: iolb_kernels::mgs::program(),
            stmt: "SU",
            params: vec![64, 32],
            env: vec![(Var::new("M"), 64), (Var::new("N"), 32)],
            split: SplitChoice::None,
            s_offsets: s_offsets.clone(),
        },
        SweepKernel {
            name: "QR HH A2V",
            program: iolb_kernels::householder::a2v_program(),
            stmt: "SU",
            params: vec![40, 20],
            env: vec![(Var::new("M"), 40), (Var::new("N"), 20)],
            split: SplitChoice::None,
            s_offsets: s_offsets.clone(),
        },
        SweepKernel {
            name: "QR HH V2Q",
            program: iolb_kernels::householder::v2q_program(),
            stmt: "SU",
            params: vec![40, 20],
            env: vec![(Var::new("M"), 40), (Var::new("N"), 20)],
            split: SplitChoice::None,
            s_offsets: s_offsets.clone(),
        },
        SweepKernel {
            name: "GEBD2",
            program: iolb_kernels::gebd2::program(),
            stmt: "SU",
            params: vec![36, 18],
            env: vec![(Var::new("M"), 36), (Var::new("N"), 18)],
            split: SplitChoice::None,
            s_offsets: s_offsets.clone(),
        },
        SweepKernel {
            name: "GEHD2",
            program: iolb_kernels::gehd2::program(),
            stmt: "SU1",
            params: vec![25],
            env: vec![(Var::new("N"), 25), (theorems::split_var(), 12)],
            split: SplitChoice::At(iolb_symbolic::Poly::var(theorems::split_var())),
            s_offsets: s_offsets.clone(),
        },
        SweepKernel {
            name: "GEMM",
            program: iolb_kernels::gemm::program(),
            stmt: "SU",
            params: vec![24, 24, 24],
            env: vec![
                (Var::new("M"), 24),
                (Var::new("N"), 24),
                (Var::new("K"), 24),
            ],
            split: SplitChoice::None,
            s_offsets,
        },
    ]
}

/// A prepared kernel: exact CDAG plus derived bounds, shared across cells.
struct Prepared {
    name: &'static str,
    params: Vec<i64>,
    env: Vec<(Var, i128)>,
    s_offsets: Vec<usize>,
    cdag: Cdag,
    classical: ClassicalBound,
    hourglass: Option<iolb_core::HourglassBound>,
    prep_ms: f64,
}

/// One `(kernel, S, policy)` cell of the validated matrix.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Kernel display name.
    pub kernel: &'static str,
    /// Concrete parameter values.
    pub params: Vec<i64>,
    /// CDAG size (nodes, edges).
    pub nodes: usize,
    /// CDAG edge count.
    pub edges: usize,
    /// Fast-memory budget played.
    pub s: usize,
    /// Spill policy.
    pub policy: SpillPolicy,
    /// Loads of the legal play.
    pub loads: u64,
    /// Compute moves of the play.
    pub computes: u64,
    /// Peak red pebbles.
    pub peak_red: usize,
    /// Classical K-partition bound at (env, S).
    pub lb_classical: f64,
    /// Hourglass bound at (env, S), 0 when the kernel has no pattern.
    pub lb_hourglass: f64,
    /// Play loads over the best bound (≥ 1 for sound bounds).
    pub ratio: f64,
    /// One-time preparation cost of this cell's kernel (CDAG build + bound
    /// derivation, milliseconds) — shared across the kernel's cells, not a
    /// per-cell cost.
    pub prep_ms: f64,
    /// Wall time of this cell's play alone (milliseconds).
    pub wall_ms: f64,
}

impl SweepRow {
    /// Best derived bound of this cell.
    pub fn lb(&self) -> f64 {
        self.lb_classical.max(self.lb_hourglass)
    }

    /// Soundness of the cell: bound must not exceed a legal play's loads.
    pub fn sound(&self) -> bool {
        self.lb() <= self.loads as f64 + 1e-9
    }
}

/// Full sweep outcome.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// All validated cells.
    pub rows: Vec<SweepRow>,
    /// End-to-end wall time (milliseconds), including preparation.
    pub total_wall_ms: f64,
    /// Worker threads used.
    pub threads: usize,
}

/// Runs the full (kernel × S × policy) matrix concurrently.
pub fn run_sweep(kernels: Vec<SweepKernel>) -> SweepReport {
    let t_total = Instant::now();
    // Stage 1: per-kernel preparation (CDAG + bound derivation) in parallel.
    let prepared: Vec<Arc<Prepared>> = kernels
        .into_par_iter()
        .map(|k| {
            let t = Instant::now();
            let analysis = Analysis::run(&k.program, std::slice::from_ref(&k.params))
                .unwrap_or_else(|e| panic!("{}: analysis failed: {e}", k.name));
            let stmt = k.program.stmt_id(k.stmt).expect("sweep stmt");
            let classical = analysis.classical_bound(stmt);
            let hg = analysis
                .detect_hourglass(stmt)
                .map(|pat| hourglass::derive(&k.program, &pat, &k.split));
            let cdag = build_cdag(&k.program, &k.params);
            Arc::new(Prepared {
                name: k.name,
                params: k.params,
                env: k.env,
                s_offsets: k.s_offsets,
                cdag,
                classical,
                hourglass: hg,
                prep_ms: t.elapsed().as_secs_f64() * 1e3,
            })
        })
        .collect();

    // Stage 2: the (kernel, S, policy) matrix, one parallel task per cell.
    let mut cells: Vec<(Arc<Prepared>, usize, SpillPolicy)> = Vec::new();
    for p in &prepared {
        let min_s = p.cdag.max_in_degree() + 1;
        for &off in &p.s_offsets {
            for policy in [SpillPolicy::Lru, SpillPolicy::MinNextUse] {
                cells.push((Arc::clone(p), min_s + off, policy));
            }
        }
    }
    let rows: Vec<SweepRow> = cells
        .into_par_iter()
        .map(|(p, s, policy)| {
            let t = Instant::now();
            let play = PebbleGame::new(&p.cdag, s)
                .play_program_order(policy)
                .unwrap_or_else(|e| panic!("{}: play failed at S={s}: {e}", p.name));
            let lb_classical = p.classical.eval_floor(&p.env, s as i128);
            let lb_hourglass = p
                .hourglass
                .as_ref()
                .map(|b| b.eval_floor(&p.env, s as i128))
                .unwrap_or(0.0);
            let lb = lb_classical.max(lb_hourglass).max(1.0);
            SweepRow {
                kernel: p.name,
                params: p.params.clone(),
                nodes: p.cdag.len(),
                edges: p.cdag.num_edges(),
                s,
                policy,
                loads: play.loads,
                computes: play.computes,
                peak_red: play.peak_red,
                lb_classical,
                lb_hourglass,
                ratio: play.loads as f64 / lb,
                prep_ms: p.prep_ms,
                wall_ms: t.elapsed().as_secs_f64() * 1e3,
            }
        })
        .collect();

    SweepReport {
        rows,
        total_wall_ms: t_total.elapsed().as_secs_f64() * 1e3,
        threads: rayon::current_num_threads(),
    }
}

/// Renders the sweep as an aligned table.
pub fn render_sweep_table(report: &SweepReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>14} {:>7} {:>6} {:>4} {:>10} {:>12} {:>12} {:>7} {:>9}\n",
        "kernel",
        "size",
        "nodes",
        "S",
        "pol",
        "loads",
        "LB classic",
        "LB hourglass",
        "play/LB",
        "wall ms"
    ));
    for r in &report.rows {
        out.push_str(&format!(
            "{:<12} {:>14} {:>7} {:>6} {:>4} {:>10} {:>12.0} {:>12.0} {:>7.2} {:>9.2}\n",
            r.kernel,
            format!("{:?}", r.params),
            r.nodes,
            r.s,
            match r.policy {
                SpillPolicy::Lru => "LRU",
                SpillPolicy::MinNextUse => "MIN",
            },
            r.loads,
            r.lb_classical,
            r.lb_hourglass,
            r.ratio,
            r.wall_ms,
        ));
    }
    out.push_str(&format!(
        "{} cells on {} threads in {:.1} ms\n",
        report.rows.len(),
        report.threads,
        report.total_wall_ms
    ));
    out
}

/// Serializes the report as JSON (hand-rolled — the offline workspace has
/// no serde; all emitted values are finite numbers or plain ASCII strings).
pub fn sweep_report_json(report: &SweepReport) -> String {
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.4}")
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"hourglass-iolb/pebble-sweep/v1\",\n");
    out.push_str(&format!("  \"threads\": {},\n", report.threads));
    out.push_str(&format!(
        "  \"total_wall_ms\": {},\n",
        num(report.total_wall_ms)
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        let params: Vec<String> = r.params.iter().map(|p| p.to_string()).collect();
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"params\": [{}], \"nodes\": {}, \"edges\": {}, \"s\": {}, \"policy\": \"{}\", \"loads\": {}, \"computes\": {}, \"peak_red\": {}, \"lb_classical\": {}, \"lb_hourglass\": {}, \"ratio_loads_over_lb\": {}, \"sound\": {}, \"prep_ms\": {}, \"wall_ms\": {}}}{}\n",
            r.kernel,
            params.join(", "),
            r.nodes,
            r.edges,
            r.s,
            match r.policy {
                SpillPolicy::Lru => "lru",
                SpillPolicy::MinNextUse => "min_next_use",
            },
            r.loads,
            r.computes,
            r.peak_red,
            num(r.lb_classical),
            num(r.lb_hourglass),
            num(r.ratio),
            r.sound(),
            num(r.prep_ms),
            num(r.wall_ms),
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small-size sweep: the full matrix machinery on fast cases, asserting
    /// soundness (bound ≤ play) and the MIN ≤ LRU invariant per cell pair.
    #[test]
    fn small_sweep_is_sound_and_min_beats_lru() {
        let mut kernels = default_sweep_kernels();
        for k in &mut kernels {
            // Shrink to test sizes (same shapes as the seed's grids).
            let (params, env): (Vec<i64>, Vec<(Var, i128)>) = match k.name {
                "MGS" => (vec![12, 6], vec![(Var::new("M"), 12), (Var::new("N"), 6)]),
                "QR HH A2V" | "QR HH V2Q" => {
                    (vec![14, 6], vec![(Var::new("M"), 14), (Var::new("N"), 6)])
                }
                "GEBD2" => (vec![12, 6], vec![(Var::new("M"), 12), (Var::new("N"), 6)]),
                "GEHD2" => (
                    vec![11],
                    vec![(Var::new("N"), 11), (theorems::split_var(), 5)],
                ),
                _ => (
                    vec![8, 8, 8],
                    vec![(Var::new("M"), 8), (Var::new("N"), 8), (Var::new("K"), 8)],
                ),
            };
            k.params = params;
            k.env = env;
        }
        let report = run_sweep(kernels);
        assert_eq!(report.rows.len(), 6 * 5 * 2);
        let mut nontrivial = 0;
        for r in &report.rows {
            assert!(
                r.sound(),
                "{}: S={} bound {} > loads {}",
                r.kernel,
                r.s,
                r.lb(),
                r.loads
            );
            if r.lb() > 0.0 {
                nontrivial += 1;
            }
        }
        assert!(nontrivial >= 20, "got {nontrivial} non-trivial cells");
        // MIN never loads more than LRU on the same (kernel, S).
        for pair in report.rows.chunks(2) {
            let (lru, min) = (&pair[0], &pair[1]);
            assert_eq!(lru.kernel, min.kernel);
            assert_eq!(lru.s, min.s);
            assert!(min.loads <= lru.loads, "{} S={}", lru.kernel, lru.s);
        }
        // JSON smoke: parsers only need balance + key presence here.
        let json = sweep_report_json(&report);
        assert!(json.contains("\"schema\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced JSON"
        );
    }
}
