//! Parallel (kernel × S × policy) validation sweep, one curve pass per
//! cell *column*.
//!
//! Every derived lower bound must sit at or below the loads of a real
//! execution of the kernel at fast-memory size `S`. This module runs that
//! check as a data-parallel matrix — kernels are prepared (CDAG
//! construction + bound derivation + trace emission) concurrently, then
//! each `(kernel, policy)` column is profiled in **one pass** — and
//! renders the outcome as both a table and a machine-readable
//! `BENCH_pebble.json` so successive PRs have a recorded perf/soundness
//! trajectory.
//!
//! The measured executions are exact cache simulations of the kernel's
//! program-order *value-access trace* (each compute reads its CDAG
//! predecessors, then produces its value —
//! [`Cdag::packed_program_order_trace`]). LRU and Belady-MIN are both
//! stack algorithms, so a single stack-distance pass
//! ([`iolb_memsim::CurveEngine`]) yields the exact miss count at **every**
//! `S` of the grid at once — bitwise what an `LruSim`/`BeladySim` replay
//! of the trace reports, property-tested as such — replacing the old
//! per-`(kernel, S, policy)` pebble-replay loop and densifying the grid
//! from 5 to [`dense_s_offsets`]'s ~32 points at enlarged sizes within
//! the same budget. The MIN curve additionally lower-bounds the loads of
//! every legal red-white pebble play (the play's moves are one valid
//! replacement schedule for the trace), so `bound ≤ loads` here is at
//! least as strict a soundness check as the old play-based one; the
//! bridge between the two models is property-tested in `iolb-cdag`.
//!
//! [`SweepKernel`] is fully data-driven (owned names, per-kernel split
//! bindings, env derived from the program's own parameter list), so the
//! same machinery validates the built-in paper kernels and arbitrary
//! workloads parsed from `.iolb` files by the `iolb` CLI.
//!
//! [`Cdag::packed_program_order_trace`]: iolb_cdag::Cdag::packed_program_order_trace

use iolb_cdag::{try_build_cdag, Cdag, SpillPolicy};
use iolb_core::report::SplitBinding;
use iolb_core::{
    best_engine_bound, report, Analysis, BoundProvenance, ClassicalBound, EngineCurve,
    EngineRegistry,
};
use iolb_govern::{catch_analysis_mut, AnalysisError, Budget, CancelToken, Degradation};
use iolb_memsim::{CurveEngine, MissCurve, ShardedCurveEngine};
use iolb_symbolic::Var;
use rayon::prelude::*;
use std::time::Instant;

/// How stage 2 prices a policy column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CurveStrategy {
    /// Sharded streaming passes fed straight from the CDAG pull source
    /// ([`Cdag::program_order_trace`]) — the trace is never materialized
    /// for pricing. Columns whose trace fits under
    /// [`CROSS_CHECK_CAP`] events are additionally re-priced by the
    /// materialized single-threaded reference engine and the two curves
    /// must be bitwise equal ([`AnalysisError::Internal`] otherwise).
    ///
    /// [`Cdag::program_order_trace`]: iolb_cdag::Cdag::program_order_trace
    #[default]
    Streaming,
    /// The legacy fully-materialized single-threaded engine only (the
    /// reference path, forced).
    Materialized,
}

/// Largest trace (events) the streaming strategy re-prices through the
/// materialized reference engine as a bitwise cross-check. Every shipped
/// validation kernel sits far below this, so the reference runs on all of
/// them in CI; out-of-core traces skip it (materializing them is exactly
/// what the streaming path exists to avoid).
pub const CROSS_CHECK_CAP: u64 = 1 << 22;

/// Escapes a string for embedding in the hand-rolled JSON emitters
/// (quotes, backslashes, and control characters; everything else is
/// passed through verbatim).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One kernel that failed inside a governed batch: the typed error is
/// reduced to its class (stable, machine-checkable) plus the
/// human-readable message. Kernels that fail never contribute `rows`;
/// their failure row is the record that they were attempted.
#[derive(Debug, Clone)]
pub struct FailureRow {
    /// Kernel display name (or file stem in CLI batches).
    pub kernel: String,
    /// Error class (`AnalysisError::class_name`).
    pub class: String,
    /// Human-readable message.
    pub message: String,
}

impl FailureRow {
    /// Builds the row from a kernel name and its typed error.
    pub fn from_error(kernel: &str, e: &AnalysisError) -> FailureRow {
        FailureRow {
            kernel: kernel.to_string(),
            class: e.class_name().to_string(),
            message: e.to_string(),
        }
    }
}

/// The degradation level one kernel's analysis actually ran at.
#[derive(Debug, Clone)]
pub struct DegradationRow {
    /// Kernel display name.
    pub kernel: String,
    /// Grid fidelity the admission controller granted.
    pub level: Degradation,
}

/// The default dense S grid: 32 log-spaced offsets added to each
/// kernel's minimum feasible S — unit steps near the feasibility minimum,
/// then roughly quarter-octave up to 256. A superset of the legacy
/// `{0, 4, 16, 64, 256}` coarse grid so historical points stay
/// comparable, and capped at the legacy maximum so the stack-distance
/// horizon (which bounds the one-pass profilers' work) stays small.
pub fn dense_s_offsets() -> Vec<usize> {
    vec![
        0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 13, 16, 19, 23, 27, 32, 38, 45, 54, 64, 76, 91, 108,
        128, 139, 152, 166, 181, 197, 215, 256,
    ]
}

/// The legacy 5-point S grid (kept for quick runs: `--s-grid coarse`).
pub fn coarse_s_offsets() -> Vec<usize> {
    vec![0, 4, 16, 64, 256]
}

/// One kernel in the sweep: program + derivation inputs + concrete sizes.
pub struct SweepKernel {
    /// Display name.
    pub name: String,
    /// The IR program.
    pub program: iolb_ir::Program,
    /// Statement whose bounds are derived.
    pub stmt: String,
    /// Concrete parameter values (same order as `program.params`).
    pub params: Vec<i64>,
    /// Split-variable binding override; `None` auto-derives the midpoint
    /// binding when §5.3 splitting turns out to be needed.
    pub split: Option<SplitBinding>,
    /// Offsets added to the kernel's minimum feasible S to form the S grid.
    pub s_offsets: Vec<usize>,
}

impl SweepKernel {
    /// Named concrete parameters (`program.params` zipped with `params`).
    pub fn named_params(&self) -> Vec<(String, i64)> {
        self.program
            .params
            .iter()
            .cloned()
            .zip(self.params.iter().copied())
            .collect()
    }

    /// The symbolic evaluation environment: every program parameter bound
    /// to its concrete value, plus the split variable when `binding` is
    /// given — all derived from data, no per-kernel hardcoding.
    pub fn env(&self, binding: Option<&SplitBinding>) -> Vec<(Var, i128)> {
        let mut env: Vec<(Var, i128)> = self
            .named_params()
            .iter()
            .map(|(n, v)| (Var::new(n), *v as i128))
            .collect();
        if let Some(b) = binding {
            env.push((b.var, b.eval(&self.named_params())));
        }
        env
    }
}

/// Problem-size tier of the default validation matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepSize {
    /// Enlarged sizes (MGS 64×32, GEMM 48³, …) — the CI soundness gate.
    Full,
    /// The seed's fast test-grid sizes.
    Small,
}

/// The default validation matrix: every paper kernel at the chosen size
/// tier, as one data table (no per-kernel match-arms at use sites).
pub fn default_sweep_kernels_at(size: SweepSize) -> Vec<SweepKernel> {
    /// One row of the kernel table: name, program, statement, full-size
    /// params, small-size params.
    type Spec = (
        &'static str,
        iolb_ir::Program,
        &'static str,
        Vec<i64>,
        Vec<i64>,
    );
    let s_offsets = dense_s_offsets();
    let specs: Vec<Spec> = vec![
        (
            "MGS",
            iolb_kernels::mgs::program(),
            "SU",
            vec![64, 32],
            vec![12, 6],
        ),
        (
            "QR HH A2V",
            iolb_kernels::householder::a2v_program(),
            "SU",
            vec![40, 20],
            vec![14, 6],
        ),
        (
            "QR HH V2Q",
            iolb_kernels::householder::v2q_program(),
            "SU",
            vec![40, 20],
            vec![14, 6],
        ),
        (
            "GEBD2",
            iolb_kernels::gebd2::program(),
            "SU",
            vec![36, 18],
            vec![12, 6],
        ),
        (
            "GEHD2",
            iolb_kernels::gehd2::program(),
            "SU1",
            vec![25],
            vec![11],
        ),
        (
            "GEMM",
            iolb_kernels::gemm::program(),
            "SU",
            vec![48, 48, 48],
            vec![8, 8, 8],
        ),
    ];
    specs
        .into_iter()
        .map(|(name, program, stmt, full, small)| SweepKernel {
            name: name.to_string(),
            program,
            stmt: stmt.to_string(),
            params: match size {
                SweepSize::Full => full,
                SweepSize::Small => small,
            },
            split: None,
            s_offsets: s_offsets.clone(),
        })
        .collect()
}

/// [`default_sweep_kernels_at`] at the full (CI gate) sizes.
pub fn default_sweep_kernels() -> Vec<SweepKernel> {
    default_sweep_kernels_at(SweepSize::Full)
}

/// A prepared kernel: exact CDAG, derived bounds, and the packed
/// program-order value-access trace — shared across both policy columns.
struct Prepared {
    name: String,
    params: Vec<i64>,
    env: Vec<(Var, i128)>,
    s_values: Vec<usize>,
    cdag: Cdag,
    /// Materialized packed trace for the reference engine — `None` when
    /// the streaming strategy skipped materialization (trace above
    /// [`CROSS_CHECK_CAP`]).
    reference: Option<Vec<u64>>,
    classical: Option<ClassicalBound>,
    hourglass: Option<iolb_core::HourglassBound>,
    /// Graph-level engine bounds, one curve per selected engine, indexed
    /// in lockstep with `s_values`.
    engine_curves: Vec<EngineCurve>,
    prep_ms: f64,
}

/// One `(kernel, S, policy)` cell of the validated matrix.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Kernel display name.
    pub kernel: String,
    /// Concrete parameter values.
    pub params: Vec<i64>,
    /// CDAG size (nodes, edges).
    pub nodes: usize,
    /// CDAG edge count.
    pub edges: usize,
    /// Fast-memory budget of this cell.
    pub s: usize,
    /// Replacement policy of this cell's simulated execution.
    pub policy: SpillPolicy,
    /// Exact loads of the policy's cache simulation of the program-order
    /// trace at this `S` — one point of the kernel's miss curve, bitwise
    /// equal to the corresponding `LruSim`/`BeladySim` replay.
    pub loads: u64,
    /// Compute steps of the schedule (trace writes; S-independent).
    pub computes: u64,
    /// Classical K-partition bound at (env, S); 0 when none is derivable.
    pub lb_classical: f64,
    /// Hourglass bound at (env, S), 0 when the kernel has no pattern.
    pub lb_hourglass: f64,
    /// Graph-level input-floor bound (`None` when the engine was not
    /// selected).
    pub lb_input: Option<u64>,
    /// Graph-level DAG-visit bound (`None` when not selected).
    pub lb_visit: Option<u64>,
    /// Graph-level spectral bound (`None` when not selected or the CDAG
    /// exceeds [`iolb_cdag::SPECTRAL_NODE_CAP`]).
    pub lb_spectral: Option<u64>,
    /// Which bound family [`SweepRow::lb`] came from. Ties keep the
    /// earliest family in declaration order (symbolic before graph-level),
    /// so the tag is deterministic.
    pub lb_provenance: BoundProvenance,
    /// Measured loads over the best bound (≥ 1 for sound bounds).
    pub ratio: f64,
    /// One-time preparation cost of this cell's kernel (CDAG build + bound
    /// derivation + trace emission, milliseconds) — shared across the
    /// kernel's cells, not a per-cell cost.
    pub prep_ms: f64,
    /// Wall time of this cell's whole policy column (one stack-distance
    /// pass produced every S point of the column, milliseconds).
    pub wall_ms: f64,
}

impl SweepRow {
    /// Best graph-level engine bound of this cell (`None` when no engine
    /// applied).
    pub fn lb_graph(&self) -> Option<u64> {
        [self.lb_input, self.lb_visit, self.lb_spectral]
            .into_iter()
            .flatten()
            .max()
    }

    /// Best derived bound of this cell: max over the symbolic bounds and
    /// every applicable graph-level engine.
    pub fn lb(&self) -> f64 {
        self.lb_classical
            .max(self.lb_hourglass)
            .max(self.lb_graph().unwrap_or(0) as f64)
    }

    /// Soundness of the cell: the bound must not exceed the measured
    /// loads of the simulated execution.
    pub fn sound(&self) -> bool {
        self.lb() <= self.loads as f64 + 1e-9
    }
}

/// One point of the curve-engine scaling series: wall time of one
/// streaming sharded pass over a synthetic GEMM-class trace (see
/// [`crate::scale`]). Volatile by nature — recorded only in the report's
/// `meta` object, never in the comparable sections.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Trace length (events) of the synthetic workload.
    pub accesses: u64,
    /// Policy of the measured pass.
    pub policy: SpillPolicy,
    /// Wall time of the pass (milliseconds).
    pub wall_ms: f64,
}

/// Full sweep outcome.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// All validated cells.
    pub rows: Vec<SweepRow>,
    /// Degradation level each kernel's grid actually ran at (one row per
    /// surviving kernel; the CLI overwrites levels when the admission
    /// controller coarsened a grid).
    pub degradation: Vec<DegradationRow>,
    /// Kernels that were attempted but produced no rows (typed-error
    /// class + message). Empty outside governed batch runs.
    pub failures: Vec<FailureRow>,
    /// End-to-end wall time (milliseconds), including preparation.
    pub total_wall_ms: f64,
    /// Worker threads engaged by *this* sweep's parallel stages (scoped —
    /// earlier parallel work in the process does not inflate it).
    pub threads: usize,
    /// Optional curve-engine scaling series (attached by the pebble
    /// validation binary; empty in ordinary sweeps). Emitted in `meta`
    /// only when non-empty and not redacted.
    pub scaling: Vec<ScalingPoint>,
}

/// Runs the full matrix: kernels prepare concurrently, then each
/// `(kernel, policy)` column is one concurrent stack-distance pass whose
/// curve is read at every grid S.
///
/// Ungoverned compatibility wrapper over [`try_run_sweep`] — unlimited
/// budget, no cancellation.
///
/// # Panics
/// Panics when a kernel's derivation fails (the governed path returns the
/// error instead).
pub fn run_sweep(kernels: Vec<SweepKernel>) -> SweepReport {
    try_run_sweep(kernels, &Budget::unlimited(), &CancelToken::unlimited())
        .unwrap_or_else(|e| panic!("sweep: {e}"))
}

/// [`run_sweep`] under a resource budget and a cancellation token.
///
/// Preparation refusals surface as [`AnalysisError::Refused`], CDAG
/// materialization is admission-checked cell table by cell table
/// (`try_build_cdag`), the emitted trace is charged against
/// `budget.max_trace_len`, and both curve passes poll the token — a
/// deadline or an external cancel lands within a bounded number of trace
/// positions. The first error aborts the whole sweep; per-kernel fault
/// isolation is the CLI batch layer's job, which calls this with one
/// kernel at a time.
///
/// # Errors
/// The first typed error any stage produced.
pub fn try_run_sweep(
    kernels: Vec<SweepKernel>,
    budget: &Budget,
    token: &CancelToken,
) -> Result<SweepReport, AnalysisError> {
    try_run_sweep_with(kernels, budget, token, &EngineRegistry::all())
}

/// [`try_run_sweep`] with an explicit graph-level engine selection.
///
/// Engine curves are evaluated during stage-1 preparation on the exact
/// CDAG at every grid `S`. They are deliberately *not* charged against the
/// work budget: the engines are cheap by construction (the visit profile
/// is one sort of the compute in-degrees, the spectral profile refuses
/// graphs above [`iolb_cdag::SPECTRAL_NODE_CAP`] nodes), so selecting
/// them never changes the degradation level a kernel is admitted at.
///
/// # Errors
/// The first typed error any stage produced.
pub fn try_run_sweep_with(
    kernels: Vec<SweepKernel>,
    budget: &Budget,
    token: &CancelToken,
    registry: &EngineRegistry,
) -> Result<SweepReport, AnalysisError> {
    try_run_sweep_opts(kernels, budget, token, registry, CurveStrategy::default())
}

/// [`try_run_sweep_with`] with an explicit curve-pricing strategy — the
/// full-control entry point the service pipeline drives.
///
/// # Errors
/// The first typed error any stage produced.
pub fn try_run_sweep_opts(
    kernels: Vec<SweepKernel>,
    budget: &Budget,
    token: &CancelToken,
    registry: &EngineRegistry,
    strategy: CurveStrategy,
) -> Result<SweepReport, AnalysisError> {
    let t_total = Instant::now();
    // Scoped worker accounting: `meta.threads` must describe THIS sweep,
    // not whatever parallel stage ran earlier in the process.
    let workers = rayon::worker_scope();
    // Stage 1: per-kernel preparation (bounds + CDAG + trace) in parallel.
    let prepared: Vec<Prepared> = kernels
        .into_par_iter()
        .map(|k| -> Result<Prepared, AnalysisError> {
            // Convert panics to typed errors inside the worker closure —
            // the thread-scope bridge underneath would otherwise replace
            // the payload with a generic "a scoped thread panicked".
            catch_analysis_mut(|| {
                let t = Instant::now();
                // Same observation sizes as the `iolb` CLI's derivation pass,
                // so printed bounds and validated bounds can never diverge.
                let analysis = Analysis::run(&k.program, &report::observation_sizes(&k.params))
                    .map_err(|e| {
                        AnalysisError::Refused(format!("{}: analysis failed: {e}", k.name))
                    })?;
                let stmt = k.program.stmt_id(&k.stmt).ok_or_else(|| {
                    AnalysisError::Refused(format!("{}: no statement named `{}`", k.name, k.stmt))
                })?;
                let classical = analysis.try_classical_bound(stmt);
                let (hg, binding) = match analysis.detect_hourglass(stmt) {
                    None => (None, None),
                    Some(pat) => {
                        let (b, binding) =
                            report::derive_with_split(&k.program, &pat, k.split.clone())
                                .map_err(|e| AnalysisError::Refused(format!("{}: {e}", k.name)))?;
                        (Some(b), binding)
                    }
                };
                let env = k.env(binding.as_ref());
                let cdag = try_build_cdag(&k.program, &k.params, budget, token)?;
                // Trace length is known from the CSR alone — charge the
                // budget *before* deciding whether to materialize at all.
                let trace_len = (cdag.num_edges() + cdag.num_computes()) as u64;
                if trace_len > budget.max_trace_len {
                    return Err(AnalysisError::BudgetExceeded {
                        resource: "trace_len",
                        needed: trace_len,
                        limit: budget.max_trace_len,
                    });
                }
                let reference = match strategy {
                    CurveStrategy::Materialized => true,
                    CurveStrategy::Streaming => trace_len <= CROSS_CHECK_CAP,
                }
                .then(|| {
                    let mut trace = Vec::new();
                    cdag.packed_program_order_trace(&mut trace);
                    trace
                });
                let min_s = cdag.max_in_degree() + 1;
                let s_values: Vec<usize> = k.s_offsets.iter().map(|&off| min_s + off).collect();
                let engine_curves = registry.evaluate(&cdag, &s_values);
                Ok(Prepared {
                    name: k.name,
                    params: k.params,
                    env,
                    s_values,
                    cdag,
                    reference,
                    classical,
                    hourglass: hg,
                    engine_curves,
                    prep_ms: t.elapsed().as_secs_f64() * 1e3,
                })
            })
        })
        .collect::<Vec<Result<Prepared, AnalysisError>>>()
        .into_iter()
        .collect::<Result<Vec<Prepared>, AnalysisError>>()?;

    // Stage 2: one stack-distance pass per (kernel, policy) column. The
    // streaming strategy prices each column shard-parallel straight from
    // the CDAG pull source; whenever the materialized reference exists the
    // legacy engine re-prices the column and the curves must be bitwise
    // equal — the cross-check that keeps the two implementations pinned
    // to each other on every shipped kernel.
    let columns: Vec<(usize, SpillPolicy)> = (0..prepared.len())
        .flat_map(|ki| [(ki, SpillPolicy::Lru), (ki, SpillPolicy::MinNextUse)])
        .collect();
    let curves: Vec<(MissCurve, f64)> = columns
        .par_iter()
        .map(|&(ki, policy)| -> Result<(MissCurve, f64), AnalysisError> {
            catch_analysis_mut(|| {
                let p = &prepared[ki];
                let horizon = p.s_values.iter().copied().max().unwrap_or(1);
                let t = Instant::now();
                let curve = match strategy {
                    CurveStrategy::Materialized => {
                        let trace = p.reference.as_deref().expect("materialized strategy");
                        let mut engine = CurveEngine::new();
                        match policy {
                            SpillPolicy::Lru => engine.try_lru_packed(trace, horizon, token)?,
                            SpillPolicy::MinNextUse => {
                                engine.try_opt_packed(trace, horizon, token)?
                            }
                        }
                    }
                    CurveStrategy::Streaming => {
                        let source = p.cdag.program_order_trace();
                        let sharded = ShardedCurveEngine::new();
                        let curve = match policy {
                            SpillPolicy::Lru => sharded.try_lru(&source, horizon, token)?,
                            SpillPolicy::MinNextUse => sharded.try_opt(&source, horizon, token)?,
                        };
                        if let Some(trace) = p.reference.as_deref() {
                            let mut engine = CurveEngine::new();
                            let want = match policy {
                                SpillPolicy::Lru => engine.try_lru_packed(trace, horizon, token)?,
                                SpillPolicy::MinNextUse => {
                                    engine.try_opt_packed(trace, horizon, token)?
                                }
                            };
                            if want != curve {
                                return Err(AnalysisError::Internal(format!(
                                    "{}: streaming {:?} curve diverges from the \
                                     materialized reference",
                                    p.name, policy
                                )));
                            }
                        }
                        curve
                    }
                };
                Ok((curve, t.elapsed().as_secs_f64() * 1e3))
            })
        })
        .collect::<Vec<Result<(MissCurve, f64), AnalysisError>>>()
        .into_iter()
        .collect::<Result<Vec<(MissCurve, f64)>, AnalysisError>>()?;

    // Assemble rows in (kernel, S, {LRU, MIN}) order from the curves.
    let mut rows = Vec::new();
    for (ki, p) in prepared.iter().enumerate() {
        for (si, &s) in p.s_values.iter().enumerate() {
            for (ci, policy) in [
                (2 * ki, SpillPolicy::Lru),
                (2 * ki + 1, SpillPolicy::MinNextUse),
            ] {
                let (curve, wall_ms) = &curves[ci];
                let loads = curve.loads(s);
                let lb_classical = p
                    .classical
                    .as_ref()
                    .map(|b| b.eval_floor(&p.env, s as i128))
                    .unwrap_or(0.0);
                let lb_hourglass = p
                    .hourglass
                    .as_ref()
                    .map(|b| b.eval_floor(&p.env, s as i128))
                    .unwrap_or(0.0);
                let engine_at = |prov: BoundProvenance| -> Option<u64> {
                    p.engine_curves
                        .iter()
                        .find(|c| c.provenance == prov)
                        .and_then(|c| c.at(si))
                };
                // Winning provenance: strictly-greater replaces, so ties
                // keep the earliest family (symbolic before graph-level,
                // canonical engine order within graph-level).
                let mut best = lb_classical;
                let mut lb_provenance = BoundProvenance::Classical;
                if lb_hourglass > best {
                    best = lb_hourglass;
                    lb_provenance = BoundProvenance::Hourglass;
                }
                if let Some((b, prov)) = best_engine_bound(&p.engine_curves, si) {
                    if b as f64 > best {
                        best = b as f64;
                        lb_provenance = prov;
                    }
                }
                rows.push(SweepRow {
                    kernel: p.name.clone(),
                    params: p.params.clone(),
                    nodes: p.cdag.len(),
                    edges: p.cdag.num_edges(),
                    s,
                    policy,
                    loads,
                    computes: p.cdag.num_computes() as u64,
                    lb_classical,
                    lb_hourglass,
                    lb_input: engine_at(BoundProvenance::InputFloor),
                    lb_visit: engine_at(BoundProvenance::Visit),
                    lb_spectral: engine_at(BoundProvenance::Spectral),
                    lb_provenance,
                    ratio: loads as f64 / best.max(1.0),
                    prep_ms: p.prep_ms,
                    wall_ms: *wall_ms,
                });
            }
        }
    }

    // Every kernel that reached this point ran its full requested grid;
    // callers that coarsened the grid overwrite the level afterwards.
    let degradation = prepared
        .iter()
        .map(|p| DegradationRow {
            kernel: p.name.clone(),
            level: Degradation::Full,
        })
        .collect();

    Ok(SweepReport {
        rows,
        degradation,
        failures: Vec::new(),
        total_wall_ms: t_total.elapsed().as_secs_f64() * 1e3,
        threads: workers.max_workers_used(),
        scaling: Vec::new(),
    })
}

/// Renders the sweep as an aligned table.
pub fn render_sweep_table(report: &SweepReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>14} {:>7} {:>6} {:>4} {:>10} {:>12} {:>12} {:>9} {:>11} {:>7} {:>9}\n",
        "kernel",
        "size",
        "nodes",
        "S",
        "pol",
        "loads",
        "LB classic",
        "LB hourglass",
        "LB graph",
        "prov",
        "load/LB",
        "curve ms"
    ));
    for r in &report.rows {
        out.push_str(&format!(
            "{:<12} {:>14} {:>7} {:>6} {:>4} {:>10} {:>12.0} {:>12.0} {:>9} {:>11} {:>7.2} {:>9.2}\n",
            r.kernel,
            format!("{:?}", r.params),
            r.nodes,
            r.s,
            match r.policy {
                SpillPolicy::Lru => "LRU",
                SpillPolicy::MinNextUse => "MIN",
            },
            r.loads,
            r.lb_classical,
            r.lb_hourglass,
            r.lb_graph().map_or("-".to_string(), |b| b.to_string()),
            r.lb_provenance.as_str(),
            r.ratio,
            r.wall_ms,
        ));
    }
    out.push_str(&format!(
        "{} cells on {} threads in {:.1} ms\n",
        report.rows.len(),
        report.threads,
        report.total_wall_ms
    ));
    out
}

/// Serializes the report as JSON (hand-rolled — the offline workspace has
/// no serde; all emitted values are finite numbers or plain ASCII strings).
///
/// Deterministic by construction: rows are sorted by `(kernel, params, s,
/// policy)` and keys have a fixed order, so the comparable sections are
/// byte-stable across machines and thread counts. Volatile data (worker
/// threads, wall times) lives only in the `meta` object, which the CI diff
/// gate ignores.
pub fn sweep_report_json(report: &SweepReport) -> String {
    sweep_report_json_with(report, false)
}

/// [`sweep_report_json`] with optional redaction of the volatile `meta`
/// object (zeroed for byte-stable golden snapshots).
pub fn sweep_report_json_with(report: &SweepReport, redact_volatile: bool) -> String {
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.4}")
        } else {
            "null".to_string()
        }
    }
    let policy_name = |p: SpillPolicy| match p {
        SpillPolicy::Lru => "lru",
        SpillPolicy::MinNextUse => "min_next_use",
    };
    let mut rows: Vec<&SweepRow> = report.rows.iter().collect();
    rows.sort_by(|a, b| {
        (&a.kernel, &a.params, a.s, policy_name(a.policy)).cmp(&(
            &b.kernel,
            &b.params,
            b.s,
            policy_name(b.policy),
        ))
    });
    let (threads, wall) = if redact_volatile {
        (0, 0.0)
    } else {
        (report.threads, report.total_wall_ms)
    };
    let mut degradation: Vec<&DegradationRow> = report.degradation.iter().collect();
    degradation.sort_by(|a, b| a.kernel.cmp(&b.kernel));
    let mut failures: Vec<&FailureRow> = report.failures.iter().collect();
    failures.sort_by(|a, b| (&a.kernel, &a.class).cmp(&(&b.kernel, &b.class)));
    let opt = |v: Option<u64>| v.map_or("null".to_string(), |b| b.to_string());
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"hourglass-iolb/pebble-sweep/v5\",\n");
    if redact_volatile || report.scaling.is_empty() {
        out.push_str(&format!(
            "  \"meta\": {{\"threads\": {threads}, \"total_wall_ms\": {}}},\n",
            num(wall)
        ));
    } else {
        // The scaling series is volatile (wall times), so it lives in
        // `meta` with the other volatile fields and is dropped whole under
        // redaction — golden snapshots stay byte-stable.
        let pts: Vec<String> = report
            .scaling
            .iter()
            .map(|p| {
                format!(
                    "{{\"accesses\": {}, \"policy\": \"{}\", \"wall_ms\": {}}}",
                    p.accesses,
                    policy_name(p.policy),
                    num(p.wall_ms)
                )
            })
            .collect();
        out.push_str(&format!(
            "  \"meta\": {{\"threads\": {threads}, \"total_wall_ms\": {}, \"scaling\": [{}]}},\n",
            num(wall),
            pts.join(", ")
        ));
    }
    out.push_str("  \"degradation\": [\n");
    for (i, d) in degradation.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": {}, \"level\": \"{}\"}}{}\n",
            json_str(&d.kernel),
            d.level.as_str(),
            if i + 1 == degradation.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"failures\": [\n");
    for (i, f) in failures.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": {}, \"class\": {}, \"message\": {}}}{}\n",
            json_str(&f.kernel),
            json_str(&f.class),
            json_str(&f.message),
            if i + 1 == failures.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let params: Vec<String> = r.params.iter().map(|p| p.to_string()).collect();
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"params\": [{}], \"nodes\": {}, \"edges\": {}, \"s\": {}, \"policy\": \"{}\", \"loads\": {}, \"computes\": {}, \"lb_classical\": {}, \"lb_hourglass\": {}, \"lb_input\": {}, \"lb_visit\": {}, \"lb_spectral\": {}, \"lb\": {}, \"lb_provenance\": \"{}\", \"ratio_loads_over_lb\": {}, \"sound\": {}}}{}\n",
            r.kernel,
            params.join(", "),
            r.nodes,
            r.edges,
            r.s,
            policy_name(r.policy),
            r.loads,
            r.computes,
            num(r.lb_classical),
            num(r.lb_hourglass),
            opt(r.lb_input),
            opt(r.lb_visit),
            opt(r.lb_spectral),
            num(r.lb()),
            r.lb_provenance.as_str(),
            num(r.ratio),
            r.sound(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small-size sweep: the full matrix machinery on fast cases, asserting
    /// soundness (bound ≤ measured loads) and the MIN ≤ LRU invariant per
    /// cell pair. The shrunken sizes come from the same data table as the
    /// CI-gate sizes — no per-kernel match-arms here.
    #[test]
    fn small_sweep_is_sound_and_min_beats_lru() {
        let kernels = default_sweep_kernels_at(SweepSize::Small);
        let report = run_sweep(kernels);
        assert_eq!(report.rows.len(), 6 * dense_s_offsets().len() * 2);
        let mut nontrivial = 0;
        for r in &report.rows {
            assert!(
                r.sound(),
                "{}: S={} bound {} > loads {}",
                r.kernel,
                r.s,
                r.lb(),
                r.loads
            );
            if r.lb() > 0.0 {
                nontrivial += 1;
            }
        }
        assert!(nontrivial >= 100, "got {nontrivial} non-trivial cells");
        // MIN never loads more than LRU on the same (kernel, S), and each
        // policy column is monotone non-increasing in S.
        for pair in report.rows.chunks(2) {
            let (lru, min) = (&pair[0], &pair[1]);
            assert_eq!(lru.kernel, min.kernel);
            assert_eq!(lru.s, min.s);
            assert!(min.loads <= lru.loads, "{} S={}", lru.kernel, lru.s);
        }
        let mut last: std::collections::HashMap<(&str, SpillPolicy), u64> =
            std::collections::HashMap::new();
        for r in &report.rows {
            if let Some(prev) = last.insert((r.kernel.as_str(), r.policy), r.loads) {
                assert!(
                    r.loads <= prev,
                    "{} {:?}: loads not monotone in S at S={}",
                    r.kernel,
                    r.policy,
                    r.s
                );
            }
        }
        // Every row carries the full engine complement (the default
        // registry selects all engines; always-applicable ones are never
        // null) and a provenance tag consistent with the winning bound.
        for r in &report.rows {
            assert!(r.lb_input.is_some(), "{}: input floor missing", r.kernel);
            assert!(r.lb_visit.is_some(), "{}: visit bound missing", r.kernel);
            let best = r.lb();
            let tagged = match r.lb_provenance {
                BoundProvenance::Classical => r.lb_classical,
                BoundProvenance::Hourglass => r.lb_hourglass,
                BoundProvenance::InputFloor => r.lb_input.unwrap_or(0) as f64,
                BoundProvenance::Visit => r.lb_visit.unwrap_or(0) as f64,
                BoundProvenance::Spectral => r.lb_spectral.unwrap_or(0) as f64,
            };
            assert_eq!(
                tagged, best,
                "{}: provenance tags a non-best bound",
                r.kernel
            );
        }
        // JSON smoke: parsers only need balance + key presence here.
        let json = sweep_report_json(&report);
        assert!(json.contains("\"schema\": \"hourglass-iolb/pebble-sweep/v5\""));
        assert!(json.contains("\"lb_provenance\": \""));
        assert!(json.contains("\"lb_input\": "));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced JSON"
        );
        // Governance sections: every kernel ran its full grid, no failures.
        assert!(json.contains("\"degradation\": ["));
        assert!(json.contains("\"failures\": ["));
        assert_eq!(json.matches("\"level\": \"full\"").count(), 6);
        assert_eq!(report.failures.len(), 0);
        // Deterministic comparable sections: rows sorted by kernel name and
        // no volatile field outside `meta`.
        let rows_json = json.split("\"rows\"").nth(1).expect("rows array");
        let kernels: Vec<&str> = rows_json
            .lines()
            .filter_map(|l| l.trim().strip_prefix("{\"kernel\": \""))
            .map(|l| l.split('"').next().unwrap())
            .collect();
        let mut sorted = kernels.clone();
        sorted.sort();
        assert_eq!(kernels, sorted, "rows sorted by kernel");
        // No volatile field may leak into the comparable rows section.
        let rows_section = json.split("\"rows\"").nth(1).expect("rows array");
        assert!(
            !rows_section.contains("_ms") && !rows_section.contains("threads"),
            "volatile field outside meta"
        );
        let redacted = sweep_report_json_with(&report, true);
        assert!(redacted.contains("\"meta\": {\"threads\": 0, \"total_wall_ms\": 0.0000}"));
    }

    /// `--engines none` disables the graph-level columns without touching
    /// the symbolic bounds: every engine cell is null and provenance can
    /// only name a symbolic family.
    #[test]
    fn empty_registry_disables_graph_bounds() {
        let mut kernels = default_sweep_kernels_at(SweepSize::Small);
        kernels.truncate(1);
        kernels[0].s_offsets = coarse_s_offsets();
        let report = try_run_sweep_with(
            kernels,
            &Budget::unlimited(),
            &CancelToken::unlimited(),
            &EngineRegistry::none(),
        )
        .expect("sweep");
        assert!(!report.rows.is_empty());
        for r in &report.rows {
            assert_eq!(r.lb_graph(), None);
            assert!(matches!(
                r.lb_provenance,
                BoundProvenance::Classical | BoundProvenance::Hourglass
            ));
            assert!(r.sound());
        }
    }

    /// The dense default grid embeds the legacy coarse grid, so historical
    /// BENCH points remain comparable across the schema bump.
    #[test]
    fn dense_grid_is_a_superset_of_the_coarse_grid() {
        let dense = dense_s_offsets();
        assert!(dense.len() >= 30, "~32 points expected");
        assert!(dense.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        for off in coarse_s_offsets() {
            assert!(dense.contains(&off), "coarse offset {off} missing");
        }
    }

    /// Satellite pin: `meta.threads` is scoped to the sweep invocation.
    /// A wide parallel stage running earlier in the process inflates the
    /// process-global high-water but must not leak into the report — a
    /// one-kernel sweep can engage at most 2 workers (its two policy
    /// columns), whatever ran before it.
    #[test]
    fn threads_are_scoped_to_the_sweep_invocation() {
        let _inflate: Vec<u64> = (0..64u64)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x * 2)
            .collect();
        let mut kernels = default_sweep_kernels_at(SweepSize::Small);
        kernels.truncate(1);
        kernels[0].s_offsets = coarse_s_offsets();
        let report = run_sweep(kernels);
        assert!(
            (1..=2).contains(&report.threads),
            "one-kernel sweep reported {} threads (process high-water {})",
            report.threads,
            rayon::max_workers_used()
        );
    }

    /// The streaming sharded strategy and the legacy materialized strategy
    /// price every cell identically (the in-pass cross-check enforces
    /// bitwise curve equality; this pins the row-level outcome too).
    #[test]
    fn curve_strategies_agree_cell_for_cell() {
        let run = |strategy| {
            let mut kernels = default_sweep_kernels_at(SweepSize::Small);
            kernels.truncate(2);
            for k in &mut kernels {
                k.s_offsets = coarse_s_offsets();
            }
            try_run_sweep_opts(
                kernels,
                &Budget::unlimited(),
                &CancelToken::unlimited(),
                &EngineRegistry::all(),
                strategy,
            )
            .expect("sweep")
        };
        let streaming = run(CurveStrategy::Streaming);
        let materialized = run(CurveStrategy::Materialized);
        assert_eq!(streaming.rows.len(), materialized.rows.len());
        for (a, b) in streaming.rows.iter().zip(&materialized.rows) {
            assert_eq!(
                (a.kernel.as_str(), a.s, a.policy, a.loads),
                (b.kernel.as_str(), b.s, b.policy, b.loads)
            );
        }
    }

    /// The scaling series lives in `meta` only: emitted when present,
    /// absent from the comparable sections, dropped whole under redaction.
    #[test]
    fn scaling_series_is_meta_only_and_redacted_away() {
        let mut kernels = default_sweep_kernels_at(SweepSize::Small);
        kernels.truncate(1);
        kernels[0].s_offsets = coarse_s_offsets();
        let mut report = run_sweep(kernels);
        report.scaling = vec![ScalingPoint {
            accesses: 1_000_188,
            policy: SpillPolicy::Lru,
            wall_ms: 12.5,
        }];
        let json = sweep_report_json(&report);
        assert!(json.contains(
            "\"scaling\": [{\"accesses\": 1000188, \"policy\": \"lru\", \"wall_ms\": 12.5000}]"
        ));
        let rows_section = json.split("\"rows\"").nth(1).expect("rows array");
        assert!(!rows_section.contains("scaling"));
        let redacted = sweep_report_json_with(&report, true);
        assert!(redacted.contains("\"meta\": {\"threads\": 0, \"total_wall_ms\": 0.0000}"));
        assert!(!redacted.contains("scaling"));
    }

    /// The env of a sweep kernel is derived from program parameters plus
    /// the split binding — the GEHD2-style data path.
    #[test]
    fn env_is_data_driven() {
        let kernels = default_sweep_kernels_at(SweepSize::Small);
        let gehd2 = kernels.iter().find(|k| k.name == "GEHD2").unwrap();
        let env = gehd2.env(None);
        assert_eq!(env, vec![(Var::new("N"), 11)]);
        let binding =
            iolb_core::report::midpoint_split_binding(&gehd2.program, iolb_ir::DimId(0)).unwrap();
        let env = gehd2.env(Some(&binding));
        // Midpoint of j ∈ [0, N−2) at N = 11: ⌊9/2⌋ = 4.
        assert_eq!(env[1], (iolb_core::theorems::split_var(), 4));
    }
}
