//! Upper-bound schedule engine: measured I/O of concrete blocked
//! executions vs the derived lower bounds.
//!
//! The paper's tightness claim is that the hourglass-raised bounds *match*
//! the data movement of known blocked/tiled implementations. This module
//! closes that loop empirically, per kernel and per fast-memory size `S`:
//!
//! 1. one reference pass over the *untiled* program records its
//!    element-granularity access trace and, per statement instance, the
//!    *version* (running write count) of every cell it touches (the
//!    internal `TraceRef`);
//! 2. every candidate schedule — program order plus tile-size assignments
//!    for the kernel's `schedule { tile … }` directives, swept by an
//!    auto-tuner — is emitted as a trace in **one pass** over the tiled
//!    enumeration into a reusable buffer, checking each access's version
//!    against the reference on the way: version equality per instance is
//!    exactly dependence preservation (RAW/WAR/WAW all surface as a
//!    mismatch), so illegal interchanges are rejected without ever
//!    building a CDAG permutation or playing a pebble game;
//! 3. a single OPT stack-distance pass ([`iolb_memsim::ShardedCurveEngine`],
//!    fed through the slice `ChunkedTrace` bridge)
//!    turns the candidate's trace into its exact Belady-MIN miss curve —
//!    the loads of the best possible demand replacement for that schedule
//!    at **every** swept `S` at once, bitwise what a `BeladySim` replay
//!    reports (replacing the old per-`(candidate, S)` MIN pebble replays);
//! 4. the best curve point per `S` is the measured upper bound Q(S); each
//!    winning schedule's final store is cross-checked bit-for-bit against
//!    the untiled interpreter (belt and braces over the version check),
//!    and its LRU curve is reported alongside as the demand-paging view.
//!
//! The outcome per `(kernel, S)` is a [`TightnessPoint`]: lower bound,
//! best measured upper bound, and their ratio — emitted as
//! `BENCH_tightness.json` (schema `tightness/v3`) and gated in CI against
//! regressions.
//!
//! Earlier versions scored candidates with MIN-policy pebble plays and
//! reported the trace simulators as a side column; because the old
//! `BeladySim` lacked the write-kill rule it was not exactly optimal, and
//! its loads could land *above* a legal play's (the committed v1 reports
//! had such inversions, e.g. gebd2 at S = 260). With the fixed simulator
//! the optimal trace curve is the strongest witness for a schedule, the
//! orderings are invariants (`upper ≤ program-order`, `upper ≤ LRU view`),
//! and both are checked here.

use crate::sweep::{json_str, DegradationRow, FailureRow};
use iolb_cdag::try_build_cdag;
use iolb_core::report::TightnessPoint;
use iolb_core::{ClassicalBound, HourglassBound};
use iolb_govern::{catch_analysis_mut, AnalysisError, Budget, CancelToken, Degradation, Seam};
use iolb_ir::parse::TileDirective;
use iolb_ir::schedule::{tile_program, TileSpec};
use iolb_ir::{for_each_instance, try_for_each_instance, ArrayId, Interpreter, Program};
use iolb_memsim::{MissCurve, ShardedCurveEngine};
use iolb_symbolic::Var;
use rayon::prelude::*;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::time::Instant;

/// One kernel's tightness measurement inputs.
pub struct TightnessJob {
    /// Display name.
    pub name: String,
    /// The untiled program (instance identity and lower bounds live here).
    pub program: Program,
    /// Concrete parameter values.
    pub params: Vec<i64>,
    /// Symbolic evaluation environment for the bounds (parameters plus any
    /// split-variable binding).
    pub env: Vec<(Var, i128)>,
    /// Classical K-partition bound, when derivable.
    pub classical: Option<ClassicalBound>,
    /// Hourglass bound, when the kernel has the pattern.
    pub hourglass: Option<HourglassBound>,
    /// `schedule { tile … }` directives from the kernel file (empty means
    /// only program order is measured).
    pub schedule: Vec<TileDirective>,
    /// Offsets added to the minimum feasible S.
    pub s_offsets: Vec<usize>,
}

/// Tightness outcome of one kernel.
#[derive(Debug, Clone)]
pub struct KernelTightness {
    /// Kernel display name.
    pub kernel: String,
    /// Concrete parameter values.
    pub params: Vec<i64>,
    /// One point per swept S, ascending.
    pub points: Vec<TightnessPoint>,
}

/// Full tightness report across a kernel suite.
#[derive(Debug, Clone)]
pub struct TightnessReport {
    /// Per-kernel outcomes, sorted by kernel name.
    pub kernels: Vec<KernelTightness>,
    /// Degradation level each surviving kernel's grid ran at.
    pub degradation: Vec<DegradationRow>,
    /// Kernels that were attempted but produced no points (typed-error
    /// class + message). Empty outside governed batch runs.
    pub failures: Vec<FailureRow>,
    /// End-to-end wall time (milliseconds) — volatile, excluded from the
    /// comparable JSON sections.
    pub total_wall_ms: f64,
    /// Worker threads actually engaged — volatile, excluded likewise.
    pub threads: usize,
}

/// One candidate schedule of the auto-tuner.
struct Candidate {
    /// Human-readable description (`"program-order"`, `"tile i=8 j=8"`).
    desc: String,
    /// Tile specs; `None` is the untransformed program order.
    tiles: Option<Vec<TileSpec>>,
}

/// Runs the tightness measurement for every job concurrently.
///
/// Ungoverned compatibility wrapper over [`try_run_tightness`] —
/// unlimited budget, no cancellation, errors stringified.
///
/// # Errors
/// Propagates tiling failures, reference-pass failures, and numeric
/// cross-check mismatches.
pub fn run_tightness(jobs: Vec<TightnessJob>) -> Result<TightnessReport, String> {
    try_run_tightness(jobs, &Budget::unlimited(), &CancelToken::unlimited())
        .map_err(|e| e.to_string())
}

/// [`run_tightness`] under a resource budget and a cancellation token.
///
/// The auto-tuner polls the token between candidates ([`Seam::Tuner`]),
/// the reference pass is a governed enumeration charged against
/// `budget.max_instances`, CDAG materialization is admission-checked, and
/// every OPT/LRU curve pass polls the token mid-trace. The first typed
/// error aborts the whole run; per-kernel fault isolation is the CLI
/// batch layer's job.
///
/// # Errors
/// The first typed error any kernel produced.
pub fn try_run_tightness(
    jobs: Vec<TightnessJob>,
    budget: &Budget,
    token: &CancelToken,
) -> Result<TightnessReport, AnalysisError> {
    let t_total = Instant::now();
    // Scoped worker accounting — `meta.threads` describes this run only.
    let workers = rayon::worker_scope();
    // Panics are converted to typed errors *inside* the worker closure:
    // the thread-scope bridge underneath would otherwise replace the
    // payload with a generic "a scoped thread panicked".
    let mut kernels = jobs
        .into_par_iter()
        .map(|job| catch_analysis_mut(|| measure_kernel(job, budget, token)))
        .collect::<Vec<Result<KernelTightness, AnalysisError>>>()
        .into_iter()
        .collect::<Result<Vec<KernelTightness>, AnalysisError>>()?;
    kernels.sort_by(|a, b| a.kernel.cmp(&b.kernel));
    let degradation = kernels
        .iter()
        .map(|k| DegradationRow {
            kernel: k.kernel.clone(),
            level: Degradation::Full,
        })
        .collect();
    Ok(TightnessReport {
        kernels,
        degradation,
        failures: Vec::new(),
        total_wall_ms: t_total.elapsed().as_secs_f64() * 1e3,
        threads: workers.max_workers_used(),
    })
}

/// The auto-tuner's tile-size candidates for one unsized directive: powers
/// of two (plus 1, the pure-interchange driver), capped near the largest
/// concrete parameter so degenerate single-tile candidates are skipped.
fn size_candidates(params: &[i64], n_unsized: usize) -> Vec<i64> {
    let cap = params.iter().copied().max().unwrap_or(1);
    let base: &[i64] = if n_unsized >= 3 {
        &[1, 2, 4, 8, 16]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    base.iter().copied().filter(|&c| c <= cap).collect()
}

/// Expands the schedule directives into the candidate list (program order
/// first, then the cartesian product of per-loop size choices).
fn candidates(schedule: &[TileDirective], params: &[i64]) -> Vec<Candidate> {
    let mut out = vec![Candidate {
        desc: "program-order".to_string(),
        tiles: None,
    }];
    if schedule.is_empty() {
        return out;
    }
    let n_unsized = schedule.iter().filter(|d| d.size.is_none()).count();
    let auto = size_candidates(params, n_unsized);
    let per_loop: Vec<(&str, Vec<i64>)> = schedule
        .iter()
        .map(|d| {
            let sizes = match d.size {
                Some(s) => vec![s],
                None => auto.clone(),
            };
            (d.loop_name.as_str(), sizes)
        })
        .collect();
    let mut chosen: Vec<i64> = Vec::with_capacity(per_loop.len());
    expand(&per_loop, &mut chosen, &mut out);
    out
}

fn expand(per_loop: &[(&str, Vec<i64>)], chosen: &mut Vec<i64>, out: &mut Vec<Candidate>) {
    if chosen.len() == per_loop.len() {
        let desc = per_loop
            .iter()
            .zip(chosen.iter())
            .map(|((n, _), s)| format!("{n}={s}"))
            .collect::<Vec<_>>()
            .join(" ");
        let tiles = per_loop
            .iter()
            .zip(chosen.iter())
            .map(|((n, _), &s)| TileSpec::new(n, s))
            .collect();
        out.push(Candidate {
            desc: format!("tile {desc}"),
            tiles: Some(tiles),
        });
        return;
    }
    let sizes = per_loop[chosen.len()].1.clone();
    for s in sizes {
        chosen.push(s);
        expand(per_loop, chosen, out);
        chosen.pop();
    }
}

// ---------------------------------------------------------------------------
// Reference pass + candidate trace emission
// ---------------------------------------------------------------------------

/// Instance keys are `(stmt, iv)` packed into one u128 (8-bit statement id
/// plus up to eight 15-bit dimension values), hashed with a splitmix-style
/// finisher — the per-instance map lookup is the hottest part of a
/// candidate pass, and `SipHash` over a heap-allocated `Vec<i32>` key was
/// the old auto-tuner's dominant allocation source.
#[derive(Default)]
struct KeyHasher(u64);

impl Hasher for KeyHasher {
    fn write(&mut self, _: &[u8]) {
        unreachable!("packed u128 keys only");
    }

    fn write_u128(&mut self, key: u128) {
        let mut x = (key as u64) ^ (key >> 64) as u64 ^ 0x9E37_79B9_7F4A_7C15;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = x ^ (x >> 31);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

const KEY_DIM_BITS: u32 = 15;
const KEY_MAX_DIMS: usize = 8;

/// Packs a statement instance into its map key; `None` when the instance
/// falls outside the packable domain (more than eight loop dims, or an
/// index value outside `0..32768` — far beyond anything the exact CDAG
/// pipeline could enumerate anyway).
#[inline]
fn pack_key(stmt: u32, dims: &[i64], sel: &[iolb_ir::DimId]) -> Option<u128> {
    if stmt >= 256 || sel.len() > KEY_MAX_DIMS {
        return None;
    }
    let mut key = stmt as u128;
    let mut shift = 8u32;
    for d in sel {
        let v = dims[d.0 as usize];
        if !(0..1 << KEY_DIM_BITS).contains(&v) {
            return None;
        }
        key |= (v as u128) << shift;
        shift += KEY_DIM_BITS;
    }
    Some(key)
}

/// Reference data of one kernel's untiled execution: cell layout, the
/// packed program-order trace, and per-instance expected cell versions.
///
/// A candidate enumeration is dependence-legal exactly when every instance
/// touches every cell at the *same version* (write count) as in program
/// order: matching write versions pin the per-cell write order (WAW),
/// matching read versions pin each read into its original inter-write
/// window (RAW + WAR) — and reads within one window commute freely, which
/// is precisely the legal reorder space.
struct TraceRef {
    /// Array base offsets (cell id = `base[array] + flat`).
    base: Vec<usize>,
    /// Row-major strides per array.
    strides: Vec<Vec<usize>>,
    /// Total cell universe.
    n_cells: usize,
    /// Packed untiled program-order trace.
    trace: Vec<u64>,
    /// Instance rank → first slot of its expected versions (reads in
    /// declared order, then writes).
    ver_off: Vec<u32>,
    /// Expected versions, CSR under `ver_off`.
    ver: Vec<u32>,
    /// Packed instance key → rank (built only when candidates exist).
    rank_of: HashMap<u128, u32, BuildHasherDefault<KeyHasher>>,
    /// Total instances.
    n_instances: usize,
}

impl TraceRef {
    /// One pass over the untiled enumeration — governed: the instance walk
    /// polls `token` and is charged against `budget.max_instances`.
    ///
    /// # Errors
    /// Refuses instances outside the packable key domain (only when
    /// `with_ranks` — kernels without schedule directives never need the
    /// instance map) and propagates budget/cancellation errors from the
    /// governed walk.
    fn build(
        program: &Program,
        params: &[i64],
        with_ranks: bool,
        budget: &Budget,
        token: &CancelToken,
    ) -> Result<TraceRef, AnalysisError> {
        let n_arrays = program.arrays.len();
        let strides: Vec<Vec<usize>> = (0..n_arrays)
            .map(|i| program.array_strides(ArrayId(i as u32), params))
            .collect();
        let mut base = Vec::with_capacity(n_arrays);
        let mut n_cells = 0usize;
        for i in 0..n_arrays {
            base.push(n_cells);
            n_cells += program.array_len(ArrayId(i as u32), params).max(1);
        }
        let mut r = TraceRef {
            base,
            strides,
            n_cells,
            trace: Vec::new(),
            ver_off: vec![0],
            ver: Vec::new(),
            rank_of: HashMap::default(),
            n_instances: 0,
        };
        let mut wc = vec![0u32; n_cells];
        let mut unpackable = None;
        try_for_each_instance(
            program,
            params,
            token,
            Seam::Instances,
            budget.max_instances,
            |stmt_id, dims| {
                let stmt = program.stmt(stmt_id);
                if with_ranks {
                    match pack_key(stmt_id.0, dims, &stmt.dims) {
                        Some(key) => {
                            r.rank_of.insert(key, r.n_instances as u32);
                        }
                        None => unpackable = Some(stmt.name.clone()),
                    }
                }
                // The version CSR only exists to legality-check candidate
                // enumerations; schedule-free kernels skip it entirely.
                for access in &stmt.reads {
                    let cell = r.cell_of(access, dims, params);
                    if with_ranks {
                        r.ver.push(wc[cell]);
                    }
                    r.trace.push((cell as u64) << 1);
                }
                for access in &stmt.writes {
                    let cell = r.cell_of(access, dims, params);
                    if with_ranks {
                        r.ver.push(wc[cell]);
                        wc[cell] += 1;
                    }
                    r.trace.push(((cell as u64) << 1) | 1);
                }
                if with_ranks {
                    r.ver_off.push(r.ver.len() as u32);
                }
                r.n_instances += 1;
            },
        )?;
        match unpackable {
            Some(stmt) => Err(AnalysisError::Refused(format!(
                "statement {stmt} has instances outside the schedulable key \
                 domain (> {KEY_MAX_DIMS} loop dims or an index ≥ {})",
                1 << KEY_DIM_BITS
            ))),
            None => Ok(r),
        }
    }

    /// Dense cell id of a declared access at one instance.
    #[inline]
    fn cell_of(&self, access: &iolb_ir::Access, dims: &[i64], params: &[i64]) -> usize {
        let a = access.array.0 as usize;
        let st = &self.strides[a];
        let mut f = self.base[a];
        for (axis, aff) in access.idx.iter().enumerate() {
            let v = aff.eval_envs(dims, params);
            debug_assert!(v >= 0, "negative declared subscript");
            f += st[axis] * v as usize;
        }
        f
    }

    /// Emits a candidate enumeration's trace into `out` while checking
    /// dependence legality against the reference versions. Returns whether
    /// the candidate is legal; an illegal candidate aborts emission early.
    fn emit_candidate(
        &self,
        program: &Program,
        params: &[i64],
        out: &mut Vec<u64>,
        wc: &mut [u32],
    ) -> bool {
        out.clear();
        wc.fill(0);
        let mut legal = true;
        let mut count = 0usize;
        for_each_instance(program, params, |stmt_id, dims| {
            if !legal {
                return;
            }
            let stmt = program.stmt(stmt_id);
            let rank = pack_key(stmt_id.0, dims, &stmt.dims)
                .and_then(|key| self.rank_of.get(&key).copied());
            let Some(rank) = rank else {
                legal = false;
                return;
            };
            let mut vp = self.ver_off[rank as usize] as usize;
            for access in &stmt.reads {
                let cell = self.cell_of(access, dims, params);
                if self.ver[vp] != wc[cell] {
                    legal = false;
                    return;
                }
                vp += 1;
                out.push((cell as u64) << 1);
            }
            for access in &stmt.writes {
                let cell = self.cell_of(access, dims, params);
                if self.ver[vp] != wc[cell] {
                    legal = false;
                    return;
                }
                vp += 1;
                wc[cell] += 1;
                out.push(((cell as u64) << 1) | 1);
            }
            count += 1;
        });
        legal && count == self.n_instances
    }
}

fn measure_kernel(
    job: TightnessJob,
    budget: &Budget,
    token: &CancelToken,
) -> Result<KernelTightness, AnalysisError> {
    let cdag = try_build_cdag(&job.program, &job.params, budget, token)?;
    let min_s = cdag.max_in_degree() + 1;
    let s_values: Vec<usize> = job.s_offsets.iter().map(|&off| min_s + off).collect();
    let s_max = s_values.iter().copied().max().unwrap_or(1);

    let cands = candidates(&job.schedule, &job.params);
    let tref = TraceRef::build(&job.program, &job.params, cands.len() > 1, budget, token).map_err(
        |e| match e {
            AnalysisError::Refused(msg) => AnalysisError::Refused(format!("{}: {msg}", job.name)),
            other => other,
        },
    )?;

    // Score every candidate once: emit (+ legality-check) its trace into
    // the shared buffer, then read every S point off one OPT curve.
    // Program order (index 0) is the reference itself, so every cell ends
    // up populated. Candidate traces are necessarily materialized (the
    // version legality check writes them), so they feed the sharded
    // streaming engine through the slice `ChunkedTrace` bridge.
    let engine = ShardedCurveEngine::new();
    let mut trace_buf: Vec<u64> = Vec::with_capacity(tref.trace.len());
    let mut wc = vec![0u32; tref.n_cells];
    let mut best: Vec<Option<(u64, usize)>> = vec![None; s_values.len()];
    let mut program_order_loads: Vec<u64> = vec![0; s_values.len()];
    let mut tiled_programs: HashMap<usize, Program> = HashMap::new();
    for (ci, cand) in cands.iter().enumerate() {
        // The auto-tuner seam: one poll per candidate bounds how much work
        // a deadline or an external cancel can leave in flight, and is
        // where the fault-injection harness targets `*@tuner` faults.
        token.check(Seam::Tuner)?;
        let trace: &[u64] = match &cand.tiles {
            None => &tref.trace,
            Some(tiles) => {
                let tiled = tile_program(&job.program, tiles)
                    .map_err(|e| AnalysisError::Refused(format!("{}: {e}", job.name)))?;
                let legal = tref.emit_candidate(&tiled, &job.params, &mut trace_buf, &mut wc);
                tiled_programs.insert(ci, tiled);
                if !legal {
                    continue; // illegal interchange: disqualified, not an error
                }
                &trace_buf
            }
        };
        let curve = engine.try_opt(trace, s_max, token)?;
        for (si, &s) in s_values.iter().enumerate() {
            let loads = curve.loads(s);
            if ci == 0 {
                program_order_loads[si] = loads;
            }
            if best[si].is_none_or(|(l, _)| loads < l) {
                best[si] = Some((loads, ci));
            }
        }
    }

    // Cross-check every winning tiled schedule against the untiled
    // interpreter — identical final stores, bit for bit — and take the
    // winner's LRU curve (the demand-paging view of the same trace).
    let winning: Vec<usize> = {
        let mut w: Vec<usize> = best.iter().flatten().map(|&(_, ci)| ci).collect();
        w.sort_unstable();
        w.dedup();
        w
    };
    let init = |a: ArrayId, f: usize| 1.0 + a.0 as f64 + f as f64 * 0.25;
    let base_store = Interpreter::new(&job.program, &job.params).run_numeric(init);
    let mut lru_curves: HashMap<usize, MissCurve> = HashMap::new();
    for &ci in &winning {
        let trace: &[u64] = match tiled_programs.get(&ci) {
            None => &tref.trace, // program order needs no cross-check
            Some(tiled) => {
                let got = Interpreter::new(tiled, &job.params).run_numeric(init);
                if got.data != base_store.data {
                    return Err(AnalysisError::Internal(format!(
                        "{}: schedule `{}` changed the numeric result — illegal interchange",
                        job.name, cands[ci].desc
                    )));
                }
                let legal = tref.emit_candidate(tiled, &job.params, &mut trace_buf, &mut wc);
                debug_assert!(legal, "winner was scored, so it must re-emit");
                &trace_buf
            }
        };
        lru_curves.insert(ci, engine.try_lru(trace, s_max, token)?);
    }

    let mut points = Vec::with_capacity(s_values.len());
    for (si, &s) in s_values.iter().enumerate() {
        let (upper_loads, ci) = best[si].ok_or_else(|| {
            AnalysisError::Internal(format!(
                "{}: no legal schedule at S={s} (program order must always score)",
                job.name
            ))
        })?;
        let trace_lru_loads = lru_curves[&ci].loads(s);
        // Invariants of the measurement itself (an inversion here is an
        // engine bug, not a tightness result): the optimal curve of the
        // winning trace can be beaten neither by the LRU view of the same
        // trace nor by the tuner's own baseline.
        if trace_lru_loads < upper_loads {
            return Err(AnalysisError::Internal(format!(
                "{}: S={s}: LRU view {trace_lru_loads} beat the optimal curve {upper_loads}",
                job.name
            )));
        }
        if upper_loads > program_order_loads[si] {
            return Err(AnalysisError::Internal(format!(
                "{}: S={s}: winner {upper_loads} loads above the program-order baseline {} \
                 (the tuner must never lose to its own baseline)",
                job.name, program_order_loads[si]
            )));
        }
        points.push(TightnessPoint {
            s,
            lb_classical: job
                .classical
                .as_ref()
                .map(|b| b.eval_floor(&job.env, s as i128))
                .unwrap_or(0.0),
            lb_hourglass: job
                .hourglass
                .as_ref()
                .map(|b| b.eval_floor(&job.env, s as i128))
                .unwrap_or(0.0),
            lb_inputs: cdag.num_inputs() as f64,
            upper_loads,
            upper_schedule: cands[ci].desc.clone(),
            program_order_loads: program_order_loads[si],
            trace_lru_loads,
        });
    }
    Ok(KernelTightness {
        kernel: job.name,
        params: job.params,
        points,
    })
}

/// Renders the tightness report as an aligned table.
pub fn render_tightness_table(report: &TightnessReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>12} {:>6} {:>12} {:>12} {:>12} {:>7} {:>8}  {:<22}\n",
        "kernel", "size", "S", "LB", "upper", "prog-order", "ratio", "hg-rat", "best schedule"
    ));
    for k in &report.kernels {
        for t in &k.points {
            out.push_str(&format!(
                "{:<14} {:>12} {:>6} {:>12.0} {:>12} {:>12} {:>7.2} {:>8}  {:<22}\n",
                k.kernel,
                format!("{:?}", k.params),
                t.s,
                t.lower_bound(),
                t.upper_loads,
                t.program_order_loads,
                t.ratio(),
                t.hourglass_ratio()
                    .map(|r| format!("{r:.2}"))
                    .unwrap_or_else(|| "-".to_string()),
                t.upper_schedule,
            ));
        }
    }
    out.push_str(&format!(
        "{} kernels on {} threads in {:.1} ms\n",
        report.kernels.len(),
        report.threads,
        report.total_wall_ms
    ));
    out
}

/// Serializes the tightness report as deterministic JSON: kernels sorted
/// by name, points by S, fixed key order, volatile data (threads, wall
/// times) confined to the `meta` object. `redact_volatile` zeroes `meta`
/// for byte-stable golden snapshots.
pub fn tightness_report_json(report: &TightnessReport, redact_volatile: bool) -> String {
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.4}")
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"hourglass-iolb/tightness/v3\",\n");
    let (threads, wall) = if redact_volatile {
        (0, 0.0)
    } else {
        (report.threads, report.total_wall_ms)
    };
    out.push_str(&format!(
        "  \"meta\": {{\"threads\": {threads}, \"total_wall_ms\": {}}},\n",
        num(wall)
    ));
    let mut degradation: Vec<&DegradationRow> = report.degradation.iter().collect();
    degradation.sort_by(|a, b| a.kernel.cmp(&b.kernel));
    let mut failures: Vec<&FailureRow> = report.failures.iter().collect();
    failures.sort_by(|a, b| (&a.kernel, &a.class).cmp(&(&b.kernel, &b.class)));
    out.push_str("  \"degradation\": [\n");
    for (i, d) in degradation.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": {}, \"level\": \"{}\"}}{}\n",
            json_str(&d.kernel),
            d.level.as_str(),
            if i + 1 == degradation.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"failures\": [\n");
    for (i, f) in failures.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": {}, \"class\": {}, \"message\": {}}}{}\n",
            json_str(&f.kernel),
            json_str(&f.class),
            json_str(&f.message),
            if i + 1 == failures.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"kernels\": [\n");
    for (i, k) in report.kernels.iter().enumerate() {
        let params: Vec<String> = k.params.iter().map(|p| p.to_string()).collect();
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"params\": [{}], \"points\": [\n",
            k.kernel,
            params.join(", ")
        ));
        for (j, t) in k.points.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"s\": {}, \"lb_classical\": {}, \"lb_hourglass\": {}, \"lb_inputs\": {}, \"lower_bound\": {}, \"upper_loads\": {}, \"upper_schedule\": \"{}\", \"program_order_loads\": {}, \"trace_lru_loads\": {}, \"ratio\": {}, \"hourglass_ratio\": {}}}{}\n",
                t.s,
                num(t.lb_classical),
                num(t.lb_hourglass),
                num(t.lb_inputs),
                num(t.lower_bound()),
                t.upper_loads,
                t.upper_schedule,
                t.program_order_loads,
                t.trace_lru_loads,
                num(t.ratio()),
                t.hourglass_ratio()
                    .map(num)
                    .unwrap_or_else(|| "null".to_string()),
                if j + 1 == k.points.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 == report.kernels.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_core::Analysis;

    fn job_from_src(src: &str, params: Vec<i64>, stmt: &str) -> TightnessJob {
        let kernel = iolb_ir::parse_kernel(src).expect("parse");
        let observe = iolb_core::report::observation_sizes(&params);
        let analysis = Analysis::run(&kernel.program, &observe).expect("analysis");
        let sid = kernel.program.stmt_id(stmt).expect("stmt");
        let classical = analysis.try_classical_bound(sid);
        let hourglass = analysis.detect_hourglass(sid).map(|pat| {
            iolb_core::report::derive_with_split(&kernel.program, &pat, None)
                .expect("derive")
                .0
        });
        let env: Vec<(Var, i128)> = kernel
            .program
            .params
            .iter()
            .zip(params.iter())
            .map(|(n, &v)| (Var::new(n), v as i128))
            .collect();
        TightnessJob {
            name: kernel.program.name.clone(),
            program: kernel.program,
            params,
            env,
            classical,
            hourglass,
            schedule: kernel.schedule,
            s_offsets: vec![0, 8, 64],
        }
    }

    const GEMM_TILED: &str = "
kernel gemm_mini(M, N, K) {
  array A[M][K];
  array B[K][N];
  array C[M][N];
  analyze SU;
  schedule { tile i; tile j; tile k; }

  for i in 0..M {
    for j in 0..N {
      Cz: C[i][j] = op();
    }
  }
  for i in 0..M {
    for j in 0..N {
      for k in 0..K {
        SU: C[i][j] = op(A[i][k], B[k][j], C[i][j]);
      }
    }
  }
}
";

    #[test]
    fn tuner_beats_or_matches_program_order_and_stays_sound() {
        let job = job_from_src(GEMM_TILED, vec![12, 12, 12], "SU");
        let report = run_tightness(vec![job]).expect("tightness");
        assert_eq!(report.kernels.len(), 1);
        let k = &report.kernels[0];
        assert_eq!(k.points.len(), 3);
        for t in &k.points {
            // Upper bound is a real execution's I/O: it must sit at or
            // above every derived lower bound (soundness), and the tuner
            // never loses to its own baseline nor to the LRU view of the
            // winning trace.
            assert!(t.upper_loads as f64 + 1e-9 >= t.lb_classical, "S={}", t.s);
            assert!(t.upper_loads as f64 + 1e-9 >= t.lb_hourglass, "S={}", t.s);
            assert!(t.upper_loads <= t.program_order_loads, "S={}", t.s);
            assert!(t.trace_lru_loads >= t.upper_loads, "S={}", t.s);
            assert!(
                t.ratio().is_finite() && t.ratio() >= 1.0 - 1e-9,
                "S={}",
                t.s
            );
        }
        // At a generous S the tuner must find a genuinely better blocked
        // schedule than straight program order.
        let last = k.points.last().unwrap();
        assert!(
            last.upper_schedule.starts_with("tile"),
            "expected a tiled winner at S={}, got {}",
            last.s,
            last.upper_schedule
        );
        assert!(last.upper_loads < last.program_order_loads);
    }

    #[test]
    fn kernels_without_schedule_report_program_order() {
        let src = "
kernel plain(N) {
  array A[N];
  scalar acc;
  analyze S;
  for i in 0..N {
    S: acc = op(acc, A[i]);
  }
}
";
        let job = job_from_src(src, vec![32], "S");
        let report = run_tightness(vec![job]).expect("tightness");
        let k = &report.kernels[0];
        for t in &k.points {
            assert_eq!(t.upper_schedule, "program-order");
            assert_eq!(t.upper_loads, t.program_order_loads);
            // The input floor keeps the ratio finite even without bounds.
            assert!(t.lower_bound() >= 32.0);
            assert!(t.ratio().is_finite());
        }
        let json = tightness_report_json(&report, true);
        assert!(json.contains("\"schema\": \"hourglass-iolb/tightness/v3\""));
        assert!(json.contains("\"degradation\": ["));
        assert!(json.contains("\"failures\": ["));
        assert!(json.contains("\"level\": \"full\""));
        assert!(json.contains("\"threads\": 0"), "volatile meta redacted");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    /// A loop-carried dependence across the temporal loop: hoisting the
    /// spatial tile outward (which the auto-tuner will try) reorders
    /// instances illegally. The version check must disqualify every such
    /// candidate — silently, cheaply, and *before* it can win on loads
    /// (the illegal hoist would look great: each cell stays resident).
    #[test]
    fn illegal_interchange_candidates_are_disqualified() {
        let src = "
kernel carried(T, N) {
  array A[N];
  analyze S;
  schedule { tile i; }
  for t in 0..T {
    for i in 1..N {
      S: A[i] = op(A[i], A[i - 1]);
    }
  }
}
";
        let job = job_from_src(src, vec![6, 24], "S");
        let report = run_tightness(vec![job]).expect("tightness");
        let k = &report.kernels[0];
        assert!(!k.points.is_empty());
        for t in &k.points {
            assert_eq!(
                t.upper_schedule, "program-order",
                "S={}: an illegal hoist must never win",
                t.s
            );
            assert_eq!(t.upper_loads, t.program_order_loads);
        }
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let jobs = vec![
            job_from_src(GEMM_TILED, vec![8, 8, 8], "SU"),
            job_from_src(
                "kernel aaa(N) { array A[N]; analyze S; for i in 0..N { S: A[i] = op(A[i]); } }",
                vec![16],
                "S",
            ),
        ];
        let report = run_tightness(jobs).expect("tightness");
        assert_eq!(report.kernels[0].kernel, "aaa", "sorted by name");
        let a = tightness_report_json(&report, true);
        let jobs = vec![
            job_from_src(GEMM_TILED, vec![8, 8, 8], "SU"),
            job_from_src(
                "kernel aaa(N) { array A[N]; analyze S; for i in 0..N { S: A[i] = op(A[i]); } }",
                vec![16],
                "S",
            ),
        ];
        let b = tightness_report_json(&run_tightness(jobs).expect("tightness"), true);
        assert_eq!(a, b, "same inputs produce byte-identical redacted JSON");
    }
}
