//! Upper-bound schedule engine: measured I/O of concrete blocked
//! executions vs the derived lower bounds.
//!
//! The paper's tightness claim is that the hourglass-raised bounds *match*
//! the data movement of known blocked/tiled implementations. This module
//! closes that loop empirically, per kernel and per fast-memory size `S`:
//!
//! 1. the kernel's exact CDAG is built once from the *untiled* program
//!    (node ids in program order — the canonical instance identity);
//! 2. every candidate schedule — program order plus tile-size assignments
//!    for the kernel's `schedule { tile … }` directives, swept by an
//!    auto-tuner — is lowered to a permutation of the compute nodes via
//!    [`tile_program`] + instance enumeration;
//! 3. each permutation is played through the red-white pebble engine with
//!    the MIN spill policy; the play validates the permutation (topological
//!    order, exactly-once coverage) and its loads are the *achieved* I/O
//!    Q(S) of that blocked execution — a legal upper-bound witness;
//! 4. the best schedule per `S` is kept, its access trace is additionally
//!    driven through the element-granularity cache simulators
//!    (`LruSim`/`BeladySim`), and its final store is cross-checked against
//!    the untiled interpreter (an illegal interchange can never win
//!    silently: the play rejects non-topological orders and the store
//!    comparison rejects changed numerics).
//!
//! The outcome per `(kernel, S)` is a [`TightnessPoint`]: lower bound,
//! best measured upper bound, and their ratio — emitted as
//! `BENCH_tightness.json` and gated in CI against regressions.

use iolb_cdag::{build_cdag, NodeId, PebbleGame, SpillPolicy};
use iolb_core::report::TightnessPoint;
use iolb_core::{ClassicalBound, HourglassBound};
use iolb_ir::parse::TileDirective;
use iolb_ir::schedule::{tile_program, TileSpec};
use iolb_ir::{for_each_instance, Interpreter, Program, Store, TraceSink};
use iolb_memsim::{BeladySim, LruSim};
use iolb_symbolic::Var;
use rayon::prelude::*;
use std::collections::HashMap;
use std::time::Instant;

/// One kernel's tightness measurement inputs.
pub struct TightnessJob {
    /// Display name.
    pub name: String,
    /// The untiled program (instance identity and lower bounds live here).
    pub program: Program,
    /// Concrete parameter values.
    pub params: Vec<i64>,
    /// Symbolic evaluation environment for the bounds (parameters plus any
    /// split-variable binding).
    pub env: Vec<(Var, i128)>,
    /// Classical K-partition bound, when derivable.
    pub classical: Option<ClassicalBound>,
    /// Hourglass bound, when the kernel has the pattern.
    pub hourglass: Option<HourglassBound>,
    /// `schedule { tile … }` directives from the kernel file (empty means
    /// only program order is measured).
    pub schedule: Vec<TileDirective>,
    /// Offsets added to the minimum feasible S.
    pub s_offsets: Vec<usize>,
}

/// Tightness outcome of one kernel.
#[derive(Debug, Clone)]
pub struct KernelTightness {
    /// Kernel display name.
    pub kernel: String,
    /// Concrete parameter values.
    pub params: Vec<i64>,
    /// One point per swept S, ascending.
    pub points: Vec<TightnessPoint>,
}

/// Full tightness report across a kernel suite.
#[derive(Debug, Clone)]
pub struct TightnessReport {
    /// Per-kernel outcomes, sorted by kernel name.
    pub kernels: Vec<KernelTightness>,
    /// End-to-end wall time (milliseconds) — volatile, excluded from the
    /// comparable JSON sections.
    pub total_wall_ms: f64,
    /// Worker threads used — volatile, excluded likewise.
    pub threads: usize,
}

/// One candidate schedule of the auto-tuner.
struct Candidate {
    /// Human-readable description (`"program-order"`, `"tile i=8 j=8"`).
    desc: String,
    /// Tile specs; `None` is the untransformed program order.
    tiles: Option<Vec<TileSpec>>,
}

/// Runs the tightness measurement for every job concurrently.
///
/// # Errors
/// Propagates tiling failures, schedule-mapping failures (an enumerated
/// instance missing from the CDAG), and numeric cross-check mismatches.
pub fn run_tightness(jobs: Vec<TightnessJob>) -> Result<TightnessReport, String> {
    let t_total = Instant::now();
    let mut kernels = jobs
        .into_par_iter()
        .map(measure_kernel)
        .collect::<Vec<Result<KernelTightness, String>>>()
        .into_iter()
        .collect::<Result<Vec<KernelTightness>, String>>()?;
    kernels.sort_by(|a, b| a.kernel.cmp(&b.kernel));
    Ok(TightnessReport {
        kernels,
        total_wall_ms: t_total.elapsed().as_secs_f64() * 1e3,
        threads: rayon::current_num_threads(),
    })
}

/// The auto-tuner's tile-size candidates for one unsized directive: powers
/// of two (plus 1, the pure-interchange driver), capped near the largest
/// concrete parameter so degenerate single-tile candidates are skipped.
fn size_candidates(params: &[i64], n_unsized: usize) -> Vec<i64> {
    let cap = params.iter().copied().max().unwrap_or(1);
    let base: &[i64] = if n_unsized >= 3 {
        &[1, 2, 4, 8, 16]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    base.iter().copied().filter(|&c| c <= cap).collect()
}

/// Expands the schedule directives into the candidate list (program order
/// first, then the cartesian product of per-loop size choices).
fn candidates(schedule: &[TileDirective], params: &[i64]) -> Vec<Candidate> {
    let mut out = vec![Candidate {
        desc: "program-order".to_string(),
        tiles: None,
    }];
    if schedule.is_empty() {
        return out;
    }
    let n_unsized = schedule.iter().filter(|d| d.size.is_none()).count();
    let auto = size_candidates(params, n_unsized);
    let per_loop: Vec<(&str, Vec<i64>)> = schedule
        .iter()
        .map(|d| {
            let sizes = match d.size {
                Some(s) => vec![s],
                None => auto.clone(),
            };
            (d.loop_name.as_str(), sizes)
        })
        .collect();
    let mut chosen: Vec<i64> = Vec::with_capacity(per_loop.len());
    expand(&per_loop, &mut chosen, &mut out);
    out
}

fn expand(per_loop: &[(&str, Vec<i64>)], chosen: &mut Vec<i64>, out: &mut Vec<Candidate>) {
    if chosen.len() == per_loop.len() {
        let desc = per_loop
            .iter()
            .zip(chosen.iter())
            .map(|((n, _), s)| format!("{n}={s}"))
            .collect::<Vec<_>>()
            .join(" ");
        let tiles = per_loop
            .iter()
            .zip(chosen.iter())
            .map(|((n, _), &s)| TileSpec::new(n, s))
            .collect();
        out.push(Candidate {
            desc: format!("tile {desc}"),
            tiles: Some(tiles),
        });
        return;
    }
    let sizes = per_loop[chosen.len()].1.clone();
    for s in sizes {
        chosen.push(s);
        expand(per_loop, chosen, out);
        chosen.pop();
    }
}

/// Lowers a program's instance enumeration to a compute-node permutation
/// of `cdag` (built from the untiled twin).
fn schedule_order(
    program: &Program,
    params: &[i64],
    node_of: &HashMap<(u32, Vec<i32>), u32>,
) -> Result<Vec<NodeId>, String> {
    let mut order = Vec::with_capacity(node_of.len());
    let mut missing = None;
    for_each_instance(program, params, |stmt, dims| {
        let s = program.stmt(stmt);
        let iv: Vec<i32> = s.dims.iter().map(|d| dims[d.0 as usize] as i32).collect();
        match node_of.get(&(stmt.0, iv)) {
            Some(&n) => order.push(NodeId(n)),
            None => missing = Some(s.name.clone()),
        }
    });
    match missing {
        Some(stmt) => Err(format!(
            "tiled enumeration produced an instance of {stmt} unknown to the untiled CDAG"
        )),
        None => Ok(order),
    }
}

fn measure_kernel(job: TightnessJob) -> Result<KernelTightness, String> {
    let cdag = build_cdag(&job.program, &job.params);
    let min_s = cdag.max_in_degree() + 1;
    let s_values: Vec<usize> = job.s_offsets.iter().map(|&off| min_s + off).collect();

    // Instance → compute-node map: compute ids follow program order, which
    // is exactly the untiled enumeration order.
    let mut node_of: HashMap<(u32, Vec<i32>), u32> = HashMap::with_capacity(cdag.num_computes());
    {
        let mut next = cdag.num_inputs() as u32;
        for_each_instance(&job.program, &job.params, |stmt, dims| {
            let s = job.program.stmt(stmt);
            let iv: Vec<i32> = s.dims.iter().map(|d| dims[d.0 as usize] as i32).collect();
            node_of.insert((stmt.0, iv), next);
            next += 1;
        });
    }

    // Measure every candidate schedule at every S (the order is built once
    // per candidate; illegal interchanges fail the play and are skipped).
    let cands = candidates(&job.schedule, &job.params);
    // Per S: (loads, candidate index). Program order (index 0) is always
    // legal, so every cell ends up populated.
    let mut best: Vec<Option<(u64, usize)>> = vec![None; s_values.len()];
    let mut program_order_loads: Vec<u64> = vec![0; s_values.len()];
    let mut tiled_programs: HashMap<usize, Program> = HashMap::new();
    for (ci, cand) in cands.iter().enumerate() {
        let order = match &cand.tiles {
            None => cdag.compute_nodes().collect::<Vec<NodeId>>(),
            Some(tiles) => {
                let tiled =
                    tile_program(&job.program, tiles).map_err(|e| format!("{}: {e}", job.name))?;
                let order = schedule_order(&tiled, &job.params, &node_of)
                    .map_err(|e| format!("{}: {e}", job.name))?;
                tiled_programs.insert(ci, tiled);
                order
            }
        };
        for (si, &s) in s_values.iter().enumerate() {
            let game = PebbleGame::new(&cdag, s);
            // A blocked order may violate dependences (illegal interchange)
            // or exceed the budget; both simply disqualify this cell.
            let Ok(play) = game.play(&order, SpillPolicy::MinNextUse) else {
                continue;
            };
            if ci == 0 {
                program_order_loads[si] = play.loads;
            }
            if best[si].is_none_or(|(l, _)| play.loads < l) {
                best[si] = Some((play.loads, ci));
            }
        }
    }

    // Cross-check every winning tiled schedule against the untiled
    // interpreter: identical final stores, bit for bit.
    let winning: Vec<usize> = {
        let mut w: Vec<usize> = best.iter().flatten().map(|&(_, ci)| ci).collect();
        w.sort_unstable();
        w.dedup();
        w
    };
    let init = |a: iolb_ir::ArrayId, f: usize| 1.0 + a.0 as f64 + f as f64 * 0.25;
    let base_store = Interpreter::new(&job.program, &job.params).run_numeric(init);
    for &ci in &winning {
        let Some(tiled) = tiled_programs.get(&ci) else {
            continue; // program order needs no cross-check
        };
        let got = Interpreter::new(tiled, &job.params).run_numeric(init);
        if got.data != base_store.data {
            return Err(format!(
                "{}: schedule `{}` changed the numeric result — illegal interchange",
                job.name, cands[ci].desc
            ));
        }
    }

    // Element-granularity cache-simulator view of each winning schedule's
    // trace (informative columns; the in-place model differs from the
    // no-recomputation pebble model). One materialized trace per winning
    // candidate, shared by every S it wins.
    let mut traces: HashMap<usize, TraceSink> = HashMap::new();
    for &ci in &winning {
        let program = tiled_programs.get(&ci).unwrap_or(&job.program);
        let mut sink = TraceSink::new(program, &job.params);
        let mut store = Store::zeros(program, &job.params);
        Interpreter::new(program, &job.params).run(&mut store, &mut sink);
        traces.insert(ci, sink);
    }

    let mut points = Vec::with_capacity(s_values.len());
    for (si, &s) in s_values.iter().enumerate() {
        let (upper_loads, ci) = best[si].ok_or_else(|| {
            format!(
                "{}: no legal schedule at S={s} (program order must always play)",
                job.name
            )
        })?;
        let packed = &traces[&ci].packed;
        let trace_min = BeladySim::new(s).run_packed(packed);
        let mut lru = LruSim::new(s);
        lru.run_packed(packed);
        let trace_lru = lru.finish();
        points.push(TightnessPoint {
            s,
            lb_classical: job
                .classical
                .as_ref()
                .map(|b| b.eval_floor(&job.env, s as i128))
                .unwrap_or(0.0),
            lb_hourglass: job
                .hourglass
                .as_ref()
                .map(|b| b.eval_floor(&job.env, s as i128))
                .unwrap_or(0.0),
            lb_inputs: cdag.num_inputs() as f64,
            upper_loads,
            upper_schedule: cands[ci].desc.clone(),
            program_order_loads: program_order_loads[si],
            trace_min_loads: trace_min.loads,
            trace_lru_loads: trace_lru.loads,
        });
    }
    Ok(KernelTightness {
        kernel: job.name,
        params: job.params,
        points,
    })
}

/// Renders the tightness report as an aligned table.
pub fn render_tightness_table(report: &TightnessReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>12} {:>6} {:>12} {:>12} {:>12} {:>7} {:>8}  {:<22}\n",
        "kernel", "size", "S", "LB", "upper", "prog-order", "ratio", "hg-rat", "best schedule"
    ));
    for k in &report.kernels {
        for t in &k.points {
            out.push_str(&format!(
                "{:<14} {:>12} {:>6} {:>12.0} {:>12} {:>12} {:>7.2} {:>8}  {:<22}\n",
                k.kernel,
                format!("{:?}", k.params),
                t.s,
                t.lower_bound(),
                t.upper_loads,
                t.program_order_loads,
                t.ratio(),
                t.hourglass_ratio()
                    .map(|r| format!("{r:.2}"))
                    .unwrap_or_else(|| "-".to_string()),
                t.upper_schedule,
            ));
        }
    }
    out.push_str(&format!(
        "{} kernels on {} threads in {:.1} ms\n",
        report.kernels.len(),
        report.threads,
        report.total_wall_ms
    ));
    out
}

/// Serializes the tightness report as deterministic JSON: kernels sorted
/// by name, points by S, fixed key order, volatile data (threads, wall
/// times) confined to the `meta` object. `redact_volatile` zeroes `meta`
/// for byte-stable golden snapshots.
pub fn tightness_report_json(report: &TightnessReport, redact_volatile: bool) -> String {
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.4}")
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"hourglass-iolb/tightness/v1\",\n");
    let (threads, wall) = if redact_volatile {
        (0, 0.0)
    } else {
        (report.threads, report.total_wall_ms)
    };
    out.push_str(&format!(
        "  \"meta\": {{\"threads\": {threads}, \"total_wall_ms\": {}}},\n",
        num(wall)
    ));
    out.push_str("  \"kernels\": [\n");
    for (i, k) in report.kernels.iter().enumerate() {
        let params: Vec<String> = k.params.iter().map(|p| p.to_string()).collect();
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"params\": [{}], \"points\": [\n",
            k.kernel,
            params.join(", ")
        ));
        for (j, t) in k.points.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"s\": {}, \"lb_classical\": {}, \"lb_hourglass\": {}, \"lb_inputs\": {}, \"lower_bound\": {}, \"upper_loads\": {}, \"upper_schedule\": \"{}\", \"program_order_loads\": {}, \"trace_min_loads\": {}, \"trace_lru_loads\": {}, \"ratio\": {}, \"hourglass_ratio\": {}}}{}\n",
                t.s,
                num(t.lb_classical),
                num(t.lb_hourglass),
                num(t.lb_inputs),
                num(t.lower_bound()),
                t.upper_loads,
                t.upper_schedule,
                t.program_order_loads,
                t.trace_min_loads,
                t.trace_lru_loads,
                num(t.ratio()),
                t.hourglass_ratio()
                    .map(num)
                    .unwrap_or_else(|| "null".to_string()),
                if j + 1 == k.points.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 == report.kernels.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_core::Analysis;

    fn job_from_src(src: &str, params: Vec<i64>, stmt: &str) -> TightnessJob {
        let kernel = iolb_ir::parse_kernel(src).expect("parse");
        let observe = iolb_core::report::observation_sizes(&params);
        let analysis = Analysis::run(&kernel.program, &observe).expect("analysis");
        let sid = kernel.program.stmt_id(stmt).expect("stmt");
        let classical = analysis.try_classical_bound(sid);
        let hourglass = analysis.detect_hourglass(sid).map(|pat| {
            iolb_core::report::derive_with_split(&kernel.program, &pat, None)
                .expect("derive")
                .0
        });
        let env: Vec<(Var, i128)> = kernel
            .program
            .params
            .iter()
            .zip(params.iter())
            .map(|(n, &v)| (Var::new(n), v as i128))
            .collect();
        TightnessJob {
            name: kernel.program.name.clone(),
            program: kernel.program,
            params,
            env,
            classical,
            hourglass,
            schedule: kernel.schedule,
            s_offsets: vec![0, 8, 64],
        }
    }

    const GEMM_TILED: &str = "
kernel gemm_mini(M, N, K) {
  array A[M][K];
  array B[K][N];
  array C[M][N];
  analyze SU;
  schedule { tile i; tile j; tile k; }

  for i in 0..M {
    for j in 0..N {
      Cz: C[i][j] = op();
    }
  }
  for i in 0..M {
    for j in 0..N {
      for k in 0..K {
        SU: C[i][j] = op(A[i][k], B[k][j], C[i][j]);
      }
    }
  }
}
";

    #[test]
    fn tuner_beats_or_matches_program_order_and_stays_sound() {
        let job = job_from_src(GEMM_TILED, vec![12, 12, 12], "SU");
        let report = run_tightness(vec![job]).expect("tightness");
        assert_eq!(report.kernels.len(), 1);
        let k = &report.kernels[0];
        assert_eq!(k.points.len(), 3);
        for t in &k.points {
            // Upper bound is a legal play: it must sit at or above every
            // derived lower bound (soundness), and the tuner never loses to
            // its own baseline.
            assert!(t.upper_loads as f64 + 1e-9 >= t.lb_classical, "S={}", t.s);
            assert!(t.upper_loads as f64 + 1e-9 >= t.lb_hourglass, "S={}", t.s);
            assert!(t.upper_loads <= t.program_order_loads, "S={}", t.s);
            assert!(
                t.ratio().is_finite() && t.ratio() >= 1.0 - 1e-9,
                "S={}",
                t.s
            );
        }
        // At a generous S the tuner must find a genuinely better blocked
        // schedule than straight program order.
        let last = k.points.last().unwrap();
        assert!(
            last.upper_schedule.starts_with("tile"),
            "expected a tiled winner at S={}, got {}",
            last.s,
            last.upper_schedule
        );
        assert!(last.upper_loads < last.program_order_loads);
    }

    #[test]
    fn kernels_without_schedule_report_program_order() {
        let src = "
kernel plain(N) {
  array A[N];
  scalar acc;
  analyze S;
  for i in 0..N {
    S: acc = op(acc, A[i]);
  }
}
";
        let job = job_from_src(src, vec![32], "S");
        let report = run_tightness(vec![job]).expect("tightness");
        let k = &report.kernels[0];
        for t in &k.points {
            assert_eq!(t.upper_schedule, "program-order");
            assert_eq!(t.upper_loads, t.program_order_loads);
            // The input floor keeps the ratio finite even without bounds.
            assert!(t.lower_bound() >= 32.0);
            assert!(t.ratio().is_finite());
        }
        let json = tightness_report_json(&report, true);
        assert!(json.contains("\"schema\": \"hourglass-iolb/tightness/v1\""));
        assert!(json.contains("\"threads\": 0"), "volatile meta redacted");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let jobs = vec![
            job_from_src(GEMM_TILED, vec![8, 8, 8], "SU"),
            job_from_src(
                "kernel aaa(N) { array A[N]; analyze S; for i in 0..N { S: A[i] = op(A[i]); } }",
                vec![16],
                "S",
            ),
        ];
        let report = run_tightness(jobs).expect("tightness");
        assert_eq!(report.kernels[0].kernel, "aaa", "sorted by name");
        let a = tightness_report_json(&report, true);
        let jobs = vec![
            job_from_src(GEMM_TILED, vec![8, 8, 8], "SU"),
            job_from_src(
                "kernel aaa(N) { array A[N]; analyze S; for i in 0..N { S: A[i] = op(A[i]); } }",
                vec![16],
                "S",
            ),
        ];
        let b = tightness_report_json(&run_tightness(jobs).expect("tightness"), true);
        assert_eq!(a, b, "same inputs produce byte-identical redacted JSON");
    }
}
