//! Curve-engine scaling series: synthetic GEMM-class traces in closed
//! form, priced by the streaming sharded engines without ever
//! materializing the trace.
//!
//! The sweep's shipped kernels top out around 10⁶ trace events — far too
//! small to exercise the out-of-core machinery. This module provides the
//! missing scale axis: [`GemmTrace`] is the untiled `C += A·B` element
//! trace (the exact layout the `stack_distance` criterion bench uses,
//! pinned by test at n = 24) as a *pure function* of position, so a
//! 10⁸-event trace costs nothing to "generate" and the whole measurement
//! is curve-engine time. [`measure_scaling_series`] runs the
//! 10⁶ → 10⁷ → 10⁸ series the pebble validation binary records in
//! `BENCH_pebble.json` meta and `xtask gate` watches for wall-time
//! regressions.

use crate::sweep::ScalingPoint;
use iolb_cdag::SpillPolicy;
use iolb_govern::CancelToken;
use iolb_memsim::{ChunkedTrace, ShardedCurveEngine};
use std::time::Instant;

/// The untiled GEMM element-access trace (`C` initialized, then
/// `c[i,j] += a[i,k]·b[k,j]` in `i, j, k` program order) as a closed-form
/// position → event map: `n²` initializing writes of `C`, then four
/// events per `(i, j, k)` triple — read `a[i,k]`, read `b[k,j]`, read
/// `c[i,j]`, write `c[i,j]`. Total length `n² + 4n³`.
#[derive(Debug, Clone, Copy)]
pub struct GemmTrace {
    n: u64,
}

impl GemmTrace {
    /// Trace of the `n × n × n` product.
    pub fn new(n: u64) -> GemmTrace {
        assert!(n >= 1, "GEMM size must be positive");
        GemmTrace { n }
    }

    /// Smallest `n` whose trace reaches `target` events.
    pub fn with_at_least_accesses(target: u64) -> GemmTrace {
        let mut n = 1u64;
        while n * n + 4 * n * n * n < target {
            n += 1;
        }
        GemmTrace::new(n)
    }

    /// Problem size `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The packed event at `pos` (array bases: `a` at 0, `b` at `n²`,
    /// `c` at `2n²`).
    #[inline]
    fn event(&self, pos: u64) -> u64 {
        let n = self.n;
        let (b0, c0) = (n * n, 2 * n * n);
        if pos < n * n {
            return ((c0 + pos) << 1) | 1;
        }
        let q = pos - n * n;
        let (ijk, r) = (q / 4, q % 4);
        let k = ijk % n;
        let j = (ijk / n) % n;
        let i = ijk / (n * n);
        match r {
            0 => (i * n + k) << 1,
            1 => (b0 + k * n + j) << 1,
            2 => (c0 + i * n + j) << 1,
            _ => ((c0 + i * n + j) << 1) | 1,
        }
    }
}

impl ChunkedTrace for GemmTrace {
    fn len(&self) -> u64 {
        self.n * self.n + 4 * self.n * self.n * self.n
    }

    fn fill(&self, start: u64, buf: &mut [u64]) {
        assert!(
            start + buf.len() as u64 <= self.len(),
            "fill window exceeds trace length {}",
            self.len()
        );
        for (i, slot) in buf.iter_mut().enumerate() {
            *slot = self.event(start + i as u64);
        }
    }
}

/// The default scaling targets (trace events).
pub const SCALING_TARGETS: [u64; 3] = [1_000_000, 10_000_000, 100_000_000];

/// Capacity horizon of the scaling passes — matches the sweep's largest
/// grid offset, so the OPT stack depth is the one the harness actually
/// runs with.
pub const SCALING_HORIZON: usize = 512;

/// Times one streaming pass per `(target, policy)` over the closed-form
/// GEMM trace. Release-build territory (the largest point streams 10⁸
/// events); the pebble validation binary attaches the result to its
/// report meta.
pub fn measure_scaling_series() -> Vec<ScalingPoint> {
    scaling_series(&SCALING_TARGETS)
}

/// [`measure_scaling_series`] over explicit targets (tests use small ones).
pub fn scaling_series(targets: &[u64]) -> Vec<ScalingPoint> {
    let token = CancelToken::unlimited();
    let engine = ShardedCurveEngine::new();
    let mut out = Vec::with_capacity(targets.len() * 2);
    for &target in targets {
        let trace = GemmTrace::with_at_least_accesses(target);
        let accesses = trace.len();
        for policy in [SpillPolicy::Lru, SpillPolicy::MinNextUse] {
            let t = Instant::now();
            let curve = match policy {
                SpillPolicy::Lru => engine.try_lru(&trace, SCALING_HORIZON, &token),
                SpillPolicy::MinNextUse => engine.try_opt(&trace, SCALING_HORIZON, &token),
            }
            .expect("ungoverned scaling pass");
            assert_eq!(curve.accesses(), accesses);
            out.push(ScalingPoint {
                accesses,
                policy,
                wall_ms: t.elapsed().as_secs_f64() * 1e3,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_memsim::CurveEngine;

    /// The nested-loop construction the `stack_distance` criterion bench
    /// builds (its `gemm_trace()` at n = 24, reproduced here verbatim).
    fn looped_gemm(n: usize) -> Vec<u64> {
        let (a0, b0, c0) = (0, n * n, 2 * n * n);
        let mut t = Vec::with_capacity(4 * n * n * n + n * n);
        for i in 0..n {
            for j in 0..n {
                t.push(((c0 + i * n + j) as u64) << 1 | 1);
            }
        }
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    t.push(((a0 + i * n + k) as u64) << 1);
                    t.push(((b0 + k * n + j) as u64) << 1);
                    t.push(((c0 + i * n + j) as u64) << 1);
                    t.push(((c0 + i * n + j) as u64) << 1 | 1);
                }
            }
        }
        t
    }

    #[test]
    fn closed_form_matches_the_bench_loop_layout() {
        for n in [1u64, 2, 3, 7, 24] {
            let want = looped_gemm(n as usize);
            let trace = GemmTrace::new(n);
            assert_eq!(trace.len(), want.len() as u64, "n={n}");
            let mut got = vec![0u64; want.len()];
            trace.fill(0, &mut got);
            assert_eq!(got, want, "n={n}");
            // Windowed fills agree with the bulk fill.
            let start = (want.len() / 3) as u64;
            let mut buf = vec![0u64; 7.min(want.len() - start as usize)];
            trace.fill(start, &mut buf);
            assert_eq!(buf, want[start as usize..start as usize + buf.len()]);
        }
    }

    #[test]
    fn streaming_curves_on_the_symbolic_trace_match_materialized() {
        let trace = GemmTrace::new(6);
        let mut packed = vec![0u64; trace.len() as usize];
        trace.fill(0, &mut packed);
        let token = CancelToken::unlimited();
        let engine = ShardedCurveEngine::with_chunk_len(97);
        let mut reference = CurveEngine::new();
        let horizon = 64;
        assert_eq!(
            engine.try_lru(&trace, horizon, &token).unwrap(),
            reference.lru_packed(&packed, horizon)
        );
        assert_eq!(
            engine.try_opt(&trace, horizon, &token).unwrap(),
            reference.opt_packed(&packed, horizon)
        );
    }

    #[test]
    fn scaling_series_covers_every_target_and_policy() {
        let points = scaling_series(&[500, 4_000]);
        assert_eq!(points.len(), 4);
        assert!(points[0].accesses >= 500 && points[2].accesses >= 4_000);
        assert_eq!(points[0].policy, SpillPolicy::Lru);
        assert_eq!(points[1].policy, SpillPolicy::MinNextUse);
        // MIN at the same size reuses the same trace length.
        assert_eq!(points[2].accesses, points[3].accesses);
    }

    #[test]
    fn target_sizing_is_minimal() {
        let t = GemmTrace::with_at_least_accesses(1_000_000);
        assert!(t.len() >= 1_000_000);
        let smaller = GemmTrace::new(t.n() - 1);
        assert!(smaller.len() < 1_000_000);
    }
}
