//! Benchmark/experiment harness: regenerates every table and figure of the
//! paper's evaluation (see DESIGN.md §5 for the experiment index).
//!
//! Binaries (each prints a table to stdout):
//!
//! * `fig4` — Figure 4: asymptotic old vs new bounds per kernel,
//! * `fig5` — Figure 5: full parametric bounds, paper vs engine parity,
//! * `theorems` — Theorems 5–9 instantiated on parameter grids,
//! * `tiled_mgs` — Appendix A.1: measured tiled-MGS I/O vs `½M²N²/S`,
//! * `tiled_a2v` — Appendix A.2: measured tiled-A2V I/O vs the model,
//! * `pebble_validation` — bounds vs pebble-game plays on exact CDAGs,
//! * `sandwich` — lower bound ≤ simulated tiled I/O ≤ O(upper model),
//!   including the S ≈ M regime crossover of §5.1.
//!
//! Criterion benches under `benches/` time the same artifacts.

pub mod scale;
pub mod sweep;
pub mod tightness;

use iolb_core::report::{analyze_kernel, KernelReport};
use iolb_ir::Program;

/// The five paper kernels with their hourglass statement names.
pub fn paper_kernels() -> Vec<(Program, &'static str, &'static str)> {
    vec![
        (iolb_kernels::mgs::program(), "MGS", "SU"),
        (iolb_kernels::householder::a2v_program(), "QR HH A2V", "SU"),
        (iolb_kernels::householder::v2q_program(), "QR HH V2Q", "SU"),
        (iolb_kernels::gebd2::program(), "GEBD2", "SU"),
        (iolb_kernels::gehd2::program(), "GEHD2", "SU1"),
    ]
}

/// Runs the derivation engine on all paper kernels.
///
/// # Panics
/// Panics when a derivation fails (the tables cannot be produced).
pub fn derive_all() -> Vec<KernelReport> {
    paper_kernels()
        .iter()
        .map(|(p, name, stmt)| {
            analyze_kernel(p, name, stmt)
                .unwrap_or_else(|e| panic!("derivation failed for {name}: {e}"))
        })
        .collect()
}

/// Measured-vs-model row for the Appendix A experiments.
#[derive(Debug, Clone)]
pub struct TiledIoRow {
    /// Fast-memory size.
    pub s: usize,
    /// Chosen block size `B = ⌊S/M⌋ − 1`.
    pub block: usize,
    /// Measured loads under LRU.
    pub lru_loads: u64,
    /// Measured loads under Belady-MIN.
    pub min_loads: u64,
    /// Appendix read model at this block size.
    pub model: f64,
    /// Headline `½M²N²/S`-style value.
    pub headline: f64,
    /// Hourglass lower bound at these parameters.
    pub lower_bound: f64,
}

/// Sweeps the tiled MGS ordering (Fig. 8) over `S`, measuring I/O in the
/// two-level simulator and comparing against Appendix A.1's model and the
/// Theorem 5 lower bound.
pub fn sweep_tiled_mgs(m: usize, n: usize, s_values: &[usize]) -> Vec<TiledIoRow> {
    use iolb_symbolic::Var;
    let program = iolb_kernels::mgs::tiled_program();
    let a = iolb_kernels::Matrix::random(m, n, 0xA11CE);
    let report =
        analyze_kernel(&iolb_kernels::mgs::program(), "MGS", "SU").expect("MGS derivation");
    s_values
        .iter()
        .map(|&s| {
            let block = iolb_kernels::mgs::a1_block_size(m, s);
            let params = vec![m as i64, n as i64, block as i64];
            let init = |a0: &iolb_kernels::Matrix| {
                let d = a0.data.clone();
                move |arr: iolb_ir::ArrayId, f: usize| if arr.0 == 0 { d[f] } else { 0.0 }
            };
            let lru = iolb_kernels::sinks::measure_lru_io(&program, &params, s, init(&a));
            let min = iolb_kernels::sinks::measure_min_io(&program, &params, s, init(&a));
            let env = [
                (Var::new("M"), m as i128),
                (Var::new("N"), n as i128),
                (iolb_core::s_var(), s as i128),
            ];
            TiledIoRow {
                s,
                block,
                lru_loads: lru.loads,
                min_loads: min.loads,
                model: iolb_kernels::mgs::a1_reads_model(m, n, block),
                headline: iolb_kernels::mgs::a1_io_headline(m, n, s),
                lower_bound: report.new.combined.eval_ints_f64(&env),
            }
        })
        .collect()
}

/// Appendix A.2 sweep for the tiled A2V ordering (Fig. 9).
pub fn sweep_tiled_a2v(m: usize, n: usize, s_values: &[usize]) -> Vec<TiledIoRow> {
    use iolb_symbolic::Var;
    let program = iolb_kernels::householder::a2v_tiled_program();
    let a = iolb_kernels::Matrix::random(m, n, 0xB0B);
    let report = analyze_kernel(&iolb_kernels::householder::a2v_program(), "QR HH A2V", "SU")
        .expect("A2V derivation");
    s_values
        .iter()
        .map(|&s| {
            let block = iolb_kernels::householder::a2_block_size(m, s);
            let params = vec![m as i64, n as i64, block as i64];
            let init = |a0: &iolb_kernels::Matrix| {
                let d = a0.data.clone();
                move |arr: iolb_ir::ArrayId, f: usize| if arr.0 == 0 { d[f] } else { 0.0 }
            };
            let lru = iolb_kernels::sinks::measure_lru_io(&program, &params, s, init(&a));
            let min = iolb_kernels::sinks::measure_min_io(&program, &params, s, init(&a));
            let env = [
                (Var::new("M"), m as i128),
                (Var::new("N"), n as i128),
                (iolb_core::s_var(), s as i128),
            ];
            TiledIoRow {
                s,
                block,
                lru_loads: lru.loads,
                min_loads: min.loads,
                model: iolb_kernels::householder::a2_reads_model(m, n, block),
                headline: iolb_kernels::householder::a2_io_headline(m, n, s),
                lower_bound: report.new.combined.eval_ints_f64(&env),
            }
        })
        .collect()
}

/// Renders a tiled-I/O sweep as a table.
pub fn render_tiled_table(title: &str, m: usize, n: usize, rows: &[TiledIoRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}  (M={m}, N={n})\n"));
    out.push_str(&format!(
        "{:>8} {:>6} {:>12} {:>12} {:>14} {:>14} {:>14} {:>8}\n",
        "S", "B", "LRU loads", "MIN loads", "model reads", "headline", "lower bound", "MIN/LB"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8} {:>6} {:>12} {:>12} {:>14.0} {:>14.0} {:>14.0} {:>8.2}\n",
            r.s,
            r.block,
            r.lru_loads,
            r.min_loads,
            r.model,
            r.headline,
            r.lower_bound,
            r.min_loads as f64 / r.lower_bound.max(1.0),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_all_produces_five_reports() {
        let reports = derive_all();
        assert_eq!(reports.len(), 5);
        assert!(reports.iter().any(|r| r.split), "GEHD2 splits");
    }

    #[test]
    fn tiled_mgs_sweep_is_sandwiched() {
        let rows = sweep_tiled_mgs(48, 24, &[256, 512, 1024]);
        for r in &rows {
            // LB ≤ measured; measured within a constant of the model.
            assert!(r.lower_bound <= r.min_loads as f64, "S={}", r.s);
            assert!(r.min_loads <= r.lru_loads);
            let ratio = r.lru_loads as f64 / r.model;
            assert!(
                ratio < 4.0,
                "S={}: measured {} vs model {}",
                r.s,
                r.lru_loads,
                r.model
            );
        }
        // I/O decreases as S grows.
        assert!(rows.windows(2).all(|w| w[1].lru_loads <= w[0].lru_loads));
    }
}
