//! Appendix A.2: measured I/O of the tiled A2V ordering (Fig. 9) vs the
//! ½(M²N²−MN³/3)/S model and the Theorem 6 lower bound, across S.
fn main() {
    let (m, n) = (96usize, 48usize);
    let s_values: Vec<usize> = vec![224, 320, 448, 640, 896, 1280, 1792];
    let rows = iolb_bench::sweep_tiled_a2v(m, n, &s_values);
    print!(
        "{}",
        iolb_bench::render_tiled_table("Appendix A.2 — tiled A2V I/O", m, n, &rows)
    );
}
