//! Tightness study: lower bound ≤ simulated tiled I/O ≤ O(model), with the
//! §5.1 regime behaviour around S ≈ M (crossover between the two Theorem 5
//! branches).
use iolb_symbolic::Var;

fn main() {
    let (m, n) = (64usize, 32usize);
    println!("Sandwich: hourglass LB ≤ MIN-simulated tiled MGS I/O ≤ O(½M²N²/S)");
    println!("M={m} N={n}; S sweeps through the S≈M crossover of §5.1");
    println!("{}", "=".repeat(88));
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "S", "LB(main)", "LB(small-S)", "MIN loads", "MIN/LB", "model/MIN"
    );
    let report = iolb_core::report::analyze_kernel(&iolb_kernels::mgs::program(), "MGS", "SU")
        .expect("derivation");
    let s_values = [80usize, 128, 192, 256, 384, 512, 768, 1024];
    let rows = iolb_bench::sweep_tiled_mgs(m, n, &s_values);
    for r in &rows {
        let env = [
            (Var::new("M"), m as i128),
            (Var::new("N"), n as i128),
            (iolb_core::s_var(), r.s as i128),
        ];
        let main = report.new.main.eval_ints_f64(&env);
        let small = report.new.small_s.eval_ints_f64(&env).max(0.0);
        let lb = main.max(small).max(1.0);
        println!(
            "{:>8} {:>14.0} {:>14.0} {:>14} {:>10.2} {:>10.2}",
            r.s,
            main,
            small,
            r.min_loads,
            r.min_loads as f64 / lb,
            r.model / r.min_loads as f64,
        );
        assert!(lb <= r.min_loads as f64 + 1.0, "UNSOUND at S={}", r.s);
    }
    println!("\nLB ≤ measured ≤ O(model) across the sweep ✓");
}
