//! Appendix A.1: measured I/O of the tiled left-looking MGS (Fig. 8) vs
//! the ½M²N²/S model and the Theorem 5 lower bound, across S.
fn main() {
    let (m, n) = (96usize, 48usize);
    let s_values: Vec<usize> = vec![224, 320, 448, 640, 896, 1280, 1792];
    let rows = iolb_bench::sweep_tiled_mgs(m, n, &s_values);
    print!(
        "{}",
        iolb_bench::render_tiled_table("Appendix A.1 — tiled MGS I/O", m, n, &rows)
    );
}
