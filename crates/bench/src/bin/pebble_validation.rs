//! Validation table: derived lower bounds vs legal red-white pebble plays
//! on exact CDAGs, for every kernel over a grid of S.
use iolb_cdag::{build_cdag, PebbleGame};
use iolb_core::hourglass::SplitChoice;
use iolb_core::{hourglass, theorems, Analysis};
use iolb_symbolic::Var;

fn main() {
    println!("Pebble-game validation: max(LB) must be ≤ loads of a legal play");
    println!("{}", "=".repeat(88));
    println!(
        "{:<12} {:>10} {:>6} {:>12} {:>12} {:>12} {:>8}",
        "kernel", "size", "S", "LB classic", "LB hourglass", "play loads", "play/LB"
    );
    let cases: Vec<(iolb_ir::Program, &str, Vec<i64>, Vec<(Var, i128)>)> = vec![
        (iolb_kernels::mgs::program(), "SU", vec![16, 8],
         vec![(Var::new("M"), 16), (Var::new("N"), 8)]),
        (iolb_kernels::householder::a2v_program(), "SU", vec![18, 8],
         vec![(Var::new("M"), 18), (Var::new("N"), 8)]),
        (iolb_kernels::householder::v2q_program(), "SU", vec![18, 8],
         vec![(Var::new("M"), 18), (Var::new("N"), 8)]),
        (iolb_kernels::gebd2::program(), "SU", vec![16, 8],
         vec![(Var::new("M"), 16), (Var::new("N"), 8)]),
        (iolb_kernels::gehd2::program(), "SU1", vec![13],
         vec![(Var::new("N"), 13), (theorems::split_var(), 6)]),
        (iolb_kernels::gemm::program(), "SU", vec![10, 10, 10],
         vec![(Var::new("M"), 10), (Var::new("N"), 10), (Var::new("K"), 10)]),
    ];
    for (program, stmt_name, params, env) in cases {
        let analysis = Analysis::run(&program, &[params.clone()]).expect("analysis");
        let stmt = program.stmt_id(stmt_name).unwrap();
        let classical = analysis.classical_bound(stmt);
        let hg = analysis.detect_hourglass(stmt).map(|pat| {
            let split = if program.name == "gehd2" {
                SplitChoice::At(iolb_symbolic::Poly::var(theorems::split_var()))
            } else {
                SplitChoice::None
            };
            hourglass::derive(&program, &pat, &split)
        });
        let cdag = build_cdag(&program, &params);
        let min_s = cdag.max_in_degree() + 1;
        for s in [min_s, min_s + 4, min_s + 12, min_s + 28] {
            let play = PebbleGame::new(&cdag, s).best_play().expect("legal play");
            let lb_c = classical.eval_floor(&env, s as i128);
            let lb_h = hg.as_ref().map(|b| b.eval_floor(&env, s as i128)).unwrap_or(0.0);
            let lb = lb_c.max(lb_h).max(1.0);
            println!(
                "{:<12} {:>10} {:>6} {:>12.0} {:>12.0} {:>12} {:>8.2}",
                program.name,
                format!("{params:?}"),
                s,
                lb_c,
                lb_h,
                play.loads,
                play.loads as f64 / lb
            );
            assert!(lb_c.max(lb_h) <= play.loads as f64, "UNSOUND BOUND");
        }
    }
    println!("\nall bounds ≤ measured plays ✓");
}
