//! Validation matrix: derived lower bounds vs the measured miss curves of
//! each kernel's program-order execution, at enlarged sizes (MGS 64×32,
//! GEMM 48³, …) over the dense ~32-point S grid — every `(kernel, S,
//! policy)` cell read off one stack-distance pass per policy column.
//!
//! Writes `BENCH_pebble.json` (schema `hourglass-iolb/pebble-sweep/v4`)
//! into the working directory — or to the path given as the first
//! argument, so CI can generate a fresh copy next to the committed
//! baseline and diff the two — letting future runs compare loads, bound
//! ratios, and soundness.

use iolb_bench::scale::measure_scaling_series;
use iolb_bench::sweep::{default_sweep_kernels, render_sweep_table, run_sweep, sweep_report_json};

fn main() {
    println!("Validation sweep: max(LB) must be ≤ the measured miss curve at every S");
    println!("{}", "=".repeat(100));
    let mut report = run_sweep(default_sweep_kernels());
    // Curve-engine scaling series (10⁶ → 10⁸ synthetic GEMM events,
    // streaming sharded passes): recorded in meta, gated by `xtask gate`
    // against >2× wall-time regressions of the largest point.
    report.scaling = measure_scaling_series();
    print!("{}", render_sweep_table(&report));
    for p in &report.scaling {
        println!(
            "scaling: {:>12} accesses {:?}: {:.1} ms",
            p.accesses, p.policy, p.wall_ms
        );
    }
    let mut unsound = 0usize;
    for r in &report.rows {
        if !r.sound() {
            eprintln!(
                "UNSOUND: {} S={} {:?}: bound {} exceeds measured loads {}",
                r.kernel,
                r.s,
                r.policy,
                r.lb(),
                r.loads
            );
            unsound += 1;
        }
    }
    let json = sweep_report_json(&report);
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pebble.json".to_string());
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path} ({} rows)", report.rows.len());
    assert_eq!(unsound, 0, "{unsound} unsound bounds — see stderr");
    println!("all bounds ≤ measured curves ✓");
}
