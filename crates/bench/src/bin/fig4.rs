//! Regenerates Figure 4: asymptotic data-movement lower bounds, old
//! (classical K-partitioning) vs new (hourglass), per kernel.
fn main() {
    let reports = iolb_bench::derive_all();
    print!("{}", iolb_core::report::fig4_table(&reports));
}
