//! Regenerates Figure 5: full parametric bounds with constants; prints the
//! paper formula next to the engine derivation with their ratio.
fn main() {
    let reports = iolb_bench::derive_all();
    print!("{}", iolb_core::report::fig5_table(&reports));
}
