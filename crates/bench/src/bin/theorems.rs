//! Instantiates Theorems 5–9 and the §5.1 regime analyses on grids, next
//! to the engine's derived bounds.
use iolb_core::{s_var, theorems};
use iolb_symbolic::Var;

fn main() {
    let reports = iolb_bench::derive_all();
    let env = |m: i128, n: i128, s: i128| {
        vec![
            (Var::new("M"), m),
            (Var::new("N"), n),
            (s_var(), s),
            (theorems::split_var(), n / 2 - 1),
        ]
    };
    println!("Theorems 5–9: paper closed forms vs engine derivations");
    println!("{}", "=".repeat(88));
    let grid = [
        (4096i128, 1024i128, 512i128),
        (16384, 2048, 1024),
        (65536, 8192, 4096),
    ];
    for (m, n, s) in grid {
        println!("M={m} N={n} S={s}");
        let thm: Vec<(&str, f64, usize)> = vec![
            (
                "Thm5 (MGS)",
                theorems::thm5_mgs().eval_ints_f64(&env(m, n, s)),
                0,
            ),
            (
                "Thm6 (A2V)",
                theorems::thm6_a2v().eval_ints_f64(&env(m, n, s)),
                1,
            ),
            (
                "Thm7 (V2Q)",
                theorems::thm7_v2q().eval_ints_f64(&env(m, n, s)),
                2,
            ),
            (
                "Thm8 (GEBD2)",
                theorems::thm8_gebd2().eval_ints_f64(&env(m, n, s)),
                3,
            ),
            (
                "Thm9 (GEHD2)",
                theorems::thm9_gehd2().eval_ints_f64(&env(0, n, s)),
                4,
            ),
        ];
        for (name, paper, idx) in thm {
            let r = &reports[idx];
            let engine = if r.name == "GEHD2" {
                r.new.main_tool.eval_ints_f64(&env(0, n, s))
            } else {
                r.new.refined.eval_ints_f64(&env(m, n, s))
            };
            println!(
                "  {name:<14} paper {paper:>16.4e}   engine(refined) {engine:>16.4e}   ratio {:.4}",
                engine / paper
            );
        }
        // §5.1 regimes for MGS.
        let small = theorems::mgs_regime_small_s().eval_ints_f64(&env(m, n, s));
        let large = theorems::mgs_regime_large_s().eval_ints_f64(&env(m, n, s));
        println!(
            "  §5.1 regimes   MN²/8 = {small:.4e} (S ≤ M/2)   M²N²/24S = {large:.4e} (M/2 ≤ S)"
        );
    }
}
