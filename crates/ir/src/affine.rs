//! Affine expressions over loop dimensions and program parameters.
//!
//! An [`Aff`] is `Σ cᵢ·dimᵢ + Σ pⱼ·paramⱼ + cst` with integer coefficients —
//! exactly the expression class that loop bounds and array subscripts of a
//! polyhedral program may use.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Identifier of a loop dimension (unique per [`crate::Program`],
/// allocated in loop-creation order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DimId(pub u32);

/// Identifier of a program parameter (index into the parameter list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ParamId(pub u32);

/// An affine expression with integer coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Aff {
    /// Sorted `(dim, coeff)` pairs with non-zero coefficients.
    dims: Vec<(DimId, i64)>,
    /// Sorted `(param, coeff)` pairs with non-zero coefficients.
    params: Vec<(ParamId, i64)>,
    /// Constant term.
    cst: i64,
}

impl Aff {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Aff {
        Aff {
            cst: c,
            ..Aff::default()
        }
    }

    /// The zero expression.
    pub fn zero() -> Aff {
        Aff::default()
    }

    /// The expression `d` (a single loop dimension).
    pub fn dim(d: DimId) -> Aff {
        Aff {
            dims: vec![(d, 1)],
            ..Aff::default()
        }
    }

    /// The expression `p` (a single parameter).
    pub fn param(p: ParamId) -> Aff {
        Aff {
            params: vec![(p, 1)],
            ..Aff::default()
        }
    }

    /// Constant term.
    pub fn cst(&self) -> i64 {
        self.cst
    }

    /// Sorted `(dim, coeff)` pairs.
    pub fn dim_terms(&self) -> &[(DimId, i64)] {
        &self.dims
    }

    /// Sorted `(param, coeff)` pairs.
    pub fn param_terms(&self) -> &[(ParamId, i64)] {
        &self.params
    }

    /// Coefficient of dimension `d`.
    pub fn dim_coeff(&self, d: DimId) -> i64 {
        self.dims
            .iter()
            .find(|(x, _)| *x == d)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Coefficient of parameter `p`.
    pub fn param_coeff(&self, p: ParamId) -> i64 {
        self.params
            .iter()
            .find(|(x, _)| *x == p)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// True when no loop dimension occurs (parameters and constants only).
    pub fn is_dim_free(&self) -> bool {
        self.dims.is_empty()
    }

    /// Dimensions with non-zero coefficient.
    pub fn dims_used(&self) -> impl Iterator<Item = DimId> + '_ {
        self.dims.iter().map(|(d, _)| *d)
    }

    /// Evaluates with `dim_env(d)` and `param_env(p)` lookups.
    pub fn eval_with(
        &self,
        dim_env: &dyn Fn(DimId) -> i64,
        param_env: &dyn Fn(ParamId) -> i64,
    ) -> i64 {
        let mut acc = self.cst;
        for (d, c) in &self.dims {
            acc += c * dim_env(*d);
        }
        for (p, c) in &self.params {
            acc += c * param_env(*p);
        }
        acc
    }

    /// Evaluates against flat environments indexed by id — the hot-path
    /// variant of [`eval_with`](Aff::eval_with): no closure dispatch, fully
    /// inlineable.
    ///
    /// # Panics
    /// Panics when a referenced dimension or parameter id is out of range.
    #[inline]
    pub fn eval_envs(&self, dims: &[i64], params: &[i64]) -> i64 {
        let mut acc = self.cst;
        for (d, c) in &self.dims {
            acc += c * dims[d.0 as usize];
        }
        for (p, c) in &self.params {
            acc += c * params[p.0 as usize];
        }
        acc
    }

    /// Removes the term for dimension `d`, returning its coefficient.
    pub fn take_dim(&mut self, d: DimId) -> i64 {
        if let Some(pos) = self.dims.iter().position(|(x, _)| *x == d) {
            self.dims.remove(pos).1
        } else {
            0
        }
    }

    fn add_dim(&mut self, d: DimId, c: i64) {
        if c == 0 {
            return;
        }
        match self.dims.binary_search_by_key(&d, |(x, _)| *x) {
            Ok(i) => {
                self.dims[i].1 += c;
                if self.dims[i].1 == 0 {
                    self.dims.remove(i);
                }
            }
            Err(i) => self.dims.insert(i, (d, c)),
        }
    }

    fn add_param(&mut self, p: ParamId, c: i64) {
        if c == 0 {
            return;
        }
        match self.params.binary_search_by_key(&p, |(x, _)| *x) {
            Ok(i) => {
                self.params[i].1 += c;
                if self.params[i].1 == 0 {
                    self.params.remove(i);
                }
            }
            Err(i) => self.params.insert(i, (p, c)),
        }
    }

    /// Renders with the given naming functions.
    pub fn display_with(
        &self,
        dim_name: &dyn Fn(DimId) -> String,
        param_name: &dyn Fn(ParamId) -> String,
    ) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (d, c) in &self.dims {
            parts.push(render_term(*c, &dim_name(*d), parts.is_empty()));
        }
        for (p, c) in &self.params {
            parts.push(render_term(*c, &param_name(*p), parts.is_empty()));
        }
        if self.cst != 0 || parts.is_empty() {
            if parts.is_empty() {
                parts.push(format!("{}", self.cst));
            } else if self.cst > 0 {
                parts.push(format!(" + {}", self.cst));
            } else {
                parts.push(format!(" - {}", -self.cst));
            }
        }
        parts.concat()
    }
}

fn render_term(c: i64, name: &str, first: bool) -> String {
    let (sign, mag) = if c < 0 { ("-", -c) } else { ("+", c) };
    let body = if mag == 1 {
        name.to_string()
    } else {
        format!("{mag}*{name}")
    };
    if first {
        if sign == "-" {
            format!("-{body}")
        } else {
            body
        }
    } else {
        format!(" {sign} {body}")
    }
}

impl Add for Aff {
    type Output = Aff;
    fn add(mut self, rhs: Aff) -> Aff {
        for (d, c) in rhs.dims {
            self.add_dim(d, c);
        }
        for (p, c) in rhs.params {
            self.add_param(p, c);
        }
        self.cst += rhs.cst;
        self
    }
}

impl Sub for Aff {
    type Output = Aff;
    fn sub(self, rhs: Aff) -> Aff {
        self + (-rhs)
    }
}

impl Neg for Aff {
    type Output = Aff;
    fn neg(mut self) -> Aff {
        for t in &mut self.dims {
            t.1 = -t.1;
        }
        for t in &mut self.params {
            t.1 = -t.1;
        }
        self.cst = -self.cst;
        self
    }
}

impl Add<i64> for Aff {
    type Output = Aff;
    fn add(mut self, rhs: i64) -> Aff {
        self.cst += rhs;
        self
    }
}

impl Sub<i64> for Aff {
    type Output = Aff;
    fn sub(mut self, rhs: i64) -> Aff {
        self.cst -= rhs;
        self
    }
}

impl Mul<i64> for Aff {
    type Output = Aff;
    fn mul(mut self, rhs: i64) -> Aff {
        if rhs == 0 {
            return Aff::zero();
        }
        for t in &mut self.dims {
            t.1 *= rhs;
        }
        for t in &mut self.params {
            t.1 *= rhs;
        }
        self.cst *= rhs;
        self
    }
}

impl fmt::Display for Aff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            self.display_with(&|d| format!("d{}", d.0), &|p| format!("p{}", p.0))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_eval() {
        let k = DimId(0);
        let n = ParamId(0);
        // N - 1 - k
        let e = Aff::param(n) - Aff::dim(k) - 1;
        let v = e.eval_with(&|_| 3, &|_| 10);
        assert_eq!(v, 6);
        assert_eq!(e.dim_coeff(k), -1);
        assert_eq!(e.param_coeff(n), 1);
        assert_eq!(e.cst(), -1);
    }

    #[test]
    fn cancellation_removes_terms() {
        let k = DimId(0);
        let e = Aff::dim(k) + Aff::dim(k) * -1;
        assert!(e.is_dim_free());
        assert_eq!(e, Aff::zero());
    }

    #[test]
    fn scalar_multiplication() {
        let k = DimId(0);
        let e = (Aff::dim(k) + 2) * 3;
        assert_eq!(e.dim_coeff(k), 3);
        assert_eq!(e.cst(), 6);
        // Multiplying by zero collapses to the zero form (intentional).
        #[allow(clippy::erasing_op)]
        let z = e * 0;
        assert_eq!(z, Aff::zero());
    }

    #[test]
    fn take_dim_extracts() {
        let (k, j) = (DimId(0), DimId(1));
        let mut e = Aff::dim(k) * 2 + Aff::dim(j) - 5;
        assert_eq!(e.take_dim(k), 2);
        assert_eq!(e.dim_coeff(k), 0);
        assert_eq!(e.dim_coeff(j), 1);
        assert_eq!(e.take_dim(k), 0);
    }

    #[test]
    fn display_readable() {
        let k = DimId(0);
        let n = ParamId(0);
        let e = Aff::param(n) - Aff::dim(k) - 1;
        assert_eq!(
            e.display_with(&|_| "k".into(), &|_| "N".into()),
            "-k + N - 1"
        );
        assert_eq!(
            Aff::zero().display_with(&|_| "x".into(), &|_| "P".into()),
            "0"
        );
    }
}
