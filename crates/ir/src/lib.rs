//! Polyhedral-lite program IR: the substrate IOLB analyses run on.
//!
//! The paper's derivations operate on *affine programs*: nested loops whose
//! bounds and array subscripts are affine in the surrounding loop indices
//! and program parameters (§2). IOLB consumes such programs through ISL;
//! this crate provides a from-scratch equivalent sized for the kernel class
//! of the paper:
//!
//! * [`affine`] — affine expressions over loop dimensions and parameters,
//! * [`program`] — loop-tree programs: statements carry both *declared*
//!   affine accesses (metadata for the symbolic analyses) and a *semantic
//!   closure* (executable f64 semantics). A consistency checker verifies the
//!   two views agree on every executed instance,
//! * [`interp`] — a sequential interpreter that executes the program in
//!   schedule order and streams every array access into an [`interp::ExecSink`]
//!   (trace collection, CDAG construction, cache simulation),
//! * [`deps`] — structural dependence analysis: unification of read/write
//!   subscripts plus last-writer resolution, yielding the dependence-path
//!   projections `Φ` of the K-partitioning method,
//! * [`count`] — symbolic statement-instance counting (`|V|`, domain widths)
//!   via Faulhaber summation,
//! * [`parse`] — the textual `.iolb` kernel DSL: parser with spanned
//!   errors, pretty-printer, and structural program equality, opening the
//!   analyses to workloads beyond the built-in paper kernels,
//! * [`schedule`] — loop-tiling schedule transformations (strip-mine +
//!   hoist): reorders instance enumeration into blocked order without
//!   changing any instance's accesses, the upper-bound half of the
//!   tightness harness.

pub mod admission;
pub mod affine;
pub mod count;
pub mod deps;
pub mod interp;
// The parser is the user-input path: a panic here is an unhandled denial
// of service on any served batch, so unwrap/expect are denied outright
// and survivors converted to spanned `ParseError`s.
#[deny(clippy::unwrap_used, clippy::expect_used)]
pub mod parse;
pub mod program;
pub mod schedule;

pub use affine::{Aff, DimId, ParamId};
pub use interp::{
    for_each_instance, try_for_each_instance, ExecCtx, ExecSink, Interpreter, NullSink, Store,
    TraceEvent, TraceSink,
};
pub use parse::{
    assert_kernel_roundtrip, kernel_diff, parse_kernel, parse_program, print_kernel, print_program,
    KernelFile, ParseError, TileDirective,
};
pub use program::{
    Access, ArrayDecl, ArrayId, Loop, LoopStep, Program, ProgramBuilder, Statement, Step, StmtId,
};
pub use schedule::{enumerate_instances, tile_program, TileSpec};
