//! Symbolic statement-instance counting and loop-extent analysis.
//!
//! Replaces barvinok for the paper's kernel class: `|V|` (Theorem 1 needs
//! the number of instances of the dominant statement) is an iterated
//! Faulhaber sum over the statement's affine loop nest, and the hourglass
//! width `W` (§3.2) is the min/max of a loop's extent over the enclosing
//! domain.

use crate::affine::{Aff, DimId};
use crate::interp::{ExecSink, Interpreter, Store};
use crate::program::{LoopStep, Program, StmtId};
use iolb_symbolic::{summation::sum_half_open, Poly, Var};

/// Symbolic variable used for a loop dimension of a program.
///
/// Loop names may repeat (several `i` loops), so the variable is keyed by
/// the unique [`DimId`].
pub fn dim_var(program: &Program, d: DimId) -> Var {
    Var::new(&format!(
        "{}~{}#{}",
        program.name,
        program.loop_info(d).name,
        d.0
    ))
}

/// Symbolic variable of a parameter (global: `"M"`, `"N"`, …).
pub fn param_var(program: &Program, p: crate::affine::ParamId) -> Var {
    Var::new(&program.params[p.0 as usize])
}

/// Converts an affine expression to a polynomial over dim/param variables.
pub fn aff_to_poly(program: &Program, a: &Aff) -> Poly {
    let mut p = Poly::int(a.cst() as i128);
    for (d, c) in a.dim_terms() {
        p = &p + &Poly::var(dim_var(program, *d)).scale(iolb_symbolic::Rational::int(*c as i128));
    }
    for (q, c) in a.param_terms() {
        p = &p + &Poly::var(param_var(program, *q)).scale(iolb_symbolic::Rational::int(*c as i128));
    }
    p
}

fn single_bounds(program: &Program, d: DimId) -> (Poly, Poly) {
    let info = program.loop_info(d);
    assert!(
        info.lo.len() == 1 && info.hi.len() == 1 && matches!(info.step, LoopStep::One),
        "symbolic counting requires single-bound unit-step loops (loop {})",
        info.name
    );
    (
        aff_to_poly(program, &info.lo[0]),
        aff_to_poly(program, &info.hi[0]),
    )
}

/// Whether every enclosing loop of `stmt` admits a closed-form symbolic
/// count: single lower/upper bound and unit step (what the internal
/// `single_bounds` helper
/// asserts). Analyses that evaluate instance counts gate on this so
/// arbitrary DSL workloads with strided or `max`/`min`-bounded nests are
/// *declined* ("no bound derivable") instead of aborting the pipeline.
pub fn countable_nest(program: &Program, stmt: StmtId) -> bool {
    program.stmt(stmt).dims.iter().all(|d| {
        let info = program.loop_info(*d);
        info.lo.len() == 1 && info.hi.len() == 1 && matches!(info.step, LoopStep::One)
    })
}

/// Symbolic number of instances of `stmt`: `Σ over its loop nest of 1`.
///
/// Exact whenever the nest is non-degenerate (standard polyhedral-counting
/// caveat); cross-checked against enumeration in tests.
pub fn instance_count(program: &Program, stmt: StmtId) -> Poly {
    instance_count_with(program, stmt, &[])
}

/// Like [`instance_count`], with lower-bound overrides for selected dims.
///
/// IOLB's Fig. 5 formulas count hourglass statements with the first
/// temporal iteration dropped; an override `(k, lo+1)` expresses that.
pub fn instance_count_with(
    program: &Program,
    stmt: StmtId,
    lo_overrides: &[(DimId, Poly)],
) -> Poly {
    let overrides: Vec<(DimId, BoundOverride)> = lo_overrides
        .iter()
        .map(|(d, lo)| {
            (
                *d,
                BoundOverride {
                    lo: Some(lo.clone()),
                    hi: None,
                },
            )
        })
        .collect();
    instance_count_bounded(program, stmt, &overrides)
}

/// Replacement bounds for one dimension during counting.
#[derive(Debug, Clone, Default)]
pub struct BoundOverride {
    /// New inclusive lower bound (polynomial) when set.
    pub lo: Option<Poly>,
    /// New exclusive upper bound (polynomial) when set — §5.3's loop
    /// splitting restricts the temporal dimension to `[lo, split)`.
    pub hi: Option<Poly>,
}

/// [`instance_count`] with lower and/or upper bound overrides per dim.
pub fn instance_count_bounded(
    program: &Program,
    stmt: StmtId,
    overrides: &[(DimId, BoundOverride)],
) -> Poly {
    let dims = &program.stmt(stmt).dims;
    let mut acc = Poly::one();
    for d in dims.iter().rev() {
        let (mut lo, mut hi) = single_bounds(program, *d);
        if let Some((_, o)) = overrides.iter().find(|(x, _)| x == d) {
            if let Some(l) = &o.lo {
                lo = l.clone();
            }
            if let Some(h) = &o.hi {
                hi = h.clone();
            }
        }
        acc = sum_half_open(&acc, dim_var(program, *d), &lo, &hi);
    }
    acc
}

/// The extent `hi - lo` of dimension `d` as a polynomial (may reference
/// outer dims).
pub fn extent(program: &Program, d: DimId) -> Poly {
    let (lo, hi) = single_bounds(program, d);
    &hi - &lo
}

/// Bounds of a polynomial over the enclosing domain of statement dims.
///
/// Substitutes each enclosing dim, innermost first, by the edge of its range
/// chosen according to the sign of its (constant) coefficient, producing
/// `(min, max)` polynomials in the parameters only. Supports the affine
/// triangular nests of the paper (coefficients must be constants).
pub fn poly_range_over_dims(program: &Program, p: &Poly, dims: &[DimId]) -> (Poly, Poly) {
    poly_range_over_dims_bounded(program, p, dims, &[])
}

/// [`poly_range_over_dims`] with bound overrides (loop splitting restricts
/// the temporal dimension before taking the width minimum).
pub fn poly_range_over_dims_bounded(
    program: &Program,
    p: &Poly,
    dims: &[DimId],
    overrides: &[(DimId, BoundOverride)],
) -> (Poly, Poly) {
    let mut lo_p = p.clone();
    let mut hi_p = p.clone();
    for d in dims.iter().rev() {
        let v = dim_var(program, *d);
        let (mut dlo, mut dhi) = single_bounds(program, *d);
        if let Some((_, o)) = overrides.iter().find(|(x, _)| x == d) {
            if let Some(l) = &o.lo {
                dlo = l.clone();
            }
            if let Some(h) = &o.hi {
                dhi = h.clone();
            }
        }
        let dmax = &dhi - &Poly::one();
        lo_p = subst_extreme(&lo_p, v, &dlo, &dmax, true);
        hi_p = subst_extreme(&hi_p, v, &dlo, &dmax, false);
    }
    (lo_p, hi_p)
}

fn subst_extreme(p: &Poly, v: Var, vmin: &Poly, vmax: &Poly, minimize: bool) -> Poly {
    let deg = p.degree_in(v);
    if deg == 0 {
        return p.clone();
    }
    assert!(
        deg <= 1,
        "extent analysis requires affine dependence on {v}"
    );
    let coeff = p
        .coeff_of(v, 1)
        .as_constant()
        .expect("extent analysis requires constant dim coefficients");
    let use_min = (coeff.is_positive() && minimize) || (coeff.is_negative() && !minimize);
    let value = if use_min { vmin } else { vmax };
    p.subst(v, value)
}

/// Exact per-statement instance counts via enumeration (certification).
pub fn enumerate_instance_counts(program: &Program, params: &[i64]) -> Vec<u64> {
    struct Counter {
        counts: Vec<u64>,
    }
    impl ExecSink for Counter {
        fn on_stmt(&mut self, stmt: StmtId, _iv: &[i64]) {
            self.counts[stmt.0 as usize] += 1;
        }
    }
    let mut sink = Counter {
        counts: vec![0; program.stmts.len()],
    };
    let mut store = Store::init(program, params, |_, f| f as f64 * 0.5 + 1.0);
    Interpreter::new(program, params).run(&mut store, &mut sink);
    sink.counts
}

/// Evaluates a parameter-only polynomial at named parameter values.
pub fn eval_params(p: &Poly, env: &[(&str, i64)]) -> iolb_symbolic::Rational {
    p.eval(&|v| {
        env.iter()
            .find(|(n, _)| Var::new(n) == v)
            .map(|(_, x)| iolb_symbolic::Rational::int(*x as i128))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Access, ProgramBuilder};

    /// Triangular nest shaped like the MGS update statement.
    fn tri() -> Program {
        let mut b = ProgramBuilder::new("tri_count", &["M", "N"]);
        let a = b.array("A", &[b.p("M"), b.p("N")]);
        let k = b.open("k", b.c(0), b.p("N"));
        let j = b.open("j", b.d(k) + 1, b.p("N"));
        let i = b.open("i", b.c(0), b.p("M"));
        let acc = Access::new(a, vec![b.d(i), b.d(j)]);
        b.stmt("SU", vec![acc.clone()], vec![acc], move |c| {
            let v = c.rd(a, &[c.v(2), c.v(1)]);
            c.wr(a, &[c.v(2), c.v(1)], v + 1.0);
        });
        b.close();
        b.close();
        b.close();
        b.finish()
    }

    #[test]
    fn symbolic_count_matches_formula() {
        let p = tri();
        let su = p.stmt_id("SU").unwrap();
        let count = instance_count(&p, su);
        // M·N(N-1)/2
        for (m, n) in [(4i64, 3i64), (7, 5), (10, 10), (3, 1)] {
            let v = eval_params(&count, &[("M", m), ("N", n)]);
            let expect = (m as i128) * (n as i128) * (n as i128 - 1) / 2;
            assert_eq!(v, iolb_symbolic::Rational::int(expect), "M={m} N={n}");
        }
    }

    #[test]
    fn symbolic_count_matches_enumeration() {
        let p = tri();
        for (m, n) in [(4i64, 3i64), (6, 5), (2, 4)] {
            let counts = enumerate_instance_counts(&p, &[m, n]);
            let sym = eval_params(&instance_count(&p, StmtId(0)), &[("M", m), ("N", n)]);
            assert_eq!(sym, iolb_symbolic::Rational::int(counts[0] as i128));
        }
    }

    #[test]
    fn count_with_dropped_first_iteration() {
        let p = tri();
        let su = p.stmt_id("SU").unwrap();
        let k = p.stmt(su).dims[0];
        let count = instance_count_with(&p, su, &[(k, Poly::one())]);
        // Σ_{k=1}^{N-1} M(N-1-k) = M (N-1)(N-2)/2
        for (m, n) in [(5i64, 4i64), (8, 6)] {
            let v = eval_params(&count, &[("M", m), ("N", n)]);
            let expect = (m as i128) * (n as i128 - 1) * (n as i128 - 2) / 2;
            assert_eq!(v, iolb_symbolic::Rational::int(expect));
        }
    }

    #[test]
    fn extent_and_range() {
        let p = tri();
        let su = p.stmt_id("SU").unwrap();
        let dims = &p.stmt(su).dims;
        let (k, j, i) = (dims[0], dims[1], dims[2]);
        // extent(j) = N - k - 1; over k ∈ [0, N-1]: min = 0 (k=N-1), max = N-1.
        let ext_j = extent(&p, j);
        let (lo, hi) = poly_range_over_dims(&p, &ext_j, &[k]);
        assert_eq!(
            eval_params(&lo, &[("M", 9), ("N", 6)]),
            iolb_symbolic::Rational::int(0)
        );
        assert_eq!(
            eval_params(&hi, &[("M", 9), ("N", 6)]),
            iolb_symbolic::Rational::int(5)
        );
        // extent(i) = M, independent of outer dims.
        let ext_i = extent(&p, i);
        let (lo2, hi2) = poly_range_over_dims(&p, &ext_i, &[k, j]);
        assert_eq!(lo2, hi2);
        assert_eq!(
            eval_params(&lo2, &[("M", 9), ("N", 6)]),
            iolb_symbolic::Rational::int(9)
        );
    }
}
