//! Textual kernel DSL: parse `.iolb` sources into [`Program`]s and print
//! [`Program`]s back out.
//!
//! The surface is exactly what [`ProgramBuilder`] exposes — parameters,
//! array/scalar declarations, possibly strided or reversed affine loop
//! nests with `max`/`min`-combined bounds, and named statements with
//! affine read/write accesses:
//!
//! ```text
//! kernel mgs(M, N) {
//!   array A[M][N];
//!   array R[N][N];
//!   scalar nrm;
//!   analyze SU;
//!   default M = 64, N = 32;
//!
//!   for k in 0..N {
//!     nrm0: nrm = op();
//!     for i in 0..M {
//!       nrm1: nrm = op(A[i][k], nrm);
//!     }
//!   }
//! }
//! ```
//!
//! Statement semantics are uninterpreted (`op(...)` names no particular
//! function): the parser synthesizes a deterministic closure that performs
//! exactly the declared reads and writes, so
//! [`crate::interp::validate_accesses`] certifies a parsed program the same
//! way it certifies a hand-built one, and the CDAG / dependence analyses —
//! which only consume access structure — see the genuine kernel.
//!
//! Every parse error carries a line/column [`Span`]; [`print_program`] and
//! [`parse_program`] round-trip (structural equality checked by
//! [`structural_diff`]).

use crate::affine::{Aff, DimId};
use crate::program::{Access, ArrayId, LoopStep, Program, ProgramBuilder, Step};
use iolb_numeric::Rational;
use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A parse failure with its source position.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// Where the failure was detected.
    pub span: Span,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, col {}: {}",
            self.span.line, self.span.col, self.msg
        )
    }
}

impl std::error::Error for ParseError {}

/// A rational-affine expression in the program parameters, used by the
/// `split` directive (`split Ms = N/2 - 1;`). Evaluation floors to an
/// integer, matching the paper's `Ms = ⌊N/2⌋ − 1` convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamExpr {
    /// `(parameter name, coefficient)` terms.
    pub terms: Vec<(String, Rational)>,
    /// Constant term.
    pub cst: Rational,
}

impl ParamExpr {
    /// Evaluates at named parameter values, flooring the exact rational.
    ///
    /// # Panics
    /// Panics when a referenced parameter is missing from `env`.
    pub fn eval_floor(&self, env: &[(String, i64)]) -> i128 {
        let mut acc = self.cst;
        for (name, c) in &self.terms {
            let v = env
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("split expression references unbound parameter {name}"))
                .1;
            acc += *c * Rational::int(v as i128);
        }
        acc.floor()
    }
}

impl fmt::Display for ParamExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, c) in &self.terms {
            render_rat_term(f, *c, Some(name), &mut first)?;
        }
        if !self.cst.is_zero() || first {
            render_rat_term(f, self.cst, None, &mut first)?;
        }
        Ok(())
    }
}

fn render_rat_term(
    f: &mut fmt::Formatter<'_>,
    c: Rational,
    name: Option<&str>,
    first: &mut bool,
) -> fmt::Result {
    let neg = c.is_negative();
    let mag = c.abs();
    if *first {
        if neg {
            write!(f, "-")?;
        }
    } else if neg {
        write!(f, " - ")?;
    } else {
        write!(f, " + ")?;
    }
    *first = false;
    match name {
        None => write!(f, "{mag}"),
        Some(n) => {
            if mag.is_one() {
                write!(f, "{n}")
            } else if mag.is_integer() {
                write!(f, "{}*{n}", mag.num())
            } else if mag.num() == 1 {
                write!(f, "{n}/{}", mag.den())
            } else {
                write!(f, "{}*{n}/{}", mag.num(), mag.den())
            }
        }
    }
}

/// One `tile <loop> [<size>];` entry of a `schedule { … }` block. A
/// directive without an explicit size asks the tightness auto-tuner to
/// sweep tile sizes for that loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileDirective {
    /// Loop-variable name (every loop with this name is tiled).
    pub loop_name: String,
    /// Explicit tile size; `None` leaves the size to the auto-tuner.
    pub size: Option<i64>,
}

/// A parsed `.iolb` file: the program plus its analysis directives.
#[derive(Debug)]
pub struct KernelFile {
    /// The parsed program.
    pub program: Program,
    /// `analyze <stmt>;` — the statement whose bounds the pipeline derives.
    pub analyze: Option<String>,
    /// `default <param> = <int>, …;` — concrete parameter values for
    /// end-to-end validation.
    pub defaults: Vec<(String, i64)>,
    /// `split <var> = <expr>;` — §5.3 loop-split variable binding.
    pub split: Option<(String, ParamExpr)>,
    /// `schedule { tile <loop> [<size>]; … }` — blocked-execution tiling
    /// directives for the upper-bound/tightness harness.
    pub schedule: Vec<TileDirective>,
}

impl KernelFile {
    /// Default concrete parameters in program-parameter order.
    ///
    /// # Errors
    /// Reports parameters with no `default` directive.
    pub fn default_params(&self) -> Result<Vec<i64>, String> {
        self.program
            .params
            .iter()
            .map(|p| {
                self.defaults
                    .iter()
                    .find(|(n, _)| n == p)
                    .map(|(_, v)| *v)
                    .ok_or_else(|| format!("parameter {p} has no `default` directive"))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Eq,
    DotDot,
    Plus,
    Minus,
    Star,
    Slash,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(n) => write!(f, "`{n}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::DotDot => write!(f, "`..`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, Span)>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1u32;
    let mut col = 1u32;
    let mut it = src.chars().peekable();
    while let Some(&c) = it.peek() {
        let span = Span { line, col };
        let mut bump = |it: &mut std::iter::Peekable<std::str::Chars<'_>>| {
            // Only called after a successful peek; '\0' is unreachable and
            // would lex as an error token rather than panicking.
            let c = it.next().unwrap_or('\0');
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            c
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump(&mut it);
            }
            '#' => {
                while let Some(&c) = it.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump(&mut it);
                }
            }
            '0'..='9' => {
                let mut n: i64 = 0;
                while let Some(&d) = it.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(v as i64))
                            .ok_or_else(|| ParseError {
                                span,
                                msg: "integer literal overflows i64".to_string(),
                            })?;
                        bump(&mut it);
                    } else {
                        break;
                    }
                }
                out.push((Tok::Int(n), span));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = it.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(bump(&mut it));
                    } else {
                        break;
                    }
                }
                out.push((Tok::Ident(s), span));
            }
            '.' => {
                bump(&mut it);
                if it.peek() == Some(&'.') {
                    bump(&mut it);
                    out.push((Tok::DotDot, span));
                } else {
                    return Err(ParseError {
                        span,
                        msg: "expected `..`".to_string(),
                    });
                }
            }
            _ => {
                let t = match c {
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    ',' => Tok::Comma,
                    ';' => Tok::Semi,
                    ':' => Tok::Colon,
                    '=' => Tok::Eq,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '*' => Tok::Star,
                    '/' => Tok::Slash,
                    other => {
                        return Err(ParseError {
                            span,
                            msg: format!("unexpected character `{other}`"),
                        })
                    }
                };
                bump(&mut it);
                out.push((t, span));
            }
        }
    }
    out.push((Tok::Eof, Span { line, col }));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<(Tok, Span)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn span(&self) -> Span {
        self.toks[self.pos].1
    }

    fn next(&mut self) -> (Tok, Span) {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            span: self.span(),
            msg: msg.into(),
        })
    }

    fn expect(&mut self, want: &Tok) -> Result<Span, ParseError> {
        if self.peek() == want {
            Ok(self.next().1)
        } else {
            self.err(format!("expected {want}, found {}", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                let sp = self.next().1;
                Ok((s, sp))
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    /// Consumes `word` when the next token is that keyword-identifier.
    fn eat_kw(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == word) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, word: &str) -> Result<(), ParseError> {
        if self.eat_kw(word) {
            Ok(())
        } else {
            self.err(format!("expected keyword `{word}`, found {}", self.peek()))
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        let neg = self.peek() == &Tok::Minus;
        if neg {
            self.next();
        }
        match *self.peek() {
            Tok::Int(n) => {
                self.next();
                Ok(if neg { -n } else { n })
            }
            _ => self.err(format!("expected integer, found {}", self.peek())),
        }
    }
}

/// The builder-side state threaded through parsing.
struct Ctx {
    b: ProgramBuilder,
    arrays: Vec<(String, ArrayId, usize)>,
    /// Open-loop scope stack: `(name, dim)`, innermost last.
    scope: Vec<(String, DimId)>,
    stmt_names: Vec<String>,
    /// Every loop seen: `(name, tileable)` — tileable means unit-step
    /// forward (what `schedule { tile … }` may name).
    loop_meta: Vec<(String, bool)>,
}

impl Ctx {
    fn lookup_array(&self, name: &str) -> Option<(ArrayId, usize)> {
        self.arrays
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, id, rank)| (*id, *rank))
    }

    /// Resolves an identifier inside an affine expression: innermost loop
    /// var first, then parameter.
    fn resolve_var(&self, name: &str) -> Option<Aff> {
        if let Some((_, d)) = self.scope.iter().rev().find(|(n, _)| n == name) {
            return Some(Aff::dim(*d));
        }
        self.b.try_pid(name).map(Aff::param)
    }
}

/// Parses one `kernel … { … }` definition with its directives.
///
/// # Errors
/// Returns the first [`ParseError`] with line/column position.
pub fn parse_kernel(src: &str) -> Result<KernelFile, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.expect_kw("kernel")?;
    let (name, _) = p.expect_ident()?;
    p.expect(&Tok::LParen)?;
    let mut params: Vec<String> = Vec::new();
    if p.peek() != &Tok::RParen {
        loop {
            let (pn, sp) = p.expect_ident()?;
            if params.contains(&pn) {
                return Err(ParseError {
                    span: sp,
                    msg: format!("duplicate parameter {pn}"),
                });
            }
            params.push(pn);
            if p.peek() == &Tok::Comma {
                p.next();
            } else {
                break;
            }
        }
    }
    p.expect(&Tok::RParen)?;
    p.expect(&Tok::LBrace)?;

    let param_refs: Vec<&str> = params.iter().map(|s| s.as_str()).collect();
    let mut ctx = Ctx {
        b: ProgramBuilder::new(&name, &param_refs),
        arrays: Vec::new(),
        scope: Vec::new(),
        stmt_names: Vec::new(),
        loop_meta: Vec::new(),
    };
    let mut analyze: Option<(String, Span)> = None;
    let mut defaults: Vec<(String, i64)> = Vec::new();
    let mut split: Option<(String, ParamExpr)> = None;
    let mut schedule: Vec<(TileDirective, Span)> = Vec::new();
    let mut saw_schedule = false;

    loop {
        match p.peek().clone() {
            Tok::RBrace => {
                p.next();
                break;
            }
            Tok::Ident(w) if w == "array" || w == "scalar" => {
                p.next();
                parse_array_decl(&mut p, &mut ctx, w == "scalar")?;
            }
            Tok::Ident(w) if w == "analyze" => {
                p.next();
                let (s, sp) = p.expect_ident()?;
                if analyze.replace((s, sp)).is_some() {
                    return Err(ParseError {
                        span: sp,
                        msg: "duplicate `analyze` directive".to_string(),
                    });
                }
                p.expect(&Tok::Semi)?;
            }
            Tok::Ident(w) if w == "default" => {
                p.next();
                loop {
                    let (pn, sp) = p.expect_ident()?;
                    if !params.contains(&pn) {
                        return Err(ParseError {
                            span: sp,
                            msg: format!("`default` names unknown parameter {pn}"),
                        });
                    }
                    if defaults.iter().any(|(n, _)| *n == pn) {
                        return Err(ParseError {
                            span: sp,
                            msg: format!("duplicate `default` for parameter {pn}"),
                        });
                    }
                    p.expect(&Tok::Eq)?;
                    let v = p.expect_int()?;
                    defaults.push((pn, v));
                    if p.peek() == &Tok::Comma {
                        p.next();
                    } else {
                        break;
                    }
                }
                p.expect(&Tok::Semi)?;
            }
            Tok::Ident(w) if w == "schedule" => {
                let sp = p.span();
                p.next();
                if saw_schedule {
                    return Err(ParseError {
                        span: sp,
                        msg: "duplicate `schedule` block".to_string(),
                    });
                }
                saw_schedule = true;
                p.expect(&Tok::LBrace)?;
                while p.peek() != &Tok::RBrace {
                    p.expect_kw("tile")?;
                    let (ln, lsp) = p.expect_ident()?;
                    if schedule.iter().any(|(d, _)| d.loop_name == ln) {
                        return Err(ParseError {
                            span: lsp,
                            msg: format!("duplicate `tile` directive for loop {ln}"),
                        });
                    }
                    let size = match *p.peek() {
                        Tok::Int(n) => {
                            p.next();
                            if n < 1 {
                                return Err(ParseError {
                                    span: lsp,
                                    msg: format!("tile size for {ln} must be ≥ 1"),
                                });
                            }
                            Some(n)
                        }
                        _ => None,
                    };
                    p.expect(&Tok::Semi)?;
                    schedule.push((
                        TileDirective {
                            loop_name: ln,
                            size,
                        },
                        lsp,
                    ));
                }
                p.expect(&Tok::RBrace)?;
            }
            Tok::Ident(w) if w == "split" => {
                p.next();
                let (vn, sp) = p.expect_ident()?;
                p.expect(&Tok::Eq)?;
                let e = parse_param_expr(&mut p, &params)?;
                if split.replace((vn, e)).is_some() {
                    return Err(ParseError {
                        span: sp,
                        msg: "duplicate `split` directive".to_string(),
                    });
                }
                p.expect(&Tok::Semi)?;
            }
            _ => parse_step(&mut p, &mut ctx)?,
        }
    }
    p.expect(&Tok::Eof)?;

    if let Some((a, sp)) = &analyze {
        if !ctx.stmt_names.iter().any(|s| s == a) {
            return Err(ParseError {
                span: *sp,
                msg: format!("`analyze {a}` names no statement of the kernel"),
            });
        }
    }
    for (d, sp) in &schedule {
        let named: Vec<&(String, bool)> = ctx
            .loop_meta
            .iter()
            .filter(|(n, _)| *n == d.loop_name)
            .collect();
        if named.is_empty() {
            return Err(ParseError {
                span: *sp,
                msg: format!("`tile {}` names no loop of the kernel", d.loop_name),
            });
        }
        if named.iter().any(|(_, tileable)| !tileable) {
            return Err(ParseError {
                span: *sp,
                msg: format!(
                    "`tile {}` targets a strided or reversed loop (only unit-step forward loops tile)",
                    d.loop_name
                ),
            });
        }
    }
    Ok(KernelFile {
        program: ctx.b.finish(),
        analyze: analyze.map(|(a, _)| a),
        defaults,
        split,
        schedule: schedule.into_iter().map(|(d, _)| d).collect(),
    })
}

/// Parses the kernel and returns just the [`Program`].
///
/// # Errors
/// See [`parse_kernel`].
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    parse_kernel(src).map(|k| k.program)
}

fn parse_array_decl(p: &mut Parser, ctx: &mut Ctx, scalar: bool) -> Result<(), ParseError> {
    let (name, sp) = p.expect_ident()?;
    if ctx.lookup_array(&name).is_some() {
        return Err(ParseError {
            span: sp,
            msg: format!("duplicate array {name}"),
        });
    }
    let mut extents: Vec<Aff> = Vec::new();
    if !scalar {
        while p.peek() == &Tok::LBracket {
            p.next();
            let e = parse_aff(p, ctx)?;
            if !e.is_dim_free() {
                return p.err("array extents may use parameters only");
            }
            extents.push(e);
            p.expect(&Tok::RBracket)?;
        }
        if extents.is_empty() {
            return p.err("array declaration needs at least one `[extent]` (or use `scalar`)");
        }
    }
    p.expect(&Tok::Semi)?;
    let id = ctx.b.array(&name, &extents);
    ctx.arrays.push((name, id, extents.len()));
    Ok(())
}

/// One schedule step: a loop or a statement.
fn parse_step(p: &mut Parser, ctx: &mut Ctx) -> Result<(), ParseError> {
    if matches!(p.peek(), Tok::Ident(w) if w == "for") {
        p.next();
        parse_loop(p, ctx)
    } else if matches!(p.peek(), Tok::Ident(_)) {
        parse_stmt(p, ctx)
    } else {
        p.err(format!(
            "expected `for`, a statement, or `}}`, found {}",
            p.peek()
        ))
    }
}

fn parse_loop(p: &mut Parser, ctx: &mut Ctx) -> Result<(), ParseError> {
    let (var, _) = p.expect_ident()?;
    p.expect_kw("in")?;
    let reverse = p.eat_kw("reverse");
    let lo = parse_bound(p, ctx, "max")?;
    p.expect(&Tok::DotDot)?;
    let hi = parse_bound(p, ctx, "min")?;
    let step = if p.eat_kw("step") {
        match p.peek().clone() {
            Tok::Int(n) => {
                p.next();
                if n <= 0 {
                    return p.err("loop step must be positive");
                }
                if n == 1 {
                    LoopStep::One
                } else {
                    LoopStep::Const(n)
                }
            }
            Tok::Ident(s) => {
                let sp = p.span();
                p.next();
                match ctx.b.try_pid(&s) {
                    Some(pid) => LoopStep::Param(pid),
                    None => {
                        return Err(ParseError {
                            span: sp,
                            msg: format!("step {s} is not a program parameter"),
                        })
                    }
                }
            }
            _ => return p.err("expected step amount (integer or parameter)"),
        }
    } else {
        LoopStep::One
    };
    p.expect(&Tok::LBrace)?;
    ctx.loop_meta
        .push((var.clone(), step == LoopStep::One && !reverse));
    let dim = ctx.b.open_general(&var, lo, hi, step, reverse);
    ctx.scope.push((var, dim));
    while p.peek() != &Tok::RBrace {
        parse_step(p, ctx)?;
    }
    p.expect(&Tok::RBrace)?;
    ctx.scope.pop();
    ctx.b.close();
    Ok(())
}

/// A loop bound: a single affine expression, or `max(e, …)` / `min(e, …)`.
fn parse_bound(p: &mut Parser, ctx: &Ctx, combiner: &str) -> Result<Vec<Aff>, ParseError> {
    if matches!(p.peek(), Tok::Ident(w) if w == combiner) {
        p.next();
        p.expect(&Tok::LParen)?;
        let mut out = vec![parse_aff(p, ctx)?];
        while p.peek() == &Tok::Comma {
            p.next();
            out.push(parse_aff(p, ctx)?);
        }
        p.expect(&Tok::RParen)?;
        Ok(out)
    } else {
        Ok(vec![parse_aff(p, ctx)?])
    }
}

fn parse_stmt(p: &mut Parser, ctx: &mut Ctx) -> Result<(), ParseError> {
    let (name, sp) = p.expect_ident()?;
    if ctx.stmt_names.iter().any(|s| s == &name) {
        return Err(ParseError {
            span: sp,
            msg: format!("duplicate statement name {name}"),
        });
    }
    p.expect(&Tok::Colon)?;
    let mut writes = vec![parse_access(p, ctx)?];
    while p.peek() == &Tok::Comma {
        p.next();
        writes.push(parse_access(p, ctx)?);
    }
    p.expect(&Tok::Eq)?;
    p.expect_kw("op")?;
    p.expect(&Tok::LParen)?;
    let mut reads: Vec<Access> = Vec::new();
    if p.peek() != &Tok::RParen {
        reads.push(parse_access(p, ctx)?);
        while p.peek() == &Tok::Comma {
            p.next();
            reads.push(parse_access(p, ctx)?);
        }
    }
    p.expect(&Tok::RParen)?;
    p.expect(&Tok::Semi)?;

    let dims: Vec<DimId> = ctx.scope.iter().map(|(_, d)| *d).collect();
    let compute = synth_compute(dims, reads.clone(), writes.clone());
    ctx.b.stmt(&name, reads, writes, move |c| compute(c));
    ctx.stmt_names.push(name);
    Ok(())
}

/// Builds the deterministic uninterpreted-function closure of a parsed
/// statement: read every declared read, write a value derived from their
/// sum to every declared write. Performed accesses therefore equal declared
/// accesses on every instance, which is exactly the contract
/// [`crate::interp::validate_accesses`] certifies.
fn synth_compute(
    dims: Vec<DimId>,
    reads: Vec<Access>,
    writes: Vec<Access>,
) -> impl Fn(&mut crate::interp::ExecCtx<'_>) + Send + Sync + 'static {
    move |c| {
        let mut iv = [0i64; 16];
        for (i, slot) in iv.iter_mut().take(dims.len()).enumerate() {
            *slot = c.v(i);
        }
        let eval_idx = |c: &mut crate::interp::ExecCtx<'_>, a: &Access| -> Vec<i64> {
            a.idx
                .iter()
                .map(|e| {
                    e.eval_with(
                        &|d| {
                            // The parser resolves subscripts against the
                            // enclosing loop stack, so a miss here means a
                            // malformed hand-built Access; surface it as a
                            // panic for the batch isolation boundary to
                            // convert into a structured Internal failure.
                            let pos = dims.iter().position(|x| *x == d).unwrap_or_else(|| {
                                panic!("subscript uses a non-enclosing loop dim")
                            });
                            iv[pos]
                        },
                        &|q| c.p(q.0 as usize),
                    )
                })
                .collect()
        };
        let mut acc = 0.5;
        for a in &reads {
            let idx = eval_idx(c, a);
            acc += c.rd(a.array, &idx) * 0.25;
        }
        for (k, w) in writes.iter().enumerate() {
            let idx = eval_idx(c, w);
            c.wr(w.array, &idx, acc + k as f64);
        }
    }
}

fn parse_access(p: &mut Parser, ctx: &Ctx) -> Result<Access, ParseError> {
    let (name, sp) = p.expect_ident()?;
    let Some((id, rank)) = ctx.lookup_array(&name) else {
        return Err(ParseError {
            span: sp,
            msg: format!("unknown array {name}"),
        });
    };
    let mut idx: Vec<Aff> = Vec::new();
    while p.peek() == &Tok::LBracket {
        p.next();
        idx.push(parse_aff(p, ctx)?);
        p.expect(&Tok::RBracket)?;
    }
    if idx.len() != rank {
        return Err(ParseError {
            span: sp,
            msg: format!(
                "array {name} has rank {rank} but the access has {} subscript(s)",
                idx.len()
            ),
        });
    }
    Ok(Access::new(id, idx))
}

/// `expr := ['-'] term (('+'|'-') term)*` over in-scope loop vars and
/// parameters, with integer coefficients (`2*k`, `k*2`, `N - 1`, …).
fn parse_aff(p: &mut Parser, ctx: &Ctx) -> Result<Aff, ParseError> {
    let mut acc = Aff::zero();
    let mut negate = false;
    if p.peek() == &Tok::Minus {
        p.next();
        negate = true;
    }
    loop {
        let term = parse_aff_term(p, ctx)?;
        acc = if negate { acc - term } else { acc + term };
        match p.peek() {
            Tok::Plus => {
                p.next();
                negate = false;
            }
            Tok::Minus => {
                p.next();
                negate = true;
            }
            _ => return Ok(acc),
        }
    }
}

fn parse_aff_term(p: &mut Parser, ctx: &Ctx) -> Result<Aff, ParseError> {
    match p.peek().clone() {
        Tok::Int(n) => {
            p.next();
            if p.peek() == &Tok::Star {
                p.next();
                let v = parse_aff_var(p, ctx)?;
                Ok(v * n)
            } else {
                Ok(Aff::constant(n))
            }
        }
        Tok::Ident(_) => {
            let v = parse_aff_var(p, ctx)?;
            if p.peek() == &Tok::Star {
                p.next();
                match *p.peek() {
                    Tok::Int(n) => {
                        p.next();
                        Ok(v * n)
                    }
                    _ => p.err("expected integer coefficient after `*`"),
                }
            } else {
                Ok(v)
            }
        }
        _ => p.err(format!(
            "expected affine term (integer or variable), found {}",
            p.peek()
        )),
    }
}

fn parse_aff_var(p: &mut Parser, ctx: &Ctx) -> Result<Aff, ParseError> {
    let (name, sp) = p.expect_ident()?;
    ctx.resolve_var(&name).ok_or_else(|| ParseError {
        span: sp,
        msg: format!("unknown variable {name} (not a loop variable in scope or a parameter)"),
    })
}

/// `split`-directive expression: rational-affine in the parameters
/// (`N/2 - 1`, `3*N/4 + 2`).
fn parse_param_expr(p: &mut Parser, params: &[String]) -> Result<ParamExpr, ParseError> {
    let mut out = ParamExpr {
        terms: Vec::new(),
        cst: Rational::ZERO,
    };
    let mut negate = false;
    if p.peek() == &Tok::Minus {
        p.next();
        negate = true;
    }
    loop {
        let (name, coeff) = parse_param_term(p, params)?;
        let coeff = if negate { -coeff } else { coeff };
        match name {
            None => out.cst += coeff,
            Some(n) => match out.terms.iter_mut().find(|(t, _)| *t == n) {
                Some((_, c)) => *c += coeff,
                None => out.terms.push((n, coeff)),
            },
        }
        match p.peek() {
            Tok::Plus => {
                p.next();
                negate = false;
            }
            Tok::Minus => {
                p.next();
                negate = true;
            }
            _ => break,
        }
    }
    out.terms.retain(|(_, c)| !c.is_zero());
    Ok(out)
}

fn parse_param_term(
    p: &mut Parser,
    params: &[String],
) -> Result<(Option<String>, Rational), ParseError> {
    let mut coeff = Rational::ONE;
    let mut name: Option<String> = None;
    match p.peek().clone() {
        Tok::Int(n) => {
            p.next();
            coeff = Rational::int(n as i128);
            if p.peek() == &Tok::Star {
                p.next();
                let (pn, sp) = p.expect_ident()?;
                if !params.contains(&pn) {
                    return Err(ParseError {
                        span: sp,
                        msg: format!("unknown parameter {pn} in split expression"),
                    });
                }
                name = Some(pn);
            }
        }
        Tok::Ident(_) => {
            let (pn, sp) = p.expect_ident()?;
            if !params.contains(&pn) {
                return Err(ParseError {
                    span: sp,
                    msg: format!("unknown parameter {pn} in split expression"),
                });
            }
            name = Some(pn);
        }
        _ => return p.err("expected split-expression term"),
    }
    if p.peek() == &Tok::Slash {
        p.next();
        match *p.peek() {
            Tok::Int(n) if n != 0 => {
                p.next();
                coeff /= Rational::int(n as i128);
            }
            _ => return p.err("expected non-zero integer divisor"),
        }
    }
    Ok((name, coeff))
}

// ---------------------------------------------------------------------------
// Pretty-printer
// ---------------------------------------------------------------------------

/// Renders a [`Program`] as parseable DSL text (no directives).
pub fn print_program(program: &Program) -> String {
    print_kernel_with(program, None, &[], None, &[])
}

/// Renders a full [`KernelFile`] (program + directives) as DSL text.
pub fn print_kernel(kernel: &KernelFile) -> String {
    print_kernel_with(
        &kernel.program,
        kernel.analyze.as_deref(),
        &kernel.defaults,
        kernel.split.as_ref(),
        &kernel.schedule,
    )
}

fn print_kernel_with(
    program: &Program,
    analyze: Option<&str>,
    defaults: &[(String, i64)],
    split: Option<&(String, ParamExpr)>,
    schedule: &[TileDirective],
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "kernel {}({}) {{\n",
        program.name,
        program.params.join(", ")
    ));
    for a in &program.arrays {
        if a.extents.is_empty() {
            out.push_str(&format!("  scalar {};\n", a.name));
        } else {
            let ext: Vec<String> = a
                .extents
                .iter()
                .map(|e| format!("[{}]", render_aff(program, e)))
                .collect();
            out.push_str(&format!("  array {}{};\n", a.name, ext.concat()));
        }
    }
    if let Some(s) = analyze {
        out.push_str(&format!("  analyze {s};\n"));
    }
    if !defaults.is_empty() {
        let ds: Vec<String> = defaults.iter().map(|(n, v)| format!("{n} = {v}")).collect();
        out.push_str(&format!("  default {};\n", ds.join(", ")));
    }
    if let Some((v, e)) = split {
        out.push_str(&format!("  split {v} = {e};\n"));
    }
    if !schedule.is_empty() {
        out.push_str("  schedule {\n");
        for d in schedule {
            match d.size {
                Some(s) => out.push_str(&format!("    tile {} {s};\n", d.loop_name)),
                None => out.push_str(&format!("    tile {};\n", d.loop_name)),
            }
        }
        out.push_str("  }\n");
    }
    out.push('\n');
    for step in &program.body {
        print_step(program, step, 1, &mut out);
    }
    out.push_str("}\n");
    out
}

fn print_step(program: &Program, step: &Step, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match step {
        Step::Stmt(id) => {
            let s = program.stmt(*id);
            let ws: Vec<String> = s.writes.iter().map(|a| render_access(program, a)).collect();
            let rs: Vec<String> = s.reads.iter().map(|a| render_access(program, a)).collect();
            out.push_str(&format!(
                "{pad}{}: {} = op({});\n",
                s.name,
                ws.join(", "),
                rs.join(", ")
            ));
        }
        Step::Loop(l) => {
            let lo = render_bound(program, &l.lo, "max");
            let hi = render_bound(program, &l.hi, "min");
            let rev = if l.reverse { "reverse " } else { "" };
            let step_s = match l.step {
                LoopStep::One => String::new(),
                LoopStep::Const(c) => format!(" step {c}"),
                LoopStep::Param(p) => format!(" step {}", program.params[p.0 as usize]),
            };
            out.push_str(&format!(
                "{pad}for {} in {rev}{lo}..{hi}{step_s} {{\n",
                l.name
            ));
            for s in &l.body {
                print_step(program, s, depth + 1, out);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
    }
}

fn render_bound(program: &Program, bounds: &[Aff], combiner: &str) -> String {
    if bounds.len() == 1 {
        render_aff(program, &bounds[0])
    } else {
        let parts: Vec<String> = bounds.iter().map(|b| render_aff(program, b)).collect();
        format!("{combiner}({})", parts.join(", "))
    }
}

fn render_aff(program: &Program, a: &Aff) -> String {
    a.display_with(&|d| program.loop_info(d).name.clone(), &|p| {
        program.params[p.0 as usize].clone()
    })
}

fn render_access(program: &Program, a: &Access) -> String {
    let name = &program.arrays[a.array.0 as usize].name;
    let idx: Vec<String> = a
        .idx
        .iter()
        .map(|e| format!("[{}]", render_aff(program, e)))
        .collect();
    format!("{name}{}", idx.concat())
}

// ---------------------------------------------------------------------------
// Structural equality
// ---------------------------------------------------------------------------

/// Compares two programs structurally (everything except the opaque
/// semantic closures). `None` means equal; `Some(diff)` names the first
/// difference — the form round-trip tests want for failure messages.
pub fn structural_diff(a: &Program, b: &Program) -> Option<String> {
    if a.name != b.name {
        return Some(format!("name: {} vs {}", a.name, b.name));
    }
    if a.params != b.params {
        return Some(format!("params: {:?} vs {:?}", a.params, b.params));
    }
    if a.num_dims != b.num_dims {
        return Some(format!("num_dims: {} vs {}", a.num_dims, b.num_dims));
    }
    if a.arrays.len() != b.arrays.len() {
        return Some(format!(
            "array count: {} vs {}",
            a.arrays.len(),
            b.arrays.len()
        ));
    }
    for (x, y) in a.arrays.iter().zip(&b.arrays) {
        if x.name != y.name || x.extents != y.extents {
            return Some(format!("array {} vs {}", x.name, y.name));
        }
    }
    if a.loops.len() != b.loops.len() {
        return Some(format!(
            "loop count: {} vs {}",
            a.loops.len(),
            b.loops.len()
        ));
    }
    for (i, (x, y)) in a.loops.iter().zip(&b.loops).enumerate() {
        if x.name != y.name
            || x.lo != y.lo
            || x.hi != y.hi
            || x.step != y.step
            || x.reverse != y.reverse
            || x.outer != y.outer
        {
            return Some(format!("loop #{i} ({} vs {})", x.name, y.name));
        }
    }
    if a.stmts.len() != b.stmts.len() {
        return Some(format!(
            "statement count: {} vs {}",
            a.stmts.len(),
            b.stmts.len()
        ));
    }
    for (i, (x, y)) in a.stmts.iter().zip(&b.stmts).enumerate() {
        if x.name != y.name
            || x.dims != y.dims
            || x.reads != y.reads
            || x.writes != y.writes
            || x.position != y.position
        {
            return Some(format!("statement #{i} ({} vs {})", x.name, y.name));
        }
    }
    steps_diff(&a.body, &b.body)
}

/// `parse(print(p))` is structurally identical to `p` (round-trip check).
///
/// # Panics
/// Panics with the first structural difference when the round-trip fails.
pub fn assert_roundtrip(program: &Program) {
    let text = print_program(program);
    let reparsed = parse_program(&text)
        .unwrap_or_else(|e| panic!("printed program failed to parse: {e}\n---\n{text}"));
    if let Some(diff) = structural_diff(program, &reparsed) {
        panic!("round-trip mismatch: {diff}\n---\n{text}");
    }
    // The synthesized closures must honour the declared accesses.
}

/// Compares two full [`KernelFile`]s: the program structurally plus every
/// directive (`analyze`, `default`, `split`, `schedule`). `None` means
/// equal; `Some(diff)` names the first difference.
pub fn kernel_diff(a: &KernelFile, b: &KernelFile) -> Option<String> {
    if let Some(d) = structural_diff(&a.program, &b.program) {
        return Some(d);
    }
    if a.analyze != b.analyze {
        return Some(format!("analyze: {:?} vs {:?}", a.analyze, b.analyze));
    }
    if a.defaults != b.defaults {
        return Some(format!("defaults: {:?} vs {:?}", a.defaults, b.defaults));
    }
    if a.split != b.split {
        return Some(format!("split: {:?} vs {:?}", a.split, b.split));
    }
    if a.schedule != b.schedule {
        return Some(format!("schedule: {:?} vs {:?}", a.schedule, b.schedule));
    }
    None
}

/// `parse(print(k))` preserves the program *and* all directives.
///
/// # Panics
/// Panics with the first difference when the round-trip fails.
pub fn assert_kernel_roundtrip(kernel: &KernelFile) {
    let text = print_kernel(kernel);
    let reparsed = parse_kernel(&text)
        .unwrap_or_else(|e| panic!("printed kernel failed to parse: {e}\n---\n{text}"));
    if let Some(diff) = kernel_diff(kernel, &reparsed) {
        panic!("kernel round-trip mismatch: {diff}\n---\n{text}");
    }
}

fn steps_diff(a: &[Step], b: &[Step]) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!("body length: {} vs {}", a.len(), b.len()));
    }
    for (x, y) in a.iter().zip(b) {
        match (x, y) {
            (Step::Stmt(i), Step::Stmt(j)) => {
                if i != j {
                    return Some(format!("schedule stmt {i:?} vs {j:?}"));
                }
            }
            (Step::Loop(l), Step::Loop(m)) => {
                if l.dim != m.dim {
                    return Some(format!("schedule loop {:?} vs {:?}", l.dim, m.dim));
                }
                if let Some(d) = steps_diff(&l.body, &m.body) {
                    return Some(d);
                }
            }
            _ => return Some("schedule shape (loop vs stmt)".to_string()),
        }
    }
    None
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::interp::validate_accesses;

    const MINI: &str = r#"
# miniature MGS core
kernel mini(M, N) {
  array A[M][N];
  array R[N][N];
  scalar acc;
  analyze SU;
  default M = 7, N = 5;

  for k in 0..N {
    S0: R[k][k] = op(acc);
    for j in k + 1..N {
      for i in 0..M {
        SU: A[i][j] = op(A[i][k], A[i][j], R[k][j]);
      }
    }
  }
}
"#;

    #[test]
    fn parses_mini_kernel() {
        let k = parse_kernel(MINI).expect("parses");
        let p = &k.program;
        assert_eq!(p.name, "mini");
        assert_eq!(p.params, vec!["M", "N"]);
        assert_eq!(p.arrays.len(), 3);
        assert_eq!(p.stmts.len(), 2);
        assert_eq!(p.num_dims, 3);
        assert_eq!(k.analyze.as_deref(), Some("SU"));
        assert_eq!(k.default_params().unwrap(), vec![7, 5]);
        assert_eq!(p.stmt(p.stmt_id("SU").unwrap()).dims.len(), 3);
    }

    #[test]
    fn parsed_programs_execute_consistently() {
        let k = parse_kernel(MINI).unwrap();
        let n = validate_accesses(&k.program, &[7, 5]).expect("declared == performed");
        assert!(n > 0);
    }

    #[test]
    fn mini_round_trips() {
        let k = parse_kernel(MINI).unwrap();
        assert_roundtrip(&k.program);
    }

    #[test]
    fn strided_reverse_and_multi_bounds_round_trip() {
        let mut b = ProgramBuilder::new("shapes", &["M", "N", "B"]);
        let a = b.array("A", &[b.p("M"), b.p("N")]);
        let j0 = b.open_strided("j0", b.c(0), b.p("N"), LoopStep::Param(b.pid("B")));
        let j = b.open_general(
            "j",
            vec![b.d(j0), b.c(1)],
            vec![b.d(j0) + b.p("B"), b.p("N")],
            LoopStep::Const(2),
            false,
        );
        let k = b.open_rev("k", b.c(0), b.d(j) + 1);
        let acc = Access::new(a, vec![b.d(k), b.d(j)]);
        b.stmt("S", vec![acc.clone()], vec![acc], |_c| ());
        b.close();
        b.close();
        b.close();
        let p = b.finish();
        let text = print_program(&p);
        assert!(text.contains("step B") && text.contains("step 2"), "{text}");
        assert!(text.contains("reverse") && text.contains("min("), "{text}");
        assert_roundtrip(&p);
    }

    #[test]
    fn split_directive_parses_and_prints() {
        let src = "kernel s(N) { scalar x; split Ms = N/2 - 1; S: x = op(); }";
        let k = parse_kernel(src).unwrap();
        let (var, e) = k.split.as_ref().expect("split parsed");
        assert_eq!(var, "Ms");
        assert_eq!(e.eval_floor(&[("N".to_string(), 11)]), 4);
        assert_eq!(e.eval_floor(&[("N".to_string(), 12)]), 5);
        let printed = print_kernel(&k);
        assert!(printed.contains("split Ms = N/2 - 1;"), "{printed}");
        let again = parse_kernel(&printed).unwrap();
        assert_eq!(again.split, k.split);
    }

    #[test]
    fn schedule_block_parses_and_prints() {
        let src = "kernel t(M, N) {\n  array A[M][N];\n  schedule { tile i 8; tile j; }\n  for i in 0..M {\n    for j in 0..N {\n      S: A[i][j] = op();\n    }\n  }\n}";
        let k = parse_kernel(src).unwrap();
        assert_eq!(
            k.schedule,
            vec![
                TileDirective {
                    loop_name: "i".to_string(),
                    size: Some(8)
                },
                TileDirective {
                    loop_name: "j".to_string(),
                    size: None
                },
            ]
        );
        let printed = print_kernel(&k);
        assert!(
            printed.contains("tile i 8;") && printed.contains("tile j;"),
            "{printed}"
        );
        let again = parse_kernel(&printed).unwrap();
        assert_eq!(again.schedule, k.schedule);
    }

    #[test]
    fn schedule_block_is_validated() {
        let err = parse_kernel(
            "kernel t(N) {\n  array A[N];\n  schedule { tile z 4; }\n  for i in 0..N { S: A[i] = op(); }\n}",
        )
        .unwrap_err();
        assert!(err.msg.contains("`tile z` names no loop"), "{err}");
        assert_eq!(err.span.line, 3);

        let err = parse_kernel(
            "kernel t(N) { array A[N]; schedule { tile i 2; } for i in reverse 0..N { S: A[i] = op(); } }",
        )
        .unwrap_err();
        assert!(err.msg.contains("strided or reversed"), "{err}");

        let err = parse_kernel(
            "kernel t(N) { array A[N]; schedule { tile i 2; tile i 4; } for i in 0..N { S: A[i] = op(); } }",
        )
        .unwrap_err();
        assert!(err.msg.contains("duplicate `tile`"), "{err}");

        let err = parse_kernel(
            "kernel t(N) { array A[N]; schedule { tile i 0; } for i in 0..N { S: A[i] = op(); } }",
        )
        .unwrap_err();
        assert!(err.msg.contains("must be ≥ 1"), "{err}");
    }

    #[test]
    fn errors_carry_spans() {
        // Unknown array on line 3.
        let src = "kernel e(N) {\n  scalar x;\n  S: y = op();\n}";
        let err = parse_kernel(src).unwrap_err();
        assert_eq!(err.span.line, 3);
        assert!(err.msg.contains("unknown array y"), "{err}");

        let err = parse_kernel("kernel e(N) { array A[N]; S: A[i] = op(); }").unwrap_err();
        assert!(err.msg.contains("unknown variable i"), "{err}");

        let err = parse_kernel("kernel e(N) { array A[N]; S: A = op(); }").unwrap_err();
        assert!(err.msg.contains("rank"), "{err}");

        let err = parse_kernel("kernel e(N) {").unwrap_err();
        assert_eq!(err.span.line, 1);
    }

    #[test]
    fn duplicate_declarations_rejected() {
        assert!(parse_kernel("kernel d(N, N) { scalar x; S: x = op(); }")
            .unwrap_err()
            .msg
            .contains("duplicate parameter"));
        assert!(
            parse_kernel("kernel d(N) { scalar x; scalar x; S: x = op(); }")
                .unwrap_err()
                .msg
                .contains("duplicate array")
        );
        assert!(
            parse_kernel("kernel d(N) { scalar x; S: x = op(); S: x = op(); }")
                .unwrap_err()
                .msg
                .contains("duplicate statement")
        );
        assert!(parse_kernel(
            "kernel d(N) { scalar x; default N = 4; default N = 5; S: x = op(); }"
        )
        .unwrap_err()
        .msg
        .contains("duplicate `default` for parameter N"));
    }

    #[test]
    fn analyze_must_name_a_statement() {
        let err = parse_kernel("kernel a(N) {\n  scalar x;\n  analyze Q;\n  S: x = op();\n}")
            .unwrap_err();
        assert!(err.msg.contains("`analyze Q` names no statement"), "{err}");
        // The span points at the directive, not the kernel header.
        assert_eq!(err.span.line, 3);
    }

    #[test]
    fn shadowed_loop_names_resolve_innermost() {
        let src =
            "kernel sh(M) { array A[M]; for i in 0..M { for i in 0..M { S: A[i] = op(); } } }";
        let p = parse_program(src).unwrap();
        let s = p.stmt(p.stmt_id("S").unwrap());
        // The subscript references the inner dim.
        assert_eq!(s.writes[0].idx[0], Aff::dim(s.dims[1]));
    }
}
