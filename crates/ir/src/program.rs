//! Loop-tree programs with doubly-described statements.
//!
//! A [`Program`] is a tree of loops and statements in *schedule order* (the
//! sequential execution order of the source listing). Each [`Statement`]
//! carries:
//!
//! 1. **declared accesses** — affine read/write subscripts, consumed by the
//!    symbolic analyses (dependence projections, hourglass detection), and
//! 2. **a semantic closure** — the actual f64 computation, executed by the
//!    interpreter, which reports every concrete access it performs.
//!
//! [`crate::interp::validate_accesses`] checks the two views coincide
//! instance-by-instance, so the symbolic side can be trusted to describe the
//! executable side exactly (this replaces trusting an external polyhedral
//! front-end).

use crate::affine::{Aff, DimId, ParamId};
use crate::interp::ExecCtx;
use std::fmt;
use std::sync::Arc;

/// Identifier of an array (or scalar: a 0-dimensional array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub u32);

/// Identifier of a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub u32);

/// Declared array: name and parametric extents (affine in parameters only).
#[derive(Debug, Clone)]
pub struct ArrayDecl {
    /// Array name (`"A"`, `"tau"`, …).
    pub name: String,
    /// Extents, outermost first; empty for scalars.
    pub extents: Vec<Aff>,
}

/// An affine array access `array[idx₀][idx₁]…`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// Accessed array.
    pub array: ArrayId,
    /// Affine subscript per array axis.
    pub idx: Vec<Aff>,
}

impl Access {
    /// Builds an access.
    pub fn new(array: ArrayId, idx: Vec<Aff>) -> Access {
        Access { array, idx }
    }
}

/// The semantic closure type: executes one statement instance through the
/// interpreter context (which records the performed accesses).
pub type ComputeFn = Arc<dyn Fn(&mut ExecCtx<'_>) + Send + Sync>;

/// A statement of the program.
#[derive(Clone)]
pub struct Statement {
    /// Statement name (`"SR"`, `"SU"`, …).
    pub name: String,
    /// Enclosing loop dimensions, outermost first.
    pub dims: Vec<DimId>,
    /// Declared read accesses (order matches the closure's reads).
    pub reads: Vec<Access>,
    /// Declared write accesses.
    pub writes: Vec<Access>,
    /// Executable semantics.
    pub compute: ComputeFn,
    /// Pre-order position in the program tree (schedule order key).
    pub position: u32,
}

impl fmt::Debug for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Statement")
            .field("name", &self.name)
            .field("dims", &self.dims)
            .field("reads", &self.reads)
            .field("writes", &self.writes)
            .field("position", &self.position)
            .finish_non_exhaustive()
    }
}

/// Loop step: `1`, a compile-time constant, or a parameter (tiled loops
/// step by the block size `B`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopStep {
    /// Unit step.
    One,
    /// Constant step (> 0).
    Const(i64),
    /// Parameter-valued step (> 0 at runtime).
    Param(ParamId),
}

/// A counted loop `for dim in [max(lo…), min(hi…)) step s`, optionally
/// iterated in reverse (the paper's V2Q kernel runs `k` downward).
#[derive(Clone)]
pub struct Loop {
    /// Dimension bound by this loop.
    pub dim: DimId,
    /// Loop-variable name.
    pub name: String,
    /// Lower bounds; the effective bound is their maximum.
    pub lo: Vec<Aff>,
    /// Exclusive upper bounds; the effective bound is their minimum.
    pub hi: Vec<Aff>,
    /// Iteration step.
    pub step: LoopStep,
    /// Iterate from high to low when true.
    pub reverse: bool,
    /// Loop body in schedule order.
    pub body: Vec<Step>,
}

/// One schedule-order node: a nested loop or a statement.
#[derive(Debug, Clone)]
pub enum Step {
    /// A nested loop.
    Loop(Loop),
    /// A statement instance site.
    Stmt(StmtId),
}

impl fmt::Debug for Loop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Loop")
            .field("name", &self.name)
            .field("dim", &self.dim)
            .field("step", &self.step)
            .field("reverse", &self.reverse)
            .field("body_len", &self.body.len())
            .finish()
    }
}

/// A complete affine program.
pub struct Program {
    /// Program name.
    pub name: String,
    /// Parameter names, indexed by [`ParamId`].
    pub params: Vec<String>,
    /// Array declarations, indexed by [`ArrayId`].
    pub arrays: Vec<ArrayDecl>,
    /// Statements, indexed by [`StmtId`].
    pub stmts: Vec<Statement>,
    /// Top-level schedule.
    pub body: Vec<Step>,
    /// Number of loop dimensions allocated.
    pub num_dims: u32,
    /// Loop metadata indexed by [`DimId`]: (name, lo bounds, hi bounds, step, reverse).
    pub loops: Vec<LoopInfo>,
}

/// Metadata of one loop dimension (flattened from the tree for analyses).
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Loop-variable name.
    pub name: String,
    /// Lower bounds (max-combined).
    pub lo: Vec<Aff>,
    /// Exclusive upper bounds (min-combined).
    pub hi: Vec<Aff>,
    /// Step.
    pub step: LoopStep,
    /// Reverse iteration flag.
    pub reverse: bool,
    /// Enclosing dimension path of this loop (not including itself).
    pub outer: Vec<DimId>,
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Program")
            .field("name", &self.name)
            .field("params", &self.params)
            .field(
                "arrays",
                &self.arrays.iter().map(|a| &a.name).collect::<Vec<_>>(),
            )
            .field(
                "stmts",
                &self.stmts.iter().map(|s| &s.name).collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

impl Program {
    /// Looks up a parameter id by name.
    pub fn param_id(&self, name: &str) -> Option<ParamId> {
        self.params
            .iter()
            .position(|p| p == name)
            .map(|i| ParamId(i as u32))
    }

    /// Looks up an array id by name.
    pub fn array_id(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| ArrayId(i as u32))
    }

    /// Looks up a statement id by name.
    pub fn stmt_id(&self, name: &str) -> Option<StmtId> {
        self.stmts
            .iter()
            .position(|s| s.name == name)
            .map(|i| StmtId(i as u32))
    }

    /// The statement for an id.
    pub fn stmt(&self, id: StmtId) -> &Statement {
        &self.stmts[id.0 as usize]
    }

    /// The loop metadata for a dimension.
    pub fn loop_info(&self, d: DimId) -> &LoopInfo {
        &self.loops[d.0 as usize]
    }

    /// The pipeline's fallback analysis target when no `analyze` directive
    /// is given: the deepest statement, ties broken by schedule order —
    /// the dominant update of every kernel shipped here. The `iolb` CLI,
    /// the fuzz oracle, and the corpus replay all share this rule.
    pub fn default_analyze_stmt(&self) -> Option<StmtId> {
        self.stmts
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| (s.dims.len(), s.position))
            .map(|(i, _)| StmtId(i as u32))
    }

    /// Longest common enclosing-loop prefix of two statements.
    pub fn common_dims(&self, a: StmtId, b: StmtId) -> Vec<DimId> {
        let da = &self.stmt(a).dims;
        let db = &self.stmt(b).dims;
        let mut out = Vec::new();
        for (x, y) in da.iter().zip(db.iter()) {
            if x == y {
                out.push(*x);
            } else {
                break;
            }
        }
        out
    }

    /// Array extents evaluated at concrete parameter values.
    pub fn array_extents(&self, array: ArrayId, params: &[i64]) -> Vec<usize> {
        self.arrays[array.0 as usize]
            .extents
            .iter()
            .map(|e| {
                let v = e.eval_with(&|_| panic!("array extent uses a loop dim"), &|p| {
                    params[p.0 as usize]
                });
                assert!(v >= 0, "negative array extent");
                v as usize
            })
            .collect()
    }

    /// Flat length of an array at concrete parameters (1 for scalars).
    pub fn array_len(&self, array: ArrayId, params: &[i64]) -> usize {
        self.array_extents(array, params).iter().product()
    }

    /// Checked [`Program::array_len`]: `None` when an extent references a
    /// loop dimension or evaluates negative (malformed declaration), and a
    /// saturating product otherwise — `u64::MAX` means "overflows u64",
    /// which admission control treats as exceeding every finite budget
    /// instead of wrapping into a small bogus allocation size.
    pub fn try_array_len(&self, array: ArrayId, params: &[i64]) -> Option<u64> {
        let mut len = 1u64;
        for e in &self.arrays[array.0 as usize].extents {
            if !e.dim_terms().is_empty() {
                return None;
            }
            // i128 arithmetic: a sum of i64×i64 products cannot overflow
            // it, so huge parameters saturate instead of wrapping.
            let mut v = e.cst() as i128;
            for (p, c) in e.param_terms() {
                v += (*c as i128) * (params[p.0 as usize] as i128);
            }
            if v < 0 {
                return None;
            }
            len = len.saturating_mul(u64::try_from(v).unwrap_or(u64::MAX));
        }
        Some(len)
    }

    /// Row-major strides of an array at concrete parameters (the layout used
    /// by the interpreter's store and the trace sinks).
    pub fn array_strides(&self, array: ArrayId, params: &[i64]) -> Vec<usize> {
        let extents = self.array_extents(array, params);
        let mut st = vec![1usize; extents.len()];
        for k in (0..extents.len().saturating_sub(1)).rev() {
            st[k] = st[k + 1] * extents[k + 1];
        }
        st
    }
}

/// Incremental builder for [`Program`]s.
///
/// ```
/// use iolb_ir::{ProgramBuilder, Access, Aff};
/// let mut b = ProgramBuilder::new("axpy", &["N"]);
/// let x = b.array("x", &[b.p("N")]);
/// let y = b.array("y", &[b.p("N")]);
/// let i = b.open("i", b.c(0), b.p("N"));
/// let (xi, yi) = (Access::new(x, vec![b.d(i)]), Access::new(y, vec![b.d(i)]));
/// b.stmt("S", vec![xi, yi.clone()], vec![yi], move |c| {
///     let iv = c.v(0);
///     let v = 2.0 * c.rd(x, &[iv]) + c.rd(y, &[iv]);
///     c.wr(y, &[iv], v);
/// });
/// b.close();
/// let prog = b.finish();
/// assert_eq!(prog.stmts.len(), 1);
/// ```
pub struct ProgramBuilder {
    name: String,
    params: Vec<String>,
    arrays: Vec<ArrayDecl>,
    stmts: Vec<Statement>,
    loops: Vec<LoopInfo>,
    /// Stack of open loops; `usize::MAX` marks the top-level frame.
    frames: Vec<Frame>,
    next_pos: u32,
}

/// Header of a loop under construction: dimension, name, lower and upper
/// bounds, step, and the reverse flag.
type LoopHeader = (DimId, String, Vec<Aff>, Vec<Aff>, LoopStep, bool);

struct Frame {
    /// Loop under construction (None for the root frame).
    looph: Option<LoopHeader>,
    body: Vec<Step>,
}

impl ProgramBuilder {
    /// Starts a program with the given parameter names.
    pub fn new(name: &str, params: &[&str]) -> ProgramBuilder {
        ProgramBuilder {
            name: name.to_string(),
            params: params.iter().map(|s| s.to_string()).collect(),
            arrays: Vec::new(),
            stmts: Vec::new(),
            loops: Vec::new(),
            frames: vec![Frame {
                looph: None,
                body: Vec::new(),
            }],
            next_pos: 0,
        }
    }

    /// Affine constant.
    pub fn c(&self, v: i64) -> Aff {
        Aff::constant(v)
    }

    /// Affine parameter reference by name.
    ///
    /// # Panics
    /// Panics on unknown parameter names.
    pub fn p(&self, name: &str) -> Aff {
        Aff::param(self.pid(name))
    }

    /// Parameter id by name (for [`LoopStep::Param`] etc.).
    ///
    /// # Panics
    /// Panics on unknown parameter names.
    pub fn pid(&self, name: &str) -> ParamId {
        self.try_pid(name)
            .unwrap_or_else(|| panic!("unknown parameter {name}"))
    }

    /// Parameter id by name, or `None` when unknown (the parser's lookup).
    pub fn try_pid(&self, name: &str) -> Option<ParamId> {
        self.params
            .iter()
            .position(|p| p == name)
            .map(|i| ParamId(i as u32))
    }

    /// Affine loop-dimension reference.
    pub fn d(&self, d: DimId) -> Aff {
        Aff::dim(d)
    }

    /// Declares an array with the given parametric extents.
    pub fn array(&mut self, name: &str, extents: &[Aff]) -> ArrayId {
        self.arrays.push(ArrayDecl {
            name: name.to_string(),
            extents: extents.to_vec(),
        });
        ArrayId((self.arrays.len() - 1) as u32)
    }

    /// Declares a scalar (0-d array).
    pub fn scalar(&mut self, name: &str) -> ArrayId {
        self.array(name, &[])
    }

    /// Opens `for name in [lo, hi)`.
    pub fn open(&mut self, name: &str, lo: Aff, hi: Aff) -> DimId {
        self.open_general(name, vec![lo], vec![hi], LoopStep::One, false)
    }

    /// Opens a reversed loop (iterating `hi-1` down to `lo`).
    pub fn open_rev(&mut self, name: &str, lo: Aff, hi: Aff) -> DimId {
        self.open_general(name, vec![lo], vec![hi], LoopStep::One, true)
    }

    /// Opens a strided loop `for name in (lo..hi).step_by(step)`.
    pub fn open_strided(&mut self, name: &str, lo: Aff, hi: Aff, step: LoopStep) -> DimId {
        self.open_general(name, vec![lo], vec![hi], step, false)
    }

    /// Opens a loop with multiple bounds: `for name in [max(lo…), min(hi…))`.
    pub fn open_general(
        &mut self,
        name: &str,
        lo: Vec<Aff>,
        hi: Vec<Aff>,
        step: LoopStep,
        reverse: bool,
    ) -> DimId {
        assert!(!lo.is_empty() && !hi.is_empty(), "loop needs bounds");
        let dim = DimId(self.loops.len() as u32);
        let outer = self.current_dims();
        self.loops.push(LoopInfo {
            name: name.to_string(),
            lo: lo.clone(),
            hi: hi.clone(),
            step,
            reverse,
            outer,
        });
        self.frames.push(Frame {
            looph: Some((dim, name.to_string(), lo, hi, step, reverse)),
            body: Vec::new(),
        });
        dim
    }

    /// Closes the innermost open loop.
    ///
    /// # Panics
    /// Panics when no loop is open.
    pub fn close(&mut self) {
        let frame = self.frames.pop().expect("no open loop");
        let (dim, name, lo, hi, step, reverse) =
            frame.looph.expect("close called on the root frame");
        let l = Loop {
            dim,
            name,
            lo,
            hi,
            step,
            reverse,
            body: frame.body,
        };
        self.frames
            .last_mut()
            .expect("root frame always present")
            .body
            .push(Step::Loop(l));
    }

    /// Adds a statement at the current nesting.
    pub fn stmt(
        &mut self,
        name: &str,
        reads: Vec<Access>,
        writes: Vec<Access>,
        compute: impl Fn(&mut ExecCtx<'_>) + Send + Sync + 'static,
    ) -> StmtId {
        let id = StmtId(self.stmts.len() as u32);
        self.stmts.push(Statement {
            name: name.to_string(),
            dims: self.current_dims(),
            reads,
            writes,
            compute: Arc::new(compute),
            position: self.next_pos,
        });
        self.next_pos += 1;
        self.frames
            .last_mut()
            .expect("root frame always present")
            .body
            .push(Step::Stmt(id));
        id
    }

    /// Current enclosing dimensions, outermost first.
    pub fn current_dims(&self) -> Vec<DimId> {
        self.frames
            .iter()
            .filter_map(|f| f.looph.as_ref().map(|(d, ..)| *d))
            .collect()
    }

    /// Finalizes the program.
    ///
    /// # Panics
    /// Panics if loops remain open.
    pub fn finish(mut self) -> Program {
        assert_eq!(self.frames.len(), 1, "unclosed loops at finish()");
        let root = self.frames.pop().unwrap();
        Program {
            name: self.name,
            params: self.params,
            arrays: self.arrays,
            stmts: self.stmts,
            body: root.body,
            num_dims: self.loops.len() as u32,
            loops: self.loops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Program {
        // for k in 0..N { S0; for i in 0..M { S1 } }
        let mut b = ProgramBuilder::new("toy", &["M", "N"]);
        let a = b.array("A", &[b.p("M")]);
        let s = b.scalar("acc");
        let k = b.open("k", b.c(0), b.p("N"));
        b.stmt("S0", vec![], vec![Access::new(s, vec![])], move |c| {
            c.wr(s, &[], 0.0)
        });
        let i = b.open("i", b.c(0), b.p("M"));
        let rd = Access::new(a, vec![b.d(i)]);
        let _ = k;
        b.stmt(
            "S1",
            vec![rd, Access::new(s, vec![])],
            vec![Access::new(s, vec![])],
            move |c| {
                let v = c.rd(a, &[c.v(1)]) + c.rd(s, &[]);
                c.wr(s, &[], v);
            },
        );
        b.close();
        b.close();
        b.finish()
    }

    #[test]
    fn builder_shapes() {
        let p = toy();
        assert_eq!(p.params, vec!["M", "N"]);
        assert_eq!(p.stmts.len(), 2);
        assert_eq!(p.stmt(StmtId(0)).dims.len(), 1);
        assert_eq!(p.stmt(StmtId(1)).dims.len(), 2);
        assert_eq!(p.num_dims, 2);
        assert_eq!(p.loop_info(DimId(1)).outer, vec![DimId(0)]);
        assert_eq!(p.stmt_id("S1"), Some(StmtId(1)));
        assert_eq!(p.array_id("A"), Some(ArrayId(0)));
        assert_eq!(p.param_id("N"), Some(ParamId(1)));
    }

    #[test]
    fn common_dims_prefix() {
        let p = toy();
        let c = p.common_dims(StmtId(0), StmtId(1));
        assert_eq!(c, vec![DimId(0)]);
        assert_eq!(p.common_dims(StmtId(1), StmtId(1)).len(), 2);
    }

    #[test]
    fn array_extents_evaluate() {
        let p = toy();
        assert_eq!(p.array_extents(ArrayId(0), &[7, 3]), vec![7]);
        assert_eq!(p.array_len(ArrayId(1), &[7, 3]), 1);
    }

    #[test]
    #[should_panic(expected = "unclosed loops")]
    fn unclosed_loop_panics() {
        let mut b = ProgramBuilder::new("bad", &["N"]);
        b.open("k", b.c(0), b.p("N"));
        let _ = b.finish();
    }

    #[test]
    fn positions_are_schedule_order() {
        let p = toy();
        assert!(p.stmt(StmtId(0)).position < p.stmt(StmtId(1)).position);
    }
}
