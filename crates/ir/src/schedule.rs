//! Loop-tiling schedule transformations.
//!
//! [`tile_program`] rewrites a [`Program`]'s loop tree so that statement
//! instances are enumerated in *blocked* order while every instance keeps
//! its original iteration vector, declared accesses, and semantic closure.
//! This is the upper-bound half of the tightness harness: the transformed
//! program is executed (or its instances enumerated) to produce a reordered
//! schedule whose measured I/O is compared against the derived lower bounds.
//!
//! The transformation is classical strip-mine + interchange:
//!
//! 1. **Strip-mine** every loop named by a [`TileSpec`]: `for v in lo..hi`
//!    becomes `for v_t in lo..hi step T { for v in v_t..min(hi, v_t + T) }`.
//!    This alone never reorders anything.
//! 2. **Hoist** each tile loop `v_t` outward: while its parent is a
//!    non-tile loop `w` whose body is exactly `[v_t]` and none of `v_t`'s
//!    bounds reference `w`'s dimension, interchange the two. Tile loops
//!    never hoist past each other, so they end up outermost in their
//!    original relative order — the standard `i_t j_t … i j …` tile shape
//!    on perfect nests (imperfect nests simply hoist as far as the
//!    statement placement allows; triangular bounds stop hoisting at the
//!    loop they reference).
//!
//! The transformation preserves the *instance multiset* by construction
//! (each original loop still enumerates exactly its original index set),
//! which a property test pins down. It does **not** check dependence
//! legality of the interchange — downstream consumers do: the pebble game
//! rejects non-topological schedules, and the interpreter cross-check
//! compares final stores against the untiled execution.
//!
//! Statements are shared with the source program (their closures are
//! `Arc`s), keep their original `dims` vectors, and therefore produce
//! identical iteration vectors: the new tile dimensions are pure control
//! structure that no access ever references.

use crate::affine::{Aff, DimId};
use crate::interp::for_each_instance;
use crate::program::{Loop, LoopInfo, LoopStep, Program, Step, StmtId};

/// One tiling directive: tile every loop with this name by `size`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileSpec {
    /// Loop-variable name (a program may reuse a name at several nesting
    /// sites; all of them are tiled).
    pub loop_name: String,
    /// Tile size (≥ 1; size 1 turns the tile loop into a pure interchange
    /// driver).
    pub size: i64,
}

impl TileSpec {
    /// Builds a spec.
    pub fn new(loop_name: &str, size: i64) -> TileSpec {
        TileSpec {
            loop_name: loop_name.to_string(),
            size,
        }
    }
}

/// Applies strip-mine + hoist tiling to every loop named by `tiles`.
///
/// The returned program enumerates exactly the same statement instances
/// (same statements, same iteration vectors, same declared and performed
/// accesses) in blocked order. Loops are shared by name: a spec tiles every
/// loop carrying that name.
///
/// # Errors
/// Rejects empty/duplicate/unknown loop names, non-positive sizes, and
/// loops that are strided or reversed (only unit-step forward loops tile).
pub fn tile_program(program: &Program, tiles: &[TileSpec]) -> Result<Program, String> {
    if tiles.is_empty() {
        return Err("tile_program needs at least one TileSpec".to_string());
    }
    for (i, t) in tiles.iter().enumerate() {
        if t.size < 1 {
            return Err(format!("tile size for {} must be ≥ 1", t.loop_name));
        }
        if tiles[..i].iter().any(|u| u.loop_name == t.loop_name) {
            return Err(format!("duplicate tile directive for loop {}", t.loop_name));
        }
        let named: Vec<&LoopInfo> = program
            .loops
            .iter()
            .filter(|l| l.name == t.loop_name)
            .collect();
        if named.is_empty() {
            let known: Vec<&str> = program.loops.iter().map(|l| l.name.as_str()).collect();
            return Err(format!(
                "no loop named {} (program has: {})",
                t.loop_name,
                known.join(", ")
            ));
        }
        for l in named {
            if l.step != LoopStep::One || l.reverse {
                return Err(format!(
                    "loop {} is strided or reversed — only unit-step forward loops tile",
                    t.loop_name
                ));
            }
        }
    }

    // Pass 1: strip-mine matching loops, allocating tile dims past the
    // original dim space so statement metadata stays untouched.
    let mut next_dim = program.num_dims;
    let mut tile_dims: Vec<(DimId, LoopStep)> = Vec::new();
    let body: Vec<Step> = program
        .body
        .iter()
        .map(|s| strip_step(s, tiles, &mut next_dim, &mut tile_dims))
        .collect();

    // Pass 2: hoist tile loops outward.
    let is_tile = |d: DimId| tile_dims.iter().any(|&(t, _)| t == d);
    let body: Vec<Step> = body.into_iter().map(|s| hoist_step(s, &is_tile)).collect();

    // Pass 3: rebuild the flat loop-metadata table from the final tree.
    let mut loops: Vec<LoopInfo> = program.loops.clone();
    loops.resize(
        next_dim as usize,
        LoopInfo {
            name: String::new(),
            lo: Vec::new(),
            hi: Vec::new(),
            step: LoopStep::One,
            reverse: false,
            outer: Vec::new(),
        },
    );
    let mut stack: Vec<DimId> = Vec::new();
    for s in &body {
        refresh_loop_info(s, &mut loops, &mut stack);
    }

    Ok(Program {
        name: program.name.clone(),
        params: program.params.clone(),
        arrays: program.arrays.clone(),
        stmts: program.stmts.clone(),
        body,
        num_dims: next_dim,
        loops,
    })
}

/// Strip-mines one step (recursively).
fn strip_step(
    step: &Step,
    tiles: &[TileSpec],
    next_dim: &mut u32,
    tile_dims: &mut Vec<(DimId, LoopStep)>,
) -> Step {
    match step {
        Step::Stmt(id) => Step::Stmt(*id),
        Step::Loop(l) => {
            let body: Vec<Step> = l
                .body
                .iter()
                .map(|s| strip_step(s, tiles, next_dim, tile_dims))
                .collect();
            let spec = tiles.iter().find(|t| t.loop_name == l.name);
            match spec {
                None => Step::Loop(Loop {
                    dim: l.dim,
                    name: l.name.clone(),
                    lo: l.lo.clone(),
                    hi: l.hi.clone(),
                    step: l.step,
                    reverse: l.reverse,
                    body,
                }),
                Some(t) => {
                    let tdim = DimId(*next_dim);
                    *next_dim += 1;
                    let tstep = if t.size == 1 {
                        LoopStep::One
                    } else {
                        LoopStep::Const(t.size)
                    };
                    tile_dims.push((tdim, tstep));
                    // Intra-tile loop: runs v_t .. min(orig his…, v_t + T).
                    let mut hi = l.hi.clone();
                    hi.push(Aff::dim(tdim) + t.size);
                    let intra = Loop {
                        dim: l.dim,
                        name: l.name.clone(),
                        lo: vec![Aff::dim(tdim)],
                        hi,
                        step: LoopStep::One,
                        reverse: false,
                        body,
                    };
                    Step::Loop(Loop {
                        dim: tdim,
                        name: format!("{}_t", l.name),
                        lo: l.lo.clone(),
                        hi: l.hi.clone(),
                        step: tstep,
                        reverse: false,
                        body: vec![Step::Loop(intra)],
                    })
                }
            }
        }
    }
}

/// Hoists tile loops bottom-up.
fn hoist_step(step: Step, is_tile: &impl Fn(DimId) -> bool) -> Step {
    match step {
        Step::Stmt(id) => Step::Stmt(id),
        Step::Loop(mut l) => {
            l.body = l.body.into_iter().map(|s| hoist_step(s, is_tile)).collect();
            if is_tile(l.dim) {
                // Tile loops never hoist past each other: their original
                // relative order is the outer tile-band order.
                Step::Loop(l)
            } else {
                Step::Loop(rotate(l, is_tile))
            }
        }
    }
}

/// While non-tile `w`'s body is exactly one tile loop whose bounds do not
/// reference `w.dim`, interchange the two. Recurses because after one
/// rotation the sunken `w` may face another singleton tile loop.
fn rotate(mut w: Loop, is_tile: &impl Fn(DimId) -> bool) -> Loop {
    let can = match w.body.as_slice() {
        [Step::Loop(v)] => is_tile(v.dim) && !bounds_use_dim(v, w.dim),
        _ => false,
    };
    if !can {
        return w;
    }
    let Some(Step::Loop(mut v)) = w.body.pop() else {
        unreachable!("checked singleton loop body");
    };
    w.body = std::mem::take(&mut v.body);
    let sunk = rotate(w, is_tile);
    v.body = vec![Step::Loop(sunk)];
    v
}

/// True when any bound of `l` references dimension `d`.
fn bounds_use_dim(l: &Loop, d: DimId) -> bool {
    l.lo.iter().chain(l.hi.iter()).any(|a| a.dim_coeff(d) != 0)
}

/// Rewrites `loops[dim]` entries from the final tree shape (bounds and
/// outer chains change under strip-mining and interchange).
fn refresh_loop_info(step: &Step, loops: &mut [LoopInfo], stack: &mut Vec<DimId>) {
    if let Step::Loop(l) = step {
        loops[l.dim.0 as usize] = LoopInfo {
            name: l.name.clone(),
            lo: l.lo.clone(),
            hi: l.hi.clone(),
            step: l.step,
            reverse: l.reverse,
            outer: stack.clone(),
        };
        stack.push(l.dim);
        for s in &l.body {
            refresh_loop_info(s, loops, stack);
        }
        stack.pop();
    }
}

/// Enumerates `(stmt, iv)` for every statement instance in schedule order —
/// the iteration vector is the statement's own `dims` slice, so tiled and
/// untiled enumerations of the same program yield identical multisets
/// (property-tested) in different orders.
pub fn enumerate_instances(program: &Program, params: &[i64]) -> Vec<(StmtId, Vec<i32>)> {
    let mut out = Vec::new();
    for_each_instance(program, params, |stmt, dims| {
        let s = program.stmt(stmt);
        out.push((
            stmt,
            s.dims.iter().map(|d| dims[d.0 as usize] as i32).collect(),
        ));
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    const GEMM_SPLIT: &str = "
kernel gemm_split(M, N, K) {
  array A[M][K];
  array B[K][N];
  array C[M][N];

  for i in 0..M {
    for j in 0..N {
      Cz: C[i][j] = op();
    }
  }
  for i in 0..M {
    for j in 0..N {
      for k in 0..K {
        SU: C[i][j] = op(A[i][k], B[k][j], C[i][j]);
      }
    }
  }
}
";

    fn sorted(mut v: Vec<(StmtId, Vec<i32>)>) -> Vec<(StmtId, Vec<i32>)> {
        v.sort();
        v
    }

    #[test]
    fn tiling_preserves_instance_multiset() {
        let p = parse_program(GEMM_SPLIT).unwrap();
        let tiled = tile_program(
            &p,
            &[
                TileSpec::new("i", 3),
                TileSpec::new("j", 2),
                TileSpec::new("k", 1),
            ],
        )
        .unwrap();
        let params = [7, 5, 4];
        let a = enumerate_instances(&p, &params);
        let b = enumerate_instances(&tiled, &params);
        assert_eq!(a.len(), b.len());
        assert_ne!(a, b, "tiling must actually reorder this nest");
        assert_eq!(sorted(a), sorted(b));
    }

    #[test]
    fn perfect_nest_hoists_tile_band_outermost() {
        let p = parse_program(GEMM_SPLIT).unwrap();
        let tiled = tile_program(&p, &[TileSpec::new("i", 4), TileSpec::new("j", 4)]).unwrap();
        // Update nest must now open with i_t then j_t (tile band in the
        // original loop order), then the intra loops.
        let Step::Loop(outer) = &tiled.body[1] else {
            panic!("update nest is a loop");
        };
        assert_eq!(outer.name, "i_t");
        let Step::Loop(second) = &outer.body[0] else {
            panic!("nested loop");
        };
        assert_eq!(second.name, "j_t");
        let Step::Loop(third) = &second.body[0] else {
            panic!("nested loop");
        };
        assert_eq!(third.name, "i");
        // Loop metadata got refreshed: j_t's outer chain contains i_t only.
        let jt = tiled
            .loops
            .iter()
            .position(|l| l.name == "j_t" && !l.outer.is_empty())
            .map(|i| &tiled.loops[i])
            .expect("j_t metadata");
        assert_eq!(jt.outer.len(), 1);
    }

    #[test]
    fn triangular_bound_stops_hoisting() {
        // for k { for j in k+1..N { for i { S } } }: tiling j cannot hoist
        // j_t past k (its bounds reference k).
        let src = "
kernel tri(M, N) {
  array A[M][N];
  for k in 0..N {
    for j in k + 1..N {
      for i in 0..M {
        S: A[i][j] = op(A[i][k]);
      }
    }
  }
}
";
        let p = parse_program(src).unwrap();
        let tiled = tile_program(&p, &[TileSpec::new("j", 2)]).unwrap();
        let Step::Loop(k) = &tiled.body[0] else {
            panic!()
        };
        assert_eq!(k.name, "k");
        let Step::Loop(jt) = &k.body[0] else { panic!() };
        assert_eq!(jt.name, "j_t");
        let params = [6, 5];
        assert_eq!(
            sorted(enumerate_instances(&p, &params)),
            sorted(enumerate_instances(&tiled, &params))
        );
    }

    #[test]
    fn tile_size_one_is_an_interchange_driver() {
        let p = parse_program(GEMM_SPLIT).unwrap();
        let tiled = tile_program(&p, &[TileSpec::new("k", 1)]).unwrap();
        // k_t hoists past j and i up to the nest root: per-(k) sweeps over
        // the full (i, j) plane.
        let Step::Loop(outer) = &tiled.body[1] else {
            panic!()
        };
        assert_eq!(outer.name, "k_t");
        let params = [4, 3, 5];
        assert_eq!(
            sorted(enumerate_instances(&p, &params)),
            sorted(enumerate_instances(&tiled, &params))
        );
    }

    #[test]
    fn bad_specs_are_rejected() {
        let p = parse_program(GEMM_SPLIT).unwrap();
        assert!(tile_program(&p, &[]).unwrap_err().contains("at least one"));
        assert!(tile_program(&p, &[TileSpec::new("z", 2)])
            .unwrap_err()
            .contains("no loop named z"));
        assert!(tile_program(&p, &[TileSpec::new("i", 0)])
            .unwrap_err()
            .contains("≥ 1"));
        assert!(
            tile_program(&p, &[TileSpec::new("i", 2), TileSpec::new("i", 4)])
                .unwrap_err()
                .contains("duplicate")
        );
        let rev =
            parse_program("kernel r(N) { array A[N]; for i in reverse 0..N { S: A[i] = op(); } }")
                .unwrap();
        assert!(tile_program(&rev, &[TileSpec::new("i", 2)])
            .unwrap_err()
            .contains("strided or reversed"));
    }

    #[test]
    fn tiled_numeric_store_matches_untiled_when_legal() {
        let p = parse_program(GEMM_SPLIT).unwrap();
        let tiled = tile_program(
            &p,
            &[
                TileSpec::new("i", 2),
                TileSpec::new("j", 3),
                TileSpec::new("k", 1),
            ],
        )
        .unwrap();
        let params = [6, 5, 4];
        let init = |a: crate::ArrayId, f: usize| (a.0 as f64) * 3.0 + f as f64 * 0.5 + 1.0;
        let base = crate::Interpreter::new(&p, &params).run_numeric(init);
        let got = crate::Interpreter::new(&tiled, &params).run_numeric(init);
        assert_eq!(base.data, got.data, "legal tiling is semantics-preserving");
    }
}
