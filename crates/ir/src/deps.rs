//! Structural dependence analysis: the source of the projections `Φ`.
//!
//! The K-partitioning method bounds a set `E` through projections derived
//! from *dependence paths* (§2, §4 of the paper): each read access of a
//! statement contributes the map from the consumer's iteration space to the
//! producing instance (or to the input data space). For the kernel class of
//! the paper the maps are computed by unifying the read subscript with the
//! candidate writer's subscript:
//!
//! * writer dims determined by unification map affinely to consumer dims →
//!   those consumer dims form the projection **support**;
//! * writer dims left free on a loop *common* to writer and reader resolve
//!   by last-writer: **same iteration** when the writer precedes the reader
//!   in the loop body (dim kept), **previous iteration** otherwise (a
//!   translation: the dim is dropped, per the Elango-style path-composition
//!   argument — this is what turns the self-dependence of `SU` on `A[i][j]`
//!   into the projection `φ_{i,j}`);
//! * free non-common dims (a producer's private reduction loop) are dropped.
//!
//! Because the unification is structural, it is *certified empirically*:
//! [`observe_producers`] executes the program and records, for every read,
//! the actual set of producing statements; [`analyze`] only accepts an
//! observed producer set that unification explains.

use crate::affine::{Aff, DimId};
use crate::interp::{ExecSink, Interpreter, Store};
use crate::program::{ArrayId, Program, StmtId};
use std::collections::{BTreeMap, BTreeSet};

/// Producer of a read: a statement or the program input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Producer {
    /// Value read is a program input.
    Input,
    /// Value produced by this statement.
    Stmt(StmtId),
}

/// Result of unifying one read against one producer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEdge {
    /// Consumer statement.
    pub consumer: StmtId,
    /// Index into the consumer's declared reads.
    pub read_idx: usize,
    /// The producer.
    pub producer: Producer,
    /// Consumer dims distinguishing the projection image (the `φ` dims).
    pub support: BTreeSet<DimId>,
    /// Common dims resolved to the *previous iteration* (temporal
    /// translations — hourglass detection keys on these).
    pub translated: BTreeSet<DimId>,
    /// Producer dims pinned by subscript unification, as affine
    /// expressions over consumer dims — the consumer→producer iteration
    /// map, used to *compose* dependence paths (a same-iteration
    /// producer's data requirement is its own reads' footprint, pulled
    /// back through this map). Empty for [`Producer::Input`].
    pub determined: BTreeMap<DimId, Aff>,
}

/// Per-read merged projection: union over observed producers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadProjection {
    /// Consumer statement.
    pub stmt: StmtId,
    /// Index into the consumer's declared reads.
    pub read_idx: usize,
    /// Array being read.
    pub array: ArrayId,
    /// Union of producer-edge supports.
    pub support: BTreeSet<DimId>,
    /// Union of translation dims.
    pub translated: BTreeSet<DimId>,
    /// The contributing edges.
    pub edges: Vec<FlowEdge>,
    /// Read indices of the *same statement* observed touching the same
    /// cell as this read in the same instance (pointwise aliasing). Two
    /// aliasing read families cannot be disjoint in-set regions, so the
    /// K-partition `m` refinement merges them.
    pub aliased: BTreeSet<usize>,
}

/// Observed producer families: `(consumer, read_idx) → {producers}`.
pub type Observations = BTreeMap<(StmtId, usize), BTreeSet<Producer>>;

/// Observed pointwise read aliases: `(stmt, read_a, read_b)` with
/// `read_a < read_b`, meaning some executed instance of `stmt` read the
/// same cell through both declared accesses.
pub type AliasPairs = BTreeSet<(StmtId, usize, usize)>;

/// Executes the program at `params` and records, for every declared read of
/// every statement instance, which statement last wrote the cell (or
/// [`Producer::Input`] if none had).
pub fn observe_producers(program: &Program, params: &[i64]) -> Observations {
    observe_producers_with_aliases(program, params).0
}

/// [`observe_producers`] plus the pointwise read-alias pairs of the same
/// run (two declared reads of one instance landing on the same cell).
pub fn observe_producers_with_aliases(
    program: &Program,
    params: &[i64],
) -> (Observations, AliasPairs) {
    struct Observer<'p> {
        program: &'p Program,
        params: Vec<i64>,
        strides: Vec<Vec<usize>>,
        last_writer: BTreeMap<(u32, usize), StmtId>,
        current: Option<StmtId>,
        /// cell → read indices of the current instance reading that cell
        expected: BTreeMap<(u32, usize), Vec<usize>>,
        obs: Observations,
        aliases: AliasPairs,
    }

    impl Observer<'_> {
        fn flat(&self, access: &crate::program::Access, stmt: StmtId, iv: &[i64]) -> (u32, usize) {
            let dims = &self.program.stmt(stmt).dims;
            let dim_env = |d: DimId| {
                let pos = dims
                    .iter()
                    .position(|x| *x == d)
                    .expect("non-enclosing dim");
                iv[pos]
            };
            let par_env = |p: crate::affine::ParamId| self.params[p.0 as usize];
            let st = &self.strides[access.array.0 as usize];
            let mut f = 0usize;
            for (axis, a) in access.idx.iter().enumerate() {
                let v = a.eval_with(&dim_env, &par_env);
                f += st[axis] * v.max(0) as usize;
            }
            (access.array.0, f)
        }
    }

    impl ExecSink for Observer<'_> {
        fn on_stmt(&mut self, stmt: StmtId, iv: &[i64]) {
            self.current = Some(stmt);
            self.expected.clear();
            for (i, r) in self.program.stmt(stmt).reads.iter().enumerate() {
                let key = self.flat(r, stmt, iv);
                self.expected.entry(key).or_default().push(i);
            }
            for idxs in self.expected.values() {
                for (k, &a) in idxs.iter().enumerate() {
                    for &b in &idxs[k + 1..] {
                        self.aliases.insert((stmt, a.min(b), a.max(b)));
                    }
                }
            }
        }
        fn on_read(&mut self, array: ArrayId, flat: usize) {
            let stmt = self.current.expect("read outside a statement");
            let producer = self
                .last_writer
                .get(&(array.0, flat))
                .map(|s| Producer::Stmt(*s))
                .unwrap_or(Producer::Input);
            if let Some(idxs) = self.expected.get(&(array.0, flat)) {
                for &i in idxs {
                    self.obs.entry((stmt, i)).or_default().insert(producer);
                }
            }
        }
        fn on_write(&mut self, array: ArrayId, flat: usize) {
            let stmt = self.current.expect("write outside a statement");
            self.last_writer.insert((array.0, flat), stmt);
        }
    }

    let mut strides = Vec::with_capacity(program.arrays.len());
    for i in 0..program.arrays.len() {
        let extents = program.array_extents(ArrayId(i as u32), params);
        let mut st = vec![1usize; extents.len()];
        for k in (0..extents.len().saturating_sub(1)).rev() {
            st[k] = st[k + 1] * extents[k + 1];
        }
        strides.push(st);
    }
    let mut obs = Observer {
        program,
        params: params.to_vec(),
        strides,
        last_writer: BTreeMap::new(),
        current: None,
        expected: BTreeMap::new(),
        obs: Observations::new(),
        aliases: AliasPairs::new(),
    };
    let mut store = Store::init(program, params, |a, f| 1.0 + a.0 as f64 + f as f64 * 0.125);
    Interpreter::new(program, params).run(&mut store, &mut obs);
    (obs.obs, obs.aliases)
}

/// Unifies read `r` of `consumer` against write `w` of `producer`.
///
/// Returns the flow edge (support + translations) or `None` when the
/// subscripts cannot be produced by that writer (or fall outside the
/// supported affine class).
pub fn unify(
    program: &Program,
    consumer: StmtId,
    read: &Aff_slice<'_>,
    producer: StmtId,
    write: &Aff_slice<'_>,
) -> Option<FlowEdge> {
    if read.array != write.array || read.idx.len() != write.idx.len() {
        return None;
    }
    let prod_dims = &program.stmt(producer).dims;
    // Determined producer dims: dim → affine expr over consumer dims.
    let mut determined: BTreeMap<DimId, Aff> = BTreeMap::new();
    for (f_d, g_d) in write.idx.iter().zip(read.idx.iter()) {
        let mut f = (*f_d).clone();
        let f_dims: Vec<(DimId, i64)> = f.dim_terms().to_vec();
        match f_dims.len() {
            0 => {
                // Subscript fixed by params/consts: must match syntactically.
                if f != *g_d {
                    return None;
                }
            }
            1 => {
                let (a, c) = f_dims[0];
                if c != 1 && c != -1 {
                    return None;
                }
                f.take_dim(a);
                // c*a + rest = g  →  a = c*(g - rest)  (c = ±1)
                let expr = (g_d.clone() - f) * c;
                match determined.get(&a) {
                    Some(prev) if *prev != expr => {
                        // Diagonal-style write (e.g. `A[k][k]`): the
                        // dependence exists on the constrained subset where
                        // both determinations agree. Keep the union of the
                        // consumer dims as (coarser, still valid) support.
                        let merged = prev.clone() + expr;
                        determined.insert(a, merged);
                    }
                    _ => {
                        determined.insert(a, expr);
                    }
                }
            }
            _ => return None,
        }
    }
    // Determined dims must be producer dims (sanity).
    for d in determined.keys() {
        if !prod_dims.contains(d) {
            return None;
        }
    }
    let common = program.common_dims(producer, consumer);
    let cons_dims = &program.stmt(consumer).dims;
    let mut support: BTreeSet<DimId> = BTreeSet::new();
    let mut translated: BTreeSet<DimId> = BTreeSet::new();
    for expr in determined.values() {
        for d in expr.dims_used() {
            // The expr is over consumer dims by construction.
            if cons_dims.contains(&d) {
                support.insert(d);
            } else {
                return None; // read subscript used a non-enclosing dim
            }
        }
    }
    let precedes = program.stmt(producer).position < program.stmt(consumer).position;
    for d in prod_dims {
        if determined.contains_key(d) {
            continue;
        }
        if common.contains(d) {
            if precedes {
                // Same-iteration last writer: the dim maps identically.
                support.insert(*d);
            } else {
                // Previous-iteration: a translation — dim dropped.
                translated.insert(*d);
            }
        }
        // Non-common free dims (producer-private loops): dropped.
    }
    Some(FlowEdge {
        consumer,
        read_idx: usize::MAX, // filled by caller
        producer: Producer::Stmt(producer),
        support,
        translated,
        determined,
    })
}

/// Borrowed view of one access for [`unify`].
#[allow(non_camel_case_types)]
pub struct Aff_slice<'a> {
    /// Array accessed.
    pub array: ArrayId,
    /// Subscripts.
    pub idx: &'a [Aff],
}

/// Analyzes every observed read family; returns merged per-read projections.
///
/// # Errors
/// Returns a description when an observed producer cannot be explained by
/// subscript unification (the program is outside the supported class).
pub fn analyze(program: &Program, obs: &Observations) -> Result<Vec<ReadProjection>, String> {
    analyze_with_aliases(program, obs, &AliasPairs::new())
}

/// [`analyze`] with observed pointwise alias pairs attached to the
/// resulting projections (the `m`-refinement consumes them).
///
/// # Errors
/// See [`analyze`].
pub fn analyze_with_aliases(
    program: &Program,
    obs: &Observations,
    aliases: &AliasPairs,
) -> Result<Vec<ReadProjection>, String> {
    let mut out = Vec::new();
    for (s_idx, stmt) in program.stmts.iter().enumerate() {
        let sid = StmtId(s_idx as u32);
        for (r_idx, read) in stmt.reads.iter().enumerate() {
            let Some(producers) = obs.get(&(sid, r_idx)) else {
                continue; // read never executed at the observation sizes
            };
            let mut support: BTreeSet<DimId> = BTreeSet::new();
            let mut translated: BTreeSet<DimId> = BTreeSet::new();
            let mut edges = Vec::new();
            for prod in producers {
                match prod {
                    Producer::Input => {
                        // Input reads project through the access function.
                        let mut sup = BTreeSet::new();
                        for a in &read.idx {
                            sup.extend(a.dims_used());
                        }
                        support.extend(sup.iter().copied());
                        edges.push(FlowEdge {
                            consumer: sid,
                            read_idx: r_idx,
                            producer: Producer::Input,
                            support: sup,
                            translated: BTreeSet::new(),
                            determined: BTreeMap::new(),
                        });
                    }
                    Producer::Stmt(p) => {
                        let pstmt = program.stmt(*p);
                        let rview = Aff_slice {
                            array: read.array,
                            idx: &read.idx,
                        };
                        let mut matched = false;
                        for w in &pstmt.writes {
                            if w.array != read.array {
                                continue;
                            }
                            let wview = Aff_slice {
                                array: w.array,
                                idx: &w.idx,
                            };
                            if let Some(mut e) = unify(program, sid, &rview, *p, &wview) {
                                e.read_idx = r_idx;
                                support.extend(e.support.iter().copied());
                                translated.extend(e.translated.iter().copied());
                                edges.push(e);
                                matched = true;
                            }
                        }
                        if !matched {
                            return Err(format!(
                                "observed producer {} of {}.read[{r_idx}] ({}) not explained by unification",
                                pstmt.name,
                                stmt.name,
                                program.arrays[read.array.0 as usize].name,
                            ));
                        }
                    }
                }
            }
            let aliased: BTreeSet<usize> = aliases
                .iter()
                .filter(|(s, a, b)| *s == sid && (*a == r_idx || *b == r_idx))
                .map(|(_, a, b)| if *a == r_idx { *b } else { *a })
                .collect();
            out.push(ReadProjection {
                stmt: sid,
                read_idx: r_idx,
                array: read.array,
                support,
                translated,
                edges,
                aliased,
            });
        }
    }
    Ok(out)
}

/// Convenience: observe at several parameter vectors, union, analyze.
///
/// # Errors
/// Propagates [`analyze`] failures.
pub fn read_projections(
    program: &Program,
    param_sets: &[Vec<i64>],
) -> Result<Vec<ReadProjection>, String> {
    let mut merged = Observations::new();
    let mut aliases = AliasPairs::new();
    for ps in param_sets {
        let (obs, al) = observe_producers_with_aliases(program, ps);
        for (k, v) in obs {
            merged.entry(k).or_default().extend(v);
        }
        aliases.extend(al);
    }
    analyze_with_aliases(program, &merged, &aliases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Access, ProgramBuilder};

    /// A miniature MGS-shaped program: the SR/SU hourglass core.
    ///
    /// ```c
    /// for k in 0..N:
    ///   for j in k+1..N:
    ///     S0: R[k][j] = 0
    ///     for i in 0..M: SR: R[k][j] += A[i][k] * A[i][j]
    ///     for i in 0..M: SU: A[i][j] -= A[i][k] * R[k][j]
    /// ```
    fn mini_mgs() -> Program {
        let mut b = ProgramBuilder::new("mini_mgs_deps", &["M", "N"]);
        let a = b.array("A", &[b.p("M"), b.p("N")]);
        let r = b.array("R", &[b.p("N"), b.p("N")]);
        let k = b.open("k", b.c(0), b.p("N"));
        let j = b.open("j", b.d(k) + 1, b.p("N"));
        let w_r = Access::new(r, vec![b.d(k), b.d(j)]);
        b.stmt("S0", vec![], vec![w_r.clone()], move |c| {
            c.wr(r, &[c.v(0), c.v(1)], 0.0)
        });
        let i1 = b.open("i", b.c(0), b.p("M"));
        let rd_aik = Access::new(a, vec![b.d(i1), b.d(k)]);
        let rd_aij = Access::new(a, vec![b.d(i1), b.d(j)]);
        b.stmt(
            "SR",
            vec![rd_aik, rd_aij, w_r.clone()],
            vec![w_r.clone()],
            move |c| {
                let (k, j, i) = (c.v(0), c.v(1), c.v(2));
                let v = c.rd(a, &[i, k]) * c.rd(a, &[i, j]) + c.rd(r, &[k, j]);
                c.wr(r, &[k, j], v);
            },
        );
        b.close();
        let i2 = b.open("i", b.c(0), b.p("M"));
        let rd_aik2 = Access::new(a, vec![b.d(i2), b.d(k)]);
        let rw_aij2 = Access::new(a, vec![b.d(i2), b.d(j)]);
        b.stmt(
            "SU",
            vec![rd_aik2, rw_aij2.clone(), w_r.clone()],
            vec![rw_aij2],
            move |c| {
                let (k, j, i) = (c.v(0), c.v(1), c.v(2));
                let v = c.rd(a, &[i, j]) - c.rd(a, &[i, k]) * c.rd(r, &[k, j]);
                c.wr(a, &[i, j], v);
            },
        );
        b.close();
        b.close();
        b.close();
        b.finish()
    }

    fn dims_of(p: &Program, s: &str) -> Vec<DimId> {
        p.stmt(p.stmt_id(s).unwrap()).dims.clone()
    }

    #[test]
    fn observed_producers_are_plausible() {
        let p = mini_mgs();
        let obs = observe_producers(&p, &[6, 4]);
        let su = p.stmt_id("SU").unwrap();
        // SU.read[2] is R[k][j]: produced by SR (the accumulation).
        let prods = &obs[&(su, 2)];
        assert!(prods.contains(&Producer::Stmt(p.stmt_id("SR").unwrap())));
        assert!(!prods.contains(&Producer::Input));
        // SU.read[1] is A[i][j]: input at k=0, SU itself afterwards.
        let prods = &obs[&(su, 1)];
        assert!(prods.contains(&Producer::Input));
        assert!(prods.contains(&Producer::Stmt(su)));
    }

    #[test]
    fn su_projections_match_paper() {
        let p = mini_mgs();
        let projs = read_projections(&p, &[vec![6, 4], vec![5, 5]]).unwrap();
        let su = p.stmt_id("SU").unwrap();
        let d = dims_of(&p, "SU"); // [k, j, i]
        let by_read: Vec<_> = projs.iter().filter(|r| r.stmt == su).collect();
        assert_eq!(by_read.len(), 3);
        // read[0] = A[i][k]: produced by SU at previous k′… in this miniature
        // program A[·][k] columns are updated by SU at earlier k (j = k), so
        // support is {i, k} via input + translation composition.
        let r0 = &by_read[0];
        assert!(r0.support.contains(&d[2]), "i in support of A[i][k]");
        // read[1] = A[i][j]: support {i, j}, translation on k.
        let r1 = &by_read[1];
        assert_eq!(
            r1.support.iter().copied().collect::<Vec<_>>(),
            vec![d[1], d[2]],
            "support of A[i][j] is {{j, i}}"
        );
        assert!(r1.translated.contains(&d[0]), "k is a translation dim");
        // read[2] = R[k][j]: support {k, j} (SR's reduction i dropped).
        let r2 = &by_read[2];
        assert_eq!(
            r2.support.iter().copied().collect::<Vec<_>>(),
            vec![d[0], d[1]],
            "support of R[k][j] is {{k, j}}"
        );
        assert!(r2.translated.is_empty());
    }

    #[test]
    fn sr_projections_match_paper() {
        let p = mini_mgs();
        let projs = read_projections(&p, &[vec![6, 4]]).unwrap();
        let sr = p.stmt_id("SR").unwrap();
        let d = dims_of(&p, "SR");
        let by_read: Vec<_> = projs.iter().filter(|r| r.stmt == sr).collect();
        // read[1] = A[i][j] produced by SU at k-1 → translation on k, support {i, j}.
        let r1 = &by_read[1];
        assert!(r1.support.contains(&d[1]) && r1.support.contains(&d[2]));
        assert!(!r1.support.contains(&d[0]));
        assert!(r1.translated.contains(&d[0]));
    }

    #[test]
    fn same_iteration_scalar_producer_keeps_common_dims() {
        // S1 writes t; S2 (later in the same k body) reads t → support {k}.
        let mut b = ProgramBuilder::new("scalar_dep", &["N"]);
        let t = b.scalar("t");
        let y = b.array("y", &[b.p("N")]);
        let k = b.open("k", b.c(0), b.p("N"));
        let at = Access::new(t, vec![]);
        b.stmt("S1", vec![], vec![at.clone()], move |c| {
            c.wr(t, &[], c.v(0) as f64)
        });
        let wy = Access::new(y, vec![b.d(k)]);
        b.stmt("S2", vec![at], vec![wy], move |c| {
            let v = c.rd(t, &[]);
            c.wr(y, &[c.v(0)], v);
        });
        b.close();
        let p = b.finish();
        let projs = read_projections(&p, &[vec![5]]).unwrap();
        let s2 = p.stmt_id("S2").unwrap();
        let proj = projs.iter().find(|r| r.stmt == s2).unwrap();
        let kdim = p.stmt(s2).dims[0];
        assert!(proj.support.contains(&kdim), "same-iteration keeps k");
        assert!(proj.translated.is_empty());
    }

    #[test]
    fn unify_rejects_mismatched_constants() {
        let p = mini_mgs();
        let a = p.array_id("A").unwrap();
        // read A[0][j] vs write A[1][j]: constant mismatch on axis 0.
        let su = p.stmt_id("SU").unwrap();
        let d = dims_of(&p, "SU");
        let read_idx = [Aff::constant(0), Aff::dim(d[1])];
        let write_idx = [Aff::constant(1), Aff::dim(d[1])];
        let r = Aff_slice {
            array: a,
            idx: &read_idx,
        };
        let w = Aff_slice {
            array: a,
            idx: &write_idx,
        };
        assert!(unify(&p, su, &r, su, &w).is_none());
    }
}
