//! Admission control: pre-materialization cost estimation.
//!
//! Before the pipeline materializes anything (CDAG cell tables, packed
//! traces, CSR arenas), admission derives a [`CostEstimate`] from the
//! symbolic loop bounds of [`crate::count`] evaluated at the concrete
//! parameters — static pre-estimation is cheap relative to
//! materialization, so over-budget requests are refused or down-scoped
//! while they are still just a parse tree.
//!
//! Two estimation paths:
//!
//! * **symbolic** — when every statement's nest is
//!   [`countable_nest`], instance counts
//!   are closed-form polynomials evaluated in `f64` (lossy but
//!   monotone at estimation scale; values at or beyond `u64` saturate to
//!   `u64::MAX`, which exceeds every finite budget);
//! * **bounded enumeration** — otherwise, instances are counted by the
//!   governed loop-tree walk, which stops with `BudgetExceeded` the
//!   moment the count passes the budget's instance ceiling.
//!
//! Either way the estimate is defense-in-depth only: governed enumeration
//! downstream independently re-counts instances against the same ceiling,
//! so a wrong estimate can never license unbounded materialization.

use crate::count::{countable_nest, instance_count, param_var};
use crate::program::{ArrayId, Program, StmtId};
use iolb_govern::{AnalysisError, Budget, CancelToken, CostEstimate, Seam};

/// Converts an `f64` count to a saturating `u64` resource amount.
fn sat(v: f64) -> u64 {
    if !v.is_finite() || v >= u64::MAX as f64 {
        u64::MAX
    } else if v <= 0.0 {
        0
    } else {
        v.ceil() as u64
    }
}

/// Per-statement instance counts at `params`, symbolically when the nest
/// admits it, else by governed enumeration capped at
/// `budget.max_instances`.
fn stmt_instance_counts(
    program: &Program,
    params: &[i64],
    budget: &Budget,
    token: &CancelToken,
) -> Result<Vec<u64>, AnalysisError> {
    let all_countable = (0..program.stmts.len()).all(|s| countable_nest(program, StmtId(s as u32)));
    if all_countable {
        let env = |v: iolb_symbolic::Var| -> Option<f64> {
            (0..program.params.len())
                .find(|p| param_var(program, crate::affine::ParamId(*p as u32)) == v)
                .map(|p| params[p] as f64)
        };
        return Ok((0..program.stmts.len())
            .map(|s| sat(instance_count(program, StmtId(s as u32)).eval_f64(&env)))
            .collect());
    }
    // Strided / multi-bound nests: count by walking the loop tree, bailing
    // out as soon as the budget's instance ceiling is passed.
    let mut counts = vec![0u64; program.stmts.len()];
    crate::interp::try_for_each_instance(
        program,
        params,
        token,
        Seam::Admission,
        budget.max_instances,
        |stmt, _| counts[stmt.0 as usize] += 1,
    )?;
    Ok(counts)
}

/// Estimates the resources `program` at `params` will need, without
/// materializing anything. Checks `token` at [`Seam::Admission`].
///
/// Returns `Refused` when an array declaration cannot be sized (extent
/// referencing a loop dimension or evaluating negative) and
/// `BudgetExceeded` when the enumeration fallback passes the instance
/// ceiling; all arithmetic saturates at `u64::MAX` so adversarial
/// parameters cannot wrap an estimate back under budget.
pub fn estimate(
    program: &Program,
    params: &[i64],
    budget: &Budget,
    token: &CancelToken,
) -> Result<CostEstimate, AnalysisError> {
    token.check(Seam::Admission)?;
    let counts = stmt_instance_counts(program, params, budget, token)?;

    let mut instances = 0u64;
    let mut trace_len = 0u64;
    let mut cdag_edges = 0u64;
    let mut iv_bytes = 0u64;
    for (s, &count) in counts.iter().enumerate() {
        let stmt = &program.stmts[s];
        let reads = stmt.reads.len() as u64;
        let writes = stmt.writes.len() as u64;
        instances = instances.saturating_add(count);
        trace_len = trace_len.saturating_add(count.saturating_mul(reads + writes));
        // Within-instance duplicate reads collapse, so this upper-bounds
        // the edge count.
        cdag_edges = cdag_edges.saturating_add(count.saturating_mul(reads));
        iv_bytes = iv_bytes.saturating_add(count.saturating_mul(4 * stmt.dims.len() as u64));
    }

    // Cell tables (one u32 state per array cell) and the input upper
    // bound: every input node is a distinct cell read before any write.
    let mut cell_bytes = 0u64;
    let mut total_cells = 0u64;
    for a in 0..program.arrays.len() {
        let len = program
            .try_array_len(ArrayId(a as u32), params)
            .ok_or_else(|| {
                AnalysisError::Refused(format!(
                    "array {} has an unsizable extent at these parameters",
                    program.arrays[a].name
                ))
            })?
            .max(1);
        total_cells = total_cells.saturating_add(len);
        cell_bytes = cell_bytes.saturating_add(len.saturating_mul(4));
    }
    let inputs_upper = total_cells.min(cdag_edges);
    let cdag_nodes = instances.saturating_add(inputs_upper);

    // Peak transient arena: cell tables + iv arena (+offsets) + packed
    // edge list (two u32 per edge) + packed trace (one u64 per access).
    let arena_bytes = cell_bytes
        .saturating_add(iv_bytes)
        .saturating_add(instances.saturating_mul(8))
        .saturating_add(cdag_edges.saturating_mul(8))
        .saturating_add(trace_len.saturating_mul(8));

    Ok(CostEstimate {
        instances,
        trace_len,
        cdag_nodes,
        cdag_edges,
        arena_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Access, ProgramBuilder};

    fn square(n_name: &str) -> Program {
        let mut b = ProgramBuilder::new("adm_sq", &[n_name]);
        let a = b.array("A", &[b.p(n_name), b.p(n_name)]);
        let i = b.open("i", b.c(0), b.p(n_name));
        let j = b.open("j", b.c(0), b.p(n_name));
        let acc = Access::new(a, vec![b.d(i), b.d(j)]);
        b.stmt("S", vec![acc.clone()], vec![acc], move |c| {
            let v = c.rd(a, &[c.v(0), c.v(1)]);
            c.wr(a, &[c.v(0), c.v(1)], v + 1.0);
        });
        b.close();
        b.close();
        b.finish()
    }

    #[test]
    fn symbolic_estimate_matches_enumeration() {
        let p = square("N");
        let est = estimate(&p, &[20], &Budget::unlimited(), &CancelToken::unlimited()).unwrap();
        assert_eq!(est.instances, 400);
        assert_eq!(est.trace_len, 800); // one read + one write per instance
        assert_eq!(est.cdag_edges, 400);
        assert!(est.cdag_nodes >= 400);
        assert!(est.arena_bytes > 0);
    }

    #[test]
    fn huge_params_saturate_instead_of_wrapping() {
        let p = square("N");
        let est = estimate(
            &p,
            &[4_000_000_000],
            &Budget::unlimited(),
            &CancelToken::unlimited(),
        )
        .unwrap();
        // 1.6e19 instances fits u64 barely; trace and arena saturate.
        assert!(est.instances > 1 << 62);
        assert_eq!(est.arena_bytes, u64::MAX);
        let mut b = Budget::unlimited();
        b.max_instances = 1_000_000;
        assert!(matches!(
            est.check(&b),
            Err(AnalysisError::BudgetExceeded {
                resource: "instances",
                ..
            })
        ));
    }

    #[test]
    fn admission_seam_is_polled() {
        let p = square("N");
        let token = iolb_govern::CancelToken::trip_after_checks(1);
        let err = estimate(&p, &[4], &Budget::unlimited(), &token).unwrap_err();
        assert_eq!(err, AnalysisError::Cancelled);
    }
}
