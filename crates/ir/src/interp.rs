//! Sequential interpreter for [`Program`]s.
//!
//! Executes statements in schedule order (the source listing's sequential
//! order), carrying real `f64` array contents, and streams every performed
//! access into an [`ExecSink`]. One interpreter serves four purposes:
//!
//! * **numerics** — running a kernel and checking its mathematical output,
//! * **trace collection** — feeding the two-level cache simulator,
//! * **CDAG construction** — last-writer tracking builds the exact
//!   computational DAG the pebble game plays on,
//! * **certification** — [`validate_accesses`] checks the declared affine
//!   accesses against the performed ones on every executed instance.

use crate::affine::DimId;
use crate::program::{ArrayId, Loop, LoopStep, Program, Step, StmtId};
use iolb_govern::{AnalysisError, CancelToken, Seam};
use std::collections::BTreeSet;

/// Receives execution events from the interpreter.
///
/// `on_stmt` fires before the instance's accesses; `on_read`/`on_write`
/// report flat per-array element indices.
pub trait ExecSink {
    /// A statement instance is about to execute with iteration vector `iv`.
    fn on_stmt(&mut self, _stmt: StmtId, _iv: &[i64]) {}
    /// The current instance read `array[flat]`.
    fn on_read(&mut self, _array: ArrayId, _flat: usize) {}
    /// The current instance wrote `array[flat]`.
    fn on_write(&mut self, _array: ArrayId, _flat: usize) {}
    /// Execution finished.
    fn on_finish(&mut self) {}
}

/// Sink that ignores everything (pure numeric runs).
#[derive(Debug, Default)]
pub struct NullSink;

impl ExecSink for NullSink {}

/// One access in a materialized trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global cell id (array base offset + flat index).
    pub cell: usize,
    /// True for writes.
    pub write: bool,
}

/// Sink that materializes the full access trace with global cell ids.
///
/// Events are packed `(cell << 1) | write` to keep long traces compact
/// (8 bytes per access).
#[derive(Debug)]
pub struct TraceSink {
    /// Packed events.
    pub packed: Vec<u64>,
    base: Vec<usize>,
    /// Total number of distinct cells across all arrays.
    pub num_cells: usize,
}

impl TraceSink {
    /// Creates a trace sink for the given program instantiation.
    pub fn new(program: &Program, params: &[i64]) -> TraceSink {
        let mut base = Vec::with_capacity(program.arrays.len());
        let mut acc = 0usize;
        for i in 0..program.arrays.len() {
            base.push(acc);
            acc += program.array_len(ArrayId(i as u32), params).max(1);
        }
        TraceSink {
            packed: Vec::new(),
            base,
            num_cells: acc,
        }
    }

    /// Decodes event `i`.
    pub fn event(&self, i: usize) -> TraceEvent {
        let p = self.packed[i];
        TraceEvent {
            cell: (p >> 1) as usize,
            write: (p & 1) == 1,
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// True when no event was recorded.
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// Iterates decoded events.
    pub fn iter(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        self.packed.iter().map(|&p| TraceEvent {
            cell: (p >> 1) as usize,
            write: (p & 1) == 1,
        })
    }

    /// Global cell id for `array[flat]`.
    pub fn cell_id(&self, array: ArrayId, flat: usize) -> usize {
        self.base[array.0 as usize] + flat
    }
}

impl ExecSink for TraceSink {
    fn on_read(&mut self, array: ArrayId, flat: usize) {
        let cell = self.base[array.0 as usize] + flat;
        self.packed.push((cell as u64) << 1);
    }
    fn on_write(&mut self, array: ArrayId, flat: usize) {
        let cell = self.base[array.0 as usize] + flat;
        self.packed.push(((cell as u64) << 1) | 1);
    }
}

/// Array contents for one execution.
#[derive(Debug, Clone)]
pub struct Store {
    /// Flat row-major contents per array.
    pub data: Vec<Vec<f64>>,
    strides: Vec<Vec<usize>>,
}

impl Store {
    /// Allocates and fills all arrays using `init(array, flat) -> f64`.
    pub fn init(
        program: &Program,
        params: &[i64],
        mut init: impl FnMut(ArrayId, usize) -> f64,
    ) -> Store {
        let mut data = Vec::with_capacity(program.arrays.len());
        let mut strides = Vec::with_capacity(program.arrays.len());
        for i in 0..program.arrays.len() {
            let id = ArrayId(i as u32);
            let extents = program.array_extents(id, params);
            let len: usize = extents.iter().product::<usize>().max(1);
            let mut st = vec![1usize; extents.len()];
            for k in (0..extents.len().saturating_sub(1)).rev() {
                st[k] = st[k + 1] * extents[k + 1];
            }
            data.push((0..len).map(|f| init(id, f)).collect());
            strides.push(st);
        }
        Store { data, strides }
    }

    /// Zero-initialized store.
    pub fn zeros(program: &Program, params: &[i64]) -> Store {
        Store::init(program, params, |_, _| 0.0)
    }

    /// Flattens a multi-dimensional index.
    ///
    /// # Panics
    /// Panics (debug) on rank mismatch.
    pub fn flatten(&self, array: ArrayId, idx: &[i64]) -> usize {
        let st = &self.strides[array.0 as usize];
        debug_assert_eq!(st.len(), idx.len(), "array rank mismatch");
        let mut f = 0usize;
        for (i, &x) in idx.iter().enumerate() {
            debug_assert!(x >= 0, "negative subscript");
            f += st[i] * x as usize;
        }
        f
    }

    /// Reads `array[idx]`.
    pub fn get(&self, array: ArrayId, idx: &[i64]) -> f64 {
        let f = self.flatten(array, idx);
        self.data[array.0 as usize][f]
    }

    /// Writes `array[idx]`.
    pub fn set(&mut self, array: ArrayId, idx: &[i64], v: f64) {
        let f = self.flatten(array, idx);
        self.data[array.0 as usize][f] = v;
    }
}

/// Maximum loop-nest depth supported by the interpreter's fixed iteration
/// buffer (the paper's kernels use at most 5).
const MAX_DIMS: usize = 16;

/// Fixed-capacity iteration-vector buffer: one stack array reused for every
/// statement instance, so building `iv` never touches the allocator.
struct IvBuf {
    vals: [i64; MAX_DIMS],
    len: usize,
}

impl IvBuf {
    fn new() -> IvBuf {
        IvBuf {
            vals: [0; MAX_DIMS],
            len: 0,
        }
    }

    #[inline]
    fn fill_from(&mut self, stmt_dims: &[DimId], dims: &[i64]) {
        assert!(
            stmt_dims.len() <= MAX_DIMS,
            "loop nest deeper than {MAX_DIMS}"
        );
        for (slot, d) in self.vals.iter_mut().zip(stmt_dims) {
            *slot = dims[d.0 as usize];
        }
        self.len = stmt_dims.len();
    }

    #[inline]
    fn as_slice(&self) -> &[i64] {
        &self.vals[..self.len]
    }
}

/// Statement execution context handed to semantic closures.
pub struct ExecCtx<'a> {
    stmt: StmtId,
    iv: &'a [i64],
    params: &'a [i64],
    store: &'a mut Store,
    sink: &'a mut dyn ExecSink,
}

impl ExecCtx<'_> {
    /// Value of the `i`-th enclosing loop (outermost first).
    pub fn v(&self, i: usize) -> i64 {
        self.iv[i]
    }

    /// Value of parameter `i`.
    pub fn p(&self, i: usize) -> i64 {
        self.params[i]
    }

    /// The executing statement.
    pub fn stmt(&self) -> StmtId {
        self.stmt
    }

    /// Reads `array[idx]`, reporting the access.
    pub fn rd(&mut self, array: ArrayId, idx: &[i64]) -> f64 {
        let f = self.store.flatten(array, idx);
        self.sink.on_read(array, f);
        self.store.data[array.0 as usize][f]
    }

    /// Writes `array[idx]`, reporting the access.
    pub fn wr(&mut self, array: ArrayId, idx: &[i64], v: f64) {
        let f = self.store.flatten(array, idx);
        self.sink.on_write(array, f);
        self.store.data[array.0 as usize][f] = v;
    }
}

/// Schedule-order interpreter for one program instantiation.
pub struct Interpreter<'p> {
    program: &'p Program,
    params: Vec<i64>,
}

impl<'p> Interpreter<'p> {
    /// Binds `program` to concrete parameter values (same order as
    /// `program.params`).
    pub fn new(program: &'p Program, params: &[i64]) -> Interpreter<'p> {
        assert_eq!(
            params.len(),
            program.params.len(),
            "parameter count mismatch"
        );
        Interpreter {
            program,
            params: params.to_vec(),
        }
    }

    /// Executes the program over `store`, streaming events into `sink`.
    ///
    /// Monomorphized over the sink type: the schedule-walking driver, loop
    /// bound evaluation, and `on_stmt`/`on_finish` notifications compile to
    /// static calls per sink. (The per-access `on_read`/`on_write` events
    /// still go through [`ExecCtx`]'s erased sink reference, because the
    /// semantic closures are type-erased `Arc<dyn Fn>`s.)
    pub fn run<S: ExecSink>(&self, store: &mut Store, sink: &mut S) {
        let mut dims = vec![0i64; self.program.num_dims as usize];
        let mut iv_buf = IvBuf::new();
        for step in &self.program.body {
            self.run_step(step, &mut dims, &mut iv_buf, store, sink);
        }
        sink.on_finish();
    }

    fn run_step<S: ExecSink>(
        &self,
        step: &Step,
        dims: &mut Vec<i64>,
        iv_buf: &mut IvBuf,
        store: &mut Store,
        sink: &mut S,
    ) {
        match step {
            Step::Stmt(id) => {
                let stmt = self.program.stmt(*id);
                iv_buf.fill_from(&stmt.dims, dims);
                let iv = iv_buf.as_slice();
                sink.on_stmt(*id, iv);
                let mut ctx = ExecCtx {
                    stmt: *id,
                    iv,
                    params: &self.params,
                    store,
                    sink,
                };
                (stmt.compute)(&mut ctx);
            }
            Step::Loop(l) => {
                let (lo, hi, step_v) = self.loop_range(l, dims);
                if hi <= lo {
                    return;
                }
                if l.reverse {
                    // Last valid value, stepping down.
                    let count = (hi - 1 - lo) / step_v;
                    let mut v = lo + count * step_v;
                    loop {
                        dims[l.dim.0 as usize] = v;
                        for s in &l.body {
                            self.run_step(s, dims, iv_buf, store, sink);
                        }
                        if v == lo {
                            break;
                        }
                        v -= step_v;
                    }
                } else {
                    let mut v = lo;
                    while v < hi {
                        dims[l.dim.0 as usize] = v;
                        for s in &l.body {
                            self.run_step(s, dims, iv_buf, store, sink);
                        }
                        v += step_v;
                    }
                }
            }
        }
    }

    /// Effective `[lo, hi)` and step of a loop at the current outer values.
    fn loop_range(&self, l: &Loop, dims: &[i64]) -> (i64, i64, i64) {
        let lo =
            l.lo.iter()
                .map(|a| a.eval_envs(dims, &self.params))
                .max()
                .expect("loop has lower bounds");
        let hi =
            l.hi.iter()
                .map(|a| a.eval_envs(dims, &self.params))
                .min()
                .expect("loop has upper bounds");
        let step = match l.step {
            LoopStep::One => 1,
            LoopStep::Const(c) => c,
            LoopStep::Param(p) => self.params[p.0 as usize],
        };
        assert!(step > 0, "loop step must be positive");
        (lo, hi, step)
    }

    /// Convenience: fresh store from `init`, run with [`NullSink`].
    pub fn run_numeric(&self, init: impl FnMut(ArrayId, usize) -> f64) -> Store {
        let mut store = Store::init(self.program, &self.params, init);
        self.run(&mut store, &mut NullSink);
        store
    }
}

/// Enumerates every statement instance in schedule order *without executing
/// semantics*: no store, no f64 work, no access events — just the loop-tree
/// walk. `f` receives the statement and the full loop-dimension environment
/// (indexed by [`DimId`]; only the statement's own `dims` are meaningful).
///
/// This is the substrate for consumers that derive per-instance information
/// from the *declared* affine accesses (certified against the executed ones
/// by [`validate_accesses`]), e.g. fast CDAG construction.
pub fn for_each_instance(program: &Program, params: &[i64], mut f: impl FnMut(StmtId, &[i64])) {
    let interp = Interpreter::new(program, params);
    let mut dims = vec![0i64; program.num_dims as usize];
    for step in &program.body {
        walk_step(&interp, step, &mut dims, &mut f);
    }
}

/// Governed [`for_each_instance`]: polls `token` at seam `seam` (once at
/// the first instance, then every 1024 instances) and counts enumerated
/// instances against `max_instances`, so a wrong admission estimate can
/// never materialize unbounded work. Returns the instance count.
///
/// The token poll at instance 0 makes fault injection deterministic even
/// on kernels with fewer than 1024 instances.
pub fn try_for_each_instance(
    program: &Program,
    params: &[i64],
    token: &CancelToken,
    seam: Seam,
    max_instances: u64,
    mut f: impl FnMut(StmtId, &[i64]),
) -> Result<u64, AnalysisError> {
    let interp = Interpreter::new(program, params);
    let mut dims = vec![0i64; program.num_dims as usize];
    let mut gov = WalkGovernor {
        token,
        seam,
        max_instances,
        count: 0,
    };
    for step in &program.body {
        try_walk_step(&interp, step, &mut dims, &mut gov, &mut f)?;
    }
    Ok(gov.count)
}

struct WalkGovernor<'t> {
    token: &'t CancelToken,
    seam: Seam,
    max_instances: u64,
    count: u64,
}

impl WalkGovernor<'_> {
    #[inline]
    fn tick(&mut self) -> Result<(), AnalysisError> {
        if self.count & 0x3FF == 0 {
            self.token.check(self.seam)?;
        }
        self.count += 1;
        if self.count > self.max_instances {
            return Err(AnalysisError::BudgetExceeded {
                resource: "instances",
                needed: self.count,
                limit: self.max_instances,
            });
        }
        Ok(())
    }
}

fn try_walk_step(
    interp: &Interpreter<'_>,
    step: &Step,
    dims: &mut Vec<i64>,
    gov: &mut WalkGovernor<'_>,
    f: &mut impl FnMut(StmtId, &[i64]),
) -> Result<(), AnalysisError> {
    match step {
        Step::Stmt(id) => {
            gov.tick()?;
            f(*id, dims);
            Ok(())
        }
        Step::Loop(l) => {
            let (lo, hi, step_v) = interp.loop_range(l, dims);
            if hi <= lo {
                return Ok(());
            }
            if l.reverse {
                let count = (hi - 1 - lo) / step_v;
                let mut v = lo + count * step_v;
                loop {
                    dims[l.dim.0 as usize] = v;
                    for s in &l.body {
                        try_walk_step(interp, s, dims, gov, f)?;
                    }
                    if v == lo {
                        break;
                    }
                    v -= step_v;
                }
            } else {
                let mut v = lo;
                while v < hi {
                    dims[l.dim.0 as usize] = v;
                    for s in &l.body {
                        try_walk_step(interp, s, dims, gov, f)?;
                    }
                    v += step_v;
                }
            }
            Ok(())
        }
    }
}

fn walk_step(
    interp: &Interpreter<'_>,
    step: &Step,
    dims: &mut Vec<i64>,
    f: &mut impl FnMut(StmtId, &[i64]),
) {
    match step {
        Step::Stmt(id) => f(*id, dims),
        Step::Loop(l) => {
            let (lo, hi, step_v) = interp.loop_range(l, dims);
            if hi <= lo {
                return;
            }
            if l.reverse {
                let count = (hi - 1 - lo) / step_v;
                let mut v = lo + count * step_v;
                loop {
                    dims[l.dim.0 as usize] = v;
                    for s in &l.body {
                        walk_step(interp, s, dims, f);
                    }
                    if v == lo {
                        break;
                    }
                    v -= step_v;
                }
            } else {
                let mut v = lo;
                while v < hi {
                    dims[l.dim.0 as usize] = v;
                    for s in &l.body {
                        walk_step(interp, s, dims, f);
                    }
                    v += step_v;
                }
            }
        }
    }
}

/// Certifies declared accesses against performed accesses.
///
/// Runs the program once; for every statement instance, the set of distinct
/// `(array, cell)` pairs touched by the semantic closure must equal the set
/// described by the declared affine accesses evaluated at the instance's
/// iteration vector. Returns the number of certified instances.
///
/// # Errors
/// Returns a human-readable description of the first mismatch.
pub fn validate_accesses(program: &Program, params: &[i64]) -> Result<u64, String> {
    struct Validator<'p> {
        program: &'p Program,
        params: Vec<i64>,
        current: Option<(StmtId, Vec<i64>)>,
        decl_reads: BTreeSet<(u32, usize)>,
        decl_writes: BTreeSet<(u32, usize)>,
        got_reads: BTreeSet<(u32, usize)>,
        got_writes: BTreeSet<(u32, usize)>,
        checked: u64,
        error: Option<String>,
        strides: Vec<Vec<usize>>,
    }

    impl Validator<'_> {
        fn flush(&mut self) {
            if self.error.is_some() {
                return;
            }
            if let Some((stmt, iv)) = self.current.take() {
                if self.decl_reads != self.got_reads || self.decl_writes != self.got_writes {
                    self.error = Some(format!(
                        "access mismatch in {}[{:?}]: declared reads {:?} performed {:?}; declared writes {:?} performed {:?}",
                        self.program.stmt(stmt).name,
                        iv,
                        self.decl_reads,
                        self.got_reads,
                        self.decl_writes,
                        self.got_writes
                    ));
                    return;
                }
                self.checked += 1;
            }
        }

        fn flat(&self, access: &crate::program::Access, stmt: StmtId, iv: &[i64]) -> (u32, usize) {
            let dims = &self.program.stmt(stmt).dims;
            let dim_env = |d: DimId| {
                let pos = dims
                    .iter()
                    .position(|x| *x == d)
                    .expect("access uses a non-enclosing dim");
                iv[pos]
            };
            let par_env = |p: crate::affine::ParamId| self.params[p.0 as usize];
            let st = &self.strides[access.array.0 as usize];
            let mut f = 0usize;
            for (axis, a) in access.idx.iter().enumerate() {
                let v = a.eval_with(&dim_env, &par_env);
                assert!(v >= 0, "negative declared subscript");
                f += st[axis] * v as usize;
            }
            (access.array.0, f)
        }
    }

    impl ExecSink for Validator<'_> {
        fn on_stmt(&mut self, stmt: StmtId, iv: &[i64]) {
            self.flush();
            if self.error.is_some() {
                return;
            }
            self.decl_reads.clear();
            self.decl_writes.clear();
            self.got_reads.clear();
            self.got_writes.clear();
            let s = self.program.stmt(stmt);
            let reads: Vec<_> = s.reads.iter().map(|a| self.flat(a, stmt, iv)).collect();
            let writes: Vec<_> = s.writes.iter().map(|a| self.flat(a, stmt, iv)).collect();
            self.decl_reads.extend(reads);
            self.decl_writes.extend(writes);
            self.current = Some((stmt, iv.to_vec()));
        }
        fn on_read(&mut self, array: ArrayId, flat: usize) {
            self.got_reads.insert((array.0, flat));
        }
        fn on_write(&mut self, array: ArrayId, flat: usize) {
            self.got_writes.insert((array.0, flat));
        }
        fn on_finish(&mut self) {
            self.flush();
        }
    }

    // Strides replicated from Store's layout logic.
    let mut strides = Vec::with_capacity(program.arrays.len());
    for i in 0..program.arrays.len() {
        let extents = program.array_extents(ArrayId(i as u32), params);
        let mut st = vec![1usize; extents.len()];
        for k in (0..extents.len().saturating_sub(1)).rev() {
            st[k] = st[k + 1] * extents[k + 1];
        }
        strides.push(st);
    }

    let mut v = Validator {
        program,
        params: params.to_vec(),
        current: None,
        decl_reads: BTreeSet::new(),
        decl_writes: BTreeSet::new(),
        got_reads: BTreeSet::new(),
        got_writes: BTreeSet::new(),
        checked: 0,
        error: None,
        strides,
    };
    let interp = Interpreter::new(program, params);
    let mut store = Store::init(program, params, |a, f| (a.0 as f64) + f as f64 * 0.25 + 1.0);
    interp.run(&mut store, &mut v);
    match v.error {
        Some(e) => Err(e),
        None => Ok(v.checked),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Access, ProgramBuilder};

    /// `for i in 0..N { y[i] = 2*x[i] }`
    fn scale_prog() -> Program {
        let mut b = ProgramBuilder::new("scale", &["N"]);
        let x = b.array("x", &[b.p("N")]);
        let y = b.array("y", &[b.p("N")]);
        let i = b.open("i", b.c(0), b.p("N"));
        let rx = Access::new(x, vec![b.d(i)]);
        let wy = Access::new(y, vec![b.d(i)]);
        b.stmt("S", vec![rx], vec![wy], move |c| {
            let v = 2.0 * c.rd(x, &[c.v(0)]);
            c.wr(y, &[c.v(0)], v);
        });
        b.close();
        b.finish()
    }

    #[test]
    fn numeric_execution() {
        let p = scale_prog();
        let interp = Interpreter::new(&p, &[5]);
        let store = interp.run_numeric(|a, f| if a.0 == 0 { f as f64 } else { 0.0 });
        assert_eq!(store.data[1], vec![0.0, 2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn trace_records_all_accesses() {
        let p = scale_prog();
        let interp = Interpreter::new(&p, &[3]);
        let mut sink = TraceSink::new(&p, &[3]);
        let mut store = Store::zeros(&p, &[3]);
        interp.run(&mut store, &mut sink);
        // 3 instances × (1 read + 1 write)
        assert_eq!(sink.len(), 6);
        assert!(!sink.is_empty());
        // x cells are 0..3, y cells are 3..6
        assert_eq!(
            sink.event(0),
            TraceEvent {
                cell: 0,
                write: false
            }
        );
        assert_eq!(
            sink.event(1),
            TraceEvent {
                cell: 3,
                write: true
            }
        );
        assert_eq!(sink.num_cells, 6);
    }

    #[test]
    fn reverse_loop_iterates_downward() {
        let mut b = ProgramBuilder::new("rev", &["N"]);
        let y = b.array("y", &[b.p("N")]);
        let cnt = b.scalar("c");
        let i = b.open_rev("i", b.c(0), b.p("N"));
        let wy = Access::new(y, vec![b.d(i)]);
        let rc = Access::new(cnt, vec![]);
        b.stmt("S", vec![rc.clone()], vec![wy, rc], move |c| {
            let n = c.rd(cnt, &[]);
            c.wr(y, &[c.v(0)], n);
            c.wr(cnt, &[], n + 1.0);
        });
        b.close();
        let p = b.finish();
        let interp = Interpreter::new(&p, &[4]);
        let store = interp.run_numeric(|_, _| 0.0);
        // i = 3,2,1,0 receive order stamps 0,1,2,3
        assert_eq!(store.data[0], vec![3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn strided_loop_with_param_step() {
        let mut b = ProgramBuilder::new("strided", &["N", "B"]);
        let y = b.array("y", &[b.p("N")]);
        let bstep = crate::program::LoopStep::Param(crate::affine::ParamId(1));
        let i0 = b.open_strided("i0", b.c(0), b.p("N"), bstep);
        let wy = Access::new(y, vec![b.d(i0)]);
        b.stmt("S", vec![], vec![wy], move |c| {
            c.wr(y, &[c.v(0)], 1.0);
        });
        b.close();
        let p = b.finish();
        let interp = Interpreter::new(&p, &[10, 3]);
        let store = interp.run_numeric(|_, _| 0.0);
        let marks: Vec<usize> = store.data[0]
            .iter()
            .enumerate()
            .filter(|(_, v)| **v == 1.0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(marks, vec![0, 3, 6, 9]);
    }

    #[test]
    fn min_upper_bound_loops() {
        // for j in j0..min(j0+B, N): tiled-style bound.
        let mut b = ProgramBuilder::new("minb", &["N"]);
        let y = b.array("y", &[b.p("N")]);
        let j = b.open_general(
            "j",
            vec![b.c(2)],
            vec![b.c(2) + 4, b.p("N")],
            crate::program::LoopStep::One,
            false,
        );
        let wy = Access::new(y, vec![b.d(j)]);
        b.stmt("S", vec![], vec![wy], move |c| c.wr(y, &[c.v(0)], 1.0));
        b.close();
        let p = b.finish();
        // N=4 < j0+B=6: loop runs j=2,3.
        let store = Interpreter::new(&p, &[4]).run_numeric(|_, _| 0.0);
        assert_eq!(store.data[0], vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn empty_loop_body_skipped() {
        let mut b = ProgramBuilder::new("empty", &["N"]);
        let y = b.scalar("y");
        let i = b.open("i", b.p("N"), b.c(0)); // empty when N > 0
        let _ = i;
        let wy = Access::new(y, vec![]);
        b.stmt("S", vec![], vec![wy], move |c| c.wr(y, &[], 1.0));
        b.close();
        let p = b.finish();
        let store = Interpreter::new(&p, &[5]).run_numeric(|_, _| 0.0);
        assert_eq!(store.data[0], vec![0.0]);
    }

    #[test]
    fn validation_accepts_consistent_program() {
        let p = scale_prog();
        let n = validate_accesses(&p, &[7]).expect("consistent");
        assert_eq!(n, 7);
    }

    #[test]
    fn validation_rejects_lying_metadata() {
        // Declared read x[i], but closure reads x[0].
        let mut b = ProgramBuilder::new("liar", &["N"]);
        let x = b.array("x", &[b.p("N")]);
        let y = b.array("y", &[b.p("N")]);
        let i = b.open("i", b.c(0), b.p("N"));
        let rx = Access::new(x, vec![b.d(i)]);
        let wy = Access::new(y, vec![b.d(i)]);
        b.stmt("S", vec![rx], vec![wy], move |c| {
            let v = c.rd(x, &[0]);
            c.wr(y, &[c.v(0)], v);
        });
        b.close();
        let p = b.finish();
        let err = validate_accesses(&p, &[3]).unwrap_err();
        assert!(err.contains("access mismatch"), "got: {err}");
    }
}
