//! DSL round-trip property: `parse(print(p))` is structurally identical to
//! `p` for randomized [`ProgramBuilder`] programs covering the full builder
//! surface (nested/strided/reversed loops, `max`/`min` bounds, triangular
//! subscripts, scalars) — and `parse(print(k))` preserves full
//! [`KernelFile`]s including randomized `schedule { tile … }` blocks —
//! plus golden tests pinning parse-error messages and spans for malformed
//! input (schedule and split directives included).

use iolb_ir::parse::{assert_kernel_roundtrip, assert_roundtrip, parse_kernel, TileDirective};
use iolb_ir::{Access, Aff, ArrayId, DimId, KernelFile, LoopStep, Program, ProgramBuilder};
use proptest::prelude::*;

/// Minimal deterministic PRNG (xorshift64*) so program generation needs
/// nothing beyond a seed from proptest.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flip(&mut self) -> bool {
        self.below(2) == 0
    }
}

struct Builder {
    b: ProgramBuilder,
    g: Gen,
    a2: ArrayId,
    a1: ArrayId,
    sc: ArrayId,
    open: Vec<DimId>,
    stmt_ct: u32,
    loop_ct: u32,
    /// Loop names eligible for `schedule { tile … }` (unit-step forward).
    tileable: Vec<String>,
}

impl Builder {
    /// A random affine expression over the open dims and parameters.
    fn aff(&mut self) -> Aff {
        let base = match self.g.below(4) {
            0 if !self.open.is_empty() => {
                let d = self.open[self.g.below(self.open.len() as u64) as usize];
                self.b.d(d)
            }
            1 => self.b.p("P"),
            2 => self.b.p("Q"),
            _ => self.b.c(self.g.below(5) as i64),
        };
        match self.g.below(4) {
            0 => base + self.g.below(3) as i64,
            1 => base - 1,
            2 if !self.open.is_empty() => {
                let d = self.open[self.g.below(self.open.len() as u64) as usize];
                base + self.b.d(d) * (self.g.below(3) as i64 + 1)
            }
            _ => base,
        }
    }

    fn access(&mut self) -> Access {
        match self.g.below(3) {
            0 => Access::new(self.a2, vec![self.aff(), self.aff()]),
            1 => Access::new(self.a1, vec![self.aff()]),
            _ => Access::new(self.sc, vec![]),
        }
    }

    fn body(&mut self, depth: u32) {
        let items = 1 + self.g.below(2);
        for _ in 0..items {
            if depth < 3 && self.g.flip() {
                self.random_loop(depth);
            } else {
                self.random_stmt();
            }
        }
    }

    fn random_loop(&mut self, depth: u32) {
        let name = format!("i{}", self.loop_ct);
        self.loop_ct += 1;
        let lo_first = if !self.open.is_empty() && self.g.flip() {
            let d = *self.open.last().unwrap();
            self.b.d(d) + 1
        } else {
            self.b.c(0)
        };
        let lo = if self.g.below(4) == 0 {
            vec![lo_first, self.b.c(1)]
        } else {
            vec![lo_first]
        };
        let hi_first = match self.g.below(3) {
            0 => self.b.p("P"),
            1 => self.b.p("Q"),
            _ => self.b.p("P") + 2,
        };
        let hi = if self.g.below(4) == 0 {
            vec![hi_first, self.b.p("Q") + 1]
        } else {
            vec![hi_first]
        };
        let step = match self.g.below(4) {
            0 => LoopStep::Const(2),
            1 => LoopStep::Param(self.b.pid("Q")),
            _ => LoopStep::One,
        };
        let reverse = self.g.below(4) == 0;
        if step == LoopStep::One && !reverse {
            self.tileable.push(name.clone());
        }
        let d = self.b.open_general(&name, lo, hi, step, reverse);
        self.open.push(d);
        self.body(depth + 1);
        self.open.pop();
        self.b.close();
    }

    fn random_stmt(&mut self) {
        let name = format!("S{}", self.stmt_ct);
        self.stmt_ct += 1;
        let n_reads = self.g.below(3) as usize;
        let reads: Vec<Access> = (0..n_reads).map(|_| self.access()).collect();
        let mut writes = vec![self.access()];
        if self.g.below(4) == 0 {
            writes.push(self.access());
        }
        self.b.stmt(&name, reads, writes, |_c| ());
    }
}

/// Builds a random program exercising the whole DSL surface, plus the
/// names of its tileable loops (for schedule-block generation).
fn random_program_with_tileable(seed: u64) -> (Program, Vec<String>) {
    let mut builder = Builder {
        b: ProgramBuilder::new("rand_prog", &["P", "Q"]),
        g: Gen(seed | 1),
        a2: ArrayId(0),
        a1: ArrayId(0),
        sc: ArrayId(0),
        open: Vec::new(),
        stmt_ct: 0,
        loop_ct: 0,
        tileable: Vec::new(),
    };
    let (p, q) = (builder.b.p("P"), builder.b.p("Q"));
    builder.a2 = builder.b.array("A", &[p.clone(), q]);
    builder.a1 = builder.b.array("B", &[p]);
    builder.sc = builder.b.scalar("s");
    builder.body(0);
    let tileable = builder.tileable.clone();
    (builder.b.finish(), tileable)
}

/// Builds a random program exercising the whole DSL surface.
fn random_program(seed: u64) -> Program {
    random_program_with_tileable(seed).0
}

proptest! {
    /// print → parse → structural equality over the randomized builder
    /// surface (the paper kernels are covered separately in iolb-cli's
    /// parity tests).
    #[test]
    fn randomized_programs_round_trip(seed in 0u64..(1 << 48)) {
        let p = random_program(seed);
        assert_roundtrip(&p);
    }

    /// Full-file round-trip with a randomized `schedule { tile … }` block:
    /// directives over random tileable loops (random sized/unsized mix)
    /// print and re-parse to the identical [`KernelFile`]. Previously the
    /// round-trip proptests only covered schedule-less programs.
    #[test]
    fn randomized_schedules_round_trip(seed in 0u64..(1 << 48)) {
        let (program, tileable) = random_program_with_tileable(seed);
        let mut g = Gen(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        let mut schedule: Vec<TileDirective> = Vec::new();
        for name in &tileable {
            if schedule.iter().any(|d| d.loop_name == *name) {
                continue; // duplicate loop names are rejected by the parser
            }
            if g.flip() {
                let size = match g.below(3) {
                    0 => Some(1 + g.below(16) as i64),
                    _ => None,
                };
                schedule.push(TileDirective { loop_name: name.clone(), size });
            }
        }
        let kernel = KernelFile {
            program,
            analyze: None,
            defaults: vec![("P".to_string(), 5 + g.below(8) as i64),
                           ("Q".to_string(), 3 + g.below(8) as i64)],
            split: None,
            schedule,
        };
        assert_kernel_roundtrip(&kernel);
    }
}

/// Golden parse-error cases: exact message fragment and span.
#[test]
fn golden_parse_errors() {
    let cases: &[(&str, u32, &str)] = &[
        ("", 1, "expected keyword `kernel`"),
        ("kernel", 1, "expected identifier"),
        (
            "kernel k(N) { scalar x;",
            1,
            "expected `for`, a statement, or `}`",
        ),
        (
            "kernel k(N) {\n  array A[N];\n  S: A[N + ] = op();\n}",
            3,
            "expected affine term",
        ),
        (
            "kernel k(N) {\n  array A[N];\n  S: A[z] = op();\n}",
            3,
            "unknown variable z",
        ),
        (
            "kernel k(N) {\n  array A[N];\n  for i in 0..N step 0 { S: A[i] = op(); }\n}",
            3,
            "loop step must be positive",
        ),
        (
            "kernel k(N) {\n  array A[N];\n  for i in 0..N step W { S: A[i] = op(); }\n}",
            3,
            "step W is not a program parameter",
        ),
        (
            "kernel k(N) {\n  array A[N][i];\n  S: A[0][0] = op();\n}",
            2,
            "unknown variable i",
        ),
        (
            "kernel k(N) {\n  scalar x;\n  S: x = f(x);\n}",
            3,
            "expected keyword `op`",
        ),
        (
            "kernel k(N) {\n  scalar x;\n  split Ms = N/0;\n  S: x = op();\n}",
            3,
            "expected non-zero integer divisor",
        ),
        (
            "kernel k(N) { array A; S: A = op(); }",
            1,
            "needs at least one `[extent]`",
        ),
        ("kernel k(N) @", 1, "unexpected character `@`"),
        // --- malformed `schedule` directives -------------------------------
        (
            "kernel k(N) {\n  array A[N];\n  schedule { tile z; }\n  for i in 0..N { S: A[i] = op(); }\n}",
            3,
            "`tile z` names no loop of the kernel",
        ),
        (
            "kernel k(N) {\n  array A[N];\n  schedule { tile i -3; }\n  for i in 0..N { S: A[i] = op(); }\n}",
            3,
            "expected `;`",
        ),
        (
            "kernel k(N) {\n  array A[N];\n  schedule { tile i 0; }\n  for i in 0..N { S: A[i] = op(); }\n}",
            3,
            "tile size for i must be ≥ 1",
        ),
        (
            "kernel k(N) {\n  array A[N];\n  schedule { tile i 2; tile i 4; }\n  for i in 0..N { S: A[i] = op(); }\n}",
            3,
            "duplicate `tile` directive for loop i",
        ),
        (
            "kernel k(N) {\n  array A[N];\n  schedule { tile i; }\n  schedule { tile i; }\n  for i in 0..N { S: A[i] = op(); }\n}",
            4,
            "duplicate `schedule` block",
        ),
        (
            "kernel k(N) {\n  array A[N];\n  schedule { tile i 4; }\n  for i in 0..N step 2 { S: A[i] = op(); }\n}",
            3,
            "targets a strided or reversed loop",
        ),
        (
            "kernel k(N) {\n  array A[N];\n  schedule { banana i; }\n  for i in 0..N { S: A[i] = op(); }\n}",
            3,
            "expected keyword `tile`",
        ),
        // --- out-of-range / malformed `split` bindings ---------------------
        (
            "kernel k(N) {\n  scalar x;\n  split Ms = W/2;\n  S: x = op();\n}",
            3,
            "unknown parameter W in split expression",
        ),
        (
            "kernel k(N) {\n  scalar x;\n  split Ms = 2*W;\n  S: x = op();\n}",
            3,
            "unknown parameter W in split expression",
        ),
        (
            "kernel k(N) {\n  scalar x;\n  split Ms = N/2;\n  split Ms = N/3;\n  S: x = op();\n}",
            4,
            "duplicate `split` directive",
        ),
        (
            "kernel k(N) {\n  scalar x;\n  split Ms = ;\n  S: x = op();\n}",
            3,
            "expected split-expression term",
        ),
    ];
    for (src, line, frag) in cases {
        let err = parse_kernel(src).expect_err(src);
        assert!(
            err.msg.contains(frag),
            "source {src:?}: expected fragment {frag:?} in {:?}",
            err.msg
        );
        assert_eq!(err.span.line, *line, "source {src:?}: line of {err}");
    }
}

/// Errors format with position prefix (the CLI's user-facing surface).
#[test]
fn error_display_has_position() {
    let err = parse_kernel("kernel k(N) {\n  junk!\n}").unwrap_err();
    let text = err.to_string();
    assert!(
        text.starts_with("parse error at line 2, col"),
        "got: {text}"
    );
}
