//! DSL round-trip property: `parse(print(p))` is structurally identical to
//! `p` for randomized [`ProgramBuilder`] programs covering the full builder
//! surface (nested/strided/reversed loops, `max`/`min` bounds, triangular
//! subscripts, scalars), plus golden tests pinning parse-error messages and
//! spans for malformed input.

use iolb_ir::parse::{assert_roundtrip, parse_kernel};
use iolb_ir::{Access, Aff, ArrayId, DimId, LoopStep, Program, ProgramBuilder};
use proptest::prelude::*;

/// Minimal deterministic PRNG (xorshift64*) so program generation needs
/// nothing beyond a seed from proptest.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flip(&mut self) -> bool {
        self.below(2) == 0
    }
}

struct Builder {
    b: ProgramBuilder,
    g: Gen,
    a2: ArrayId,
    a1: ArrayId,
    sc: ArrayId,
    open: Vec<DimId>,
    stmt_ct: u32,
    loop_ct: u32,
}

impl Builder {
    /// A random affine expression over the open dims and parameters.
    fn aff(&mut self) -> Aff {
        let base = match self.g.below(4) {
            0 if !self.open.is_empty() => {
                let d = self.open[self.g.below(self.open.len() as u64) as usize];
                self.b.d(d)
            }
            1 => self.b.p("P"),
            2 => self.b.p("Q"),
            _ => self.b.c(self.g.below(5) as i64),
        };
        match self.g.below(4) {
            0 => base + self.g.below(3) as i64,
            1 => base - 1,
            2 if !self.open.is_empty() => {
                let d = self.open[self.g.below(self.open.len() as u64) as usize];
                base + self.b.d(d) * (self.g.below(3) as i64 + 1)
            }
            _ => base,
        }
    }

    fn access(&mut self) -> Access {
        match self.g.below(3) {
            0 => Access::new(self.a2, vec![self.aff(), self.aff()]),
            1 => Access::new(self.a1, vec![self.aff()]),
            _ => Access::new(self.sc, vec![]),
        }
    }

    fn body(&mut self, depth: u32) {
        let items = 1 + self.g.below(2);
        for _ in 0..items {
            if depth < 3 && self.g.flip() {
                self.random_loop(depth);
            } else {
                self.random_stmt();
            }
        }
    }

    fn random_loop(&mut self, depth: u32) {
        let name = format!("i{}", self.loop_ct);
        self.loop_ct += 1;
        let lo_first = if !self.open.is_empty() && self.g.flip() {
            let d = *self.open.last().unwrap();
            self.b.d(d) + 1
        } else {
            self.b.c(0)
        };
        let lo = if self.g.below(4) == 0 {
            vec![lo_first, self.b.c(1)]
        } else {
            vec![lo_first]
        };
        let hi_first = match self.g.below(3) {
            0 => self.b.p("P"),
            1 => self.b.p("Q"),
            _ => self.b.p("P") + 2,
        };
        let hi = if self.g.below(4) == 0 {
            vec![hi_first, self.b.p("Q") + 1]
        } else {
            vec![hi_first]
        };
        let step = match self.g.below(4) {
            0 => LoopStep::Const(2),
            1 => LoopStep::Param(self.b.pid("Q")),
            _ => LoopStep::One,
        };
        let reverse = self.g.below(4) == 0;
        let d = self.b.open_general(&name, lo, hi, step, reverse);
        self.open.push(d);
        self.body(depth + 1);
        self.open.pop();
        self.b.close();
    }

    fn random_stmt(&mut self) {
        let name = format!("S{}", self.stmt_ct);
        self.stmt_ct += 1;
        let n_reads = self.g.below(3) as usize;
        let reads: Vec<Access> = (0..n_reads).map(|_| self.access()).collect();
        let mut writes = vec![self.access()];
        if self.g.below(4) == 0 {
            writes.push(self.access());
        }
        self.b.stmt(&name, reads, writes, |_c| ());
    }
}

/// Builds a random program exercising the whole DSL surface.
fn random_program(seed: u64) -> Program {
    let mut builder = Builder {
        b: ProgramBuilder::new("rand_prog", &["P", "Q"]),
        g: Gen(seed | 1),
        a2: ArrayId(0),
        a1: ArrayId(0),
        sc: ArrayId(0),
        open: Vec::new(),
        stmt_ct: 0,
        loop_ct: 0,
    };
    let (p, q) = (builder.b.p("P"), builder.b.p("Q"));
    builder.a2 = builder.b.array("A", &[p.clone(), q]);
    builder.a1 = builder.b.array("B", &[p]);
    builder.sc = builder.b.scalar("s");
    builder.body(0);
    builder.b.finish()
}

proptest! {
    /// print → parse → structural equality over the randomized builder
    /// surface (the paper kernels are covered separately in iolb-cli's
    /// parity tests).
    #[test]
    fn randomized_programs_round_trip(seed in 0u64..(1 << 48)) {
        let p = random_program(seed);
        assert_roundtrip(&p);
    }
}

/// Golden parse-error cases: exact message fragment and span.
#[test]
fn golden_parse_errors() {
    let cases: &[(&str, u32, &str)] = &[
        ("", 1, "expected keyword `kernel`"),
        ("kernel", 1, "expected identifier"),
        (
            "kernel k(N) { scalar x;",
            1,
            "expected `for`, a statement, or `}`",
        ),
        (
            "kernel k(N) {\n  array A[N];\n  S: A[N + ] = op();\n}",
            3,
            "expected affine term",
        ),
        (
            "kernel k(N) {\n  array A[N];\n  S: A[z] = op();\n}",
            3,
            "unknown variable z",
        ),
        (
            "kernel k(N) {\n  array A[N];\n  for i in 0..N step 0 { S: A[i] = op(); }\n}",
            3,
            "loop step must be positive",
        ),
        (
            "kernel k(N) {\n  array A[N];\n  for i in 0..N step W { S: A[i] = op(); }\n}",
            3,
            "step W is not a program parameter",
        ),
        (
            "kernel k(N) {\n  array A[N][i];\n  S: A[0][0] = op();\n}",
            2,
            "unknown variable i",
        ),
        (
            "kernel k(N) {\n  scalar x;\n  S: x = f(x);\n}",
            3,
            "expected keyword `op`",
        ),
        (
            "kernel k(N) {\n  scalar x;\n  split Ms = N/0;\n  S: x = op();\n}",
            3,
            "expected non-zero integer divisor",
        ),
        (
            "kernel k(N) { array A; S: A = op(); }",
            1,
            "needs at least one `[extent]`",
        ),
        ("kernel k(N) @", 1, "unexpected character `@`"),
    ];
    for (src, line, frag) in cases {
        let err = parse_kernel(src).expect_err(src);
        assert!(
            err.msg.contains(frag),
            "source {src:?}: expected fragment {frag:?} in {:?}",
            err.msg
        );
        assert_eq!(err.span.line, *line, "source {src:?}: line of {err}");
    }
}

/// Errors format with position prefix (the CLI's user-facing surface).
#[test]
fn error_display_has_position() {
    let err = parse_kernel("kernel k(N) {\n  junk!\n}").unwrap_err();
    let text = err.to_string();
    assert!(
        text.starts_with("parse error at line 2, col"),
        "got: {text}"
    );
}
