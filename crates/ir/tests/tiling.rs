//! Property: tiled and untiled enumeration of a random [`Program`] produce
//! identical instance multisets — `tile_program` may only *reorder* the
//! schedule, never add, drop, or relabel an instance.

use iolb_ir::schedule::{enumerate_instances, tile_program, TileSpec};
use iolb_ir::{Access, Aff, ArrayId, DimId, LoopStep, Program, ProgramBuilder, StmtId};
use proptest::prelude::*;

/// Minimal deterministic PRNG (xorshift64*) seeded by proptest.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flip(&mut self) -> bool {
        self.below(2) == 0
    }
}

struct Builder {
    b: ProgramBuilder,
    g: Gen,
    a2: ArrayId,
    open: Vec<DimId>,
    stmt_ct: u32,
    loop_ct: u32,
    /// Names of generated unit-step forward loops (the tileable set).
    tileable: Vec<String>,
}

impl Builder {
    /// Nonnegative affine bound expressions over open dims and parameters.
    fn lo_aff(&mut self) -> Aff {
        match self.g.below(3) {
            0 if !self.open.is_empty() => {
                let d = *self.open.last().unwrap();
                self.b.d(d) + 1
            }
            1 => self.b.c(self.g.below(3) as i64),
            _ => self.b.c(0),
        }
    }

    fn hi_aff(&mut self) -> Aff {
        match self.g.below(3) {
            0 => self.b.p("P"),
            1 => self.b.p("Q") + 2,
            _ => self.b.p("P") + self.g.below(3) as i64,
        }
    }

    fn body(&mut self, depth: u32) {
        let items = 1 + self.g.below(2);
        for _ in 0..items {
            if depth < 4 && self.g.flip() {
                self.random_loop(depth);
            } else {
                self.random_stmt();
            }
        }
    }

    fn random_loop(&mut self, depth: u32) {
        let name = format!("i{}", self.loop_ct);
        self.loop_ct += 1;
        let lo = vec![self.lo_aff()];
        let mut hi = vec![self.hi_aff()];
        if self.g.below(4) == 0 {
            hi.push(self.b.p("Q") + 1);
        }
        // Mostly tileable (unit forward) loops, with some strided/reversed
        // ones in the mix (tile specs avoid those).
        let (step, reverse) = match self.g.below(6) {
            0 => (LoopStep::Const(2), false),
            1 => (LoopStep::One, true),
            _ => (LoopStep::One, false),
        };
        if step == LoopStep::One && !reverse {
            self.tileable.push(name.clone());
        }
        let d = self.b.open_general(&name, lo, hi, step, reverse);
        self.open.push(d);
        self.body(depth + 1);
        self.open.pop();
        self.b.close();
    }

    fn random_stmt(&mut self) {
        let name = format!("S{}", self.stmt_ct);
        self.stmt_ct += 1;
        let w = Access::new(self.a2, vec![Aff::zero(), Aff::zero()]);
        self.b.stmt(&name, vec![], vec![w], |_c| ());
    }
}

/// Builds a random loop-tree program plus the names of its tileable loops.
fn random_program(seed: u64) -> (Program, Vec<String>) {
    let mut builder = Builder {
        b: ProgramBuilder::new("rand_tile", &["P", "Q"]),
        g: Gen(seed | 1),
        a2: ArrayId(0),
        open: Vec::new(),
        stmt_ct: 0,
        loop_ct: 0,
        tileable: Vec::new(),
    };
    let (p, q) = (builder.b.p("P"), builder.b.p("Q"));
    builder.a2 = builder.b.array("A", &[p + 3, q + 3]);
    builder.body(0);
    let tileable = std::mem::take(&mut builder.tileable);
    (builder.b.finish(), tileable)
}

fn sorted(mut v: Vec<(StmtId, Vec<i32>)>) -> Vec<(StmtId, Vec<i32>)> {
    v.sort();
    v
}

proptest! {
    /// Tiling any subset of the tileable loops with arbitrary sizes leaves
    /// the `(stmt, iv)` instance multiset unchanged at every size point.
    #[test]
    fn tiled_enumeration_is_a_permutation(
        seed in 0u64..(1 << 48),
        sizes in proptest::collection::vec(1i64..6, 1..4),
        p in 1i64..6,
        q in 1i64..6,
    ) {
        let (program, tileable) = random_program(seed);
        prop_assume!(!tileable.is_empty());
        let specs: Vec<TileSpec> = tileable
            .iter()
            .zip(sizes.iter())
            .map(|(name, &s)| TileSpec::new(name, s))
            .collect();
        let tiled = tile_program(&program, &specs).expect("valid tiling");
        let params = [p, q];
        let base = enumerate_instances(&program, &params);
        let blocked = enumerate_instances(&tiled, &params);
        prop_assert_eq!(base.len(), blocked.len(), "instance counts differ");
        prop_assert_eq!(sorted(base), sorted(blocked), "instance multisets differ");
    }
}
