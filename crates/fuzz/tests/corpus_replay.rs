//! Deterministic corpus replay: every committed `fuzz/corpus/*.iolb`
//! reproducer runs through the full differential oracle and must pass.
//!
//! The corpus holds minimized kernels that *historically* broke an oracle
//! invariant (each file's header comment names the original seed and the
//! bug); replaying them pins the fixes. New failures found by `iolb fuzz
//! --corpus fuzz/corpus` land here and join the suite automatically.

use iolb_fuzz::Oracle;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus")
}

#[test]
fn corpus_files_pass_every_invariant() {
    let dir = corpus_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", dir.display()))
        .map(|entry| entry.expect("corpus entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "iolb"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 8,
        "corpus unexpectedly small: {} files",
        files.len()
    );
    let oracle = Oracle::with(vec![0, 1, 2, 4, 8, 16, 64], true);
    for file in &files {
        let src = std::fs::read_to_string(file).expect("read corpus file");
        let report = oracle.check_source(&src).unwrap_or_else(|v| {
            panic!(
                "{}: invariant [{}] violated again: {}",
                file.display(),
                v.invariant,
                v.detail
            )
        });
        assert!(report.instances > 0, "{}: ran no instances", file.display());
    }
}

/// The refusal corpus entries really are refusals: no classical bound may
/// quietly come back for the shapes whose bounds were once unsound.
#[test]
fn refused_shapes_stay_refused() {
    let refusals = [
        "free_producer_chain.iolb",
        "grounded_adjacent_producer.iolb",
        "reflection_feed.iolb",
        "shift_chain.iolb",
    ];
    for name in refusals {
        let src = std::fs::read_to_string(corpus_dir().join(name)).expect("read");
        let kernel = iolb_ir::parse_kernel(&src).expect("parse");
        let params = kernel.default_params().expect("defaults");
        let observe = iolb_core::report::observation_sizes(&params);
        let analysis = iolb_core::Analysis::run(&kernel.program, &observe).expect("analysis");
        let stmt = kernel
            .analyze
            .as_deref()
            .map(|s| kernel.program.stmt_id(s).expect("analyze stmt"))
            .or_else(|| kernel.program.default_analyze_stmt())
            .expect("statement to analyze");
        assert!(
            analysis.try_classical_bound(stmt).is_none(),
            "{name}: classical bound re-derived for a shape it is unsound on"
        );
    }
}

/// Graph-level engine coverage for the refused class: every corpus
/// kernel whose classical bound is refused still receives at least one
/// finite engine bound at *every* S of the dense grid, and each such
/// bound sits at or below the OPT curve of the program-order trace.
/// `graph ≤ symbolic` is deliberately NOT asserted anywhere — the
/// engines may beat or trail the symbolic bounds; only soundness against
/// OPT is the contract.
#[test]
fn refused_shapes_get_finite_sound_engine_bounds() {
    let refusals = [
        "free_producer_chain.iolb",
        "grounded_adjacent_producer.iolb",
        "reflection_feed.iolb",
        "shift_chain.iolb",
    ];
    for name in refusals {
        let src = std::fs::read_to_string(corpus_dir().join(name)).expect("read");
        let kernel = iolb_ir::parse_kernel(&src).expect("parse");
        let params = kernel.default_params().expect("defaults");
        let cdag = iolb_cdag::build_cdag(&kernel.program, &params);
        let mut trace = Vec::new();
        cdag.packed_program_order_trace(&mut trace);
        let min_s = cdag.max_in_degree() + 1;
        let s_values: Vec<usize> = iolb_bench::sweep::dense_s_offsets()
            .iter()
            .map(|&off| min_s + off)
            .collect();
        let horizon = *s_values.last().expect("dense grid is non-empty");
        let mut engine = iolb_memsim::CurveEngine::new();
        let opt = engine.opt_packed(&trace, horizon);
        let curves = iolb_core::EngineRegistry::all().evaluate(&cdag, &s_values);
        for (si, &s) in s_values.iter().enumerate() {
            let finite: Vec<(iolb_core::BoundProvenance, u64)> = curves
                .iter()
                .filter_map(|c| c.at(si).map(|b| (c.provenance, b)))
                .collect();
            assert!(
                !finite.is_empty(),
                "{name}: no finite graph-level bound at S={s}"
            );
            for (prov, b) in finite {
                assert!(
                    b <= opt.loads(s),
                    "{name}: {prov:?} bound {b} exceeds OPT loads {} at S={s}",
                    opt.loads(s)
                );
            }
        }
    }
}

/// The bounded corpus entries derive sound bounds with the *fixed*
/// machinery (alias-merged regions, weighted divisor).
#[test]
fn bounded_shapes_keep_sound_bounds() {
    for (name, stmt) in [
        ("aliasing_regions.iolb", "S0"),
        ("zero_weight_region.iolb", "S0"),
        ("unbalanced_regions.iolb", "S0"),
    ] {
        let src = std::fs::read_to_string(corpus_dir().join(name)).expect("read");
        let kernel = iolb_ir::parse_kernel(&src).expect("parse");
        let params = kernel.default_params().expect("defaults");
        let observe = iolb_core::report::observation_sizes(&params);
        let analysis = iolb_core::Analysis::run(&kernel.program, &observe).expect("analysis");
        let sid = kernel.program.stmt_id(stmt).expect("stmt");
        let bound = analysis
            .try_classical_bound(sid)
            .unwrap_or_else(|| panic!("{name}: expected a (now sound) classical bound"));
        assert!(
            bound.m <= iolb_numeric::Rational::int(1),
            "{name}: aliasing/zero-weight regions must collapse the divisor, got m={}",
            bound.m
        );
    }
}
