//! Differential check of the streaming sharded curve engines on
//! *generated* kernels (issue satellite 4): for a spread of fuzz seeds,
//! the sharded LRU and streaming OPT passes fed straight from the CDAG's
//! chunked program-order reader must be bitwise-equal to the materialized
//! reference engine on the packed trace — at every capacity, including
//! with chunk sizes small enough to force many shard boundaries through
//! every generated shape.

use iolb_cdag::try_build_cdag;
use iolb_core::govern::{Budget, CancelToken};
use iolb_fuzz::gen::{generate_case, GenConfig};
use iolb_memsim::{CurveEngine, ShardedCurveEngine};

#[test]
fn streaming_engines_match_materialized_on_generated_kernels() {
    let cfg = GenConfig::default();
    let token = CancelToken::unlimited();
    let mut checked = 0usize;
    for index in 0..24u64 {
        let case = generate_case(0xD1FF, index, &cfg);
        let src = case.render();
        let kernel = iolb_ir::parse_kernel(&src)
            .unwrap_or_else(|e| panic!("case {index}: generated kernel must parse: {e}"));
        let params = kernel.default_params().expect("defaults cover all params");
        let Ok(cdag) = try_build_cdag(&kernel.program, &params, &Budget::unlimited(), &token)
        else {
            continue; // admission refusals are the oracle's domain, not ours
        };

        let mut trace = Vec::new();
        cdag.packed_program_order_trace(&mut trace);
        if trace.is_empty() {
            continue;
        }
        let horizon = (cdag.max_in_degree() + 1 + 64).min(trace.len());
        let mut reference = CurveEngine::new();
        let lru_ref = reference.lru_packed(&trace, horizon);
        let opt_ref = reference.opt_packed(&trace, horizon);

        // An awkward prime chunk length forces boundaries mid-compute on
        // every generated shape; the default exercises the one-chunk path.
        for engine in [
            ShardedCurveEngine::with_chunk_len(251),
            ShardedCurveEngine::new(),
        ] {
            let source = cdag.program_order_trace();
            let lru = engine
                .try_lru(&source, horizon, &token)
                .unwrap_or_else(|e| panic!("case {index}: sharded LRU failed: {e}"));
            let opt = engine
                .try_opt(&source, horizon, &token)
                .unwrap_or_else(|e| panic!("case {index}: streaming OPT failed: {e}"));
            for s in 1..=horizon {
                assert_eq!(
                    lru.loads(s),
                    lru_ref.loads(s),
                    "case {index} (seed 0xD1FF): LRU loads diverge at S={s}"
                );
                assert_eq!(
                    opt.loads(s),
                    opt_ref.loads(s),
                    "case {index} (seed 0xD1FF): OPT loads diverge at S={s}"
                );
            }
            assert_eq!(lru.accesses(), trace.len() as u64);
            assert_eq!(opt.accesses(), trace.len() as u64);
        }
        checked += 1;
    }
    assert!(
        checked >= 12,
        "too few generated kernels survived to the differential check: {checked}"
    );
}
