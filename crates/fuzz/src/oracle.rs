//! The end-to-end differential soundness oracle.
//!
//! One generated (or corpus) `.iolb` source is pushed through the whole
//! pipeline, asserting the cross-layer invariants that tie the layers
//! together:
//!
//! 1. **round-trip** — `parse(print(parse(src)))` preserves the program
//!    *and* every directive ([`iolb_ir::kernel_diff`]);
//! 2. **certification** — the synthesized closures perform exactly the
//!    declared accesses ([`iolb_ir::interp::validate_accesses`]);
//! 3. **CDAG agreement** — the fast declared-access construction
//!    ([`build_cdag`]) is node-for-node identical to the executed
//!    ground-truth path ([`build_cdag_executed`]);
//! 4. **hourglass self-consistency** — a detected pattern must certify on
//!    the concrete observation sizes;
//! 5. **bound soundness** — every derived floored bound (classical σ and
//!    hourglass) *and* every graph-level engine bound (input-floor, visit,
//!    spectral over the certified CDAG) sits at or below the OPT miss
//!    curve of the program-order trace at *every* S of the grid, and
//!    OPT ≤ LRU with both curves monotone in S;
//! 6. **schedule legality** — the tightness harness's invariants hold:
//!    tiled enumerations preserving the instance version map are the only
//!    ones measured, the winner never loses to program order or to its
//!    own LRU view, identical final stores bit-for-bit, and every
//!    measured upper bound also dominates the derived lower bounds
//!    (`lower bound ≤ OPT ≤ any legal schedule`).
//!
//! Analysis-stage *refusals* (no covering σ projection set, no split
//! binding) are not violations — the pipeline is allowed to decline a
//! bound; it is never allowed to overshoot one.

use iolb_bench::tightness::{run_tightness, TightnessJob};
use iolb_cdag::{build_cdag, build_cdag_executed};
use iolb_core::report::{derive_with_split, observation_sizes};
use iolb_core::{hourglass, Analysis, EngineRegistry};
use iolb_ir::interp::validate_accesses;
use iolb_ir::{kernel_diff, parse_kernel, print_kernel, Program};
use iolb_memsim::CurveEngine;
use iolb_symbolic::Var;

/// Soundness slack for float comparisons (matches the sweep's `sound()`).
const EPS: f64 = 1e-9;

/// A broken invariant: which one, and the human-readable evidence.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable invariant identifier (`"bound-exceeds-opt"`, …). The
    /// shrinker only accepts mutations that preserve this identifier, so
    /// a reproducer never drifts onto a different bug while minimizing.
    pub invariant: &'static str,
    /// What went wrong, with concrete numbers.
    pub detail: String,
}

impl Violation {
    fn new(invariant: &'static str, detail: impl Into<String>) -> Violation {
        Violation {
            invariant,
            detail: detail.into(),
        }
    }
}

/// Per-case outcome counters (aggregated into the fuzz report).
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseReport {
    /// Certified statement instances.
    pub instances: u64,
    /// A classical σ-bound was derived.
    pub classical: bool,
    /// A hourglass bound was derived.
    pub hourglass: bool,
    /// Dependence analysis declined the program (no bounds checked).
    pub analysis_skipped: bool,
    /// The kernel carried `schedule { tile … }` directives.
    pub tiled: bool,
    /// Every S of the grid received at least one finite graph-level
    /// engine bound (the coverage guarantee for symbolically-refused
    /// kernels).
    pub engine_covered: bool,
}

/// Oracle configuration.
#[derive(Debug, Clone)]
pub struct Oracle {
    /// Offsets added to the kernel's minimum feasible S.
    pub s_offsets: Vec<usize>,
    /// Run the tightness harness (schedule-legality + upper-bound
    /// invariants) per case.
    pub tightness: bool,
    /// Test-only fault injection: inflates every derived lower bound by
    /// this amount before the curve comparison, so the oracle + shrinker
    /// machinery can be proven to catch a genuine overshoot.
    #[cfg(test)]
    pub inject_overshoot: f64,
    /// Test-only fault injection for the graph-level engine invariant:
    /// inflates every engine bound before the OPT comparison.
    #[cfg(test)]
    pub inject_engine_overshoot: u64,
}

impl Default for Oracle {
    fn default() -> Oracle {
        Oracle::new()
    }
}

impl Oracle {
    /// Oracle over the dense default S grid with tightness checks on.
    pub fn new() -> Oracle {
        Oracle::with(iolb_bench::sweep::dense_s_offsets(), true)
    }

    /// Oracle over a custom S grid (sorted and deduplicated here — the
    /// monotonicity checks walk the grid in ascending order).
    ///
    /// # Panics
    /// Panics on an empty grid: no grid means no bound/curve invariant
    /// would run, and a vacuous "clean" verdict must be impossible.
    pub fn with(mut s_offsets: Vec<usize>, tightness: bool) -> Oracle {
        assert!(!s_offsets.is_empty(), "oracle needs at least one S offset");
        s_offsets.sort_unstable();
        s_offsets.dedup();
        Oracle {
            s_offsets,
            tightness,
            #[cfg(test)]
            inject_overshoot: 0.0,
            #[cfg(test)]
            inject_engine_overshoot: 0,
        }
    }

    fn injected(&self) -> f64 {
        #[cfg(test)]
        {
            self.inject_overshoot
        }
        #[cfg(not(test))]
        {
            0.0
        }
    }

    fn injected_engine(&self) -> u64 {
        #[cfg(test)]
        {
            self.inject_engine_overshoot
        }
        #[cfg(not(test))]
        {
            0
        }
    }

    /// Runs the full invariant chain on one `.iolb` source.
    ///
    /// # Errors
    /// The first broken invariant, as a [`Violation`].
    pub fn check_source(&self, src: &str) -> Result<CaseReport, Violation> {
        // 1. Parse + full-file round-trip.
        let kernel = parse_kernel(src)
            .map_err(|e| Violation::new("parse", format!("source does not parse: {e}")))?;
        let printed = print_kernel(&kernel);
        let reparsed = parse_kernel(&printed).map_err(|e| {
            Violation::new(
                "roundtrip-parse",
                format!("printed kernel does not re-parse: {e}"),
            )
        })?;
        if let Some(d) = kernel_diff(&kernel, &reparsed) {
            return Err(Violation::new("roundtrip", d));
        }
        let program = &kernel.program;
        let params = kernel
            .default_params()
            .map_err(|e| Violation::new("defaults", e))?;

        // 2. Declared accesses == performed accesses on every instance.
        let instances =
            validate_accesses(program, &params).map_err(|e| Violation::new("certify", e))?;

        // 3. Fast CDAG path vs executed ground truth.
        let cdag = build_cdag(program, &params);
        let executed = build_cdag_executed(program, &params);
        if let Some(d) = cdag.diff(&executed) {
            return Err(Violation::new("cdag-divergence", d));
        }

        // 4. Bound derivation (refusals allowed, inconsistencies not).
        let stmt_name = kernel
            .analyze
            .clone()
            .unwrap_or_else(|| deepest_stmt(program));
        let stmt = program
            .stmt_id(&stmt_name)
            .ok_or_else(|| Violation::new("analyze", format!("no statement named {stmt_name}")))?;
        let named: Vec<(String, i64)> = program
            .params
            .iter()
            .cloned()
            .zip(params.iter().copied())
            .collect();
        let mut env: Vec<(Var, i128)> = named
            .iter()
            .map(|(n, v)| (Var::new(n), *v as i128))
            .collect();
        let observe = observation_sizes(&params);
        let (classical, hourglass, analysis_skipped) = match Analysis::run(program, &observe) {
            Err(_) => (None, None, true),
            Ok(analysis) => {
                let classical = analysis.try_classical_bound(stmt);
                let hg = match analysis.detect_hourglass(stmt) {
                    None => None,
                    // Detection is structural and optimistic; empirical
                    // chain certification is the gate. A failed
                    // certification (e.g. another statement clobbers the
                    // would-be chain) means the hourglass bound must not
                    // be applied — a refusal, not a violation.
                    Some(pat) => match hourglass::certify(program, &pat, &observe[0]) {
                        Err(_) => None,
                        Ok(_) => match derive_with_split(program, &pat, None) {
                            Ok((b, binding)) => {
                                if let Some(bind) = &binding {
                                    env.push((bind.var, bind.eval(&named)));
                                }
                                Some(b)
                            }
                            Err(_) => None, // split binding unavailable: a refusal
                        },
                    },
                };
                (classical, hg, false)
            }
        };

        // 5. Miss-curve invariants on the program-order trace.
        let mut trace = Vec::new();
        cdag.packed_program_order_trace(&mut trace);
        let min_s = cdag.max_in_degree() + 1;
        let s_values: Vec<usize> = self.s_offsets.iter().map(|&off| min_s + off).collect();
        let horizon = s_values.iter().copied().max().unwrap_or(1);
        let mut engine = CurveEngine::new();
        let opt = engine.opt_packed(&trace, horizon);
        let lru = engine.lru_packed(&trace, horizon);
        // Graph-level engines run on the same certified CDAG; every
        // applicable bound must also sit under OPT at every S.
        let engine_curves = EngineRegistry::all().evaluate(&cdag, &s_values);
        let inject = self.injected();
        let inject_engine = self.injected_engine();
        let mut engine_covered = true;
        let (mut prev_opt, mut prev_lru) = (u64::MAX, u64::MAX);
        for (si, &s) in s_values.iter().enumerate() {
            let opt_loads = opt.loads(s);
            let lru_loads = lru.loads(s);
            let mut any_engine = false;
            for curve in &engine_curves {
                let Some(b) = curve.at(si) else { continue };
                any_engine = true;
                let b = b.saturating_add(inject_engine);
                if b > opt_loads {
                    return Err(Violation::new(
                        "engine-bound-exceeds-opt",
                        format!(
                            "S={s}: {} engine bound {b} exceeds OPT loads {opt_loads}",
                            curve.provenance.as_str()
                        ),
                    ));
                }
            }
            engine_covered &= any_engine;
            let lb_classical = classical
                .as_ref()
                .map(|b| b.eval_floor(&env, s as i128))
                .unwrap_or(0.0);
            let lb_hourglass = hourglass
                .as_ref()
                .map(|b| b.eval_floor(&env, s as i128))
                .unwrap_or(0.0);
            let lb = lb_classical.max(lb_hourglass) + inject;
            if lb > opt_loads as f64 + EPS {
                return Err(Violation::new(
                    "bound-exceeds-opt",
                    format!(
                        "S={s}: lower bound {lb} (classical {lb_classical}, hourglass \
                         {lb_hourglass}) exceeds OPT loads {opt_loads}"
                    ),
                ));
            }
            if opt_loads > lru_loads {
                return Err(Violation::new(
                    "opt-above-lru",
                    format!("S={s}: OPT loads {opt_loads} above LRU loads {lru_loads}"),
                ));
            }
            if opt_loads > prev_opt || lru_loads > prev_lru {
                return Err(Violation::new(
                    "curve-not-monotone",
                    format!("S={s}: miss curve increased with capacity"),
                ));
            }
            (prev_opt, prev_lru) = (opt_loads, lru_loads);
        }

        // 6. Tightness harness: schedule legality, store cross-check, and
        // `lower bound ≤ best measured schedule` (the `run_tightness`
        // internals reject version-map-breaking enumerations and error on
        // any inverted measurement invariant).
        if self.tightness {
            let job = TightnessJob {
                name: program.name.clone(),
                program: reparse(src)?,
                params: params.clone(),
                env: env.clone(),
                classical: classical.clone(),
                hourglass: hourglass.clone(),
                schedule: kernel.schedule.clone(),
                s_offsets: self.s_offsets.clone(),
            };
            let report =
                run_tightness(vec![job]).map_err(|e| Violation::new("tightness-invariant", e))?;
            for t in report.kernels.iter().flat_map(|k| &k.points) {
                let lb = t.lb_classical.max(t.lb_hourglass) + inject;
                if lb > t.upper_loads as f64 + EPS {
                    return Err(Violation::new(
                        "bound-exceeds-upper",
                        format!(
                            "S={}: lower bound {lb} exceeds measured upper bound {} \
                             (schedule `{}`)",
                            t.s, t.upper_loads, t.upper_schedule
                        ),
                    ));
                }
            }
        }

        Ok(CaseReport {
            instances,
            classical: classical.is_some(),
            hourglass: hourglass.is_some(),
            analysis_skipped,
            tiled: !kernel.schedule.is_empty(),
            engine_covered,
        })
    }
}

/// The pipeline's fallback analysis target
/// ([`Program::default_analyze_stmt`] — the same rule the `iolb` CLI
/// applies).
fn deepest_stmt(program: &Program) -> String {
    program
        .default_analyze_stmt()
        .map(|id| program.stmt(id).name.clone())
        .unwrap_or_default()
}

/// A second parse of the same source ([`Program`] carries closures and is
/// not clonable).
fn reparse(src: &str) -> Result<Program, Violation> {
    Ok(parse_kernel(src)
        .map_err(|e| Violation::new("parse", e.to_string()))?
        .program)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GEMM: &str = "
kernel mini_gemm(N) {
  array A[N][N];
  array B[N][N];
  array C[N][N];
  analyze SU;
  default N = 6;
  schedule { tile i; tile j; }

  for i in 0..N {
    for j in 0..N {
      Cz: C[i][j] = op();
    }
  }
  for i in 0..N {
    for j in 0..N {
      for k in 0..N {
        SU: C[i][j] = op(A[i][k], B[k][j], C[i][j]);
      }
    }
  }
}
";

    #[test]
    fn clean_kernel_passes_every_invariant() {
        let oracle = Oracle::with(vec![0, 4, 16], true);
        let report = oracle.check_source(GEMM).expect("sound");
        assert!(report.instances > 0);
        assert!(report.tiled);
        assert!(!report.analysis_skipped);
    }

    #[test]
    fn unparseable_source_is_a_parse_violation() {
        let oracle = Oracle::with(vec![0], false);
        let v = oracle.check_source("kernel broken {").unwrap_err();
        assert_eq!(v.invariant, "parse");
    }

    #[test]
    fn injected_overshoot_is_caught() {
        let mut oracle = Oracle::with(vec![0, 8], false);
        oracle.inject_overshoot = 1e12;
        let v = oracle.check_source(GEMM).unwrap_err();
        assert_eq!(v.invariant, "bound-exceeds-opt");
        assert!(v.detail.contains("exceeds OPT loads"), "{}", v.detail);
    }

    #[test]
    fn injected_engine_overshoot_is_caught() {
        let mut oracle = Oracle::with(vec![0, 8], false);
        oracle.inject_engine_overshoot = u64::MAX / 2;
        let v = oracle.check_source(GEMM).unwrap_err();
        assert_eq!(v.invariant, "engine-bound-exceeds-opt");
        assert!(v.detail.contains("exceeds OPT loads"), "{}", v.detail);
    }

    #[test]
    fn clean_kernel_is_engine_covered() {
        let oracle = Oracle::with(vec![0, 4, 16], false);
        let report = oracle.check_source(GEMM).expect("sound");
        assert!(
            report.engine_covered,
            "every S must get a finite graph-level bound"
        );
    }
}
